#!/usr/bin/env python3
"""Figure-6-style timelines: four processes, three scheduling regimes.

The paper's Figure 6 contrasts per-process execution timelines of
SuperLU (same-type same-level batching), PanguLU (priority order, no
batching) and the Trojan Horse (heterogeneous cross-level batches) on a
small blocked matrix with four processes.  This script renders the same
comparison as ASCII Gantt charts from the distributed simulator.

Run:  python examples/distributed_timeline.py
"""

import numpy as np

from repro.cluster import DistributedSimulator, H100_CLUSTER
from repro.core import build_block_dag
from repro.core.executor import EstimateBackend
from repro.matrices import make_diagonally_dominant
from repro.ordering import compute_ordering
from repro.sparse import CSRMatrix, permute_symmetric, uniform_partition
from repro.symbolic import block_fill


def gantt(timeline, nprocs, makespan, width=72):
    """Render per-process launch intervals as ASCII bars."""
    lines = []
    for rank in range(nprocs):
        row = [" "] * width
        for r, start, end, tids in timeline:
            if r != rank:
                continue
            lo = int(start / makespan * (width - 1))
            hi = max(lo + 1, int(end / makespan * (width - 1)))
            mark = "#" if len(tids) > 1 else "-"
            for k in range(lo, min(hi, width)):
                row[k] = mark
        lines.append(f"  P{rank} |{''.join(row)}|")
    return "\n".join(lines)


def main() -> None:
    rng = np.random.default_rng(6)
    n = 144
    dense = (rng.random((n, n)) < 0.2) * rng.standard_normal((n, n))
    a = make_diagonally_dominant(CSRMatrix.from_dense(dense), 1.5)
    b = permute_symmetric(a, compute_ordering(a, "mindeg"))
    part = uniform_partition(n, 12)
    dag = build_block_dag(block_fill(b, part), part, sparse_tiles=True)
    print(f"blocked matrix: {part.nblocks}x{part.nblocks} tiles, "
          f"{dag.n_tasks} tasks (paper's example: 22 tasks over 5 blocks)\n")

    backend = EstimateBackend()
    for policy, label in (
        ("serial", "PanguLU-style: priority order, one kernel per task"),
        ("streams", "4 CUDA streams: overlapped launches"),
        ("trojan", "Trojan Horse: heterogeneous batches (# = batched)"),
    ):
        sim = DistributedSimulator(dag, backend, H100_CLUSTER, 4, policy,
                                   record_timeline=True)
        res = sim.run()
        print(f"{label}\n  makespan {res.makespan * 1e6:8.1f} µs, "
              f"{res.total_kernels} kernel launches, "
              f"{res.messages} messages")
        print(gantt(res.timeline, 4, res.makespan))
        print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Walkthrough of the paper's worked example (§2.3, Figure 4).

A 6×6 matrix organised as 3×3 blocks produces exactly 14 tasks.  This
script builds the example, prints the task list and dependency structure,
shows the Trojan Horse batches (heterogeneous types, atomic 9S0/9S1
pairing) and the Executor's CUDA-block→task mapping array of Figure 7.

Run:  python examples/walkthrough_paper_example.py
"""

import numpy as np

from repro.core import BlockTaskMapping, build_block_dag, make_scheduler
from repro.core.executor import EstimateBackend
from repro.gpusim import GPUCostModel, RTX5090
from repro.matrices import make_diagonally_dominant
from repro.sparse import CSRMatrix, uniform_partition
from repro.symbolic import block_fill


def main() -> None:
    rng = np.random.default_rng(7)
    a = make_diagonally_dominant(
        CSRMatrix.from_dense(rng.standard_normal((6, 6))), 2.0)
    part = uniform_partition(6, 2)
    dag = build_block_dag(block_fill(a, part), part, sparse_tiles=True)

    print(f"tasks: {dag.n_tasks} (paper: 14)")
    print(f"by type: {dag.counts_by_type()}\n")

    print("task list (id: TYPE k=<step> tile=(i,j), preds):")
    for t in dag.tasks:
        print(f"  {t.tid:2d}: {t.type.name} k={t.k} tile=({t.i},{t.j}) "
              f"preds={int(dag.pred_count[t.tid])}")

    # the 9S0 / 9S1 pair: two Schur updates on the trailing block
    pair = [t for t in dag.tasks
            if t.type.name == "SSSSM" and (t.i, t.j) == (2, 2)]
    print(f"\n'9S0'/'9S1' analogues: tasks {[t.tid for t in pair]} — both "
          f"update tile (2,2) from steps {[t.k for t in pair]}; order-"
          "independent, batched with atomic accumulation.\n")

    model = GPUCostModel(RTX5090)
    result = make_scheduler("trojan", dag, EstimateBackend(), model).run()
    print(f"Trojan Horse executes the 14 tasks in "
          f"{result.kernel_count} batches (baseline: 14 launches):")
    for idx, batch in enumerate(result.batches):
        names = [f"{dag.tasks[t].type.name}({dag.tasks[t].i},"
                 f"{dag.tasks[t].j})" for t in batch.task_ids]
        print(f"  batch {idx + 1}: {', '.join(names)}")

    # Figure 7: the block→task mapping array of the largest batch
    biggest = max(result.batches, key=lambda b: b.n_tasks)
    tasks = [dag.tasks[t] for t in biggest.task_ids]
    mapping = BlockTaskMapping.build(tasks)
    print(f"\nExecutor mapping for the widest batch "
          f"({biggest.n_tasks} tasks, {mapping.total_blocks} CUDA blocks):")
    print(f"  start indices: {mapping.starts.tolist()}")
    assignment = [mapping.task_of_block(b)
                  for b in range(mapping.total_blocks)]
    print(f"  block→task:    {assignment}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""FEM scale-out study: strong scaling on simulated GPU clusters.

Distributes the factorisation of a 3-D elasticity matrix (audikw_1-style,
3 dofs per node) over the paper's two 16-GPU clusters and compares the
per-process scheduling policies of Figure 12: baseline one-kernel-per-
task, the four-CUDA-stream Executor replacement, and the Trojan Horse.

Run:  python examples/fem_scaleout.py
"""

from repro.analysis import format_table
from repro.cluster import DistributedSimulator, H100_CLUSTER, MI50_CLUSTER
from repro.core.executor import ReplayBackend
from repro.matrices import elasticity3d_like
from repro.solvers import PanguLUSolver


def main() -> None:
    a = elasticity3d_like(6, 6, 7, dofs=3, seed=1)
    print(f"3-D FEM elasticity matrix: n={a.nrows}, nnz={a.nnz}")

    run = PanguLUSolver(a, block_size=48, scheduler="serial").factorize()
    backend = ReplayBackend(run.stats)
    print(f"task DAG: {run.schedule.task_count} tasks, "
          f"fill nnz(L+U)={run.fill_nnz}\n")

    gpu_counts = (1, 2, 4, 8, 16)
    for cluster in (H100_CLUSTER, MI50_CLUSTER):
        rows = []
        for policy in ("serial", "streams", "trojan"):
            times = []
            for g in gpu_counts:
                res = DistributedSimulator(run.dag, backend, cluster, g,
                                           policy).run()
                times.append(res.makespan * 1e3)
            scaling = times[0] / times[-1]
            rows.append([policy] + [round(t, 3) for t in times]
                        + [round(scaling, 2)])
        print(format_table(
            ["policy"] + [f"{g} GPU" for g in gpu_counts] + ["1→16 scaling"],
            rows,
            title=f"makespan (ms) on {cluster.name}"))
        print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: factorise and solve a sparse system, with and without the
Trojan Horse.

Builds a 2-D Poisson system, runs the PanguLU-style substrate under its
baseline scheduler and under the Trojan Horse aggregate-and-batch
strategy, verifies both produce the same (correct) answer, and prints the
simulated-GPU comparison.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import format_table
from repro.gpusim import RTX5090
from repro.matrices import poisson2d
from repro.solvers import PanguLUSolver
from repro.sparse import matvec


def main() -> None:
    # a 1024-unknown model problem (32x32 grid Laplacian)
    a = poisson2d(32)
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(a.nrows)
    b = matvec(a, x_true)

    rows = []
    solutions = {}
    for scheduler in ("serial", "trojan"):
        solver = PanguLUSolver(a, block_size=64, scheduler=scheduler,
                               gpu=RTX5090)
        result = solver.factorize()
        x = result.solve(b)
        solutions[scheduler] = x
        s = result.schedule
        rows.append([
            scheduler,
            s.task_count,
            s.kernel_count,
            round(s.mean_batch_size, 1),
            s.total_time * 1e3,
            s.gflops,
            result.residual(a, b, x),
        ])

    print(format_table(
        ["scheduler", "tasks", "kernel launches", "tasks/launch",
         "sim time (ms)", "GFLOPS", "residual"],
        rows,
        title=f"PanguLU substrate on {RTX5090.name}, n={a.nrows}, "
              f"nnz={a.nnz}",
    ))
    speedup = rows[0][4] / rows[1][4]
    print(f"\nTrojan Horse speedup: {speedup:.2f}x "
          f"(identical factors: "
          f"{np.allclose(solutions['serial'], solutions['trojan'])})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Circuit-simulation workload: one factorisation, many transient solves.

SPICE-style transient analysis factorises the circuit matrix once and
back-substitutes at every time step.  Circuit matrices are exactly the
tiny-supernode regime where SuperLU's per-task kernel launches drown the
GPU (paper §3.5.1) — the Trojan Horse collapses tens of thousands of
launches into a few hundred batches.

Run:  python examples/circuit_simulation.py
"""

import numpy as np

from repro.analysis import format_table
from repro.gpusim import RTX5090
from repro.matrices import circuit_like
from repro.solvers import SuperLUSolver, resimulate
from repro.sparse import matvec


def transient_rhs(n: int, steps: int, rng) -> np.ndarray:
    """A toy source waveform: per-step right-hand sides."""
    t = np.linspace(0.0, 1.0, steps)
    base = rng.standard_normal(n)
    return base[None, :] * np.sin(2 * np.pi * 5 * t)[:, None]


def main() -> None:
    rng = np.random.default_rng(3)
    circuit = circuit_like(600, avg_degree=4.0, seed=71)
    print(f"circuit matrix: n={circuit.nrows}, nnz={circuit.nnz}")

    # numeric factorisation happens once; schedules are then replayed on
    # the recorded per-task stats — the library's fast path for studies
    base = SuperLUSolver(circuit, scheduler="serial", gpu=RTX5090).factorize()
    trojan = resimulate(base, "trojan", RTX5090)

    rows = [
        ["SuperLU (baseline)", base.schedule.kernel_count,
         base.schedule.total_time * 1e3, base.schedule.gflops],
        ["SuperLU + Trojan Horse", trojan.kernel_count,
         trojan.total_time * 1e3, trojan.gflops],
    ]
    print(format_table(
        ["solver", "kernel launches", "numeric time (ms)", "GFLOPS"],
        rows, title=f"factorisation on {RTX5090.name}"))
    print(f"kernel-count rate: "
          f"{trojan.kernel_count / base.schedule.kernel_count:.2%}  "
          f"(paper Table 5 reports ~1% for SuperLU_DIST)")
    print(f"numeric speedup:   "
          f"{base.schedule.total_time / trojan.total_time:.1f}x\n")

    # transient sweep: factor once, solve every step
    steps = 25
    rhs = transient_rhs(circuit.nrows, steps, rng)
    worst = 0.0
    for k in range(steps):
        x = base.solve(rhs[k])
        r = np.linalg.norm(matvec(circuit, x) - rhs[k])
        denom = np.linalg.norm(rhs[k])
        if denom > 0:
            worst = max(worst, r / denom)
    print(f"transient analysis: {steps} time steps solved, "
          f"worst relative residual = {worst:.2e}")

    # Newton iterations re-stamp device values without changing the
    # structure: the refactorisation fast path skips ordering + symbolic
    solver = SuperLUSolver(circuit, scheduler="trojan", gpu=RTX5090)
    solver.factorize()
    worst = 0.0
    for it in range(3):
        updated = circuit.copy()
        rows = np.repeat(np.arange(circuit.nrows), circuit.row_lengths())
        off = rows != circuit.indices
        updated.data[off] *= 1.0 + 0.05 * rng.standard_normal(int(off.sum()))
        offsum = np.bincount(rows[off], weights=np.abs(updated.data[off]),
                             minlength=circuit.nrows)
        updated.data[~off] = 2.0 * offsum[rows[~off]] + 1.0
        result = solver.refactorize(updated)
        b = rng.standard_normal(circuit.nrows)
        worst = max(worst, result.residual(updated, b, result.solve(b)))
    print(f"3 Newton refactorisations (values only, structure reused): "
          f"worst residual = {worst:.2e}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scale-up study: how the same matrix behaves across five GPUs.

Factorises one matrix numerically, then replays the recorded schedule on
every GPU preset (Tables 1 and 3) under every scheduling policy — the
library's fast path for hardware sweeps.  Reproduces the paper's key
scale-up observation: without aggregation, a faster GPU buys almost
nothing; with the Trojan Horse, the gap between GPUs approaches their
peak-performance ratio (Figure 9).

Run:  python examples/gpu_comparison.py [matrix-name]
"""

import sys

from repro.analysis import format_table
from repro.gpusim import GPU_PRESETS
from repro.matrices import PAPER_MATRICES, paper_matrix
from repro.solvers import PanguLUSolver, resimulate


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "cage12"
    if name not in PAPER_MATRICES:
        raise SystemExit(f"unknown matrix {name!r}; "
                         f"choose from {sorted(PAPER_MATRICES)}")
    a = paper_matrix(name)
    print(f"matrix {name}: n={a.nrows}, nnz={a.nnz}")

    base = PanguLUSolver(a, scheduler="serial").factorize()
    print(f"tasks: {base.schedule.task_count}\n")

    rows = []
    for key, gpu in GPU_PRESETS.items():
        serial = resimulate(base, "serial", gpu)
        streams = resimulate(base, "streams", gpu)
        trojan = resimulate(base, "trojan", gpu)
        rows.append([
            gpu.name,
            serial.total_time * 1e3,
            streams.total_time * 1e3,
            trojan.total_time * 1e3,
            serial.total_time / trojan.total_time,
        ])
    print(format_table(
        ["GPU", "baseline (ms)", "4 streams (ms)", "Trojan Horse (ms)",
         "TH speedup"],
        rows, title="PanguLU substrate, same schedule replayed per GPU"))

    fastest = min(rows, key=lambda r: r[3])
    print(f"\nwith Trojan Horse the fastest device is {fastest[0]} — "
          "without it, launch overhead hides most of the hardware gap.")


if __name__ == "__main__":
    main()

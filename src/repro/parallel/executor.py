"""Coordinator of the real multiprocess DAG execution.

:class:`ParallelExecutor` turns the Trojan-Horse batch schedule into
actual parallel wall-clock work: the scheduler's emitted batch sequence
(recorded backend-independently via
:func:`repro.core.executor.record_batch_plan`) is executed by N spawned
worker processes over a :class:`~repro.parallel.shmem.SharedTileArena`,
with the coordinator driving the batch frontier and barriering between
dependent batches.  Within a batch, tasks are sliced by owner-compute
rank (:meth:`~repro.cluster.grid.ProcessGrid.owner_array` of the output
tile) — the same assignment ``DistributedSimulator`` and
``PlanSpec.from_dag`` use — so atomic same-target SSSSMs co-locate on
one worker and stay in batch order, and the static message accounting
of the simulator transfers verbatim to the real run.

Safety is proved, not assumed, before anything is dispatched:

* every plan passes the ``verify.effects`` conflict scan
  (:func:`repro.verify.schedule.verify_schedule`: dependency order,
  intra-batch write/read tile hazards, completeness, cycles);
* with ``certify=True`` (default) the whole plan — DAG, owner ranks and
  the per-rank program orders the workers will actually execute — is
  certified race-free and live by
  :class:`~repro.verify.plan.PlanVerifier` first
  (:meth:`~repro.verify.plan.PlanSpec.from_execution`).

Differential contract (pinned by ``tests/test_parallel.py``): L/U and
solve vectors are bit-identical to the single-process engine for any
worker count, per-task stats match ``NumericBackend``'s exactly, and
``messages``/``comm_bytes`` equal ``DistributedSimulator``'s fault-free
accounting on the same plan.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.grid import ProcessGrid
from repro.core.dag import TaskDAG
from repro.core.executor import BatchPlan, record_batch_plan
from repro.gpusim.costmodel import GPUCostModel
from repro.gpusim.specs import GPUSpec, RTX5090
from repro.kernels.batched import batch_kernels_enabled, pinned_blas_env
from repro.kernels.tilekernels import KernelStats
from repro.parallel.shmem import SharedRhsPool, SharedTileArena
from repro.parallel.worker import TaskColumns, worker_main
from repro.solvers import SOLVER_REGISTRY
from repro.solvers.sptrsv import SpTRSVContext
from repro.sparse import CSRMatrix
from repro.verify.hazards import batch_atomic_flags
from repro.verify.plan import PlanSpec, verify_plan
from repro.verify.schedule import verify_schedule


class WorkerCrashError(RuntimeError):
    """A worker died, errored, or stalled; the coordinator has already
    reaped the pool and unlinked every owned shared segment.

    Attributes
    ----------
    worker:
        Worker id (-1 when no single worker is implicated, e.g. a
        collective timeout).
    phase, batch:
        The phase id and batch index in flight (-1 when unknown).
    exitcode:
        The dead process's exit code (negative = killed by that signal),
        ``None`` for protocol errors and timeouts.
    kind:
        ``"died"``, ``"error"`` (worker raised and reported), or
        ``"timeout"``.
    """

    def __init__(self, worker: int, phase: int, batch: int,
                 exitcode=None, kind: str = "died", detail: str = ""):
        self.worker = worker
        self.phase = phase
        self.batch = batch
        self.exitcode = exitcode
        self.kind = kind
        msg = (f"worker {worker} {kind} (phase {phase}, batch {batch}, "
               f"exitcode={exitcode})")
        if detail:
            msg += "\n" + detail
        super().__init__(msg)


def message_accounting(dag: TaskDAG, owner: np.ndarray,
                       msg_scale: float = 1.0) -> tuple[int, int]:
    """Static cross-owner traffic of a DAG under an ownership map.

    Exactly the fault-free numbers ``DistributedSimulator`` reports: one
    message per cross-rank DAG edge, ``int(8 * nnz * msg_scale)`` bytes
    per message (per-producer truncation).  A pure function of
    ``(dag, owner, msg_scale)`` — the real executor and the simulator
    agree by construction, which the differential suite pins.
    """
    indptr, succ = dag.successor_csr()
    n = dag.n_tasks
    prod = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    cross = owner[prod] != owner[succ]
    out_bytes = np.floor(
        8.0 * dag.task_arrays().nnz * float(msg_scale)).astype(np.int64)
    return int(np.count_nonzero(cross)), int(out_bytes[prod[cross]].sum())


@dataclass
class ParallelFactorization:
    """Everything a multiprocess factorisation produces.

    ``L``/``U``/``stats`` carry the bit-identity contract against the
    single-process engine; ``batch_plan`` and ``plan`` are the dispatch
    artifacts (the certified :class:`~repro.verify.plan.PlanSpec` is
    ``None`` when ``certify=False``); ``messages``/``comm_bytes`` are
    the owner-compute traffic the plan implies.
    """

    solver: str
    scheduler: str
    workers: int
    grid: ProcessGrid
    L: CSRMatrix
    U: CSRMatrix
    perm: np.ndarray
    stats: dict[int, KernelStats]
    dag: TaskDAG
    batch_plan: BatchPlan
    plan: "PlanSpec | None"
    messages: int
    comm_bytes: int
    fill_nnz: int
    phase_seconds: dict[str, float] = field(default_factory=dict)


class ParallelExecutor:
    """Coordinator/worker engine over shared-memory tile pools.

    Use as a context manager (workers and shared segments are reaped on
    exit)::

        with ParallelExecutor(a, solver="pangulu", workers=4) as ex:
            res = ex.factorize()
            x = ex.solve(b)

    Parameters
    ----------
    a:
        System matrix.
    solver:
        Substrate key in :data:`~repro.solvers.SOLVER_REGISTRY`.  For
        ``superlu`` the §3.5.1 Schur-fusion rewrite is disabled unless
        explicitly requested — fused tasks bypass the batched kernel
        groups the workers execute.
    workers:
        Worker-process count; also the rank count of the owner-compute
        :class:`~repro.cluster.grid.ProcessGrid`.
    scheduler, solve_scheduler:
        Batch-composition policies for the factor and solve phases.
    certify:
        Certify every dispatched plan with
        :class:`~repro.verify.plan.PlanVerifier` before execution.
    msg_scale:
        Message-size multiplier for the traffic accounting (matching
        ``DistributedSimulator``).
    log_dir:
        When set, each worker appends a line-buffered log to
        ``<log_dir>/worker<id>.log`` (the CI failure artifact).
    worker_timeout:
        Seconds without progress before the pool is declared hung.
    pin_blas:
        When set, workers are spawned under
        :func:`~repro.kernels.batched.pinned_blas_env` with this thread
        count (benchmarks pin to 1: N workers each fanning a threaded
        GEMM oversubscribes the host).  Default ``None`` inherits the
        coordinator's environment unchanged, so coordinator and workers
        run identically-configured kernels.
    """

    def __init__(self, a: CSRMatrix, solver: str = "pangulu",
                 workers: int = 2, *, ordering: str = "mindeg",
                 gpu: GPUSpec = RTX5090, scheduler: str = "trojan",
                 solve_scheduler: str = "trojan",
                 batch_kernels: bool | None = None, certify: bool = True,
                 msg_scale: float = 1.0, log_dir=None,
                 worker_timeout: float = 300.0, pin_blas: int | None = None,
                 **solver_kwargs):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if solver not in SOLVER_REGISTRY:
            raise ValueError(f"unknown solver {solver!r}")
        if solver == "superlu":
            solver_kwargs.setdefault("merge_schur", False)
        self.solver_name = solver
        self.workers = int(workers)
        self.gpu = gpu
        self.scheduler = scheduler
        self.solve_scheduler = solve_scheduler
        self.batch_kernels = batch_kernels
        self.certify = certify
        self.msg_scale = float(msg_scale)
        self.log_dir = log_dir
        self.worker_timeout = float(worker_timeout)
        self.pin_blas = pin_blas
        self.solver_kwargs = dict(solver_kwargs)
        self._solver = SOLVER_REGISTRY[solver](
            a, ordering=ordering, gpu=gpu, scheduler=scheduler,
            batch_kernels=batch_kernels, **solver_kwargs)
        self.grid = ProcessGrid(self.workers)
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: list = []
        self._task_qs: list = []
        self._result_q = None
        self._shared: list = []
        self._solve_ctx: tuple | None = None
        self._phase_counter = 0
        self.result: ParallelFactorization | None = None
        self.solve_messages = 0
        self.solve_comm_bytes = 0
        self.phase_seconds: dict[str, float] = {}

    # ------------------------------------------------------------------
    # worker-pool lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def start(self) -> None:
        """Spawn the worker pool (idempotent; ``factorize`` calls it)."""
        if self._procs:
            return
        t0 = time.perf_counter()
        self._result_q = self._ctx.Queue()
        env = (pinned_blas_env(self.pin_blas) if self.pin_blas
               else contextlib.nullcontext())
        with env:
            for wid in range(self.workers):
                log_path = None
                if self.log_dir:
                    os.makedirs(self.log_dir, exist_ok=True)
                    log_path = os.path.join(self.log_dir,
                                            f"worker{wid}.log")
                q = self._ctx.Queue()
                proc = self._ctx.Process(
                    target=worker_main,
                    args=(wid, q, self._result_q, log_path),
                    daemon=True, name=f"repro-parallel-{wid}")
                proc.start()
                self._procs.append(proc)
                self._task_qs.append(q)
        self.phase_seconds["spawn"] = time.perf_counter() - t0

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker pool (chaos tests SIGKILL one)."""
        return [p.pid for p in self._procs]

    def close(self) -> None:
        """Graceful shutdown: drain workers, release every shared segment."""
        if self._procs:
            for q in self._task_qs:
                try:
                    q.put(("exit",))
                except (OSError, ValueError):
                    pass
            deadline = time.monotonic() + 10.0
            for proc in self._procs:
                proc.join(timeout=max(0.1, deadline - time.monotonic()))
            self._kill_pool()
        self._release_shared()

    def _kill_pool(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        for q in self._task_qs:
            q.cancel_join_thread()
            q.close()
        if self._result_q is not None:
            self._result_q.cancel_join_thread()
            self._result_q.close()
        self._procs = []
        self._task_qs = []
        self._result_q = None

    def _release_shared(self) -> None:
        while self._shared:
            pool = self._shared.pop()
            try:
                pool.close()
            except Exception:
                pass
            try:
                pool.unlink()
            except Exception:
                pass
        self._solve_ctx = None

    def _reap(self) -> None:
        """Crash path: tear the pool down and unlink every segment."""
        self._kill_pool()
        self._release_shared()

    # ------------------------------------------------------------------
    # coordinator protocol
    # ------------------------------------------------------------------
    def _await(self, want: str, expected: int, phase: int) -> list:
        """Collect ``expected`` messages of kind ``want``, watching
        worker liveness; any crash/error/timeout reaps the pool and
        raises the structured :class:`WorkerCrashError`."""
        got: list = []
        deadline = time.monotonic() + self.worker_timeout
        while len(got) < expected:
            try:
                msg = self._result_q.get(timeout=0.2)
            except queue_mod.Empty:
                for wid, proc in enumerate(self._procs):
                    if not proc.is_alive():
                        code = proc.exitcode
                        self._reap()
                        raise WorkerCrashError(wid, phase, -1,
                                               exitcode=code, kind="died")
                if time.monotonic() > deadline:
                    self._reap()
                    raise WorkerCrashError(-1, phase, -1, kind="timeout")
                continue
            kind = msg[0]
            if kind == "error":
                _, wid, pid, bidx, detail = msg
                self._reap()
                raise WorkerCrashError(wid, pid, bidx, kind="error",
                                       detail=detail)
            if kind == want:
                got.append(msg)
        return got

    def _begin_phase(self, payload: dict) -> int:
        self._phase_counter += 1
        pid = self._phase_counter
        for q in self._task_qs:
            q.put(("phase", pid, payload))
        self._await("ready", self.workers, pid)
        return pid

    def _run_batches(self, pid: int, batches: list, arrays,
                     owner: np.ndarray, flops_out: np.ndarray,
                     nbytes_out: np.ndarray) -> None:
        """Drive the batch frontier: slice each batch by owner rank,
        dispatch the slices, barrier before the next batch.

        Atomic flags are computed over the *whole* batch (the same
        shared hazard kernel the single-process Executor uses), then
        sliced — same-target groups land on one worker by owner-compute,
        so the slice order preserves the batch's serial-apply order.
        """
        for bidx, tids in enumerate(batches):
            atomic = batch_atomic_flags(arrays.target[tids])
            owners = owner[tids]
            slices: dict[int, np.ndarray] = {}
            for r in range(self.workers):
                sel = np.flatnonzero(owners == r)
                if sel.size:
                    slices[r] = tids[sel]
                    self._task_qs[r].put(
                        ("batch", pid, bidx, tids[sel], atomic[sel]))
            for msg in self._await("done", len(slices), pid):
                _, wid, _, _, flops, nbytes = msg
                stids = slices[wid]
                flops_out[stids] = flops
                nbytes_out[stids] = nbytes

    def _checked_plan(self, dag: TaskDAG, subject: str,
                      solve: bool) -> tuple[BatchPlan, np.ndarray,
                                            "PlanSpec | None"]:
        """Record, conflict-scan, and (optionally) certify one plan."""
        model = GPUCostModel(self.gpu)
        if solve:
            plan = record_batch_plan(dag, model,
                                     scheduler=self.solve_scheduler,
                                     solve=True)
        else:
            plan = record_batch_plan(dag, model,
                                     scheduler=self._solver.scheduler,
                                     **self._solver.sched_kwargs)
        report = verify_schedule(dag, plan.batches, gpu=self.gpu,
                                 subject=subject)
        if not report.ok:
            raise RuntimeError(
                f"refusing to dispatch {subject}: "
                + "; ".join(str(v) for v in report.violations))
        arrays = dag.task_arrays()
        owner = self.grid.owner_array(arrays.i, arrays.j)
        spec = None
        if self.certify:
            spec = PlanSpec.from_execution(dag, self.grid, plan.batches,
                                           msg_scale=self.msg_scale)
            cert = verify_plan(spec, subject=subject)
            if not cert.ok:
                raise RuntimeError(
                    f"plan certification failed for {subject}: "
                    + "; ".join(str(v) for v in cert.violations))
        return plan, owner, spec

    # ------------------------------------------------------------------
    # factorisation
    # ------------------------------------------------------------------
    def factorize(self) -> ParallelFactorization:
        """Factor ``a`` across the worker pool; returns the result whose
        ``L``/``U``/``stats`` are bit-identical to the single-process
        engine's under the same solver configuration."""
        t0 = time.perf_counter()
        perm, _, engine = self._solver.prepare_engine(
            arena_factory=SharedTileArena)
        arena = engine.arena
        self._shared.append(arena)
        plan, owner, spec = self._checked_plan(
            engine.dag, f"parallel/{self.solver_name}/factor", solve=False)
        t1 = time.perf_counter()
        self.start()
        n = engine.dag.n_tasks
        arrays = engine.dag.task_arrays()
        payload = {
            "kind": "factor",
            "arena": arena.spec(),
            "columns": TaskColumns.from_arrays(arrays),
            "sparse_tiles": engine.sparse_tiles,
            "batch_kernels": engine.batch_kernels,
        }
        t2 = time.perf_counter()
        pid = self._begin_phase(payload)
        flops = np.zeros(n, dtype=np.int64)
        nbytes = np.zeros(n, dtype=np.int64)
        self._run_batches(pid, plan.batches, arrays, owner, flops, nbytes)
        t3 = time.perf_counter()
        L, U = engine.extract_factors()
        stats = {
            tid: KernelStats(flops=f, bytes=b)
            for tid, f, b in zip(range(n), flops.tolist(), nbytes.tolist())
        }
        messages, comm_bytes = message_accounting(engine.dag, owner,
                                                  self.msg_scale)
        self.phase_seconds.update(self._solver._front_seconds)
        self.phase_seconds["plan"] = t1 - t0 - sum(
            self._solver._front_seconds.values())
        self.phase_seconds["numeric"] = t3 - t2
        self.result = ParallelFactorization(
            solver=self.solver_name, scheduler=self._solver.scheduler,
            workers=self.workers, grid=self.grid,
            L=L, U=U, perm=perm, stats=stats, dag=engine.dag,
            batch_plan=plan, plan=spec,
            messages=messages, comm_bytes=comm_bytes,
            fill_nnz=engine.fill.nnz_lu,
            phase_seconds=dict(self.phase_seconds),
        )
        return self.result

    # ------------------------------------------------------------------
    # solve phase
    # ------------------------------------------------------------------
    def _solve_contexts(self) -> tuple:
        """Shared-arena (L, U) SpTRSV contexts, built once per factor —
        mirrors :meth:`FactorizationResult.solve_contexts` exactly so
        the solve bits match the single-process DAG path."""
        if self._solve_ctx is None:
            res = self.result
            part = res.dag.part
            lctx = SpTRSVContext(res.L, part, lower=True,
                                 unit_diagonal=True,
                                 arena_factory=SharedTileArena)
            uctx = SpTRSVContext(res.U, part, lower=False,
                                 arena_factory=SharedTileArena)
            self._shared.append(lctx.arena)
            self._shared.append(uctx.arena)
            self._solve_ctx = (lctx, uctx)
        return self._solve_ctx

    def _solve_one(self, ctx: SpTRSVContext, b: np.ndarray) -> np.ndarray:
        """One triangular solve phase across the pool.  Cross-owner
        x-block deliveries are the shared RHS pool itself: an UPDATE on
        one worker reads the block another worker's DIAG solved."""
        b2 = b.reshape(b.shape[0], -1) if b.ndim == 2 else b[:, None]
        rhs = SharedRhsPool(ctx.part, b2)
        self._shared.append(rhs)
        try:
            dag = ctx.dag_for(b2.shape[1])
            tri = "L" if ctx.lower else "U"
            plan, owner, _ = self._checked_plan(
                dag, f"parallel/{self.solver_name}/solve-{tri}", solve=True)
            batch_sel = (batch_kernels_enabled()
                         if self.batch_kernels is None
                         else bool(self.batch_kernels))
            payload = {
                "kind": "solve",
                "arena": ctx.arena.spec(),
                "rhs": rhs.spec(),
                "columns": TaskColumns.from_arrays(dag.task_arrays()),
                "sparse_tiles": ctx.sparse_tiles,
                "batch_kernels": batch_sel,
                "lower": ctx.lower,
                "unit_diagonal": ctx.unit_diagonal,
            }
            pid = self._begin_phase(payload)
            n = dag.n_tasks
            flops = np.zeros(n, dtype=np.int64)
            nbytes = np.zeros(n, dtype=np.int64)
            self._run_batches(pid, plan.batches, dag.task_arrays(), owner,
                              flops, nbytes)
            msgs, comm = message_accounting(dag, owner, self.msg_scale)
            self.solve_messages += msgs
            self.solve_comm_bytes += comm
            x2 = rhs.gather()
            return x2[:, 0] if b.ndim == 1 else x2
        finally:
            # on a crash _reap() already released (and unlinked) it
            if rhs in self._shared:
                self._shared.remove(rhs)
                rhs.close()
                rhs.unlink()

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` across the pool (factorises on first use).

        Applies the same permutation handling as
        :meth:`FactorizationResult.solve` with ``batch_solve=True``, so
        the returned vector is bit-identical to the single-process DAG
        solve path for any worker count.
        """
        if self.result is None:
            self.factorize()
        self.start()
        b = np.asarray(b, dtype=np.float64)
        if b.ndim > 2 or b.shape[0] != self.result.L.nrows:
            raise ValueError("right-hand side shape does not match matrix")
        lctx, uctx = self._solve_contexts()
        perm = self.result.perm
        pb = b[perm] if b.ndim == 1 else b[perm, :]
        y = self._solve_one(lctx, pb)
        z = self._solve_one(uctx, y)
        x = np.empty_like(z)
        x[perm] = z
        return x

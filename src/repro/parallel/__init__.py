"""Real multiprocess DAG execution over shared-memory tile pools.

The single-process engines execute the Trojan-Horse batch schedule as
stacked kernels in one address space; this package executes the *same*
schedule on N spawned worker processes over a
:class:`~repro.parallel.shmem.SharedTileArena` — the pooled tile
storage re-homed onto ``multiprocessing.shared_memory`` segments — with
a coordinator (:class:`~repro.parallel.executor.ParallelExecutor`)
driving the batch frontier, slicing each batch by owner-compute rank,
and barriering between dependent batches.  Every dispatched plan is
conflict-scanned (``verify.effects``) and, by default, certified by
``PlanVerifier`` first; results are bit-identical to the single-process
engine for any worker count.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    ParallelFactorization,
    WorkerCrashError,
    message_accounting,
)
from repro.parallel.shmem import (
    SharedArenaSpec,
    SharedRhsPool,
    SharedRhsSpec,
    SharedTileArena,
)
from repro.parallel.worker import TaskColumns, worker_main

__all__ = [
    "ParallelExecutor",
    "ParallelFactorization",
    "SharedArenaSpec",
    "SharedRhsPool",
    "SharedRhsSpec",
    "SharedTileArena",
    "TaskColumns",
    "WorkerCrashError",
    "message_accounting",
    "worker_main",
]

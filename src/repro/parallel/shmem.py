"""Shared-memory re-homing of the pooled tile and RHS storage.

The pooled layouts of :class:`~repro.solvers.tilepool.TileArena` and
:class:`~repro.solvers.sptrsv.RhsPool` are already the right shape for
zero-copy multiprocess execution: each shape class is one contiguous
``(count, …)`` float64 block, so re-homing a pool onto a
``multiprocessing.shared_memory`` segment changes *nothing* about
indexing, views, or kernel-group gather/scatter — workers attach the
same segments by name and rebuild the identical ``(class, slot)`` maps
from the same deterministic construction (row-major ``np.nonzero`` tile
order, ``np.unique`` shape classing), so a ``spec`` is just the
partition, the tile coordinates and the segment names.  Factor data
never crosses a queue: only task-id slices do.

Lifecycle: the creating (coordinator) side owns the segments and must
``unlink()`` them; attaching (worker) sides only ``close()``.  Attachers
opt out of the ``resource_tracker`` so a worker exiting does not unlink
segments the coordinator still serves to its siblings.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.solvers.sptrsv import RhsPool
from repro.solvers.tilepool import TileArena
from repro.sparse.blocking import Partition


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without registering it for unlink.

    Python 3.13 grew ``track=False``; older interpreters register every
    attachment with the resource tracker, which would unlink the segment
    when the *attaching* process exits — out from under the creator and
    every sibling.  Unregister explicitly on those interpreters.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    # register-then-unregister is not equivalent: sibling attachers share
    # the spawning process's tracker, whose name cache is a set, so the
    # paired messages race into KeyError noise inside the tracker.  Keep
    # attachment invisible to it instead.
    real_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = real_register


def _rehome(pools: list[np.ndarray]
            ) -> tuple[list[shared_memory.SharedMemory], list[np.ndarray]]:
    """Copy each pool into a fresh shared segment; return both lists."""
    segments = []
    shared = []
    for pool in pools:
        shm = shared_memory.SharedMemory(create=True,
                                         size=max(1, pool.nbytes))
        arr = np.ndarray(pool.shape, dtype=pool.dtype, buffer=shm.buf)
        arr[...] = pool
        segments.append(shm)
        shared.append(arr)
    return segments, shared


def _map_onto(pools: list[np.ndarray], names: tuple[str, ...]
              ) -> tuple[list[shared_memory.SharedMemory], list[np.ndarray]]:
    """Replace locally-allocated pools with views of named segments."""
    if len(pools) != len(names):
        raise ValueError("segment names do not match the pool layout")
    segments = []
    shared = []
    for pool, name in zip(pools, names):
        shm = _attach_segment(name)
        segments.append(shm)
        shared.append(np.ndarray(pool.shape, dtype=pool.dtype,
                                 buffer=shm.buf))
    return segments, shared


def _release(obj) -> None:
    """Drop pool views and close the segments (creator keeps the names).

    numpy views pin the underlying mmap, so the pool references are
    dropped and collected first; a still-exported buffer (e.g. a caller
    holding a tile view) downgrades close to a no-op rather than an
    error — ``unlink`` is what removes the ``/dev/shm`` name.
    """
    obj.pools = []
    gc.collect()
    for shm in obj._segments:
        try:
            shm.close()
        except BufferError:
            pass


@dataclass(frozen=True)
class SharedArenaSpec:
    """Picklable recipe for attaching one :class:`SharedTileArena`."""

    part: Partition
    tile_bi: np.ndarray
    tile_bj: np.ndarray
    names: tuple[str, ...]


@dataclass(frozen=True)
class SharedRhsSpec:
    """Picklable recipe for attaching one :class:`SharedRhsPool`."""

    part: Partition
    nrhs: int
    names: tuple[str, ...]


class SharedTileArena(TileArena):
    """A :class:`TileArena` whose pools live in shared-memory segments.

    Drop-in for the engine (same ``view``/``locate``/``stamp``/pool
    indexing), so :func:`repro.solvers.engine.run_batch_on_arena` and
    the per-task kernels run on it unchanged.  Construct normally on the
    coordinator (``_owner`` side), ship :meth:`spec` through a queue,
    and :meth:`attach` in each worker.
    """

    def __init__(self, part: Partition, bfill: np.ndarray):
        super().__init__(part, bfill)
        self._segments, self.pools = _rehome(self.pools)
        self._owner = True

    def spec(self) -> SharedArenaSpec:
        """The attachment recipe (partition, tile coords, segment names)."""
        return SharedArenaSpec(part=self.part, tile_bi=self.tile_bi,
                               tile_bj=self.tile_bj,
                               names=tuple(s.name for s in self._segments))

    @classmethod
    def attach(cls, spec: SharedArenaSpec) -> "SharedTileArena":
        """Rebuild the index maps locally and map pools onto the named
        segments.  The reconstruction is deterministic in (part, tile
        coords), so classes, slots and shapes match the creator's."""
        self = cls.__new__(cls)
        nb = spec.part.nblocks
        bfill = np.zeros((nb, nb), dtype=bool)
        bfill[spec.tile_bi, spec.tile_bj] = True
        TileArena.__init__(self, spec.part, bfill)
        self._segments, self.pools = _map_onto(self.pools, spec.names)
        self._owner = False
        return self

    def close(self) -> None:
        """Detach from the segments (both sides)."""
        _release(self)

    def unlink(self) -> None:
        """Remove the segment names from the system (creator only)."""
        if not self._owner:
            raise RuntimeError("only the creating side may unlink")
        for shm in self._segments:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


class SharedRhsPool(RhsPool):
    """An :class:`RhsPool` whose pools live in shared-memory segments.

    The solve phase's cross-owner x-block deliveries happen through
    these pools: an UPDATE task on one worker reads the source RHS block
    another worker's DIAG task solved, with no message or copy.
    """

    def __init__(self, part: Partition, b2: np.ndarray | None = None,
                 *, nrhs: int | None = None):
        super().__init__(part, b2=b2, nrhs=nrhs)
        self._segments, self.pools = _rehome(self.pools)
        self._owner = True

    def spec(self) -> SharedRhsSpec:
        """The attachment recipe (partition, RHS width, segment names)."""
        return SharedRhsSpec(part=self.part, nrhs=self.nrhs,
                             names=tuple(s.name for s in self._segments))

    @classmethod
    def attach(cls, spec: SharedRhsSpec) -> "SharedRhsPool":
        """Rebuild the index locally and map pools onto the segments."""
        self = cls.__new__(cls)
        RhsPool.__init__(self, spec.part, nrhs=spec.nrhs)
        self._segments, self.pools = _map_onto(self.pools, spec.names)
        self._owner = False
        return self

    def close(self) -> None:
        """Detach from the segments (both sides)."""
        _release(self)

    def unlink(self) -> None:
        """Remove the segment names from the system (creator only)."""
        if not self._owner:
            raise RuntimeError("only the creating side may unlink")
        for shm in self._segments:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

"""The worker-process loop of the multiprocess executor.

Workers are deliberately dumb: they attach shared pools described by a
phase message, then execute whatever task-id slices the coordinator
sends, via the *same* module-level batch functions the single-process
engines call (:func:`repro.solvers.engine.run_batch_on_arena`,
:func:`repro.solvers.sptrsv.run_solve_batch`).  All scheduling,
admission, conflict analysis and certification happen on the
coordinator; all factor/RHS data stays in shared memory.  The only
queue traffic is task ids in and per-task ``(flops, bytes)`` stats out.

Protocol (one task queue per worker, one shared result queue):

==========================================  ================================
coordinator → worker                        worker → coordinator
==========================================  ================================
``("phase", pid, payload)``                 ``("ready", wid, pid)``
``("batch", pid, bidx, tids, atomic)``      ``("done", wid, pid, bidx,
                                            flops, bytes)``
``("exit",)``                               ``("bye", wid)``
any failure                                 ``("error", wid, pid, bidx,
                                            traceback-text)``
==========================================  ================================

A phase payload is a dict: ``kind`` (``"factor"``/``"solve"``),
``arena`` (:class:`~repro.parallel.shmem.SharedArenaSpec`), ``columns``
(:class:`TaskColumns`), kernel knobs, and for solve phases ``rhs``
(:class:`~repro.parallel.shmem.SharedRhsSpec`) plus the triangle flags.
Factor-arena attachments are cached by segment names, so the L- and
U-solve phases following a factorisation reattach nothing.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass

import numpy as np

from repro.parallel.shmem import SharedRhsPool, SharedTileArena
from repro.solvers.engine import run_batch_on_arena
from repro.solvers.sptrsv import run_solve_batch


@dataclass(frozen=True)
class TaskColumns:
    """The task-coordinate columns a batch launch reads — a picklable
    slice of :class:`~repro.core.dag.TaskArrays` (no DAG, no estimates,
    no successor structure crosses the queue)."""

    type_code: np.ndarray
    k: np.ndarray
    i: np.ndarray
    j: np.ndarray

    @classmethod
    def from_arrays(cls, arrays) -> "TaskColumns":
        return cls(type_code=arrays.type_code, k=arrays.k,
                   i=arrays.i, j=arrays.j)


def _run_slice(payload: dict, tids: np.ndarray, atomic: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
    """Execute one batch slice against the phase's attached storage."""
    cols = payload["columns"]
    if payload["kind"] == "factor":
        return run_batch_on_arena(
            payload["_arena"], tids, atomic, cols,
            sparse_tiles=payload["sparse_tiles"],
            batch_kernels=payload["batch_kernels"],
        )
    return run_solve_batch(
        payload["_arena"], payload["_rhs"], tids, atomic, cols,
        lower=payload["lower"], unit_diagonal=payload["unit_diagonal"],
        sparse_tiles=payload["sparse_tiles"],
        batch_kernels=payload["batch_kernels"],
    )


def worker_main(wid: int, task_q, result_q, log_path=None) -> None:
    """Entry point of one worker process (module-level: spawn-safe)."""
    log = open(log_path, "a", buffering=1) if log_path else None

    def say(msg: str) -> None:
        if log is not None:
            log.write(f"[worker {wid} pid={os.getpid()}] {msg}\n")

    arenas: dict[tuple[str, ...], SharedTileArena] = {}
    rhs: SharedRhsPool | None = None
    rhs_names: tuple[str, ...] | None = None
    payload: dict | None = None
    phase_id = -1
    cur_batch = -1
    say("online")
    try:
        while True:
            msg = task_q.get()
            cmd = msg[0]
            if cmd == "exit":
                say("exit")
                result_q.put(("bye", wid))
                return
            try:
                if cmd == "phase":
                    _, phase_id, payload = msg
                    spec = payload["arena"]
                    arena = arenas.get(spec.names)
                    if arena is None:
                        arena = SharedTileArena.attach(spec)
                        arenas[spec.names] = arena
                    payload["_arena"] = arena
                    rspec = payload.get("rhs")
                    if rspec is not None:
                        if rhs is not None and rhs_names != rspec.names:
                            rhs.close()
                            rhs = None
                        if rhs is None:
                            rhs = SharedRhsPool.attach(rspec)
                            rhs_names = rspec.names
                        payload["_rhs"] = rhs
                    say(f"phase {phase_id} kind={payload['kind']} "
                        f"segments={len(spec.names)}")
                    result_q.put(("ready", wid, phase_id))
                elif cmd == "batch":
                    _, pid, cur_batch, tids, atomic = msg
                    if payload is None or pid != phase_id:
                        raise RuntimeError(
                            f"batch {cur_batch} for phase {pid} arrived "
                            f"before its phase message (at {phase_id})")
                    flops, nbytes = _run_slice(payload, tids, atomic)
                    result_q.put(("done", wid, pid, cur_batch,
                                  flops, nbytes))
                else:
                    raise RuntimeError(f"unknown command {cmd!r}")
            except Exception:
                detail = traceback.format_exc()
                say(detail)
                result_q.put(("error", wid, phase_id, cur_batch, detail))
    finally:
        for arena in arenas.values():
            arena.close()
        if rhs is not None:
            rhs.close()
        if log is not None:
            log.close()

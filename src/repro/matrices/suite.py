"""The 200-matrix / 31-kind synthetic collection for the Figure-10 sweep.

The paper evaluates 200 SuiteSparse matrices drawn from 31 application
kinds.  This module generates a deterministic collection with the same
cardinality: 31 parameterised generator families ("kinds"), each sampled
with varying sizes/densities/seeds until 200 matrices are produced.  Sizes
are kept small (n ≈ 120–700) so the whole sweep factorises in minutes in
pure Python while still spanning the structural axes that drive Trojan
Horse gains (task size, fill ratio, DAG width).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sparse import CSRMatrix
from repro.matrices import generators as g


@dataclass(frozen=True)
class SuiteEntry:
    """One matrix of the synthetic collection.

    Picklable (``CSRMatrix`` round-trips through pickle), so entries can
    ship to :mod:`repro.sweep` worker processes directly; for large
    collections prefer shipping the :class:`SuiteEntrySpec` and rebuilding
    in the worker — a spec is a few ints instead of the matrix arrays.
    """

    name: str
    kind: str
    matrix: CSRMatrix


@dataclass(frozen=True)
class SuiteEntrySpec:
    """Recipe for one collection entry — tiny and picklable.

    ``materialize()`` rebuilds the exact :class:`SuiteEntry` the
    equivalent :func:`suite_collection` call would produce (generators
    are deterministic in ``(size, seed)``), so worker processes can
    regenerate matrices locally instead of receiving their arrays over
    the pipe.
    """

    name: str
    kind: str
    kind_index: int
    size: int
    seed: int

    def materialize(self) -> SuiteEntry:
        """Build the entry this spec describes."""
        label, builder = _KINDS[self.kind_index]
        return SuiteEntry(name=self.name, kind=label,
                          matrix=builder(self.size, self.seed))


def _k(fn, label):
    return (label, fn)


# 31 kinds: (label, builder(size, seed) -> CSRMatrix).  The labels mirror
# SuiteSparse's application-domain taxonomy.
_KINDS: list[tuple[str, object]] = [
    _k(lambda n, s: g.poisson2d(max(8, int(n ** 0.5))), "2D/3D PDE (5-pt)"),
    _k(lambda n, s: g.poisson3d(max(4, int(n ** (1 / 3)))), "2D/3D PDE (7-pt)"),
    _k(lambda n, s: g.anisotropic2d(max(8, int(n ** 0.5)), eps=0.01), "anisotropic diffusion"),
    _k(lambda n, s: g.anisotropic2d(max(8, int(n ** 0.5)), eps=0.2), "mild anisotropy"),
    _k(lambda n, s: g.elasticity3d_like(
        max(3, int((n / 3) ** (1 / 3))), max(3, int((n / 3) ** (1 / 3))),
        max(3, int((n / 3) ** (1 / 3))), dofs=3, seed=s), "structural FEM 3dof"),
    _k(lambda n, s: g.elasticity3d_like(
        max(3, int((n / 2) ** (1 / 3))), max(3, int((n / 2) ** (1 / 3))),
        max(3, int((n / 2) ** (1 / 3))), dofs=2, seed=s), "structural FEM 2dof"),
    _k(lambda n, s: g.circuit_like(n, avg_degree=3.0, seed=s), "circuit simulation"),
    _k(lambda n, s: g.circuit_like(n, avg_degree=6.0, seed=s), "post-layout circuit"),
    _k(lambda n, s: g.circuit_like(n, avg_degree=4.0, n_hubs=max(2, n // 60), seed=s),
       "power network"),
    _k(lambda n, s: g.cage_like(n, bandwidth=8, seed=s), "electrophoresis (narrow)"),
    _k(lambda n, s: g.cage_like(n, bandwidth=16, seed=s), "electrophoresis (wide)"),
    _k(lambda n, s: g.kkt_like(max(16, 2 * n // 3), seed=s), "optimisation KKT"),
    _k(lambda n, s: g.kkt_like(max(16, 2 * n // 3), n_dual=max(8, n // 5), seed=s),
       "linear programming"),
    _k(lambda n, s: g.banded_random(n, bandwidth=6, density=0.5, seed=s),
       "semiconductor device"),
    _k(lambda n, s: g.banded_random(n, bandwidth=12, density=0.7, seed=s),
       "CFD (banded)"),
    _k(lambda n, s: g.banded_random(n, bandwidth=20, density=0.4, seed=s),
       "CFD (wide band)"),
    _k(lambda n, s: g.random_unsymmetric(n, density=4.0 / n, seed=s),
       "random graph"),
    _k(lambda n, s: g.random_unsymmetric(n, density=10.0 / n, seed=s),
       "random (denser)"),
    _k(lambda n, s: g.chemistry_like(n, cluster=16, seed=s),
       "quantum chemistry (small clusters)"),
    _k(lambda n, s: g.chemistry_like(n, cluster=32, seed=s),
       "quantum chemistry (large clusters)"),
    _k(lambda n, s: g.power_law_graph(n, edges_per_node=2, seed=s), "web graph"),
    _k(lambda n, s: g.power_law_graph(n, edges_per_node=4, seed=s), "social network"),
    _k(lambda n, s: g.tridiagonal(n), "1-D chain"),
    _k(lambda n, s: g.arrow_matrix(n, arms=1, seed=s), "arrowhead (1 arm)"),
    _k(lambda n, s: g.arrow_matrix(n, arms=4, seed=s), "arrowhead (4 arms)"),
    _k(lambda n, s: g.poisson2d(max(8, int((2 * n) ** 0.5)), max(4, int((n / 2) ** 0.5))),
       "stretched grid"),
    _k(lambda n, s: g.banded_random(n, bandwidth=3, density=0.9, seed=s),
       "chemical kinetics"),
    _k(lambda n, s: g.cage_like(n, bandwidth=10, extra_density=4.0, seed=s),
       "economics (dense transitions)"),
    _k(lambda n, s: g.circuit_like(n, avg_degree=2.5, n_hubs=1, seed=s),
       "memory circuit"),
    _k(lambda n, s: g.chemistry_like(n, cluster=24, coupling=0.05, seed=s),
       "materials (weak coupling)"),
    _k(lambda n, s: g.elasticity3d_like(
        max(2, int((n / 6) ** (1 / 3))), max(2, int((n / 6) ** (1 / 3))),
        max(3, int((n / 6) ** (1 / 3))), dofs=6, seed=s), "shell elements 6dof"),
]


def suite_kinds() -> list[str]:
    """The 31 kind labels of the synthetic collection."""
    return [label for label, _ in _KINDS]


def suite_specs(count: int = 200, base_size: int = 300,
                seed: int = 2026) -> list[SuiteEntrySpec]:
    """The recipes behind :func:`suite_collection`, without the matrices.

    Kinds are cycled round-robin; successive visits to a kind vary the
    target size over roughly [0.4×, 2.3×] ``base_size`` and advance the
    generator seed, so no two entries are identical.

    Parameters
    ----------
    count:
        Number of matrices (paper: 200).
    base_size:
        Nominal n around which sizes are varied.
    seed:
        Base seed; the collection is fully reproducible.
    """
    specs: list[SuiteEntrySpec] = []
    for visit in range(count):
        kind_index = visit % len(_KINDS)
        label = _KINDS[kind_index][0]
        round_no = visit // len(_KINDS)
        # deterministic size ladder per round: 0.4x, 0.8x, 1.3x, 1.8x, 2.3x...
        size = max(60, int(base_size * (0.4 + 0.47 * round_no)))
        specs.append(SuiteEntrySpec(
            name=f"{label.replace(' ', '_')}_{round_no}", kind=label,
            kind_index=kind_index, size=size, seed=seed + visit,
        ))
    return specs


def suite_collection(count: int = 200, base_size: int = 300,
                     seed: int = 2026) -> list[SuiteEntry]:
    """Generate the deterministic ``count``-matrix collection.

    See :func:`suite_specs` for the sizing/seeding scheme; this simply
    materializes every spec.
    """
    return [spec.materialize()
            for spec in suite_specs(count, base_size, seed)]

"""Core structural generators.

Each generator assembles COO triplets (vectorised stamping) and finishes
through :func:`make_diagonally_dominant`, which rewrites the diagonal to
``factor ×`` the off-diagonal row sum.  Strict row diagonal dominance makes
Gaussian elimination without pivoting well-posed for every matrix this
module emits — the same static-pivoting assumption SuperLU_DIST's GPU path
relies on.
"""

from __future__ import annotations

import numpy as np

from repro.sparse import COOMatrix, CSRMatrix, sparse_add


def make_diagonally_dominant(a: CSRMatrix, factor: float = 2.0) -> CSRMatrix:
    """Return a copy of ``a`` whose diagonal dominates each row.

    The diagonal entry of row ``i`` is set to
    ``factor * (sum_j |a_ij| , j != i) + 1`` (signed positive), leaving the
    off-diagonal structure and values untouched.  ``factor > 1`` gives
    strict dominance.
    """
    if a.nrows != a.ncols:
        raise ValueError("diagonal dominance requires a square matrix")
    n = a.nrows
    rows = np.repeat(np.arange(n, dtype=np.int64), a.row_lengths())
    off = rows != a.indices
    offsum = np.bincount(rows[off], weights=np.abs(a.data[off]), minlength=n)
    diag = factor * offsum + 1.0
    coo = COOMatrix(
        a.shape,
        np.concatenate([rows[off], np.arange(n, dtype=np.int64)]),
        np.concatenate([a.indices[off], np.arange(n, dtype=np.int64)]),
        np.concatenate([a.data[off], diag]),
    )
    return coo.to_csr()


def _finish(shape, rows, cols, vals, dominance: float) -> CSRMatrix:
    coo = COOMatrix(shape, rows, cols, vals)
    a = coo.to_csr()
    return make_diagonally_dominant(a, dominance)


def tridiagonal(n: int, dominance: float = 2.0) -> CSRMatrix:
    """Simple tridiagonal system — the smallest sensible LU input."""
    i = np.arange(n - 1, dtype=np.int64)
    rows = np.concatenate([i, i + 1])
    cols = np.concatenate([i + 1, i])
    vals = np.full(2 * (n - 1), -1.0)
    return _finish((n, n), rows, cols, vals, dominance)


def poisson2d(nx: int, ny: int | None = None, dominance: float = 1.05) -> CSRMatrix:
    """5-point Laplacian on an ``nx × ny`` grid (n = nx·ny).

    The canonical PDE test matrix; moderate fill under nested dissection.
    """
    ny = nx if ny is None else ny
    idx = np.arange(nx * ny, dtype=np.int64).reshape(nx, ny)
    rows, cols = [], []
    # horizontal neighbours
    rows.append(idx[:, :-1].ravel()); cols.append(idx[:, 1:].ravel())
    rows.append(idx[:, 1:].ravel()); cols.append(idx[:, :-1].ravel())
    # vertical neighbours
    rows.append(idx[:-1, :].ravel()); cols.append(idx[1:, :].ravel())
    rows.append(idx[1:, :].ravel()); cols.append(idx[:-1, :].ravel())
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    vals = np.full(rows.size, -1.0)
    return _finish((nx * ny, nx * ny), rows, cols, vals, dominance)


def poisson3d(nx: int, ny: int | None = None, nz: int | None = None,
              dominance: float = 1.05) -> CSRMatrix:
    """7-point Laplacian on an ``nx × ny × nz`` grid — heavy fill workload."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    rows, cols = [], []
    for axis in range(3):
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(None, -1)
        hi[axis] = slice(1, None)
        a = idx[tuple(lo)].ravel()
        b = idx[tuple(hi)].ravel()
        rows.extend([a, b]); cols.extend([b, a])
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    vals = np.full(rows.size, -1.0)
    n = nx * ny * nz
    return _finish((n, n), rows, cols, vals, dominance)


def anisotropic2d(nx: int, ny: int | None = None, eps: float = 0.01,
                  dominance: float = 1.05) -> CSRMatrix:
    """Anisotropic diffusion: strong coupling along x, weak (``eps``) along y."""
    ny = nx if ny is None else ny
    idx = np.arange(nx * ny, dtype=np.int64).reshape(nx, ny)
    rows, cols, vals = [], [], []
    a, b = idx[:, :-1].ravel(), idx[:, 1:].ravel()
    rows.extend([a, b]); cols.extend([b, a])
    vals.append(np.full(2 * a.size, -1.0))
    a, b = idx[:-1, :].ravel(), idx[1:, :].ravel()
    rows.extend([a, b]); cols.extend([b, a])
    vals.append(np.full(2 * a.size, -eps))
    return _finish(
        (nx * ny, nx * ny),
        np.concatenate(rows), np.concatenate(cols), np.concatenate(vals),
        dominance,
    )


def elasticity3d_like(nx: int, ny: int, nz: int, dofs: int = 3,
                      seed: int = 0, dominance: float = 1.1) -> CSRMatrix:
    """3-D FEM-elasticity-style matrix: ``dofs`` unknowns per grid node,
    dense ``dofs × dofs`` coupling between neighbouring nodes.

    Structural analogue of ``audikw_1`` / ``Serena`` (large 3-D solids with
    vector unknowns and wide supernodes).
    """
    rng = np.random.default_rng(seed)
    nodes = nx * ny * nz
    idx = np.arange(nodes, dtype=np.int64).reshape(nx, ny, nz)
    pr, pc = [], []
    for axis in range(3):
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(None, -1)
        hi[axis] = slice(1, None)
        a = idx[tuple(lo)].ravel()
        b = idx[tuple(hi)].ravel()
        pr.extend([a, b]); pc.extend([b, a])
    # self-coupling between dofs of one node
    a = idx.ravel()
    pr.append(a); pc.append(a)
    pr = np.concatenate(pr)
    pc = np.concatenate(pc)
    # expand each node pair into a dofs×dofs block
    di, dj = np.meshgrid(np.arange(dofs), np.arange(dofs), indexing="ij")
    di = di.ravel(); dj = dj.ravel()
    rows = (pr[:, None] * dofs + di[None, :]).ravel()
    cols = (pc[:, None] * dofs + dj[None, :]).ravel()
    vals = rng.standard_normal(rows.size) * 0.5 - 0.1
    n = nodes * dofs
    return _finish((n, n), rows, cols, vals, dominance)


def circuit_like(n: int, avg_degree: float = 4.0, n_hubs: int | None = None,
                 seed: int = 0, dominance: float = 1.5) -> CSRMatrix:
    """Post-layout-circuit-style matrix: very sparse, unsymmetric structure,
    a few dense rows/columns (supply nets / hubs).

    Analogue of the circuit and optimisation matrices (``c-71``-like) whose
    tiny supernodes stress SuperLU's scheduling overhead.
    """
    rng = np.random.default_rng(seed)
    n_hubs = max(1, n // 200) if n_hubs is None else n_hubs
    m = int(n * avg_degree)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    vals = rng.standard_normal(m)
    # local banded coupling (circuits are mostly near-diagonal after
    # ordering)
    band = rng.integers(1, 6, size=n - 6)
    i = np.arange(n - 6, dtype=np.int64)
    rows = np.concatenate([rows, i, i + band])
    cols = np.concatenate([cols, i + band, i])
    vals = np.concatenate([vals, rng.standard_normal(2 * (n - 6)) * 0.3])
    # hubs: dense rows and columns
    hubs = rng.choice(n, size=n_hubs, replace=False)
    for h in hubs:
        touch = rng.choice(n, size=max(8, n // 8), replace=False)
        rows = np.concatenate([rows, np.full(touch.size, h), touch])
        cols = np.concatenate([cols, touch, np.full(touch.size, h)])
        vals = np.concatenate([vals, rng.standard_normal(2 * touch.size) * 0.1])
    return _finish((n, n), rows, cols, vals, dominance)


def cage_like(n: int, bandwidth: int = 12, extra_density: float = 2.0,
              seed: int = 0, dominance: float = 1.2) -> CSRMatrix:
    """DNA-electrophoresis ("cage") style matrix: a stochastic-matrix-like
    band plus scattered off-band transitions.

    Analogue of ``cage12`` / ``cage13`` — many off-diagonal nonzeros that
    enable wide task aggregation (paper §4.2 singles cage12 out for this).
    """
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    i = np.arange(n, dtype=np.int64)
    for off in range(1, bandwidth + 1):
        keep = rng.random(n - off) < (1.0 / np.sqrt(off))
        a = i[: n - off][keep]
        rows.extend([a, a + off]); cols.extend([a + off, a])
        v = rng.random(2 * a.size) * 0.5 + 0.1
        vals.append(v)
    m = int(n * extra_density)
    r = rng.integers(0, n, size=m)
    shift = rng.integers(-n // 4, n // 4, size=m)
    c = np.clip(r + shift, 0, n - 1)
    rows.append(r); cols.append(c)
    vals.append(rng.random(m) * 0.3 + 0.05)
    return _finish(
        (n, n),
        np.concatenate(rows), np.concatenate(cols), np.concatenate(vals),
        dominance,
    )


def kkt_like(n_primal: int, n_dual: int | None = None, seed: int = 0,
             dominance: float = 1.2) -> CSRMatrix:
    """KKT saddle-point structure ``[[H, Bᵀ], [B, C]]``.

    Analogue of ``nlpkkt80`` (interior-point optimisation).  The (2,2)
    block is regularised and the whole matrix made row-dominant so the
    pivot-free numeric path applies.
    """
    rng = np.random.default_rng(seed)
    n_dual = n_primal // 2 if n_dual is None else n_dual
    n = n_primal + n_dual
    # H: 1-D Laplacian coupling among primals
    i = np.arange(n_primal - 1, dtype=np.int64)
    rows = [i, i + 1]
    cols = [i + 1, i]
    vals = [np.full(n_primal - 1, -1.0), np.full(n_primal - 1, -1.0)]
    # B: each dual constrains ~3 primals
    per = 3
    d = np.repeat(np.arange(n_dual, dtype=np.int64), per)
    p = rng.integers(0, n_primal, size=n_dual * per)
    rows.extend([n_primal + d, p])
    cols.extend([p, n_primal + d])
    bv = rng.standard_normal(n_dual * per)
    vals.extend([bv, bv])
    return _finish(
        (n, n),
        np.concatenate(rows), np.concatenate(cols), np.concatenate(vals),
        dominance,
    )


def banded_random(n: int, bandwidth: int, density: float = 0.5, seed: int = 0,
                  dominance: float = 1.2) -> CSRMatrix:
    """Random matrix confined to a band — ``para-8`` / ``Lin`` style
    semiconductor-device structure."""
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    i = np.arange(n, dtype=np.int64)
    for off in range(1, bandwidth + 1):
        keep = rng.random(n - off) < density
        a = i[: n - off][keep]
        rows.extend([a, a + off])
        cols.extend([a + off, a])
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    vals = rng.standard_normal(rows.size)
    return _finish((n, n), rows, cols, vals, dominance)


def random_unsymmetric(n: int, density: float = 0.01, seed: int = 0,
                       dominance: float = 1.5) -> CSRMatrix:
    """Uniformly random unsymmetric structure (stress test, no geometry)."""
    rng = np.random.default_rng(seed)
    m = max(n, int(n * n * density))
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    vals = rng.standard_normal(m)
    return _finish((n, n), rows, cols, vals, dominance)


def chemistry_like(n: int, cluster: int = 24, coupling: float = 0.15,
                   seed: int = 0, dominance: float = 1.1) -> CSRMatrix:
    """Quantum-chemistry style matrix: dense diagonal clusters (orbitals of
    one atom group) plus sparse inter-cluster coupling.

    Analogue of ``Ga41As41H72`` / ``Si41Ge41H72`` — dense-ish rows, very
    large fill, wide parallel DAG levels.
    """
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    starts = np.arange(0, n, cluster, dtype=np.int64)
    for s in starts:
        e = min(s + cluster, n)
        size = e - s
        di, dj = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        keep = di.ravel() != dj.ravel()
        rows.append(s + di.ravel()[keep])
        cols.append(s + dj.ravel()[keep])
        vals.append(rng.standard_normal(keep.sum()) * 0.2)
    # inter-cluster sparse coupling
    m = int(n * n * coupling / cluster)
    r = rng.integers(0, n, size=m)
    c = rng.integers(0, n, size=m)
    rows.append(r); cols.append(c)
    vals.append(rng.standard_normal(m) * 0.05)
    return _finish(
        (n, n),
        np.concatenate(rows), np.concatenate(cols), np.concatenate(vals),
        dominance,
    )


def power_law_graph(n: int, edges_per_node: int = 3, seed: int = 0,
                    dominance: float = 1.5) -> CSRMatrix:
    """Preferential-attachment graph Laplacian-like matrix (web/social
    structure — highly irregular degree distribution)."""
    rng = np.random.default_rng(seed)
    targets = [0, 1]
    rows, cols = [0], [1]
    for v in range(2, n):
        # preferential attachment: sample from the accumulated endpoint list
        pick = rng.integers(0, len(targets), size=min(edges_per_node, v))
        for t in {targets[p] for p in pick}:
            rows.append(v); cols.append(t)
            targets.extend([v, t])
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    rows2 = np.concatenate([rows, cols])
    cols2 = np.concatenate([cols, rows])
    vals = rng.standard_normal(rows2.size)
    return _finish((n, n), rows2, cols2, vals, dominance)


def spd_random(n: int, density: float = 0.05, seed: int = 0,
               dominance: float = 1.2) -> CSRMatrix:
    """Random symmetric positive-definite matrix (for the Cholesky
    substrate): symmetrised random structure made strictly diagonally
    dominant with a positive diagonal — a standard SPD construction."""
    rng = np.random.default_rng(seed)
    m = max(n, int(n * n * density / 2))
    r = rng.integers(0, n, size=m)
    c = rng.integers(0, n, size=m)
    v = rng.standard_normal(m)
    rows = np.concatenate([r, c])
    cols = np.concatenate([c, r])
    vals = np.concatenate([v, v])
    return _finish((n, n), rows, cols, vals, dominance)


def arrow_matrix(n: int, arms: int = 1, seed: int = 0,
                 dominance: float = 2.0) -> CSRMatrix:
    """Arrowhead matrix: dense last ``arms`` row(s)/column(s) over a
    diagonal body.  Pathological fill case for bad orderings, trivial for
    good ones — exercises the ordering phase."""
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    body = np.arange(n - arms, dtype=np.int64)
    for a in range(arms):
        tip = n - 1 - a
        rows.extend([np.full(body.size, tip), body])
        cols.extend([body, np.full(body.size, tip)])
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    vals = rng.standard_normal(rows.size) * 0.2
    return _finish((n, n), rows, cols, vals, dominance)

"""Named analogues of the paper's evaluation matrices (Tables 2 and 4).

Each entry records the paper's reported properties (n, nnz, nnz(L+U) for
both solvers) and maps to a synthetic generator reproducing the matrix's
structural character at a Python-tractable size.  ``scale`` multiplies the
default analogue dimension (1.0 ≈ n of 600–1300).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sparse import CSRMatrix
from repro.matrices import generators as g


@dataclass(frozen=True)
class PaperMatrixInfo:
    """Metadata for one paper matrix and its synthetic analogue.

    Attributes
    ----------
    name:
        SuiteSparse name as used in the paper.
    group:
        Which evaluation it appears in (``"scale-up"`` or ``"scale-out"``).
    paper_n, paper_nnz:
        Dimensions reported in Table 2 / Table 4.
    paper_lu_superlu, paper_lu_pangulu:
        nnz(L+U) reported for the two solvers (entries, as printed).
    kind:
        Short structural description of the analogue generator.
    builder:
        ``builder(scale) -> CSRMatrix``.
    """

    name: str
    group: str
    paper_n: float
    paper_nnz: float
    paper_lu_superlu: float
    paper_lu_pangulu: float
    kind: str
    builder: Callable[[float], CSRMatrix]


def _sz(base: int, scale: float) -> int:
    return max(24, int(round(base * scale)))


def _dim(base: int, scale: float) -> int:
    """Per-axis size for grid analogues (small floor, scales with ∛scale)."""
    return max(3, int(round(base * scale)))


PAPER_MATRICES: dict[str, PaperMatrixInfo] = {
    # ---------------- scale-up set (Table 2) ----------------
    "c-71": PaperMatrixInfo(
        "c-71", "scale-up", 76.6e3, 860e3, 49.4e6, 24.9e6,
        "optimisation/circuit: sparse + hub rows",
        lambda s: g.circuit_like(_sz(600, s), avg_degree=4.0, seed=71),
    ),
    "cage12": PaperMatrixInfo(
        "cage12", "scale-up", 130e3, 2.03e6, 550e6, 537e6,
        "DNA random-walk band with off-band transitions",
        lambda s: g.cage_like(_sz(760, s), bandwidth=14, seed=12),
    ),
    "para-8": PaperMatrixInfo(
        "para-8", "scale-up", 156e3, 2.09e6, 187e6, 178e6,
        "semiconductor device: banded random",
        lambda s: g.banded_random(_sz(700, s), bandwidth=10, density=0.6, seed=8),
    ),
    "Lin": PaperMatrixInfo(
        "Lin", "scale-up", 256e3, 1.77e6, 216e6, 194e6,
        "structured 3-D grid (electronic structure)",
        lambda s: g.poisson3d(_dim(9, s ** (1 / 3)), _dim(9, s ** (1 / 3)),
                              _dim(10, s ** (1 / 3))),
    ),
    # ---------------- scale-out set (Table 4) ----------------
    "Ga41As41H72": PaperMatrixInfo(
        "Ga41As41H72", "scale-out", 268e3, 18.5e6, 4.61e9, 4.59e9,
        "quantum chemistry: dense clusters + coupling",
        lambda s: g.chemistry_like(_sz(900, s), cluster=30, seed=41),
    ),
    "RM07R": PaperMatrixInfo(
        "RM07R", "scale-out", 381e3, 37.4e6, 2.68e9, 2.14e9,
        "CFD: banded with dense-ish coupling",
        lambda s: g.banded_random(_sz(840, s), bandwidth=18, density=0.7, seed=7),
    ),
    "cage13": PaperMatrixInfo(
        "cage13", "scale-out", 445e3, 7.48e6, 4.68e9, 4.66e9,
        "DNA random-walk band (larger)",
        lambda s: g.cage_like(_sz(1000, s), bandwidth=16, seed=13),
    ),
    "audikw_1": PaperMatrixInfo(
        "audikw_1", "scale-out", 943e3, 77.6e6, 2.46e9, 2.43e9,
        "3-D FEM elasticity, 3 dofs/node",
        lambda s: g.elasticity3d_like(_dim(7, s ** (1 / 3)), _dim(7, s ** (1 / 3)),
                                      _dim(8, s ** (1 / 3)), dofs=3, seed=1),
    ),
    "nlpkkt80": PaperMatrixInfo(
        "nlpkkt80", "scale-out", 1.06e6, 28.1e6, 3.80e9, 3.28e9,
        "interior-point KKT saddle point",
        lambda s: g.kkt_like(_sz(720, s), seed=80),
    ),
    "Serena": PaperMatrixInfo(
        "Serena", "scale-out", 1.39e6, 64.1e6, 5.42e9, 5.38e9,
        "3-D FEM (gas reservoir), vector unknowns",
        lambda s: g.elasticity3d_like(_dim(8, s ** (1 / 3)), _dim(8, s ** (1 / 3)),
                                      _dim(7, s ** (1 / 3)), dofs=3, seed=2),
    ),
}

SCALE_UP_NAMES = ["c-71", "cage12", "para-8", "Lin"]
SCALE_OUT_NAMES = ["Ga41As41H72", "RM07R", "cage13", "audikw_1", "nlpkkt80", "Serena"]


def paper_matrix(name: str, scale: float = 1.0) -> CSRMatrix:
    """Build the synthetic analogue of a paper matrix.

    Parameters
    ----------
    name:
        One of the Table 2 / Table 4 names (see :data:`PAPER_MATRICES`).
    scale:
        Size multiplier; 1.0 gives the default analogue dimension.
    """
    try:
        info = PAPER_MATRICES[name]
    except KeyError:
        raise KeyError(
            f"unknown paper matrix {name!r}; choose from {sorted(PAPER_MATRICES)}"
        ) from None
    return info.builder(scale)


def paper_matrix_info(name: str) -> PaperMatrixInfo:
    """Metadata record for a paper matrix (paper-reported sizes etc.)."""
    return PAPER_MATRICES[name]

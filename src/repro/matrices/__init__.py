"""Synthetic matrix generators.

The paper evaluates on SuiteSparse matrices (Tables 2 and 4 plus a
200-matrix sweep).  Offline reproduction replaces them with deterministic
synthetic generators that span the same structural axes — grid stencils,
3-D FEM couplings, circuit/power-law graphs, banded random walks ("cage"),
KKT saddle points, quantum-chemistry cluster matrices — at sizes a pure
Python numeric phase can factorise.  Every generator returns a CSR matrix
that is strictly row-diagonally dominant, so LU factorisation without
pivoting is well defined (Schur complements of SDD matrices stay SDD).
"""

from repro.matrices.generators import (
    poisson2d,
    poisson3d,
    anisotropic2d,
    elasticity3d_like,
    circuit_like,
    cage_like,
    kkt_like,
    banded_random,
    random_unsymmetric,
    spd_random,
    chemistry_like,
    power_law_graph,
    tridiagonal,
    arrow_matrix,
    make_diagonally_dominant,
)
from repro.matrices.paper import (
    PAPER_MATRICES,
    PaperMatrixInfo,
    paper_matrix,
    paper_matrix_info,
    SCALE_UP_NAMES,
    SCALE_OUT_NAMES,
)
from repro.matrices.suite import (
    SuiteEntry,
    SuiteEntrySpec,
    suite_collection,
    suite_kinds,
    suite_specs,
)

__all__ = [
    "poisson2d",
    "poisson3d",
    "anisotropic2d",
    "elasticity3d_like",
    "circuit_like",
    "cage_like",
    "kkt_like",
    "banded_random",
    "random_unsymmetric",
    "spd_random",
    "chemistry_like",
    "power_law_graph",
    "tridiagonal",
    "arrow_matrix",
    "make_diagonally_dominant",
    "PAPER_MATRICES",
    "PaperMatrixInfo",
    "paper_matrix",
    "paper_matrix_info",
    "SCALE_UP_NAMES",
    "SCALE_OUT_NAMES",
    "SuiteEntry",
    "SuiteEntrySpec",
    "suite_collection",
    "suite_kinds",
    "suite_specs",
]

"""Speedup statistics (Figure 10 reports geometric means)."""

from __future__ import annotations

import numpy as np


def geomean(values) -> float:
    """Geometric mean of positive values (the paper's average metric)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def speedup_summary(baseline_times, enhanced_times) -> dict:
    """Per-matrix speedups plus the summary the paper headlines.

    Parameters
    ----------
    baseline_times, enhanced_times:
        Equal-length sequences of times for the same workloads.

    Returns
    -------
    dict with ``speedups`` (array), ``geomean``, ``max``, ``min`` and the
    count of regressions (speedup < 1).

    Raises
    ------
    ValueError
        If the sequences differ in shape or either contains a
        non-positive (or NaN) time — a zero enhanced time would otherwise
        silently publish an infinite speedup.
    """
    base = np.asarray(list(baseline_times), dtype=np.float64)
    enh = np.asarray(list(enhanced_times), dtype=np.float64)
    if base.shape != enh.shape:
        raise ValueError("mismatched result sequences")
    for label, arr in (("baseline", base), ("enhanced", enh)):
        bad = np.flatnonzero(~(arr > 0))
        if bad.size:
            i = int(bad[0])
            raise ValueError(
                f"{label} time at index {i} is {arr[i]!r}; "
                "times must be strictly positive"
            )
    speedups = base / enh
    return {
        "speedups": speedups,
        "geomean": geomean(speedups),
        "max": float(speedups.max()),
        "min": float(speedups.min()),
        "regressions": int(np.count_nonzero(speedups < 1.0)),
    }

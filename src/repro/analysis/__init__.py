"""Experiment analysis and reporting helpers.

Everything the benchmark harness needs to turn schedule records into the
paper's tables and figures: geometric-mean speedups (Figure 10), binned
GFLOPS timelines (Figure 8), kernel/scheduling time breakdowns
(Figure 11), phase breakdowns (Figure 2) and plain-text table rendering.
"""

from repro.analysis.speedup import geomean, speedup_summary
from repro.analysis.timeline import binned_gflops_timeline
from repro.analysis.breakdown import kernel_share, phase_shares
from repro.analysis.report import format_table
from repro.analysis.trace import (
    write_trace,
    schedule_trace_events,
    distributed_trace_events,
)
from repro.analysis.numerics import (
    pivot_growth,
    dominance_margin,
    condition_estimate,
    backward_error,
)

__all__ = [
    "write_trace",
    "schedule_trace_events",
    "distributed_trace_events",
    "pivot_growth",
    "dominance_margin",
    "condition_estimate",
    "backward_error",
    "geomean",
    "speedup_summary",
    "binned_gflops_timeline",
    "kernel_share",
    "phase_shares",
    "format_table",
]

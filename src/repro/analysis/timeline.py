"""GFLOPS-over-time series (Figure 8)."""

from __future__ import annotations

import numpy as np

from repro.core.scheduler import ScheduleResult


def binned_gflops_timeline(result: ScheduleResult,
                           n_bins: int = 40) -> tuple[np.ndarray, np.ndarray]:
    """Bin the kernel timeline into equal time slices.

    Each launch's flops are attributed to the bins its [start, end)
    interval overlaps, pro rata — giving the throughput curve the paper
    plots (y: GFLOPS, x: time).

    Returns
    -------
    (bin_centers_seconds, gflops_per_bin)
    """
    if not result.batches:
        raise ValueError("empty schedule has no timeline")
    t_end = max(b.t_end for b in result.batches)
    if t_end <= 0:
        raise ValueError("degenerate timeline")
    edges = np.linspace(0.0, t_end, n_bins + 1)
    width = edges[1] - edges[0]
    flops_per_bin = np.zeros(n_bins)
    for b in result.batches:
        lo = np.searchsorted(edges, b.t_start, side="right") - 1
        hi = np.searchsorted(edges, b.t_end, side="left")
        lo = max(0, min(lo, n_bins - 1))
        hi = max(1, min(hi, n_bins))
        dur = b.t_end - b.t_start
        if dur <= 0:
            flops_per_bin[lo] += b.flops
            continue
        for k in range(lo, hi):
            overlap = min(b.t_end, edges[k + 1]) - max(b.t_start, edges[k])
            if overlap > 0:
                flops_per_bin[k] += b.flops * (overlap / dur)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, flops_per_bin / width / 1e9

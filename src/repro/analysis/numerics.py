"""Numerical-quality diagnostics for statically-pivoted factorisations.

Pivot-free LU is only safe when the matrix cooperates; these diagnostics
quantify how much it did: the elimination growth factor (the classic
backward-stability indicator), the strict-diagonal-dominance margin the
generators guarantee, and a Hager-style 1-norm condition estimate built
on factor solves (the LAPACK ``xGECON`` idea).
"""

from __future__ import annotations

import numpy as np

from repro.sparse import CSRMatrix, matvec, triangular_solve


def pivot_growth(a: CSRMatrix, u: CSRMatrix) -> float:
    """Elimination growth factor ``max|U| / max|A|``.

    Values near 1 mean the pivot-free elimination did not amplify
    entries; large values flag instability that pivoting would have
    prevented.
    """
    if a.nnz == 0:
        raise ValueError("empty matrix has no growth factor")
    max_a = float(np.abs(a.data).max())
    max_u = float(np.abs(u.data).max()) if u.nnz else 0.0
    return max_u / max_a


def dominance_margin(a: CSRMatrix) -> float:
    """Worst-row strict-dominance margin ``min_i (|a_ii| − Σ|a_ij|)/|a_ii|``.

    Positive ⇔ strictly row diagonally dominant (the generators'
    invariant); the magnitude says how much slack the pivot-free path has.
    """
    if a.nrows != a.ncols:
        raise ValueError("dominance margin requires a square matrix")
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    off = rows != a.indices
    offsum = np.bincount(rows[off], weights=np.abs(a.data[off]),
                         minlength=a.nrows)
    diag = np.abs(a.diagonal())
    if np.any(diag == 0):
        return -np.inf
    return float(np.min((diag - offsum) / diag))


def _solve_with_factors(L: CSRMatrix, U: CSRMatrix, b: np.ndarray,
                        transpose: bool = False) -> np.ndarray:
    if not transpose:
        return triangular_solve(U, triangular_solve(L, b, lower=True),
                                lower=False)
    # Aᵀ = Uᵀ Lᵀ: Uᵀ is lower, Lᵀ upper
    y = triangular_solve(U.transpose(), b, lower=True)
    return triangular_solve(L.transpose(), y, lower=False)


def condition_estimate(a: CSRMatrix, L: CSRMatrix, U: CSRMatrix,
                       max_iter: int = 5) -> float:
    """Hager-style 1-norm condition estimate ``‖A‖₁ · est(‖A⁻¹‖₁)``.

    Estimates ``‖A⁻¹‖₁`` by maximising ``‖A⁻¹x‖₁`` over the unit 1-ball
    with the classic sign-vector ascent, using the factors for the solves
    (two triangular solves per iteration).  A lower bound on the true
    condition number, usually within a small factor.
    """
    n = a.nrows
    if n == 0:
        raise ValueError("empty matrix")
    # ‖A‖₁ = max column sum
    t = a.transpose()
    norm_a = float(max(
        np.abs(t.data[t.indptr[j]:t.indptr[j + 1]]).sum()
        for j in range(n)
    )) if a.nnz else 0.0
    x = np.full(n, 1.0 / n)
    est = 0.0
    for _ in range(max_iter):
        y = _solve_with_factors(L, U, x)
        est_new = float(np.abs(y).sum())
        xi = np.sign(y)
        xi[xi == 0] = 1.0
        z = _solve_with_factors(L, U, xi, transpose=True)
        j = int(np.argmax(np.abs(z)))
        if np.abs(z[j]) <= z @ x and est_new <= est + 1e-15:
            est = max(est, est_new)
            break
        est = max(est, est_new)
        x = np.zeros(n)
        x[j] = 1.0
    return norm_a * est


def backward_error(a: CSRMatrix, x: np.ndarray, b: np.ndarray) -> float:
    """Componentwise-normwise backward error ``‖Ax−b‖∞ / (‖A‖∞‖x‖∞+‖b‖∞)``."""
    r = matvec(a, x) - b
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    norm_a = float(np.bincount(rows, weights=np.abs(a.data),
                               minlength=a.nrows).max()) if a.nnz else 0.0
    denom = norm_a * float(np.abs(x).max()) + float(np.abs(b).max())
    if denom == 0:
        return float(np.abs(r).max())
    return float(np.abs(r).max() / denom)

"""Time breakdowns: phases (Figure 2) and kernel vs scheduling (Figure 11)."""

from __future__ import annotations

from repro.core.scheduler import ScheduleResult


def kernel_share(result: ScheduleResult) -> dict:
    """Split total numeric time into kernel vs scheduling shares.

    Figure 11's observation is that Trojan Horse leaves the *kernel share*
    roughly unchanged while shrinking absolute kernel time — this helper
    produces both numbers.
    """
    total = result.total_time
    return {
        "kernel_s": result.kernel_time,
        "sched_s": result.sched_overhead,
        "total_s": total,
        "kernel_share": result.kernel_time / total if total else 0.0,
    }


def phase_shares(phase_seconds: dict[str, float]) -> dict[str, float]:
    """Normalise {reorder, symbolic, numeric} wall times to shares of 1.

    The Figure-2 motivation: numeric dominates (97% on average in the
    paper's CPU measurement).
    """
    expected = {"reorder", "symbolic", "numeric"}
    if set(phase_seconds) != expected:
        raise ValueError(f"phase dict must have keys {sorted(expected)}")
    total = sum(phase_seconds.values())
    if total <= 0:
        raise ValueError("phases have no measured time")
    return {k: v / total for k, v in phase_seconds.items()}

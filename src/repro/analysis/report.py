"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's tables report;
this keeps the rendering in one place so every bench looks uniform.
"""

from __future__ import annotations


def _fmt(value, ndigits: int = 3) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.{ndigits}g}"
    return str(value)


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row cell values (str/int/float; floats are compacted).
    title:
        Optional heading line.
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for k, c in enumerate(row):
            widths[k] = max(widths[k], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

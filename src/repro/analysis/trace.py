"""Schedule trace export in Chrome-tracing (``chrome://tracing``) format.

Converts a :class:`~repro.core.scheduler.ScheduleResult` or a
:class:`~repro.cluster.distsim.DistributedResult` (with
``record_timeline=True``) into the Trace Event JSON format, so schedules
can be inspected in Chrome/Perfetto exactly like real GPU profiles — the
tooling a systems engineer would reach for when debugging batch
composition.
"""

from __future__ import annotations

import json

from repro.cluster.distsim import DistributedResult
from repro.core.scheduler import ScheduleResult


def schedule_trace_events(result: ScheduleResult) -> list[dict]:
    """Trace events for a single-device schedule (one GPU row)."""
    events = []
    for idx, b in enumerate(result.batches):
        events.append({
            "name": f"batch {idx} ({b.n_tasks} tasks)",
            "cat": "kernel",
            "ph": "X",
            "ts": b.t_start * 1e6,
            "dur": b.duration * 1e6,
            "pid": 0,
            "tid": 0,
            "args": {
                "tasks": b.n_tasks,
                "cuda_blocks": b.cuda_blocks,
                "flops": b.flops,
                "types": {k: v for k, v in b.types.items() if v},
            },
        })
    return events


def distributed_trace_events(result: DistributedResult) -> list[dict]:
    """Trace events for a distributed run (one row per process)."""
    if result.timeline is None:
        raise ValueError(
            "distributed trace needs record_timeline=True on the simulator"
        )
    events = []
    for rank, start, end, tids in result.timeline:
        events.append({
            "name": f"{len(tids)} task(s)",
            "cat": "kernel",
            "ph": "X",
            "ts": start * 1e6,
            "dur": (end - start) * 1e6,
            "pid": 0,
            "tid": rank,
            "args": {"tasks": len(tids)},
        })
    return events


def write_trace(path, result) -> None:
    """Write a schedule or distributed result as a Chrome trace file."""
    if isinstance(result, ScheduleResult):
        events = schedule_trace_events(result)
    elif isinstance(result, DistributedResult):
        events = distributed_trace_events(result)
    else:
        raise TypeError(f"cannot trace a {type(result).__name__}")
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    if hasattr(path, "write"):
        json.dump(payload, path)
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)

"""Supernode detection for the SuperLU-style substrate.

A fundamental supernode is a maximal run of consecutive columns with
identical below-diagonal ``L`` structure; each column's pattern is its
successor's pattern plus itself.  The classic test needs only the
elimination tree and the column counts: columns ``j`` and ``j+1`` belong
to one supernode iff ``parent[j] == j+1`` and
``count[j+1] == count[j] - 1``.

A relaxation parameter admits a few extra explicit zeros (relaxed
supernodes), and ``max_size`` caps panel width — the paper tunes SuperLU's
maximum supernode size to 256 (we default to a scaled-down 32).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.blocking import Partition
from repro.symbolic.fill import FillResult, column_counts


def find_supernodes(fill: FillResult, max_size: int = 32,
                    relax: int = 0) -> Partition:
    """Group columns into supernodal panels.

    Parameters
    ----------
    fill:
        Output of :func:`repro.symbolic.symbolic_fill`.
    max_size:
        Maximum panel width (paper: 256 for full-scale SuperLU).
    relax:
        Allow merging when the successor's column count differs from the
        ideal by at most ``relax`` (introduces explicit zeros but enlarges
        panels, exactly like relaxed supernodes in SuperLU).

    Returns
    -------
    Partition
        Column partition whose blocks are the supernodes.
    """
    parent = fill.parent
    counts = column_counts(fill)
    n = parent.size
    boundaries = [0]
    width = 1
    for j in range(1, n):
        mergeable = (
            parent[j - 1] == j
            and counts[j] >= counts[j - 1] - 1 - relax
            and counts[j] <= counts[j - 1]
            and width < max_size
        )
        if mergeable:
            width += 1
        else:
            boundaries.append(j)
            width = 1
    boundaries.append(n)
    return Partition(np.asarray(boundaries, dtype=np.int64))

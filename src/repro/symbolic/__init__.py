"""Symbolic phase: structure prediction before any flop is spent.

Mirrors Figure 1's "symbolic" stage: build the elimination tree of the
symmetrised pattern, predict the fill structure of ``L+U``, detect
supernodes (SuperLU side) and compute block-level fill (PanguLU side).
Like both solvers' distributed GPU paths, the analysis is performed on the
symmetrised pattern of the (already reordered) matrix — a standard
static-pivoting simplification recorded in DESIGN.md §6.
"""

from repro.symbolic.etree import elimination_tree, etree_levels, postorder
from repro.symbolic.fill import (
    symbolic_fill,
    FillResult,
    column_counts,
)
from repro.symbolic.supernodes import find_supernodes
from repro.symbolic.blockfill import block_fill

__all__ = [
    "elimination_tree",
    "etree_levels",
    "postorder",
    "symbolic_fill",
    "FillResult",
    "column_counts",
    "find_supernodes",
    "block_fill",
]

"""Elimination tree construction (Liu's algorithm) and tree utilities."""

from __future__ import annotations

import numpy as np

from repro.sparse import CSRMatrix


def elimination_tree(a: CSRMatrix) -> np.ndarray:
    """Elimination tree of the symmetrised pattern of ``a``.

    Returns ``parent`` with ``parent[j]`` the etree parent of column ``j``
    (−1 for roots).  Liu's algorithm with path compression through an
    ``ancestor`` array — O(nnz · α(n)).
    """
    if a.nrows != a.ncols:
        raise ValueError("elimination tree requires a square matrix")
    n = a.nrows
    s = a.pattern_symmetrized()
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        cols, _ = s.row_slice(i)
        for k in cols[cols < i]:
            j = int(k)
            # climb with path compression until we reach i's subtree
            while ancestor[j] != -1 and ancestor[j] != i:
                nxt = ancestor[j]
                ancestor[j] = i
                j = nxt
            if ancestor[j] == -1:
                ancestor[j] = i
                parent[j] = i
    return parent


def etree_levels(parent: np.ndarray) -> np.ndarray:
    """Distance of each node from its root (roots are level 0).

    Used by level-synchronous baselines (SuperLU batches within one etree
    level) — note the paper's convention counts levels from the leaves, so
    callers that need leaf-relative levels should use :func:`etree_height`.
    """
    n = parent.size
    level = np.full(n, -1, dtype=np.int64)
    for start in range(n):
        if level[start] != -1:
            continue
        # climb to the first node with a known level (or a root), collecting
        # the unknown chain, then assign levels walking back down.
        chain = []
        v = start
        while level[v] == -1 and parent[v] != -1:
            chain.append(v)
            v = int(parent[v])
        if level[v] == -1:  # v is a root
            level[v] = 0
        base = level[v]
        for off, u in enumerate(reversed(chain), start=1):
            level[u] = base + off
    return level


def etree_height(parent: np.ndarray) -> np.ndarray:
    """Height of each node above its deepest descendant leaf (leaves 0)."""
    n = parent.size
    height = np.zeros(n, dtype=np.int64)
    # children are always numbered below parents, so a single ascending
    # pass propagates heights correctly.
    for v in range(n):
        p = parent[v]
        if p != -1 and height[p] < height[v] + 1:
            height[p] = height[v] + 1
    return height


def postorder(parent: np.ndarray) -> np.ndarray:
    """A postorder of the elimination forest (children before parents)."""
    n = parent.size
    children: list[list[int]] = [[] for _ in range(n)]
    roots = []
    for v in range(n):
        p = parent[v]
        if p == -1:
            roots.append(v)
        else:
            children[p].append(v)
    out = np.empty(n, dtype=np.int64)
    k = 0
    for root in roots:
        stack = [(root, iter(children[root]))]
        while stack:
            node, it = stack[-1]
            advanced = False
            for child in it:
                stack.append((child, iter(children[child])))
                advanced = True
                break
            if not advanced:
                out[k] = node
                k += 1
                stack.pop()
    if k != n:
        raise AssertionError("postorder did not visit every node")
    return out

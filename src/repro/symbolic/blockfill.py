"""Block-level symbolic fill: which tiles of the factors hold nonzeros.

Given a partition, boolean Gaussian elimination on the tile adjacency map
yields the set of tiles the numeric phase must allocate and the task list
it must execute: one GETRF per diagonal tile, one TSTRF/GEESM per
off-diagonal factor tile, one SSSSM per (k, i, j) tile triple.  This is
PanguLU's "sparse blocking" symbolic step; the SuperLU substrate uses the
same machinery on its supernodal partition.
"""

from __future__ import annotations

import numpy as np

from repro.sparse import CSRMatrix
from repro.sparse.blocking import Partition, block_pattern


def block_fill(a_or_pattern, part: Partition) -> np.ndarray:
    """Boolean tile map of ``L + U`` at block granularity.

    Parameters
    ----------
    a_or_pattern:
        Either a CSR matrix (its tile pattern is computed first) or an
        ``nblocks × nblocks`` boolean array.
    part:
        The tile partition.

    Returns
    -------
    numpy.ndarray
        Boolean ``nblocks × nblocks``; entry (i, j) is True iff tile (i, j)
        of the factors is structurally nonzero.

    Notes
    -----
    One rank-1 boolean update per elimination step:
    ``S[k+1:, k+1:] |= S[k+1:, k] ⊗ S[k, k+1:]`` — O(nblocks³) bit
    operations, fully vectorised.
    """
    if isinstance(a_or_pattern, CSRMatrix):
        s = block_pattern(a_or_pattern, part)
    else:
        s = np.asarray(a_or_pattern, dtype=bool).copy()
        if s.shape != (part.nblocks, part.nblocks):
            raise ValueError("pattern shape does not match partition")
    nb = part.nblocks
    s = s.copy()
    np.fill_diagonal(s, True)  # diagonal tiles always exist (GETRF targets)
    for k in range(nb - 1):
        col = s[k + 1:, k]
        if not col.any():
            continue
        row = s[k, k + 1:]
        if not row.any():
            continue
        s[k + 1:, k + 1:] |= np.outer(col, row)
    return s

"""Element-level fill prediction: the structure of ``L + U``.

Uses the elimination-tree row-subtree characterisation (Gilbert/Liu):
the pattern of row ``i`` of ``L`` is the set of vertices on etree paths
from the below-diagonal entries of row ``i`` of ``A`` up towards ``i``.
With a per-row marker the walk is O(nnz(L)) total.

The structure is computed on the symmetrised pattern, so ``U`` is
structurally ``Lᵀ`` — the same static-pivoting simplification the
solvers' GPU paths make.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse import CSRMatrix
from repro.symbolic.etree import elimination_tree


@dataclass(frozen=True)
class FillResult:
    """Predicted factor structure.

    Attributes
    ----------
    parent:
        Elimination tree parent array.
    lower:
        CSR pattern (values all 1.0) of strictly-lower ``L``.
    filled:
        CSR pattern of ``L + U`` including the diagonal (symmetric).
    nnz_lu:
        Total stored entries of ``L + U`` counting the diagonal once —
        the quantity Tables 2 and 4 report.
    """

    parent: np.ndarray
    lower: CSRMatrix
    filled: CSRMatrix
    nnz_lu: int


def symbolic_fill(a: CSRMatrix) -> FillResult:
    """Predict the fill structure of LU on the symmetrised pattern of ``a``."""
    if a.nrows != a.ncols:
        raise ValueError("symbolic fill requires a square matrix")
    n = a.nrows
    s = a.pattern_symmetrized()
    parent = elimination_tree(a)
    mark = np.full(n, -1, dtype=np.int64)
    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    for i in range(n):
        mark[i] = i
        acc: list[int] = []
        cols, _ = s.row_slice(i)
        for k in cols[cols < i]:
            j = int(k)
            while mark[j] != i:
                acc.append(j)
                mark[j] = i
                j = int(parent[j])
                if j == -1:
                    raise AssertionError(
                        "etree walk escaped the forest — broken symmetrisation"
                    )
        if acc:
            arr = np.asarray(acc, dtype=np.int64)
            rows_out.append(np.full(arr.size, i, dtype=np.int64))
            cols_out.append(arr)
    if rows_out:
        li = np.concatenate(rows_out)
        lj = np.concatenate(cols_out)
    else:
        li = np.empty(0, dtype=np.int64)
        lj = np.empty(0, dtype=np.int64)
    from repro.sparse import COOMatrix

    lower = COOMatrix((n, n), li, lj, np.ones(li.size)).to_csr()
    diag = np.arange(n, dtype=np.int64)
    filled = COOMatrix(
        (n, n),
        np.concatenate([li, lj, diag]),
        np.concatenate([lj, li, diag]),
        np.ones(2 * li.size + n),
    ).to_csr()
    return FillResult(
        parent=parent,
        lower=lower,
        filled=filled,
        nnz_lu=int(2 * li.size + n),
    )


def column_counts(fill: FillResult) -> np.ndarray:
    """nnz per column of ``L`` (including the diagonal) from a fill result."""
    n = fill.lower.nrows
    counts = np.ones(n, dtype=np.int64)
    counts += np.bincount(fill.lower.indices, minlength=n)
    return counts

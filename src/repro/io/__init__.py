"""Matrix I/O: a minimal Matrix Market reader/writer.

The paper's evaluation pulls matrices from the SuiteSparse collection in
Matrix Market (``.mtx``) format.  Networkless reproduction uses synthetic
generators instead, but the format support keeps the pipeline drop-in
compatible with real SuiteSparse files when they are available.
"""

from repro.io.matrixmarket import read_matrix_market, write_matrix_market

__all__ = ["read_matrix_market", "write_matrix_market"]

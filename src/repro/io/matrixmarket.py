"""Minimal Matrix Market (``.mtx``) coordinate-format reader/writer.

Supports the subset SuiteSparse matrices actually use for LU testing:
``matrix coordinate real {general|symmetric|skew-symmetric}`` and
``matrix coordinate pattern {general|symmetric}`` (pattern entries get
value 1.0).  Complex and array (dense) variants are rejected explicitly.
"""

from __future__ import annotations

import io
import numpy as np

from repro.sparse import COOMatrix, CSRMatrix


def read_matrix_market(path_or_file) -> CSRMatrix:
    """Read a Matrix Market coordinate file into CSR.

    Parameters
    ----------
    path_or_file:
        Filesystem path or an open text-mode file object.

    Returns
    -------
    CSRMatrix
        Canonicalised matrix; symmetric/skew storage is expanded to the
        full pattern.
    """
    if hasattr(path_or_file, "read"):
        return _read(path_or_file)
    with open(path_or_file, "r", encoding="utf-8") as fh:
        return _read(fh)


def _read(fh) -> CSRMatrix:
    header = fh.readline()
    if not header.startswith("%%MatrixMarket"):
        raise ValueError("missing MatrixMarket header")
    tokens = header.strip().split()
    if len(tokens) < 5:
        raise ValueError("malformed MatrixMarket header")
    _, obj, fmt, field, symmetry = [t.lower() for t in tokens[:5]]
    if obj != "matrix" or fmt != "coordinate":
        raise ValueError(f"unsupported MatrixMarket object/format: {obj} {fmt}")
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported MatrixMarket field: {field}")
    if symmetry not in ("general", "symmetric", "skew-symmetric"):
        raise ValueError(f"unsupported MatrixMarket symmetry: {symmetry}")

    line = fh.readline()
    while line.startswith("%") or not line.strip():
        if not line:  # readline() returns "" forever at EOF
            raise ValueError(
                "truncated MatrixMarket file: no size line after the header"
            )
        line = fh.readline()
    m, n, nnz = (int(t) for t in line.split())

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    k = 0
    for line in fh:
        line = line.strip()
        if not line or line.startswith("%"):
            continue
        if k >= nnz:
            raise ValueError(
                f"malformed MatrixMarket file: more than {nnz} entry lines"
            )
        parts = line.split()
        if len(parts) < (2 if field == "pattern" else 3):
            raise ValueError(
                f"malformed MatrixMarket entry line: {line!r}"
            )
        rows[k] = int(parts[0]) - 1
        cols[k] = int(parts[1]) - 1
        vals[k] = float(parts[2]) if field != "pattern" else 1.0
        k += 1
    if k != nnz:
        raise ValueError(
            f"truncated MatrixMarket file: expected {nnz} entries, found {k}"
        )

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        coo = COOMatrix(
            (m, n),
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
            np.concatenate([vals, sign * vals[off]]),
        )
    else:
        coo = COOMatrix((m, n), rows, cols, vals)
    return coo.to_csr()


def write_matrix_market(path_or_file, a: CSRMatrix, comment: str = "") -> None:
    """Write a CSR matrix as ``matrix coordinate real general``."""
    if hasattr(path_or_file, "write"):
        _write(path_or_file, a, comment)
        return
    with open(path_or_file, "w", encoding="utf-8") as fh:
        _write(fh, a, comment)


def _write(fh, a: CSRMatrix, comment: str) -> None:
    fh.write("%%MatrixMarket matrix coordinate real general\n")
    for line in comment.splitlines():
        fh.write(f"% {line}\n")
    fh.write(f"{a.nrows} {a.ncols} {a.nnz}\n")
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    buf = io.StringIO()
    for r, c, v in zip(rows, a.indices, a.data):
        buf.write(f"{r + 1} {c + 1} {v:.17g}\n")
    fh.write(buf.getvalue())

"""Element-level sparse LU — the independent numeric oracle.

A row-wise (ikj / Doolittle) sparse LU working directly on per-row hash
maps: row ``i`` is eliminated against every previously-computed row of
``U`` it touches, discovering fill on the fly.  No blocking, no
scheduling, no dense staging — machinery completely independent from the
tile engine, which makes it the cross-check oracle for every solver
substrate (``tests/test_reference_lu.py`` compares factors and
solutions).

Pivot-free by design, mirroring the static-pivoting assumption of the GPU
paths; combine with :func:`repro.ordering.static_pivot_permutation` for
matrices without a dominant diagonal.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.sparse import COOMatrix, CSRMatrix, triangular_solve


@dataclass
class ReferenceLUResult:
    """Factors of the element-level reference LU.

    ``L`` is unit-lower (unit diagonal stored explicitly), ``U`` upper,
    with ``L @ U = A`` exactly (no permutations).
    """

    L: CSRMatrix
    U: CSRMatrix

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` using the computed factors."""
        b = np.asarray(b, dtype=np.float64)
        y = triangular_solve(self.L, b, lower=True)
        return triangular_solve(self.U, y, lower=False)


def reference_lu(a: CSRMatrix) -> ReferenceLUResult:
    """Row-wise sparse LU without pivoting.

    For each row ``i``: load the sparse row into a hash map, then process
    its below-diagonal entries in ascending column order (a lazy heap —
    elimination introduces fill that must itself be eliminated), each time
    scaling by the pivot of the earlier row and subtracting that row's
    ``U`` part.

    Raises ``ZeroDivisionError`` on a zero pivot.
    """
    if a.nrows != a.ncols:
        raise ValueError("reference LU requires a square matrix")
    n = a.nrows
    u_rows: list[tuple[np.ndarray, np.ndarray]] = []  # (cols>=k, vals)
    l_i: list[int] = []
    l_j: list[int] = []
    l_v: list[float] = []

    for i in range(n):
        cols, vals = a.row_slice(i)
        work: dict[int, float] = dict(zip(cols.tolist(), vals.tolist()))
        heap = [c for c in work if c < i]
        heapq.heapify(heap)
        done: set[int] = set()
        while heap:
            k = heapq.heappop(heap)
            if k in done:
                continue
            done.add(k)
            w = work.get(k, 0.0)
            ucols, uvals = u_rows[k]
            pivot = uvals[0]  # U[k, k] is the first stored entry
            if pivot == 0.0:
                raise ZeroDivisionError(f"zero pivot at row {k}")
            mult = w / pivot
            work[k] = mult
            # subtract mult * U[k, k+1:]
            for c, v in zip(ucols[1:], uvals[1:]):
                c = int(c)
                if c in work:
                    work[c] -= mult * v
                else:
                    work[c] = -mult * v
                    if c < i and c not in done:
                        heapq.heappush(heap, c)
        if work.get(i, 0.0) == 0.0:
            raise ZeroDivisionError(f"zero pivot at row {i}")
        lower = sorted(c for c in work if c < i)
        upper = sorted(c for c in work if c >= i)
        for c in lower:
            l_i.append(i)
            l_j.append(c)
            l_v.append(work[c])
        u_rows.append((
            np.asarray(upper, dtype=np.int64),
            np.asarray([work[c] for c in upper]),
        ))

    diag = np.arange(n, dtype=np.int64)
    L = COOMatrix(
        (n, n),
        np.concatenate([np.asarray(l_i, dtype=np.int64), diag]),
        np.concatenate([np.asarray(l_j, dtype=np.int64), diag]),
        np.concatenate([np.asarray(l_v), np.ones(n)]),
    ).to_csr()
    ui, uj, uv = [], [], []
    for i, (ucols, uvals) in enumerate(u_rows):
        ui.append(np.full(ucols.size, i, dtype=np.int64))
        uj.append(ucols)
        uv.append(uvals)
    U = COOMatrix(
        (n, n), np.concatenate(ui), np.concatenate(uj), np.concatenate(uv)
    ).to_csr()
    return ReferenceLUResult(L=L, U=U)

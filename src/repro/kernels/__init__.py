"""Reference numeric kernels for the four task types.

The Executor of the paper supports four customisable task kernels
(§3.4, Figure 7): GETRF (diagonal LU), TSTRF (row-panel triangular
solve), GEESM (column-panel triangular solve) and SSSSM (Schur-complement
GEMM), each in a dense and a sparse (gather–compute–scatter) flavour.
This package provides NumPy reference implementations that mutate dense
tile scratch in place — exactly the dense staging the paper's GETRF kernel
performs — together with exact structural flop/byte accounting used by the
GPU cost model.
"""

from repro.kernels.dense import (
    dense_getrf,
    dense_getrf_pivoted,
    trsm_left_col,
    trsm_lower_unit,
    trsm_upper,
    gemm_update,
)
from repro.kernels.tilekernels import (
    KernelStats,
    getrf_kernel,
    tstrf_kernel,
    geesm_kernel,
    ssssm_kernel,
    sptrsv_diag_kernel,
    sptrsv_update_kernel,
)
from repro.kernels.batched import (
    batch_kernels_enabled,
    batch_solve_enabled,
    batched_geesm,
    batched_ssssm,
    batched_ssssm_products,
    batched_sptrsv_diag,
    batched_sptrsv_update,
    batched_tstrf,
)
from repro.kernels.reference_lu import ReferenceLUResult, reference_lu
from repro.kernels.flops import (
    getrf_flops_dense,
    trsm_flops_dense,
    gemm_flops_dense,
    getrf_flops_sparse,
    ssssm_flops_sparse,
    factorization_flops,
)

__all__ = [
    "dense_getrf",
    "dense_getrf_pivoted",
    "trsm_lower_unit",
    "trsm_upper",
    "gemm_update",
    "KernelStats",
    "getrf_kernel",
    "tstrf_kernel",
    "geesm_kernel",
    "ssssm_kernel",
    "trsm_left_col",
    "sptrsv_diag_kernel",
    "sptrsv_update_kernel",
    "batch_kernels_enabled",
    "batch_solve_enabled",
    "batched_geesm",
    "batched_ssssm",
    "batched_ssssm_products",
    "batched_sptrsv_diag",
    "batched_sptrsv_update",
    "batched_tstrf",
    "ReferenceLUResult",
    "reference_lu",
    "getrf_flops_dense",
    "trsm_flops_dense",
    "gemm_flops_dense",
    "getrf_flops_sparse",
    "ssssm_flops_sparse",
    "factorization_flops",
]

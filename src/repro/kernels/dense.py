"""Dense building-block kernels (NumPy, in place where meaningful).

``dense_getrf`` follows the right-looking outer-product form — one
vectorised rank-1 update per elimination step, the same dataflow the
paper's synchronisation-free GPU kernel parallelises column-wise.
"""

from __future__ import annotations

import numpy as np


def dense_getrf(a: np.ndarray) -> np.ndarray:
    """In-place LU factorisation without pivoting: ``A ← L\\U``.

    ``L`` is unit lower triangular (unit diagonal not stored), ``U`` upper
    triangular.  Raises ``ZeroDivisionError`` on a zero pivot — the
    generators guarantee diagonal dominance, so hitting this means a
    scheduling/data bug upstream, not bad luck.
    """
    m, n = a.shape
    if m != n:
        raise ValueError("dense_getrf requires a square tile")
    for k in range(n - 1):
        piv = a[k, k]
        if piv == 0.0:
            raise ZeroDivisionError(f"zero pivot at column {k}")
        a[k + 1:, k] /= piv
        # rank-1 trailing update (vectorised, the hot loop)
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    if n > 0 and a[n - 1, n - 1] == 0.0:
        raise ZeroDivisionError(f"zero pivot at column {n - 1}")
    return a


def dense_getrf_pivoted(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """In-place LU with partial (row) pivoting: returns ``(A, piv)``.

    ``piv[k]`` is the row swapped into position ``k`` at step ``k``
    (LAPACK-style ipiv, 0-based).  Provided for standalone use and for
    testing the pivot-free path's diagonal-dominance assumption.
    """
    m, n = a.shape
    if m != n:
        raise ValueError("dense_getrf_pivoted requires a square tile")
    piv = np.arange(n, dtype=np.int64)
    for k in range(n - 1):
        p = k + int(np.argmax(np.abs(a[k:, k])))
        if a[p, k] == 0.0:
            raise ZeroDivisionError(f"matrix is singular at column {k}")
        if p != k:
            a[[k, p], :] = a[[p, k], :]
            piv[k] = p
        a[k + 1:, k] /= a[k, k]
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return a, piv


def trsm_lower_unit(l_tile: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L X = B`` in place (B overwritten with X).

    ``l_tile`` holds a packed LU tile; only its strictly-lower part is
    read and the diagonal is taken as 1 (GETRF's storage convention).
    Row-sequential forward substitution; each step updates all right-hand
    sides at once.
    """
    m = l_tile.shape[0]
    if b.shape[0] != m:
        raise ValueError("dimension mismatch in trsm_lower_unit")
    for r in range(1, m):
        b[r] -= l_tile[r, :r] @ b[:r]
    return b


def trsm_upper(u_tile: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``X U = B`` in place (B overwritten with X).

    Only the upper triangle (including diagonal) of ``u_tile`` is read.
    Column-sequential substitution over the columns of ``B``.
    """
    m = u_tile.shape[0]
    if b.shape[1] != m:
        raise ValueError("dimension mismatch in trsm_upper")
    for c in range(m):
        if c:
            b[:, c] -= b[:, :c] @ u_tile[:c, c]
        d = u_tile[c, c]
        if d == 0.0:
            raise ZeroDivisionError(f"zero diagonal at column {c}")
        b[:, c] /= d
    return b


def trsm_left_col(tri_tile: np.ndarray, col: np.ndarray,
                  lower: bool = True,
                  unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``T x = col`` in place for one ``(m, 1)`` column.

    The solve-phase diagonal kernel: forward substitution over the lower
    triangle of ``tri_tile`` (or backward over the upper triangle), with
    the subtract and divide interleaved row by row so the exact per-row
    operation sequence is shared by the per-column oracle, the per-task
    kernel, and the column-folded batched kernel — the bit-identity
    contract of the solve DAG.  Entries on the unused side of the
    triangle are never read, so a packed-LU tile works directly.
    """
    m = tri_tile.shape[0]
    if col.shape != (m, 1):
        raise ValueError("dimension mismatch in trsm_left_col")
    rows = range(m) if lower else range(m - 1, -1, -1)
    for r in rows:
        if lower:
            if r:
                col[r:r + 1] -= tri_tile[r:r + 1, :r] @ col[:r]
        elif r < m - 1:
            col[r:r + 1] -= tri_tile[r:r + 1, r + 1:] @ col[r + 1:]
        if not unit_diagonal:
            d = tri_tile[r, r]
            if d == 0.0:
                raise ZeroDivisionError(f"zero diagonal at row {r}")
            col[r:r + 1] /= d
    return col


def gemm_update(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Schur update ``C ← C − A @ B`` in place."""
    c -= a @ b
    return c


def dense_potrf(a: np.ndarray) -> np.ndarray:
    """In-place Cholesky factorisation ``A ← L`` (lower triangle valid).

    Right-looking form, mirroring :func:`dense_getrf`'s dataflow so the
    Cholesky substrate schedules through the identical task machinery.
    Raises ``ValueError`` if the tile is not positive definite.
    """
    m, n = a.shape
    if m != n:
        raise ValueError("dense_potrf requires a square tile")
    for k in range(n):
        d = a[k, k]
        if d <= 0.0:
            raise ValueError(f"tile not positive definite at column {k}")
        a[k, k] = np.sqrt(d)
        a[k + 1:, k] /= a[k, k]
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k + 1:, k])
    return a

"""Structural flop and byte accounting.

The GPU cost model charges kernels by the work a real sparse/dense kernel
would perform, derived from tile *structure* (nonzero counts), not from
the dense scratch the reference implementation happens to use.  Dense
formulas are the textbook counts; sparse formulas follow the
outer-product/column-column formulations the paper's Executor implements.
"""

from __future__ import annotations

import numpy as np


def getrf_flops_dense(m: int) -> int:
    """LU of a dense m×m tile: Σₖ [(m−k−1) + 2(m−k−1)²] ≈ (2/3)m³."""
    k = np.arange(m - 1, dtype=np.int64)
    r = m - 1 - k
    return int(np.sum(r + 2 * r * r))


def trsm_flops_dense(m: int, nrhs: int) -> int:
    """Triangular solve against an m×m factor for ``nrhs`` vectors: m²·nrhs."""
    return int(m) * int(m) * int(nrhs)


def gemm_flops_dense(mi: int, mk: int, mj: int) -> int:
    """Dense Schur update (mi×mk)·(mk×mj): 2·mi·mk·mj."""
    return 2 * int(mi) * int(mk) * int(mj)


def getrf_flops_sparse(pattern: np.ndarray) -> int:
    """Sparse LU flops of a factored tile from its nonzero pattern.

    Outer-product form: step k divides the c_k below-diagonal nonzeros of
    column k and performs 2·c_k·r_k multiply-adds against the r_k
    right-of-diagonal nonzeros of row k.
    """
    m = pattern.shape[0]
    if m == 0:
        return 0
    low = np.tril(pattern, k=-1)
    up = np.triu(pattern, k=1)
    c = low.sum(axis=0)  # below-diagonal count per column
    r = up.sum(axis=1)   # right-of-diagonal count per row
    return int(np.sum(c + 2 * c * r))


def trsm_flops_sparse(x_nnz: int, factor_pattern: np.ndarray) -> int:
    """Sparse triangular-solve flops: each of the solved panel's nonzeros
    combines with the average nonzeros per pivot row/column of the factor."""
    m = factor_pattern.shape[0]
    if m == 0:
        return 0
    avg = factor_pattern.sum() / m
    return int(2 * x_nnz * avg)


def ssssm_flops_sparse(l_pattern: np.ndarray, u_pattern: np.ndarray) -> int:
    """Sparse Schur-update flops, exact for the column-column formulation:
    2 · Σₖ nnz(col k of L) · nnz(row k of U)."""
    c = l_pattern.sum(axis=0)
    r = u_pattern.sum(axis=1)
    return int(2 * np.dot(c.astype(np.int64), r.astype(np.int64)))


def factorization_flops(tile_patterns: dict, diag_sizes) -> int:
    """Aggregate flop estimate for a whole block factorisation.

    Parameters
    ----------
    tile_patterns:
        ``{(bi, bj): boolean pattern array}`` of factor tiles.
    diag_sizes:
        Per-block sizes of the partition.

    Notes
    -----
    Used only for reporting (GFLOPS axes); scheduling decisions use the
    exact per-task counts attached to tasks at execution time.
    """
    total = 0
    for (bi, bj), pat in tile_patterns.items():
        nnz = int(np.count_nonzero(pat))
        if bi == bj:
            total += getrf_flops_sparse(np.asarray(pat, dtype=bool))
        else:
            total += 2 * nnz * int(diag_sizes[min(bi, bj)])
    return total

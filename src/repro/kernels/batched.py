"""Batched (stacked) tile kernels — the Executor's single-launch groups.

The paper's Batch stage packs many same-type tasks into one kernel
launch.  In NumPy terms that means operating on ``(B, m, n)`` stacks
instead of one ``(m, n)`` tile at a time: SSSSM groups become one
stacked ``np.matmul`` over ``(B, m, k) @ (B, k, n)``, and TSTRF/GEESM
groups run the triangular recurrence once across the whole stack with a
matching ``(B, m, m)`` stack of diagonal tiles (a multi-RHS solve over
many independent panels — grouping needs only a common *shape class*,
not a common diagonal).

Bit-identical-to-serial is a hard invariant (the same one the paper
tests for its schedulers): ``np.matmul`` over 3-D stacks executes the
identical 2-D core per slice as the per-tile kernels, and the stacked
triangular recurrences below perform literally the same
``b[r] -= l[r, :r] @ b[:r]`` / ``b[:, c] -= b[:, :c] @ u[:c, c]``
per-slice dataflow as :mod:`repro.kernels.dense`, just hoisted over the
batch axis (a 1-D operand promotes to the same ``(1, r)`` / ``(c, 1)``
core matmul performs on the explicit stacked slices).  The differential
suite (``tests/test_batched_kernels.py``) checks factors *and* per-task
:class:`~repro.kernels.tilekernels.KernelStats` to the bit.

Every function returns per-task int64 stat arrays using the exact
accounting formulas of :mod:`repro.kernels.tilekernels`, vectorized over
the batch axis — including the float ``avg``-nonzeros factor of the
sparse triangular solves, reproduced with the same operation order and
truncation.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from repro.kernels.flops import (
    gemm_flops_dense,
    trsm_flops_dense,
)

_FALSY = frozenset({"0", "false", "off", "no", ""})


def batch_kernels_enabled() -> bool:
    """Whether batched kernel groups are on (``REPRO_BATCH_KERNELS``).

    Defaults to on; set ``REPRO_BATCH_KERNELS=0`` to force the per-task
    oracle path everywhere (the differential-testing baseline).
    """
    return os.environ.get("REPRO_BATCH_KERNELS", "1").strip().lower() \
        not in _FALSY


def batch_solve_enabled() -> bool:
    """Whether the batched solve-DAG path is on (``REPRO_BATCH_SOLVE``).

    Defaults to off: factorisation results keep the seed per-column
    substitution unless the knob opts solves into the Trojan-batched
    SpTRSV pipeline.  (Contrast ``REPRO_BATCH_KERNELS``, which defaults
    on — the solve path is newer and stays opt-in.)
    """
    return os.environ.get("REPRO_BATCH_SOLVE", "0").strip().lower() \
        not in _FALSY


#: Environment knobs every mainstream BLAS reads at import time.
BLAS_THREAD_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


@contextmanager
def pinned_blas_env(threads: int = 1):
    """Pin the BLAS thread knobs in ``os.environ`` for the duration.

    This changes nothing about the *current* process (its BLAS read the
    environment when numpy was imported); it exists so processes spawned
    inside the block import numpy with a fixed thread count.  The
    multiprocess executor pins workers this way when asked: N workers
    each fanning a threaded GEMM over the same cores oversubscribes the
    host and wrecks the scaling the batch schedule buys.  Previous
    values are restored on exit, including unset ones.
    """
    saved = {var: os.environ.get(var) for var in BLAS_THREAD_VARS}
    for var in BLAS_THREAD_VARS:
        os.environ[var] = str(int(threads))
    try:
        yield
    finally:
        for var, val in saved.items():
            if val is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = val


def _stack_nnz(stack: np.ndarray) -> np.ndarray:
    """Per-slice nonzero counts of a ``(B, m, n)`` stack, int64."""
    return np.count_nonzero(stack, axis=(1, 2)).astype(np.int64)


def _rhs_nnz(stack: np.ndarray) -> np.ndarray:
    """Per-slice nonzero counts of a ``(B, nrhs, m, 1)`` RHS stack."""
    return np.count_nonzero(stack, axis=(1, 2, 3)).astype(np.int64)


def batched_ssssm_products(lstack: np.ndarray, ustack: np.ndarray,
                           sparse: bool = False
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stacked Schur products ``L[b] @ U[b]`` plus order-independent stats.

    Returns ``(products, flops, base_bytes_words)`` where
    ``base_bytes_words[b]`` is the part of the touched-nonzero count that
    does not depend on the target tile's post-update state (the caller
    adds the target term: once for plain updates, twice for atomic ones,
    exactly as :func:`repro.kernels.tilekernels.ssssm_kernel` counts).

    Splitting product computation from application is what makes atomic
    (same-target) updates batchable: products depend only on factor
    tiles that are final before the launch, so they can be computed in
    one stacked matmul and then applied serially in batch order —
    bit-identical to the per-task execution, including the
    intermediate-state byte accounting.
    """
    if sparse:
        # 2·Σₖ nnz(col k of L)·nnz(row k of U), per slice
        c = np.count_nonzero(lstack, axis=1).astype(np.int64)
        r = np.count_nonzero(ustack, axis=2).astype(np.int64)
        flops = 2 * np.einsum("bk,bk->b", c, r)
        base = _stack_nnz(lstack) + _stack_nnz(ustack)
    else:
        b, mi, mk = lstack.shape
        mj = ustack.shape[2]
        flops = np.full(b, gemm_flops_dense(mi, mk, mj), dtype=np.int64)
        base = np.full(b, mi * mj + mi * mk + mk * mj, dtype=np.int64)
    return np.matmul(lstack, ustack), flops, base


def batched_ssssm(tstack: np.ndarray, lstack: np.ndarray,
                  ustack: np.ndarray, sparse: bool = False
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Stacked Schur update ``T[b] −= L[b] @ U[b]`` in place.

    Targets within one call must be distinct tiles (conflict-free
    group); same-target updates go through
    :func:`batched_ssssm_products` plus a serial ordered apply instead,
    because their byte accounting depends on the intermediate state.
    """
    prods, flops, base = batched_ssssm_products(lstack, ustack, sparse)
    tstack -= prods
    if sparse:
        base = base + _stack_nnz(tstack)
    return flops, 8 * base


def batched_geesm(bstack: np.ndarray, dstack: np.ndarray,
                  sparse: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Stacked GEESM: solve ``L[b] X = B[b]`` in place for every slice,
    each against its own packed-LU diagonal tile.

    Same row-sequential forward substitution as
    :func:`repro.kernels.dense.trsm_lower_unit`, hoisted over the batch
    axis: step r is one ``(B, 1, r) @ (B, r, n)`` matmul instead of B
    separate ``(r,) @ (r, n)`` products.
    """
    m = dstack.shape[1]
    if bstack.shape[1] != m:
        raise ValueError("dimension mismatch in batched_geesm")
    nnz_in = _stack_nnz(bstack)  # bytes count actual nonzeros either way
    for r in range(1, m):
        bstack[:, r, :] -= np.matmul(dstack[:, r:r + 1, :r],
                                     bstack[:, :r, :])[:, 0, :]
    if sparse:
        avg = np.count_nonzero(np.tril(dstack, -1), axis=(1, 2)) / m
        nnz_out = _stack_nnz(bstack)
        flops = ((2 * nnz_out) * avg).astype(np.int64)
        touched = nnz_out
    else:
        b, _, n = bstack.shape
        flops = np.full(b, trsm_flops_dense(m, n), dtype=np.int64)
        touched = np.full(b, m * n, dtype=np.int64)
    return flops, 8 * (nnz_in + touched + _stack_nnz(dstack))


def batched_tstrf(bstack: np.ndarray, dstack: np.ndarray,
                  sparse: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Stacked TSTRF: solve ``X U[b] = B[b]`` in place for every slice,
    each against its own packed-LU diagonal tile.

    Same column-sequential substitution as
    :func:`repro.kernels.dense.trsm_upper`, hoisted over the batch axis.
    """
    m = dstack.shape[1]
    if bstack.shape[2] != m:
        raise ValueError("dimension mismatch in batched_tstrf")
    nnz_in = _stack_nnz(bstack)  # bytes count actual nonzeros either way
    for c in range(m):
        if c:
            bstack[:, :, c] -= np.matmul(bstack[:, :, :c],
                                         dstack[:, :c, c][:, :, None])[:, :, 0]
        d = dstack[:, c, c]
        if np.any(d == 0.0):
            raise ZeroDivisionError(f"zero diagonal at column {c}")
        bstack[:, :, c] /= d[:, None]
    if sparse:
        avg = np.count_nonzero(np.triu(dstack), axis=(1, 2)) / m
        nnz_out = _stack_nnz(bstack)
        flops = ((2 * nnz_out) * avg).astype(np.int64)
        touched = nnz_out
    else:
        b, rows, _ = bstack.shape
        flops = np.full(b, trsm_flops_dense(m, rows), dtype=np.int64)
        touched = np.full(b, rows * m, dtype=np.int64)
    return flops, 8 * (nnz_in + touched + _stack_nnz(dstack))


def batched_sptrsv_diag(bstack: np.ndarray, dstack: np.ndarray,
                        lower: bool = True, unit_diagonal: bool = False,
                        sparse: bool = False
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Stacked SPTRSV_DIAG: solve ``T[b] · Y[b] = Y[b]`` in place.

    ``bstack`` is the column-folded ``(B, nrhs, m, 1)`` RHS stack and
    ``dstack`` the ``(B, m, m)`` diagonal tiles.  Folding keeps each
    column a ``(m, 1)`` operand, so step r is a broadcast
    ``(1, r) @ (r, 1)`` core per (slice, column) — the exact core the
    per-column oracle runs, unlike a wide ``(m, nrhs)`` solve whose
    row-times-matrix products sum in a different order.  The subtract
    and divide interleave row by row to match
    :func:`repro.kernels.dense.trsm_left_col` bit for bit on non-unit
    diagonals.
    """
    m = dstack.shape[1]
    if bstack.shape[2] != m:
        raise ValueError("dimension mismatch in batched_sptrsv_diag")
    nnz_in = _rhs_nnz(bstack)
    rows = range(m) if lower else range(m - 1, -1, -1)
    for r in rows:
        if lower:
            if r:
                bstack[:, :, r, :] -= np.matmul(
                    dstack[:, None, r:r + 1, :r],
                    bstack[:, :, :r, :])[:, :, 0, :]
        elif r < m - 1:
            bstack[:, :, r, :] -= np.matmul(
                dstack[:, None, r:r + 1, r + 1:],
                bstack[:, :, r + 1:, :])[:, :, 0, :]
        if not unit_diagonal:
            d = dstack[:, r, r]
            if np.any(d == 0.0):
                raise ZeroDivisionError(f"zero diagonal at row {r}")
            bstack[:, :, r, :] /= d[:, None, None]
    if sparse:
        if lower:
            read = np.tril(dstack, -1) if unit_diagonal else np.tril(dstack)
        else:
            read = np.triu(dstack, 1) if unit_diagonal else np.triu(dstack)
        avg = np.count_nonzero(read, axis=(1, 2)) / m
        nnz_out = _rhs_nnz(bstack)
        flops = ((2 * nnz_out) * avg).astype(np.int64)
        touched = nnz_out
    else:
        b, nrhs = bstack.shape[:2]
        flops = np.full(b, trsm_flops_dense(m, nrhs), dtype=np.int64)
        touched = np.full(b, m * nrhs, dtype=np.int64)
    return flops, 8 * (nnz_in + touched + _stack_nnz(dstack))


def batched_sptrsv_update(dest_stack: np.ndarray, tstack: np.ndarray,
                          src_stack: np.ndarray, sparse: bool = False
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Stacked SPTRSV_UPDATE: ``Y_i[b] −= T[b] · Y_k[b]`` in place.

    ``dest_stack`` is ``(B, nrhs, m_i, 1)``, ``tstack`` ``(B, m_i, m_k)``
    and ``src_stack`` ``(B, nrhs, m_k, 1)``; the broadcast matmul runs
    one ``(m_i, m_k) @ (m_k, 1)`` core per (slice, column), matching the
    per-task kernel and the oracle's per-column products.  Destinations
    within one call must be distinct RHS blocks — the canonical
    accumulation chains of the solve DAG guarantee it by construction.
    """
    if tstack.shape[2] != src_stack.shape[2] \
            or tstack.shape[1] != dest_stack.shape[2]:
        raise ValueError("dimension mismatch in batched_sptrsv_update")
    dest_stack -= np.matmul(tstack[:, None, :, :], src_stack)
    b, nrhs = dest_stack.shape[:2]
    if sparse:
        flops = 2 * _stack_nnz(tstack) * nrhs
        touched = _rhs_nnz(dest_stack) + _stack_nnz(tstack) \
            + _rhs_nnz(src_stack)
    else:
        mi, mk = tstack.shape[1], tstack.shape[2]
        flops = np.full(b, gemm_flops_dense(mi, mk, nrhs), dtype=np.int64)
        touched = np.full(b, nrhs * mi + mi * mk + mk * nrhs,
                          dtype=np.int64)
    return flops, 8 * touched

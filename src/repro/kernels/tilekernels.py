"""Tile-level task kernels: the Executor's customisable operations —
the paper's four factorisation kernels plus the two SpTRSV solve kernels.

Each kernel mutates dense tile scratch in place (the paper's kernels also
gather sparse tiles into dense staging before computing) and returns a
:class:`KernelStats` record with structure-derived flop and byte counts
for the GPU cost model.  The ``sparse`` flag selects sparse accounting —
the arithmetic itself is identical, which is what makes "Trojan Horse and
baseline produce bit-identical factors" a testable invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.dense import (
    dense_getrf,
    gemm_update,
    trsm_left_col,
    trsm_lower_unit,
    trsm_upper,
)
from repro.kernels.flops import (
    gemm_flops_dense,
    getrf_flops_dense,
    getrf_flops_sparse,
    ssssm_flops_sparse,
    trsm_flops_dense,
    trsm_flops_sparse,
)

_EPS = 0.0  # structural zero threshold for post-factor patterns


@dataclass(frozen=True)
class KernelStats:
    """Work accounting for one executed kernel task.

    Attributes
    ----------
    flops:
        Floating-point operations a structure-aware kernel performs.
    bytes:
        Global-memory traffic estimate (reads + writes of the touched
        nonzeros, 8 B each, including the gather/scatter staging).
    """

    flops: int
    bytes: int


def _nnz(a: np.ndarray) -> int:
    return int(np.count_nonzero(a))


def getrf_kernel(tile: np.ndarray, sparse: bool = False) -> KernelStats:
    """GETRF: factor a diagonal tile in place into packed L\\U."""
    m = tile.shape[0]
    nnz_in = _nnz(tile)
    dense_getrf(tile)
    if sparse:
        flops = getrf_flops_sparse(tile != _EPS)
        touched = _nnz(tile)
    else:
        flops = getrf_flops_dense(m)
        touched = m * m
    return KernelStats(flops=flops, bytes=8 * (nnz_in + touched))


def tstrf_kernel(tile: np.ndarray, diag: np.ndarray,
                 sparse: bool = False) -> KernelStats:
    """TSTRF: row panel ``L(i,k) = A(i,k) · U(k,k)⁻¹`` in place.

    ``diag`` is the packed LU tile of block (k,k); only its upper triangle
    is read.  One CUDA block per panel row in the paper's mapping.
    """
    nnz_in = _nnz(tile)
    trsm_upper(diag, tile)
    if sparse:
        flops = trsm_flops_sparse(_nnz(tile), np.triu(diag) != _EPS)
        touched = _nnz(tile)
    else:
        flops = trsm_flops_dense(diag.shape[0], tile.shape[0])
        touched = tile.size
    return KernelStats(flops=flops, bytes=8 * (nnz_in + touched + _nnz(diag)))


def geesm_kernel(tile: np.ndarray, diag: np.ndarray,
                 sparse: bool = False) -> KernelStats:
    """GEESM: column panel ``U(k,j) = L(k,k)⁻¹ · A(k,j)`` in place.

    Only the strictly-lower part of ``diag`` is read (unit diagonal).
    One CUDA block per panel column.
    """
    nnz_in = _nnz(tile)
    trsm_lower_unit(diag, tile)
    if sparse:
        flops = trsm_flops_sparse(_nnz(tile), np.tril(diag, -1) != _EPS)
        touched = _nnz(tile)
    else:
        flops = trsm_flops_dense(diag.shape[0], tile.shape[1])
        touched = tile.size
    return KernelStats(flops=flops, bytes=8 * (nnz_in + touched + _nnz(diag)))


def ssssm_kernel(target: np.ndarray, l_tile: np.ndarray, u_tile: np.ndarray,
                 sparse: bool = False, atomic: bool = False) -> KernelStats:
    """SSSSM: Schur update ``A(i,j) −= L(i,k) · U(k,j)`` in place.

    ``atomic`` marks that this update may race with other SSSSM tasks on
    the same target inside one batch; the reference implementation is
    sequential so the flag only affects accounting (atomic traffic counts
    the target twice, read + read-modify-write).
    """
    gemm_update(target, l_tile, u_tile)
    if sparse:
        flops = ssssm_flops_sparse(l_tile != _EPS, u_tile != _EPS)
        touched = _nnz(target) + _nnz(l_tile) + _nnz(u_tile)
    else:
        flops = gemm_flops_dense(l_tile.shape[0], l_tile.shape[1],
                                 u_tile.shape[1])
        touched = target.size + l_tile.size + u_tile.size
    extra = _nnz(target) if atomic else 0
    return KernelStats(flops=flops, bytes=8 * (touched + extra))


def _solve_read_triangle(diag: np.ndarray, lower: bool,
                         unit_diagonal: bool) -> np.ndarray:
    """The part of a diagonal tile a triangular solve actually reads."""
    if lower:
        return np.tril(diag, -1) if unit_diagonal else np.tril(diag)
    return np.triu(diag, 1) if unit_diagonal else np.triu(diag)


def sptrsv_diag_kernel(cols: np.ndarray, diag: np.ndarray,
                       lower: bool = True, unit_diagonal: bool = False,
                       sparse: bool = False) -> KernelStats:
    """SPTRSV_DIAG: solve ``T(i,i) · Y_i = Y_i`` in place.

    ``cols`` is the RHS block in column-folded layout ``(nrhs, m, 1)``;
    every column runs the identical row-sequential substitution of
    :func:`repro.kernels.dense.trsm_left_col`, which is also what the
    per-column oracle and the batched kernel execute.
    """
    nrhs, m = cols.shape[0], cols.shape[1]
    nnz_in = _nnz(cols)
    for c in range(nrhs):
        trsm_left_col(diag, cols[c], lower=lower,
                      unit_diagonal=unit_diagonal)
    if sparse:
        read = _solve_read_triangle(diag, lower, unit_diagonal)
        flops = trsm_flops_sparse(_nnz(cols), read != _EPS)
        touched = _nnz(cols)
    else:
        flops = trsm_flops_dense(m, nrhs)
        touched = cols.size
    return KernelStats(flops=flops, bytes=8 * (nnz_in + touched + _nnz(diag)))


def sptrsv_update_kernel(dest: np.ndarray, tile: np.ndarray,
                         src: np.ndarray, sparse: bool = False
                         ) -> KernelStats:
    """SPTRSV_UPDATE: ``Y_i −= T(i,k) · Y_k`` in place, column-folded.

    ``dest`` is ``(nrhs, m_i, 1)``, ``src`` is ``(nrhs, m_k, 1)``; the
    broadcast matmul runs one ``(m_i, m_k) @ (m_k, 1)`` core per column —
    the same cores as the oracle's per-column products, keeping the
    accumulation bit-identical regardless of RHS width.
    """
    dest -= np.matmul(tile[None, :, :], src)
    nrhs = dest.shape[0]
    if sparse:
        flops = 2 * _nnz(tile) * nrhs
        touched = _nnz(dest) + _nnz(tile) + _nnz(src)
    else:
        flops = gemm_flops_dense(tile.shape[0], tile.shape[1], nrhs)
        touched = dest.size + tile.size + src.size
    return KernelStats(flops=flops, bytes=8 * touched)

"""Seeded adversarial verification cases (``tests/golden/adversarial``).

Each case is a small JSON file describing either a deliberately broken
schedule (a named golden configuration plus a deterministic mutation of
its batch sequence) or a hand-written distributed trace.  The CLI runs
them through the matching verifier and must exit non-zero — they are
the negative half of the CI ``verify`` gate, proving the analyzers
actually catch what they claim to.

Schedule case::

    {"kind": "schedule",
     "golden_config": "poisson256_b8_trojan",
     "mutation": "reverse_batches",
     "expect": ["DEP_ORDER"]}

Solve-schedule case (the SpTRSV DAGs of the solve phase)::

    {"kind": "solve_schedule",
     "solve_config": "poisson256_b8_lsolve_r4",
     "mutation": "update_before_diag_solve",
     "expect": ["DEP_ORDER"]}

Trace case::

    {"kind": "trace",
     "expect": ["TRACE_UNMATCHED_SEND"],
     "trace": {"nprocs": 2, "tasks": [...], "edges": [...],
               "sends": [...]}}

Plan case (a whole distributed plan, certified statically by
:mod:`repro.verify.plan` — see ``tests/golden/plans``)::

    {"kind": "plan",
     "expect": ["PLAN_RACE_WW"],
     "plan": {"nprocs": 2, "nb": 2, "tasks": [...], "edges": [...]}}

``expect`` lists violation codes the case must trigger; the CLI checks
them so a silently weakened check fails the build too.
"""

from __future__ import annotations

import json
import pathlib

from repro.core.task import TaskType
from repro.verify.golden import schedule_for_config, solve_schedule_for_config
from repro.verify.report import VerificationReport
from repro.verify.schedule import ScheduleVerifier
from repro.verify.trace import DistTrace, TraceVerifier


def _mutate_reverse(batches, dag):
    """Run the whole schedule backwards: every edge flips."""
    return batches[::-1]


def _mutate_drop_last(batches, dag):
    """Silently drop the final batch's tasks."""
    return batches[:-1]


def _mutate_write_conflict(batches, dag):
    """Co-schedule a GETRF with an SSSSM targeting its diagonal tile.

    Picks the smallest step ``k`` that has both, moves the GETRF into
    the SSSSM's batch (removing it from its own), so the pair writes
    tile ``(k, k)`` inside one launch without the all-SSSSM atomic
    escape — a non-atomic same-target pair.
    """
    ssssm_targets = {}
    for t in dag.tasks:
        if t.type == TaskType.SSSSM and t.i == t.j:
            ssssm_targets.setdefault(t.i, t.tid)
    getrfs = {t.k: t.tid for t in dag.tasks if t.type == TaskType.GETRF}
    k = min(k for k in getrfs if k in ssssm_targets)
    g_tid, s_tid = getrfs[k], ssssm_targets[k]
    out = [list(b) for b in batches]
    for b in out:
        if g_tid in b:
            b.remove(g_tid)
    for b in out:
        if s_tid in b:
            b.append(g_tid)
            break
    return [b for b in out if b]


def _mutate_merge_all(batches, dag):
    """Collapse the whole schedule into one launch — blows every
    Collector budget (and most dependencies)."""
    return [[tid for b in batches for tid in b]]


def _mutate_update_before_diag(batches, dag):
    """Hoist the first RHS accumulate to the schedule front.

    The update then runs before the diagonal solve of its *source*
    block, consuming an unsolved RHS block — the accumulate-ordering
    violation the solve DAG's edges exist to prevent.
    """
    tid = min(t.tid for t in dag.tasks
              if t.type == TaskType.SPTRSV_UPDATE)
    out = [[x for x in b if x != tid] for b in batches]
    return [[tid]] + [b for b in out if b]


def _mutate_co_schedule_rhs_updates(batches, dag):
    """Put two accumulates of one RHS block into a single launch.

    Solve tasks have no atomic escape hatch (their ordering is fixed by
    the canonical chains), so the pair is a non-atomic write-write
    conflict on the shared RHS tile.
    """
    by_dest: dict = {}
    for t in dag.tasks:
        if t.type == TaskType.SPTRSV_UPDATE:
            by_dest.setdefault(t.i, []).append(t.tid)
    dest = min(d for d, tids in by_dest.items() if len(tids) >= 2)
    first, second = sorted(by_dest[dest])[:2]
    out = [[x for x in b if x != second] for b in batches]
    for b in out:
        if first in b:
            b.append(second)
            break
    return [b for b in out if b]


MUTATIONS = {
    "reverse_batches": _mutate_reverse,
    "drop_last_batch": _mutate_drop_last,
    "co_schedule_write_conflict": _mutate_write_conflict,
    "merge_all_batches": _mutate_merge_all,
    "update_before_diag_solve": _mutate_update_before_diag,
    "co_schedule_rhs_updates": _mutate_co_schedule_rhs_updates,
}


def load_case(path) -> dict:
    """Read one adversarial case file."""
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def run_case(case: dict, subject: str = "case") -> VerificationReport:
    """Execute one case through the matching verifier."""
    kind = case.get("kind")
    if kind == "schedule":
        dag, gpu, records = schedule_for_config(case["golden_config"])
        batches = [sorted(int(t) for t in b.task_ids) for b in records]
        mutation = case.get("mutation")
        if mutation is not None:
            batches = MUTATIONS[mutation](batches, dag)
        return ScheduleVerifier(dag, gpu=gpu).verify_batches(
            batches, subject=subject)
    if kind == "solve_schedule":
        dag, gpu, records = solve_schedule_for_config(case["solve_config"])
        batches = [sorted(int(t) for t in b.task_ids) for b in records]
        mutation = case.get("mutation")
        if mutation is not None:
            batches = MUTATIONS[mutation](batches, dag)
        return ScheduleVerifier(dag, gpu=gpu).verify_batches(
            batches, subject=subject)
    if kind == "trace":
        trace = DistTrace.from_dict(case["trace"])
        return TraceVerifier(trace).verify(subject=subject)
    if kind == "plan":
        # lazy import: repro.verify.plan pulls in repro.cluster, which
        # must not load during repro.verify.__init__
        from repro.verify.plan import PlanSpec, PlanVerifier
        plan = PlanSpec.from_dict(case["plan"])
        return PlanVerifier(plan).verify(subject=subject)
    raise ValueError(f"unknown case kind {kind!r}")


def run_case_file(path) -> tuple:
    """Run a case file; returns ``(report, expected_codes, missed)``.

    ``missed`` lists the declared ``expect`` codes the verifier failed
    to raise — non-empty means the analyzer has lost a check.
    """
    case = load_case(path)
    report = run_case(case, subject=f"case:{pathlib.Path(path).name}")
    expected = list(case.get("expect", []))
    found = report.codes()
    missed = [c for c in expected if c not in found]
    return report, expected, missed

"""Static schedule verification: prove a batch sequence safe, unrun.

The Trojan Horse layer's safety argument is entirely structural: a batch
sequence is a correct execution of a :class:`~repro.core.dag.TaskDAG`
iff every task runs exactly once, no task starts before its
dependencies finish, no two batch-mates write one tile without the
atomic-SSSSM escape hatch, and every batch respects the Collector's
hardware budgets.  :class:`ScheduleVerifier` checks all of that with
array passes over the whole schedule — no execution, no per-task Python
loops — and reports *every* violation as a structured
:class:`~repro.verify.report.VerificationReport` instead of dying on
the first.

Accepted schedule forms:

* a list of :class:`~repro.core.executor.BatchRecord` (timed — the
  dependency check uses simulated start/end times, matching the old
  ``validate_schedule`` semantics), or
* a list of plain task-id sequences (untimed — batches are taken to
  execute strictly in list order, the form the checked-in golden
  schedules use).

The intra-batch hazard rule mirrors the batched numeric kernels of PR 3
exactly: several SSSSM updates may share a target tile inside one batch
because the Executor flags them atomic and applies their stacked
products serially in batch order; any *other* same-tile write pair, and
any read of a tile a batch-mate writes, is a race.

Solve-phase (SpTRSV) schedules verify through the identical machinery:
both solve task types write their RHS block (encoded as tile ``(i, i)``),
and SPTRSV_UPDATE additionally reads its *source* RHS block ``(k, k)`` —
so an update co-batched with its source's diagonal solve is a
read-write hazard, and two writers of one RHS block in a batch are a
write-write hazard (solve tasks have no atomic escape hatch: the solve
DAG's canonical accumulation chains serialise same-destination updates
by construction, which is the static analogue of the SSSSM
serial-apply rule).  Factor tiles are read-only during a solve, so
their reads need no registration — nothing can write them.
"""

from __future__ import annotations

import numpy as np

from repro.core.dag import TaskDAG, _gather_csr
from repro.verify import report as rep
from repro.verify.effects import effect_footprints
from repro.verify.report import VerificationReport, Violation

#: Tolerance on simulated timestamps, matching the old validate_schedule.
TIME_EPS = 1e-12

#: Cap on per-code violation listings so a totally broken schedule still
#: produces a readable (and cheap) report.
MAX_PER_CODE = 100


def _normalize_batches(batches):
    """Split a schedule into id arrays plus optional start/end times."""
    ids, t_start, t_end = [], [], []
    timed = True
    for b in batches:
        if hasattr(b, "task_ids"):
            ids.append(np.asarray(b.task_ids, dtype=np.int64))
            t_start.append(float(b.t_start))
            t_end.append(float(b.t_end))
        else:
            ids.append(np.asarray(list(b), dtype=np.int64))
            timed = False
    if not timed:
        t_start = t_end = None
    return ids, t_start, t_end


class ScheduleVerifier:
    """Vectorized static checks over one DAG's schedules.

    Parameters
    ----------
    dag:
        The task DAG the schedules claim to execute.
    gpu:
        Optional GPU spec (anything exposing ``max_resident_blocks`` and
        ``shared_mem_total_bytes``).  When given, every multi-task batch
        is checked against the Collector budgets; a single oversized
        task running alone is exempt, exactly like the Collector itself.

    Construction precomputes the read/write tile sets of every task from
    the DAG's column arrays, so verifying many schedules of one DAG
    (e.g. a scheduler sweep) pays the setup once.
    """

    def __init__(self, dag: TaskDAG, gpu=None):
        self._dag = dag
        self._gpu = gpu
        n = dag.n_tasks
        if n:
            arrays = dag.task_arrays()
            # read/write tile sets come from the shared effect-footprint
            # layer (repro.verify.effects) — the same derivation the
            # Executor's atomic scan and the plan analyzer use, so the
            # hazard semantics (including the atomic serial-apply rule
            # and the solve phase's lack of one) can never disagree
            fp = effect_footprints(dag)
            self._ntiles = fp.ntiles
            self._write_tile = fp.write_tile
            self._is_atomic_type = fp.is_atomic
            self._read_owner = fp.read_owner
            self._read_tile = fp.read_tile
            self._blocks = arrays.cuda_blocks
            self._shmem = arrays.shared_mem

    # ------------------------------------------------------------------
    # individual checks
    # ------------------------------------------------------------------
    def _check_cycles(self, out: VerificationReport) -> None:
        dag = self._dag
        # a cached critical-path labeling is a proof the Kahn peel
        # already covered every task — skip re-peeling (the peel is the
        # single most expensive verifier pass on deep DAGs)
        if dag.is_verified_acyclic():
            return
        indptr, indices = dag.successor_csr()
        indeg = dag.pred_count.copy()
        frontier = np.flatnonzero(indeg == 0)
        peeled = np.zeros(dag.n_tasks, dtype=bool)
        while frontier.size:
            peeled[frontier] = True
            succ, _ = _gather_csr(indptr, indices, frontier)
            np.subtract.at(indeg, succ, 1)
            frontier = np.unique(succ[indeg[succ] == 0])
        stuck = np.flatnonzero(~peeled)
        if stuck.size:
            out.add(Violation(
                code=rep.DAG_CYCLE,
                message=f"{stuck.size} task(s) sit on a dependency cycle "
                        "and can never become ready",
                task_ids=tuple(int(t) for t in stuck[:MAX_PER_CODE]),
            ))

    def _check_completeness(self, out, flat, valid):
        n = self._dag.n_tasks
        unknown = np.unique(flat[~valid])
        for t in unknown[:MAX_PER_CODE]:
            out.add(Violation(
                code=rep.TASK_UNKNOWN,
                message=f"task id {int(t)} is outside the DAG "
                        f"(0..{n - 1})",
                task_ids=(int(t),),
            ))
        counts = np.bincount(flat[valid], minlength=n)
        for t in np.flatnonzero(counts > 1)[:MAX_PER_CODE]:
            out.add(Violation(
                code=rep.TASK_DUPLICATE,
                message=f"task {int(t)} executed twice "
                        f"({int(counts[t])} occurrences)",
                task_ids=(int(t),),
            ))
        missing = np.flatnonzero(counts == 0)
        if missing.size:
            out.add(Violation(
                code=rep.TASK_MISSING,
                message=f"{missing.size} tasks never executed",
                task_ids=tuple(int(t) for t in missing[:MAX_PER_CODE]),
            ))
        return counts

    def _check_dependencies(self, out, flat, valid, bidx, starts, ends,
                            counts):
        """Every DAG edge must resolve before its consumer starts."""
        dag = self._dag
        n = dag.n_tasks
        start_of = np.full(n, np.inf)
        end_of = np.full(n, -np.inf)
        batch_of = np.full(n, -1, dtype=np.int64)
        np.minimum.at(start_of, flat[valid], starts[valid])
        np.maximum.at(end_of, flat[valid], ends[valid])
        batch_of[flat[valid]] = bidx[valid]
        indptr, indices = dag.successor_csr()
        producer = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        consumer = indices
        both = (counts[producer] > 0) & (counts[consumer] > 0)
        bad = both & (start_of[consumer] < end_of[producer] - TIME_EPS)
        for e in np.flatnonzero(bad)[:MAX_PER_CODE]:
            p, c = int(producer[e]), int(consumer[e])
            out.add(Violation(
                code=rep.DEP_ORDER,
                message=f"task {c} started before its dependency {p} "
                        "finished",
                task_ids=(c, p),
                batch_ids=(int(batch_of[c]), int(batch_of[p])),
            ))

    def _check_hazards(self, out, flat, valid, bidx):
        """Intra-batch write-write and read-write tile conflicts.

        Same-target SSSSM groups are legal (the Executor flags them
        atomic and applies the stacked products serially in batch
        order); everything else sharing a written tile inside one batch
        is a race, as is reading a tile a batch-mate writes.
        """
        ids = flat[valid]
        bx = bidx[valid]
        if not ids.size:
            return
        wt = self._write_tile[ids]
        key = bx * self._ntiles + wt
        order = np.argsort(key, kind="stable")
        sk = key[order]
        run_starts = np.flatnonzero(np.r_[True, sk[1:] != sk[:-1]])
        run_len = np.diff(np.r_[run_starts, sk.size])
        atomic_sorted = self._is_atomic_type[ids[order]].astype(np.int64)
        run_atomic = np.add.reduceat(atomic_sorted, run_starts)
        ww = np.flatnonzero((run_len > 1) & (run_atomic < run_len))
        for r in ww[:MAX_PER_CODE]:
            members = ids[order[run_starts[r]:run_starts[r] + run_len[r]]]
            tile = int(sk[run_starts[r]] % self._ntiles)
            nb = self._dag.part.nblocks
            out.add(Violation(
                code=rep.HAZARD_WW,
                message=f"non-atomic write-write conflict on tile "
                        f"({tile // nb},{tile % nb}): tasks "
                        f"{sorted(int(t) for t in members)} share one batch",
                task_ids=tuple(sorted(int(t) for t in members)),
                batch_ids=(int(sk[run_starts[r]] // self._ntiles),),
            ))
        # read-write: gather every scheduled read, look its (batch, tile)
        # key up among the batch's writes
        batch_of = np.full(self._dag.n_tasks, -1, dtype=np.int64)
        batch_of[ids] = bx
        r_owner = self._read_owner
        sched = batch_of[r_owner] >= 0
        r_owner = r_owner[sched]
        r_tile = self._read_tile[sched]
        rkey = batch_of[r_owner] * self._ntiles + r_tile
        pos = np.searchsorted(sk, rkey, side="left")
        hit = (pos < sk.size) & (sk[np.minimum(pos, sk.size - 1)] == rkey)
        nb = self._dag.part.nblocks
        for q in np.flatnonzero(hit)[:MAX_PER_CODE]:
            writer = int(ids[order[pos[q]]])
            reader = int(r_owner[q])
            if writer == reader:  # pragma: no cover - defensive
                continue
            tile = int(r_tile[q])
            out.add(Violation(
                code=rep.HAZARD_RW,
                message=f"task {reader} reads tile "
                        f"({tile // nb},{tile % nb}) that task {writer} "
                        "writes in the same batch",
                task_ids=(reader, writer),
                batch_ids=(int(batch_of[reader]),),
            ))

    def _check_capacity(self, out, flat, valid, bidx, n_batches, sizes):
        gpu = self._gpu
        max_blocks = gpu.max_resident_blocks
        max_shmem = gpu.shared_mem_total_bytes
        blocks = np.zeros(n_batches, dtype=np.int64)
        shmem = np.zeros(n_batches, dtype=np.int64)
        np.add.at(blocks, bidx[valid], self._blocks[flat[valid]])
        np.add.at(shmem, bidx[valid], self._shmem[flat[valid]])
        # a single oversized task may run alone (Collector rule)
        multi = sizes > 1
        for b in np.flatnonzero(multi & (blocks > max_blocks))[:MAX_PER_CODE]:
            out.add(Violation(
                code=rep.CAPACITY_BLOCKS,
                message=f"batch {int(b)} needs {int(blocks[b])} CUDA "
                        f"blocks, budget is {int(max_blocks)}",
                batch_ids=(int(b),),
            ))
        for b in np.flatnonzero(multi & (shmem > max_shmem))[:MAX_PER_CODE]:
            out.add(Violation(
                code=rep.CAPACITY_SHMEM,
                message=f"batch {int(b)} stages {int(shmem[b])} B of "
                        f"shared memory, budget is {int(max_shmem)} B",
                batch_ids=(int(b),),
            ))

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def verify_batches(self, batches, subject: str = "schedule",
                       hazards: bool = True) -> VerificationReport:
        """Run every applicable check; returns the full violation set.

        ``hazards=False`` skips the intra-batch tile-conflict checks —
        for DAGs whose tile coordinates are synthetic metadata rather
        than real access sets (e.g. random property-test DAGs), the
        dependency edges alone define correctness.
        """
        checks = ["cycles", "completeness", "dependencies"]
        if hazards:
            checks.append("hazards")
        if self._gpu is not None:
            checks.append("capacity")
        out = VerificationReport(subject=subject, checks=tuple(checks))
        dag = self._dag
        if dag.n_tasks == 0:
            if any(len(getattr(b, "task_ids", b)) for b in batches):
                out.add(Violation(
                    code=rep.TASK_UNKNOWN,
                    message="schedule runs tasks but the DAG is empty",
                ))
            return out
        self._check_cycles(out)
        ids, t_start, t_end = _normalize_batches(batches)
        sizes = np.fromiter((a.size for a in ids), dtype=np.int64,
                            count=len(ids))
        flat = (np.concatenate(ids) if ids
                else np.empty(0, dtype=np.int64))
        bidx = np.repeat(np.arange(len(ids), dtype=np.int64), sizes)
        if t_start is not None:
            starts = np.repeat(np.asarray(t_start), sizes)
            ends = np.repeat(np.asarray(t_end), sizes)
        else:
            # untimed: batches execute strictly in list order — a batch
            # "runs" over [index, index+1), so a dependency landing in
            # the same or an earlier batch is a violation
            starts = bidx.astype(np.float64)
            ends = bidx.astype(np.float64) + 1.0
        valid = (flat >= 0) & (flat < dag.n_tasks)
        counts = self._check_completeness(out, flat, valid)
        self._check_dependencies(out, flat, valid, bidx, starts, ends,
                                 counts)
        if hazards:
            self._check_hazards(out, flat, valid, bidx)
        if self._gpu is not None:
            self._check_capacity(out, flat, valid, bidx, len(ids), sizes)
        return out


def verify_schedule(dag: TaskDAG, batches, gpu=None,
                    subject: str = "schedule") -> VerificationReport:
    """One-shot convenience wrapper around :class:`ScheduleVerifier`."""
    return ScheduleVerifier(dag, gpu=gpu).verify_batches(batches,
                                                         subject=subject)

"""AST-based repo invariant linter (``repro.verify.lint``).

The repo has performance/correctness invariants that unit tests cannot
see — they are properties of the *source*, not of any run:

``per-nnz-loop``
    Hot sparse/kernel modules must stay vectorized: a Python-level loop
    over nonzeros (``for .. in range(.. indptr ..)``, iterating
    ``.indices``/``.data`` directly) silently turns an O(nnz) NumPy pass
    into an O(nnz) interpreter loop.  Applies to the hot-module set
    (:data:`HOT_NNZ_MODULES`); the deliberately loopy reference kernels
    (``kernels/dense.py``, ``kernels/reference_lu.py``,
    ``kernels/tilekernels.py``) are correctness oracles and exempt.

``unpicklable-recipe``
    Sweep work items cross process boundaries; a ``lambda`` inside a
    recipe constructor (``SweepItem``/``SuiteEntrySpec``/…) or submitted
    to a pool dies in ``pickle`` only *at run time* on a worker.

``cache-mutation``
    Objects returned by the pattern-keyed analysis cache
    (``fill_for``/``block_analysis_for``/``get_or_compute``) are shared
    across engines; mutating one corrupts every later cache hit.

``tasktype-dispatch``
    Dispatch tables keyed by ``TaskType.X`` literals must cover every
    kernel type, so adding a member can never silently fall through.

``event-kind-dispatch``
    An ``if``/``elif`` chain comparing against the event-kind constants
    of ``cluster/eventarena.py`` (``K_READY`` … ``K_DEATH``) must either
    mention every kind or end in a plain ``else`` — a new event kind
    must never silently fall through an engine dispatch chain.

``arena-mutation``
    The event arena's flat buffers are shared by every rank's scheduler;
    mutating them (directly or through an alias like
    ``spill = arena._spill``) is only legal inside the arena's own
    methods or inside a function that *declares* the effect with
    ``# verify: effects(arena)`` on its ``def`` line — the engine entry
    points.  Anything else is an undeclared cross-rank side effect.

A finding is waived by putting ``# verify: waive(<rule>)`` on the
offending line or the line directly above it — waivers are explicit and
grep-able, never implicit.
"""

from __future__ import annotations

import ast
import pathlib
import re

from repro.core.task import TaskType
from repro.verify import report as rep
from repro.verify.report import VerificationReport, Violation

#: rule name -> violation code
RULES = {
    "per-nnz-loop": rep.LINT_NNZ_LOOP,
    "unpicklable-recipe": rep.LINT_UNPICKLABLE_RECIPE,
    "cache-mutation": rep.LINT_CACHE_MUTATION,
    "tasktype-dispatch": rep.LINT_TASKTYPE_DISPATCH,
    "event-kind-dispatch": rep.LINT_EVENT_DISPATCH,
    "arena-mutation": rep.LINT_ARENA_MUTATION,
}

#: Module path fragments the per-nnz-loop rule binds to (hot paths the
#: scheduler/kernel layer promises to keep vectorized).
HOT_NNZ_MODULES = (
    "sparse/",
    "kernels/batched.py",
    "kernels/flops.py",
    "cluster/engine.py",
    "cluster/eventarena.py",
    "parallel/",
)

#: Constructors whose arguments must stay picklable (sweep recipes).
RECIPE_CTORS = frozenset({
    "SweepItem", "SweepRow", "SuiteEntrySpec", "SuiteEntry",
})

#: AnalysisCache accessors whose return values are shared and immutable.
CACHE_ACCESSORS = frozenset({
    "fill_for", "block_analysis_for", "get_or_compute",
})

#: Method names that mutate their receiver in place.
MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse", "fill",
})

_WAIVE_RE = re.compile(r"#\s*verify:\s*waive\(\s*([a-z0-9\-_,\s]+?)\s*\)")

_EFFECTS_RE = re.compile(r"#\s*verify:\s*effects\(\s*arena\s*\)")

_TASKTYPE_MEMBERS = frozenset(t.name for t in TaskType)

#: The event kinds of ``cluster/eventarena.py``; a unit test asserts
#: this set matches the real ``K_*`` constants, so adding a kind there
#: without extending the rule fails the build.
EVENT_KIND_MEMBERS = frozenset({
    "K_READY", "K_DONE", "K_WAKE", "K_XMIT", "K_DELIVER", "K_DEATH",
})


def _waivers(source: str) -> dict:
    """Map line number -> set of waived rule names (line or line above)."""
    out: dict = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _WAIVE_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            out.setdefault(lineno, set()).update(rules)
            out.setdefault(lineno + 1, set()).update(rules)
    return out


def _effect_decls(source: str) -> frozenset:
    """Line numbers covered by an ``# verify: effects(arena)`` marker
    (the marker's line and the line below, so it can sit above a
    ``def``)."""
    lines = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if _EFFECTS_RE.search(line):
            lines.add(lineno)
            lines.add(lineno + 1)
    return frozenset(lines)


def _names_in(node: ast.AST):
    """Identifier strings appearing anywhere under ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _root_name(node: ast.AST) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _call_name(node: ast.Call) -> str | None:
    """The called function/method's terminal name."""
    f = node.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


class _FileLinter(ast.NodeVisitor):
    """Single-file rule engine; collects violations with waivers applied."""

    def __init__(self, path: str, source: str, rules, hot: bool):
        self.path = path
        self.rules = rules
        self.hot = hot
        self.waivers = _waivers(source)
        self.found: list[Violation] = []
        # names bound from cache accessors, per enclosing function scope
        self._tainted_stack: list[set] = [set()]
        # names aliasing arena internals, per enclosing function scope
        self._arena_stack: list[set] = [set()]
        # whether the current scope may mutate arenas: inside an
        # ``*Arena`` class body, or inside a function (or closure of
        # one) marked ``# verify: effects(arena)``
        self._effect_lines = _effect_decls(source)
        self._effects_ok: list[bool] = [False]
        # elif nodes already folded into an outer dispatch chain
        self._chained: set = set()

    # -- plumbing ------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule not in self.rules:
            return
        if rule in self.waivers.get(node.lineno, ()):
            return
        self.found.append(Violation(
            code=RULES[rule], message=message,
            file=self.path, line=node.lineno,
        ))

    # -- scope handling for cache-mutation / arena-mutation ------------
    def _visit_scope(self, node) -> None:
        self._tainted_stack.append(set())
        self._arena_stack.append(set())
        self._effects_ok.append(
            self._effects_ok[-1]
            or node.lineno in self._effect_lines)
        self.generic_visit(node)
        self._effects_ok.pop()
        self._arena_stack.pop()
        self._tainted_stack.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._effects_ok.append(
            self._effects_ok[-1] or "Arena" in node.name)
        self.generic_visit(node)
        self._effects_ok.pop()

    @property
    def _tainted(self) -> set:
        return self._tainted_stack[-1]

    def _is_arena_root(self, name: str | None) -> bool:
        if name is None:
            return False
        return name == "arena" or name.endswith("_arena") \
            or name in self._arena_stack[-1]

    # -- rule: per-nnz-loop --------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self.hot:
            self._check_nnz_loop(node)
        self.generic_visit(node)

    def _check_nnz_loop(self, node: ast.For) -> None:
        it = node.iter
        suspicious = False
        if isinstance(it, ast.Call) and _call_name(it) == "range":
            names = set()
            for arg in it.args:
                names.update(_names_in(arg))
            if "indptr" in names or any("nnz" in n for n in names):
                suspicious = True
        elif isinstance(it, ast.Attribute) and it.attr in ("indices", "data"):
            suspicious = True
        elif isinstance(it, ast.Call) and _call_name(it) == "zip":
            for arg in it.args:
                if isinstance(arg, ast.Attribute) and \
                        arg.attr in ("indices", "data"):
                    suspicious = True
        if suspicious:
            self._emit(
                "per-nnz-loop", node,
                "Python-level per-nnz loop in a hot module — vectorize "
                "with array ops, or waive with "
                "'# verify: waive(per-nnz-loop)'",
            )

    # -- rule: event-kind-dispatch -------------------------------------
    def visit_If(self, node: ast.If) -> None:
        if id(node) not in self._chained:
            self._check_event_dispatch(node)
        self.generic_visit(node)

    def _check_event_dispatch(self, node: ast.If) -> None:
        """Walk one whole ``if``/``elif`` chain starting at ``node``."""
        mentioned: set = set()
        cur: ast.If | None = node
        has_else = False
        while cur is not None:
            mentioned.update(n for n in _names_in(cur.test)
                             if n in EVENT_KIND_MEMBERS)
            nxt = cur.orelse
            if len(nxt) == 1 and isinstance(nxt[0], ast.If):
                cur = nxt[0]
                self._chained.add(id(cur))
            else:
                has_else = bool(nxt)
                cur = None
        if mentioned and not has_else \
                and mentioned != EVENT_KIND_MEMBERS:
            missing = sorted(EVENT_KIND_MEMBERS - mentioned)
            self._emit(
                "event-kind-dispatch", node,
                "event-kind dispatch chain is not exhaustive — missing "
                f"{', '.join(missing)} and no trailing else; a new "
                "event kind would silently fall through",
            )

    # -- rule: unpicklable-recipe + mutation rules (calls) -------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in RECIPE_CTORS or name == "submit":
            what = (f"recipe constructor {name}()" if name in RECIPE_CTORS
                    else "executor submit()")
            for sub in ast.walk(node):
                if isinstance(sub, ast.Lambda):
                    self._emit(
                        "unpicklable-recipe", sub,
                        f"lambda inside {what} cannot cross a process "
                        "boundary (pickle fails in the worker)",
                    )
                    break
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATORS:
            root = _root_name(node.func.value)
            if root in self._tainted:
                self._emit(
                    "cache-mutation", node,
                    f"'{root}.{node.func.attr}(...)' mutates an object "
                    "returned by the shared analysis cache",
                )
            if not self._effects_ok[-1] and self._is_arena_root(root):
                self._emit(
                    "arena-mutation", node,
                    f"'{root}.{node.func.attr}(...)' mutates shared "
                    "arena state outside a declared "
                    "'# verify: effects(arena)' entry point",
                )
        if name in ("heappush", "heappop", "heapify", "heapreplace") \
                and node.args and not self._effects_ok[-1]:
            root = _root_name(node.args[0])
            if self._is_arena_root(root):
                self._emit(
                    "arena-mutation", node,
                    f"{name}() on arena-backed heap '{root}' outside a "
                    "declared '# verify: effects(arena)' entry point",
                )
        self.generic_visit(node)

    # -- rules: cache-mutation + arena-mutation (assignments) ----------
    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call) \
                and _call_name(node.value) in CACHE_ACCESSORS:
            for target in node.targets:
                elts = target.elts if isinstance(target,
                                                 (ast.Tuple, ast.List)) \
                    else [target]
                for e in elts:
                    if isinstance(e, ast.Name):
                        self._tainted.add(e.id)
            self.generic_visit(node)
            return
        # ``spill = arena._spill`` aliases arena internals: writes
        # through ``spill`` are arena mutations from here on
        if isinstance(node.value, (ast.Attribute, ast.Subscript)) \
                and self._is_arena_root(_root_name(node.value)):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._arena_stack[-1].add(target.id)
        self._check_mutating_target(node, node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutating_target(node, [node.target])
        self.generic_visit(node)

    def _check_mutating_target(self, node, targets) -> None:
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                root = _root_name(target)
                if root in self._tainted:
                    self._emit(
                        "cache-mutation", node,
                        f"assignment into '{root}' mutates an object "
                        "returned by the shared analysis cache",
                    )
                if not self._effects_ok[-1] \
                        and self._is_arena_root(root):
                    self._emit(
                        "arena-mutation", node,
                        f"assignment into '{root}' mutates shared arena "
                        "state outside a declared "
                        "'# verify: effects(arena)' entry point",
                    )

    # -- rule: tasktype-dispatch ---------------------------------------
    def visit_Dict(self, node: ast.Dict) -> None:
        members = set()
        for key in node.keys:
            if isinstance(key, ast.Attribute) \
                    and isinstance(key.value, ast.Name) \
                    and key.value.id == "TaskType":
                members.add(key.attr)
        if members and members != _TASKTYPE_MEMBERS:
            missing = sorted(_TASKTYPE_MEMBERS - members)
            self._emit(
                "tasktype-dispatch", node,
                "TaskType dispatch table is not exhaustive — missing "
                f"{', '.join(missing)}",
            )
        self.generic_visit(node)


def _is_hot(rel_path: str) -> bool:
    rel = rel_path.replace("\\", "/")
    return any(frag in rel for frag in HOT_NNZ_MODULES)


def lint_source(source: str, path: str = "<string>", rules=None,
                hot: bool | None = None) -> list:
    """Lint one source string; returns the violation list."""
    rules = set(RULES) if rules is None else set(rules)
    unknown = rules - set(RULES)
    if unknown:
        raise ValueError(f"unknown lint rules: {sorted(unknown)}")
    if hot is None:
        hot = _is_hot(path)
    tree = ast.parse(source, filename=path)
    linter = _FileLinter(path, source, rules, hot)
    linter.visit(tree)
    return linter.found


def lint_file(path, rules=None) -> list:
    """Lint one file; returns the violation list."""
    p = pathlib.Path(path)
    return lint_source(p.read_text(encoding="utf-8"), path=str(p),
                       rules=rules)


def lint_paths(paths, rules=None, subject: str = "lint"
               ) -> VerificationReport:
    """Lint files and/or directory trees into one report.

    Directories are walked recursively for ``*.py`` files; the per-file
    hot-module classification keys off each file's path.
    """
    out = VerificationReport(
        subject=subject,
        checks=tuple(sorted(set(RULES) if rules is None else set(rules))),
    )
    files: list[pathlib.Path] = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    for f in files:
        for v in lint_file(f, rules=rules):
            out.add(v)
    return out

"""Shared per-task effect footprints (``repro.verify.effects``).

Every analyzer that reasons about data access — the Executor's in-batch
atomic scan, :class:`~repro.verify.schedule.ScheduleVerifier`'s hazard
pass, and :class:`~repro.verify.plan.PlanVerifier`'s happens-before race
detection — must agree on *what each task reads and writes*.  This leaf
module is the single definition of those footprints, derived from the
task coordinate columns alone, so the analyzers can never drift apart:

========================  =====================  =========================
TaskType                  writes                 reads (hazard-relevant)
========================  =====================  =========================
``GETRF(k)``              tile ``(k, k)``        — (factors in place)
``TSTRF(i, k)``           tile ``(i, k)``        tile ``(k, k)``
``GEESM(k, j)``           tile ``(k, j)``        tile ``(k, k)``
``SSSSM(i, j, k)``        tile ``(i, j)``        tiles ``(i, k)``, ``(k, j)``
``SPTRSV_DIAG(k)``        RHS block ``(k, k)``   — (factor tiles frozen)
``SPTRSV_UPDATE(i, k)``   RHS block ``(i, i)``   RHS block ``(k, k)``
========================  =====================  =========================

The SSSSM *target* read (its accumulate destination) is deliberately not
a read footprint: same-target SSSSM groups are the paper's atomic
serial-apply case (Figure 4's 9S0/9S1), the one legal same-tile overlap
inside a batch.  That atomic escape is per-device only — the plan
analyzer does *not* honour it across ranks.  Solve tasks have no atomic
escape at all: their destination accumulates are ordered by the solve
DAG's canonical chains.

Import-order note: this module may import only :mod:`numpy` and
:mod:`repro.core.task` — it is pulled in by ``repro.verify.__init__``
before :mod:`repro.verify.schedule` and lazily by
:meth:`repro.core.dag.TaskDAG.task_arrays`, both of which run while
``repro.core`` may still be mid-import.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.task import TaskType

#: Task types whose same-tile write groups may co-batch with atomic
#: accumulation (the serial-apply escape hatch).  Exactly the Schur
#: update; solve-phase accumulates are ordered by canonical chains and
#: get no escape.
ATOMIC_TASK_TYPES = frozenset({TaskType.SSSSM})


@dataclass(frozen=True)
class EffectFootprints:
    """Column-oriented read/write footprints for one DAG's tasks.

    Attributes
    ----------
    nb, ntiles:
        Block count and flat tile-id space (``nb * nb``); RHS block
        ``b`` is encoded as tile ``(b, b)`` so solve and factor
        schedules verify through identical machinery.
    write_tile:
        Flat output tile ``i * nb + j`` per task (every task type writes
        exactly one tile/RHS block).
    is_atomic:
        True where the task's write participates in the atomic
        serial-apply escape (:data:`ATOMIC_TASK_TYPES`).
    read_owner, read_tile:
        Parallel arrays: entry ``q`` says task ``read_owner[q]`` reads
        tile ``read_tile[q]``.  One task may own several entries (SSSSM
        reads both factor panels).
    """

    nb: int
    ntiles: int
    write_tile: np.ndarray
    is_atomic: np.ndarray
    read_owner: np.ndarray
    read_tile: np.ndarray


def atomic_type_mask(type_code: np.ndarray) -> np.ndarray:
    """Boolean mask of atomic-capable tasks (:data:`ATOMIC_TASK_TYPES`)."""
    code = np.asarray(type_code)
    mask = np.zeros(code.shape, dtype=bool)
    for t in ATOMIC_TASK_TYPES:
        mask |= code == int(t)
    return mask


def atomic_write_targets(type_code: np.ndarray, i: np.ndarray,
                         j: np.ndarray, nb: int) -> np.ndarray:
    """``TaskArrays.target`` column: flat output tile for atomic-capable
    tasks, ``-1`` otherwise — the key the in-batch write-conflict scan
    (:func:`repro.verify.hazards.batch_atomic_flags`) groups on."""
    return np.where(atomic_type_mask(type_code),
                    np.asarray(i) * nb + np.asarray(j), -1)


def footprints_from_arrays(type_code: np.ndarray, i: np.ndarray,
                           j: np.ndarray, k: np.ndarray,
                           nb: int) -> EffectFootprints:
    """Derive :class:`EffectFootprints` from the task coordinate columns.

    The read-entry concatenation order (TSTRF/GEESM diagonal reads,
    SSSSM L-panel reads, SSSSM U-panel reads, SPTRSV source reads) is
    part of the contract: downstream verdict ordering — and therefore
    golden-suite bit-identity — depends on it.
    """
    code = np.asarray(type_code)
    i = np.asarray(i)
    j = np.asarray(j)
    k = np.asarray(k)
    write_tile = i * nb + j
    is_atomic = atomic_type_mask(code)
    tri = (code == int(TaskType.TSTRF)) | (code == int(TaskType.GEESM))
    sel_tri = np.flatnonzero(tri)
    sel_s = np.flatnonzero(is_atomic)
    sel_u = np.flatnonzero(code == int(TaskType.SPTRSV_UPDATE))
    read_owner = np.concatenate([sel_tri, sel_s, sel_s, sel_u])
    read_tile = np.concatenate([
        k[sel_tri] * nb + k[sel_tri],
        i[sel_s] * nb + k[sel_s],
        k[sel_s] * nb + j[sel_s],
        k[sel_u] * nb + k[sel_u],
    ])
    return EffectFootprints(
        nb=nb, ntiles=nb * nb, write_tile=write_tile, is_atomic=is_atomic,
        read_owner=read_owner, read_tile=read_tile,
    )


def effect_footprints(dag) -> EffectFootprints:
    """Footprints for a :class:`~repro.core.dag.TaskDAG` (cached columns)."""
    arrays = dag.task_arrays()
    return footprints_from_arrays(arrays.type_code, arrays.i, arrays.j,
                                  arrays.k, dag.part.nblocks)

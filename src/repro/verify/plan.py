"""Whole-plan happens-before certification (``repro.verify.plan``).

The distributed simulator executes a *plan*: a task DAG, a per-rank
program order, 2-D block-cyclic tile ownership, and (optionally) a fault
protocol.  ``TraceVerifier`` audits one *recorded run* of such a plan;
this module certifies the plan itself, **before** any rank executes it,
so races the simulator's particular timing never exercises are still
caught.  Four passes, all emitting stable-coded
:class:`~repro.verify.report.VerificationReport` violations:

1. **Effect-footprint inference** — per-task read/write footprints come
   from the shared :mod:`repro.verify.effects` layer (the same
   derivation ``ScheduleVerifier`` and the Executor use).  A DAG edge
   connecting two *disjoint* footprints is reported
   (``PLAN_EFFECT_EDGE``): the dependency structure and the access
   semantics disagree, so the remaining passes would be proving the
   wrong theorem.
2. **Happens-before race detection** — vector clocks propagate over
   intra-rank program order plus every DAG edge (same-rank completion
   order, cross-rank eager message).  Two tasks conflict when their
   footprints overlap with at least one write; a conflicting cross-rank
   pair not ordered by HB is a race (``PLAN_RACE_WW`` /
   ``PLAN_RACE_RW``).  The atomic SSSSM serial-apply escape is
   *per-device* and deliberately not honoured across ranks.
3. **Deadlock / liveness** — a cycle in the HB graph (program order
   composed with message edges) stalls every rank on the cycle forever;
   the retransmit protocol of :mod:`repro.cluster.faults` cannot help,
   because retransmits re-deliver payloads but never reorder program
   order (``PLAN_WAIT_CYCLE``).  Unscheduled producers/consumers orphan
   their cross-rank edges (``PLAN_ORPHAN_RECV`` / ``PLAN_ORPHAN_SEND``),
   and a rank death with checkpoint re-homing disabled makes every send
   into or out of the dead rank unsendable (``PLAN_DEAD_SEND``).
4. **Per-rank memory high-water mark** — factors are never freed during
   a factorisation and an HB-consistent worst-case interleaving may
   leave *every* remotely received panel resident simultaneously, so
   the certified high-water mark is owned factor bytes plus all distinct
   received tiles.  Exceeding the :mod:`repro.cluster.memory` budget is
   ``PLAN_MEM_HWM`` — strictly stronger than the trace verifier's
   owned-bytes check, which is the point: a budget that only survives
   because one simulated timing happened to stagger the receives is not
   certified.

What stays dynamic-only: properties of the *recorded event log* itself
— a simulator that executes correctly but fails to log a send
(``TRACE_MISSING_SEND``) is invisible to any static analysis (see
:data:`DYNAMIC_ONLY` / :data:`STATIC_TWIN`).

Like :mod:`repro.verify.golden`, this module is deliberately **not**
imported from ``repro.verify.__init__``: it needs the fully built
:mod:`repro.cluster` (grid, faults, memory constants), which itself
imports the verify leaf modules.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field, replace

import numpy as np

from repro.cluster.faults import FaultSpec
from repro.cluster.grid import ProcessGrid
from repro.cluster.memory import BYTES_PER_NNZ, USABLE_FRACTION
from repro.core.task import TaskType
from repro.verify import report as rep
from repro.verify.effects import EffectFootprints, footprints_from_arrays
from repro.verify.report import VerificationReport, Violation

#: Cap on per-code violation listings (mirrors ScheduleVerifier).
MAX_PER_CODE = 100

#: Dynamic trace-verifier codes with a static plan-analysis twin: every
#: adversarial golden the dynamic side catches under the key code must
#: be caught statically under the value code (asserted by the
#: differential consistency test).
STATIC_TWIN = {
    rep.TRACE_UNMATCHED_SEND: rep.PLAN_ORPHAN_SEND,
    rep.TRACE_EARLY_CONSUME: rep.PLAN_RACE_RW,
    rep.TRACE_MEM_BUDGET: rep.PLAN_MEM_HWM,
    rep.TRACE_TASK_MISSING: rep.TASK_MISSING,
    rep.TRACE_DEAD_SEND: rep.PLAN_DEAD_SEND,
}

#: Dynamic codes with no static twin — they describe defects of the
#: *recorded log*, not of the plan: a run whose trace omits a send that
#: must have happened can only be caught by inspecting that trace.
DYNAMIC_ONLY = frozenset({rep.TRACE_MISSING_SEND})


@dataclass
class PlanSpec:
    """One distributed plan, normalised to flat arrays.

    Built either from a real :class:`~repro.core.dag.TaskDAG` plus a
    :class:`~repro.cluster.grid.ProcessGrid`
    (:meth:`from_dag` — ranks follow owner-compute, program order is the
    canonical level-schedule linearisation), or from a hand-written JSON
    plan (:meth:`from_dict` — explicit per-task ranks and per-rank
    orders, the form the adversarial golden plans use).

    Attributes
    ----------
    type_code, i, j, k, nnz:
        Per-task columns (``TaskType`` as int, tile coordinates,
        structural nonzeros).
    edges:
        DAG edges as an ``(E, 2)`` ``(producer, consumer)`` array.
    nb:
        Block count — flat tile ids are ``i * nb + j``.
    nprocs, rank:
        Rank count and the executing rank per task.
    order:
        Per-rank program order (list of task-id arrays, one per rank).
    faults:
        Optional fault protocol the liveness pass composes with.
    checkpointing:
        Whether checkpoint re-homing is available after a rank death
        (False when the spec's ``checkpoint_interval`` is infinite).
    mem_budget_bytes:
        Per-rank memory budget; ``None`` skips the memory pass.
    msg_scale:
        Message-size multiplier, matching ``DistributedSimulator``.
    lvl:
        Optional per-task topological (longest-path) DAG level hint.
        :meth:`from_dag` fills it from the level schedule so the
        verifier's fast happens-before path skips recomputing it; the
        verifier validates the hint before trusting it.
    """

    type_code: np.ndarray
    i: np.ndarray
    j: np.ndarray
    k: np.ndarray
    nnz: np.ndarray
    edges: np.ndarray
    nb: int
    nprocs: int
    rank: np.ndarray
    order: list = field(default_factory=list)
    faults: FaultSpec | None = None
    checkpointing: bool = True
    mem_budget_bytes: float | None = None
    msg_scale: float = 1.0
    lvl: np.ndarray | None = None

    @property
    def n_tasks(self) -> int:
        return int(self.type_code.shape[0])

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")
        if len(self.order) != self.nprocs:
            raise ValueError(
                f"order must list one sequence per rank "
                f"({len(self.order)} != {self.nprocs})")
        if self.rank.size and (
                self.rank.min() < 0 or self.rank.max() >= self.nprocs):
            raise ValueError("task rank outside the process grid")

    @classmethod
    def from_dag(cls, dag, grid: ProcessGrid,
                 faults: FaultSpec | None = None, gpu=None,
                 mem_budget_bytes: float | None = None,
                 msg_scale: float = 1.0) -> "PlanSpec":
        """The plan ``DistributedSimulator`` would execute.

        Ranks follow owner-compute (a task runs on the owner of its
        output tile) and the per-rank program order is the canonical
        level-schedule linearisation restricted to each rank — the
        HB-consistent order every dynamic policy refines.
        """
        arrays = dag.task_arrays()
        n = dag.n_tasks
        rank = (grid.owner_array(arrays.i, arrays.j) if n
                else np.empty(0, dtype=np.int64))
        indptr, indices = dag.successor_csr()
        prod = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        edges = (np.stack([prod, indices], axis=1) if indices.size
                 else np.empty((0, 2), dtype=np.int64))
        lvl = np.zeros(n, dtype=np.int64)
        if n:
            levels = dag.level_schedule()
            for d, ids in enumerate(levels):
                lvl[ids] = d
            lin = np.concatenate(levels)
            lin_pos = np.empty(n, dtype=np.int64)
            lin_pos[lin] = np.arange(n, dtype=np.int64)
            by_rank = np.lexsort((lin_pos, rank))
            bounds = np.searchsorted(rank[by_rank], np.arange(grid.nprocs + 1))
            order = [by_rank[bounds[r]:bounds[r + 1]]
                     for r in range(grid.nprocs)]
        else:
            order = [np.empty(0, dtype=np.int64)
                     for _ in range(grid.nprocs)]
        if mem_budget_bytes is None and gpu is not None:
            mem_budget_bytes = USABLE_FRACTION * gpu.memory_gb * 1e9
        return cls(
            type_code=arrays.type_code.astype(np.int64) if n
            else np.empty(0, dtype=np.int64),
            i=arrays.i if n else np.empty(0, dtype=np.int64),
            j=arrays.j if n else np.empty(0, dtype=np.int64),
            k=arrays.k if n else np.empty(0, dtype=np.int64),
            nnz=arrays.nnz if n else np.empty(0, dtype=np.int64),
            edges=edges, nb=dag.part.nblocks, nprocs=grid.nprocs,
            rank=rank, order=order, faults=faults,
            checkpointing=(faults is None
                           or math.isfinite(faults.checkpoint_interval)),
            mem_budget_bytes=mem_budget_bytes, msg_scale=msg_scale,
            lvl=lvl,
        )

    @classmethod
    def from_execution(cls, dag, grid: ProcessGrid, batches,
                       faults: FaultSpec | None = None, gpu=None,
                       mem_budget_bytes: float | None = None,
                       msg_scale: float = 1.0) -> "PlanSpec":
        """The plan a real batched execution dispatches.

        Same owner-compute ranks as :meth:`from_dag`, but the per-rank
        program order comes from the *actual* batch sequence: batches
        run in emission order, and within a batch each rank executes
        its owner-slice in batch order — exactly how
        ``repro.parallel.ParallelExecutor`` drives its workers.  The
        batch sequence must cover every DAG task exactly once.
        """
        base = cls.from_dag(dag, grid, faults=faults, gpu=gpu,
                            mem_budget_bytes=mem_budget_bytes,
                            msg_scale=msg_scale)
        if dag.n_tasks:
            flat = (np.concatenate([np.asarray(b, dtype=np.int64)
                                    for b in batches])
                    if len(batches) else np.empty(0, dtype=np.int64))
            if (flat.size != dag.n_tasks
                    or np.unique(flat).size != dag.n_tasks):
                raise ValueError(
                    "batch sequence does not cover the DAG exactly once")
            owners = base.rank[flat]
            order = [flat[owners == r] for r in range(grid.nprocs)]
            return replace(base, order=order)
        return base

    def to_dict(self) -> dict:
        """Serialise to the :meth:`from_dict` golden-plan JSON payload.

        Fault specs are not serialised — golden plans derived from real
        executions are fault-free.
        """
        if self.faults is not None:
            raise ValueError("to_dict serialises fault-free plans only")
        tasks = [
            {"type": TaskType(int(c)).name, "i": int(i), "j": int(j),
             "k": int(k), "nnz": int(z), "rank": int(r)}
            for c, i, j, k, z, r in zip(
                self.type_code.tolist(), self.i.tolist(), self.j.tolist(),
                self.k.tolist(), self.nnz.tolist(), self.rank.tolist())
        ]
        payload = {
            "tasks": tasks,
            "edges": self.edges.tolist(),
            "nb": int(self.nb),
            "nprocs": int(self.nprocs),
            "order": [np.asarray(o).tolist() for o in self.order],
            "msg_scale": float(self.msg_scale),
        }
        if self.mem_budget_bytes is not None:
            payload["mem_budget_bytes"] = float(self.mem_budget_bytes)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "PlanSpec":
        """Hand-written plan (the ``tests/golden/plans`` JSON format).

        Tasks carry explicit ``rank`` entries (defaulting to the
        ``grid`` owner of their output tile when given); ``order``
        defaults to ascending task id per rank.  A ``faults`` block with
        ``"checkpoint_interval": null`` means checkpointing is *off*
        (internally: an infinite interval, so no checkpoint ever
        exists to re-home from).
        """
        tasks = payload["tasks"]
        n = len(tasks)
        type_code = np.fromiter(
            (int(TaskType[t["type"]]) for t in tasks), np.int64, count=n)
        ti = np.fromiter((int(t["i"]) for t in tasks), np.int64, count=n)
        tj = np.fromiter((int(t["j"]) for t in tasks), np.int64, count=n)
        tk = np.fromiter((int(t.get("k", 0)) for t in tasks),
                         np.int64, count=n)
        nnz = np.fromiter((int(t.get("nnz", 1)) for t in tasks),
                          np.int64, count=n)
        nb = int(payload.get(
            "nb", (max(int(ti.max()), int(tj.max())) + 1) if n else 1))
        nprocs = int(payload["nprocs"])
        gspec = payload.get("grid")
        grid = (ProcessGrid(nprocs) if gspec is None
                else ProcessGrid(nprocs, int(gspec["pr"]), int(gspec["pc"])))
        rank = np.fromiter(
            (int(t["rank"]) if "rank" in t
             else grid.owner(int(t["i"]), int(t["j"])) for t in tasks),
            np.int64, count=n)
        raw_edges = payload.get("edges", [])
        edges = (np.asarray(raw_edges, dtype=np.int64).reshape(-1, 2)
                 if raw_edges else np.empty((0, 2), dtype=np.int64))
        if "order" in payload:
            order = [np.asarray(o, dtype=np.int64)
                     for o in payload["order"]]
        else:
            order = [np.flatnonzero(rank == r) for r in range(nprocs)]
        checkpointing = True
        faults = None
        fpay = payload.get("faults")
        if fpay is not None:
            fpay = dict(fpay)
            if "checkpoint_interval" in fpay \
                    and fpay["checkpoint_interval"] is None:
                del fpay["checkpoint_interval"]
                faults = replace(FaultSpec.from_dict(fpay),
                                 checkpoint_interval=math.inf)
                checkpointing = False
            else:
                faults = FaultSpec.from_dict(fpay)
        budget = payload.get("mem_budget_bytes")
        return cls(
            type_code=type_code, i=ti, j=tj, k=tk, nnz=nnz, edges=edges,
            nb=nb, nprocs=nprocs, rank=rank, order=order, faults=faults,
            checkpointing=checkpointing,
            mem_budget_bytes=None if budget is None else float(budget),
            msg_scale=float(payload.get("msg_scale", 1.0)),
        )

    @classmethod
    def from_json(cls, path) -> "PlanSpec":
        """Load :meth:`from_dict` from a JSON file."""
        return cls.from_dict(json.loads(
            pathlib.Path(path).read_text(encoding="utf-8")))


class PlanVerifier:
    """Static certification of one :class:`PlanSpec` (see module doc)."""

    def __init__(self, plan: PlanSpec):
        self.plan = plan
        p = plan
        self._fp: EffectFootprints = footprints_from_arrays(
            p.type_code, p.i, p.j, p.k, p.nb)
        # scheduled := appears in some rank's program order (first
        # occurrence wins); pos1 := 1-based position within that order
        n = p.n_tasks
        self._pos1 = np.zeros(n, dtype=np.int64)
        self._sched = np.zeros(n, dtype=bool)
        orders = [np.asarray(o, dtype=np.int64) for o in p.order]
        lens = np.array([o.size for o in orders], dtype=np.int64)
        flat = (np.concatenate(orders) if int(lens.sum())
                else np.empty(0, dtype=np.int64))
        rk = np.repeat(np.arange(p.nprocs, dtype=np.int64), lens)
        starts = np.cumsum(lens) - lens
        pos = np.arange(flat.size, dtype=np.int64) - np.repeat(starts, lens)
        valid = (flat >= 0) & (flat < n)
        self._unknown: list[int] = [int(t) for t in flat[~valid]]
        fv, rv, pv = flat[valid], rk[valid], pos[valid]
        srt = np.argsort(fv, kind="stable")
        fs = fv[srt]
        first = (np.r_[True, fs[1:] != fs[:-1]] if fs.size
                 else np.zeros(0, dtype=bool))
        self._dupes: list[int] = [int(t) for t in fs[~first]]
        keep = srt[first]
        self._sched[fv[keep]] = True
        self._pos1[fv[keep]] = pv[keep] + 1
        # an order entry overrides the task's declared rank — program
        # order is what the ranks actually execute
        p.rank[fv[keep]] = rv[keep]
        self._orders = [o[(o >= 0) & (o < n)] for o in orders]

    # ------------------------------------------------------------------
    # pass 1 · effect-footprint consistency
    # ------------------------------------------------------------------
    def _check_effects(self, out: VerificationReport) -> None:
        p, fp = self.plan, self._fp
        if not p.edges.size:
            return
        prod = p.edges[:, 0]
        cons = p.edges[:, 1]
        wt = fp.write_tile
        # membership of (task, tile) in the read set, via one sorted key
        rkey = fp.read_owner * fp.ntiles + fp.read_tile
        rkey = np.sort(rkey)

        def reads(task, tile):
            if not rkey.size:
                return np.zeros(np.shape(task), dtype=bool)
            key = task * fp.ntiles + tile
            pos = np.searchsorted(rkey, key)
            return (pos < rkey.size) & (rkey[np.minimum(pos, rkey.size - 1)]
                                        == key)

        justified = (wt[prod] == wt[cons]) | reads(cons, wt[prod]) \
            | reads(prod, wt[cons])
        nb = p.nb
        for e in np.flatnonzero(~justified)[:MAX_PER_CODE]:
            pr, co = int(prod[e]), int(cons[e])
            out.add(Violation(
                code=rep.PLAN_EFFECT_EDGE,
                message=f"edge {pr}->{co} connects disjoint footprints "
                        f"(writes ({int(wt[pr]) // nb},{int(wt[pr]) % nb})"
                        f" vs ({int(wt[co]) // nb},{int(wt[co]) % nb})): "
                        "the DAG and the task access semantics disagree",
                task_ids=(pr, co),
            ))

    # ------------------------------------------------------------------
    # pass 2+3 · happens-before (vector clocks) and wait cycles
    # ------------------------------------------------------------------
    def _dag_levels(self):
        """Longest-path level per task over the DAG edges alone.

        Returns ``None`` when the DAG edges themselves contain a cycle
        (the exact engine then reports it).  A :attr:`PlanSpec.lvl`
        hint is validated — every edge must strictly increase it —
        before being trusted, so a corrupt hint degrades to a
        recomputation, never to a wrong certificate.
        """
        p = self.plan
        n = p.n_tasks
        if p.lvl is not None:
            lvl = np.asarray(p.lvl, dtype=np.int64)
            ok = lvl.shape == (n,) and (not n or int(lvl.min()) >= 0)
            if ok and p.edges.size:
                ok = bool((lvl[p.edges[:, 1]] > lvl[p.edges[:, 0]]).all())
            if ok:
                return lvl
        if not p.edges.size:
            return np.zeros(n, dtype=np.int64)
        prod, cons = p.edges[:, 0], p.edges[:, 1]
        indeg = np.bincount(cons, minlength=n)
        eo = np.argsort(prod, kind="stable")
        ps, cs = prod[eo], cons[eo]
        estarts = np.searchsorted(ps, np.arange(n + 1))
        lvl = np.full(n, -1, dtype=np.int64)
        frontier = np.flatnonzero(indeg == 0)
        d = 0
        seen = 0
        while frontier.size:
            lvl[frontier] = d
            seen += frontier.size
            d += 1
            counts = estarts[frontier + 1] - estarts[frontier]
            total = int(counts.sum())
            if not total:
                break
            ends = np.cumsum(counts)
            at = (np.arange(total, dtype=np.int64)
                  - np.repeat(ends - counts, counts)
                  + np.repeat(estarts[frontier], counts))
            nxt = cs[at]
            np.subtract.at(indeg, nxt, 1)
            frontier = np.unique(nxt[indeg[nxt] == 0])
        return lvl if seen == n else None

    def _order_level_monotone(self, lvl) -> bool:
        """Is every rank's program order non-decreasing in DAG level?

        When it is (true by construction for :meth:`PlanSpec.from_dag`
        plans, whose orders restrict the level schedule), the composite
        HB graph is provably acyclic: sort tasks by ``(level, rank,
        position)`` — DAG edges strictly increase the level and
        program-order edges never decrease it while strictly increasing
        the position, so no edge goes backwards.
        """
        for o in self._orders:
            if o.size > 1 and bool(np.any(np.diff(lvl[o]) < 0)):
                return False
        return True

    def _hb_fast(self, lvl):
        """Vector clocks without the Kahn peel, for level-monotone plans.

        Two relaxation sweeps, each a handful of full-width numpy ops:
        a per-rank prefix-max along program order, then one pass over
        the DAG edges sorted by producer level — ``np.maximum.at``
        applies updates sequentially, so sorted edges relax entire DAG
        paths transitively within the single pass.  The result can only
        *under*-approximate happens-before (every propagation step
        follows a real HB edge), so the caller confirms any surviving
        race candidates against the exact engine before reporting.
        Preconditions (checked by :meth:`_hb`): no duplicate or unknown
        order entries, acyclic DAG edges, level-monotone orders — which
        also certify the plan free of wait cycles.
        """
        p = self.plan
        n = p.n_tasks
        vc = np.zeros((n, p.nprocs), dtype=np.int64)
        ids = np.flatnonzero(self._sched)
        vc[ids, p.rank[ids]] = self._pos1[ids]
        if p.edges.size:
            prod, cons = p.edges[:, 0], p.edges[:, 1]
            keep = self._sched[prod] & self._sched[cons]
            prod, cons = prod[keep], cons[keep]
            eo = np.argsort(lvl[prod], kind="stable")
            prod, cons = prod[eo], cons[eo]
        else:
            prod = cons = np.empty(0, dtype=np.int64)
        for _ in range(2):
            for o in self._orders:
                if o.size > 1:
                    vc[o] = np.maximum.accumulate(vc[o], axis=0)
            if prod.size:
                np.maximum.at(vc, cons, vc[prod])
        return vc, self._sched

    def _hb(self, out: VerificationReport):
        """Dispatch to the fast or exact HB engine.

        Returns ``(vc, live, exact)``.  The fast path never emits
        violations (its preconditions rule out wait cycles); the exact
        path reports stuck tasks as ``PLAN_WAIT_CYCLE``.
        """
        if not self._dupes and not self._unknown:
            lvl = self._dag_levels()
            if lvl is not None and self._order_level_monotone(lvl):
                vc, live = self._hb_fast(lvl)
                return vc, live, False
        vc, live = self._build_hb(out)
        return vc, live, True

    def _build_hb(self, out: VerificationReport):
        """Kahn-peel the HB graph while propagating vector clocks.

        Returns ``(vc, live)`` where ``vc[t, r]`` is the largest 1-based
        program-order position on rank ``r`` known to happen before (or
        be) task ``t``, and ``live`` marks scheduled tasks the peel
        reached — tasks left behind sit on a wait cycle.  Exact but
        frontier-serialised (program order narrows each peel step to at
        most one task per rank), so :meth:`_hb` prefers the sweep
        engine for well-formed plans.
        """
        p = self.plan
        n = p.n_tasks
        sched = self._sched
        # HB edges: DAG edges + consecutive program-order pairs, both
        # restricted to scheduled endpoints
        srcs = [p.edges[:, 0]] if p.edges.size else []
        dsts = [p.edges[:, 1]] if p.edges.size else []
        for o in self._orders:
            if o.size > 1:
                srcs.append(o[:-1])
                dsts.append(o[1:])
        if srcs:
            src = np.concatenate(srcs)
            dst = np.concatenate(dsts)
            keep = sched[src] & sched[dst]
            src, dst = src[keep], dst[keep]
        else:
            src = dst = np.empty(0, dtype=np.int64)
        # CSR over src for frontier expansion
        order_e = np.argsort(src, kind="stable")
        src_s, dst_s = src[order_e], dst[order_e]
        starts = np.searchsorted(src_s, np.arange(n + 1))
        indeg = np.bincount(dst, minlength=n)
        vc = np.zeros((n, p.nprocs), dtype=np.int64)
        live = np.zeros(n, dtype=bool)
        frontier = np.flatnonzero(sched & (indeg == 0))
        while frontier.size:
            live[frontier] = True
            vc[frontier, p.rank[frontier]] = np.maximum(
                vc[frontier, p.rank[frontier]], self._pos1[frontier])
            counts = starts[frontier + 1] - starts[frontier]
            total = int(counts.sum())
            if not total:
                break
            ends = np.cumsum(counts)
            at = (np.arange(total, dtype=np.int64)
                  - np.repeat(ends - counts, counts)
                  + np.repeat(starts[frontier], counts))
            e_dst = dst_s[at]
            e_src = np.repeat(frontier, counts)
            np.maximum.at(vc, e_dst, vc[e_src])
            np.subtract.at(indeg, e_dst, 1)
            frontier = np.unique(e_dst[indeg[e_dst] == 0])
        stuck = np.flatnonzero(sched & ~live)
        if stuck.size:
            lossy = (p.faults is not None and p.faults.link.lossy)
            out.add(Violation(
                code=rep.PLAN_WAIT_CYCLE,
                message=f"{stuck.size} task(s) sit on a wait-for cycle "
                        "(program order composed with message edges): "
                        "every rank on the cycle blocks forever"
                        + (", and the retransmit protocol only re-delivers"
                           " payloads — it cannot reorder program order"
                           if lossy else ""),
                task_ids=tuple(int(t) for t in stuck[:MAX_PER_CODE]),
            ))
        return vc, live

    def _ordered(self, vc, a, b):
        """Vectorized HB test: does ``a[q]`` order with ``b[q]``?"""
        p = self.plan
        a_before_b = vc[b, p.rank[a]] >= self._pos1[a]
        b_before_a = vc[a, p.rank[b]] >= self._pos1[b]
        return a_before_b | b_before_a

    def _find_races(self, vc, live) -> list[Violation]:
        """Collect (not emit) race violations under the given clocks.

        Returned rather than added to the report so the caller can
        discard candidates produced by the approximate clocks and
        re-derive them from the exact engine.
        """
        found: list[Violation] = []
        p, fp = self.plan, self._fp
        nb = p.nb
        # --- WW: same write tile, different ranks, unordered ---------
        wr = np.flatnonzero(live)
        if wr.size:
            tiles = fp.write_tile[wr]
            order = np.argsort(tiles, kind="stable")
            ts = tiles[order]
            w_sorted = wr[order]
            run_starts = np.flatnonzero(np.r_[True, ts[1:] != ts[:-1]])
            run_len = np.diff(np.r_[run_starts, ts.size])
            ranks_sorted = p.rank[w_sorted]
            rmin = np.minimum.reduceat(ranks_sorted, run_starts)
            rmax = np.maximum.reduceat(ranks_sorted, run_starts)
            # owner-compute plans put every writer of a tile on one rank,
            # so mixed-rank runs only exist in broken plans — iterating
            # them is O(#suspect tiles), not O(tasks)
            emitted = 0
            for ridx in np.flatnonzero(rmin != rmax):
                if emitted >= MAX_PER_CODE:
                    break
                s = run_starts[ridx]
                members = w_sorted[s:s + run_len[ridx]][:200]
                aa, bb = np.triu_indices(members.size, k=1)
                a, b = members[aa], members[bb]
                cross = p.rank[a] != p.rank[b]
                bad = cross & ~self._ordered(vc, a, b)
                tile = int(ts[s])
                for q in np.flatnonzero(bad):
                    if emitted >= MAX_PER_CODE:
                        break
                    emitted += 1
                    found.append(Violation(
                        code=rep.PLAN_RACE_WW,
                        message=f"tasks {int(a[q])} (rank "
                                f"{int(p.rank[a[q]])}) and {int(b[q])} "
                                f"(rank {int(p.rank[b[q]])}) both write "
                                f"tile ({tile // nb},{tile % nb}) with no"
                                " happens-before ordering (no message"
                                " between them)",
                        task_ids=(int(a[q]), int(b[q])),
                    ))
        # --- RW: reader vs writers of its tile, cross-rank -----------
        r_owner = fp.read_owner
        r_live = live[r_owner]
        r_owner = r_owner[r_live]
        r_tile = fp.read_tile[r_live]
        if not (r_owner.size and wr.size):
            return found
        uniq_t = ts[run_starts]
        ti = np.searchsorted(uniq_t, r_tile)
        has = (ti < uniq_t.size) & (uniq_t[np.minimum(ti, uniq_t.size - 1)]
                                    == r_tile)
        rd = r_owner[has]
        rt = r_tile[has]
        cnt = run_len[ti[has]]
        total = int(cnt.sum())
        if not total:
            return found
        ends = np.cumsum(cnt)
        within = (np.arange(total, dtype=np.int64)
                  - np.repeat(ends - cnt, cnt))
        writer = w_sorted[np.repeat(run_starts[ti[has]], cnt) + within]
        reader = np.repeat(rd, cnt)
        tile_of = np.repeat(rt, cnt)
        pairable = (writer != reader) & (p.rank[writer] != p.rank[reader])
        writer, reader, tile_of = (writer[pairable], reader[pairable],
                                   tile_of[pairable])
        bad = ~self._ordered(vc, writer, reader)
        for q in np.flatnonzero(bad)[:MAX_PER_CODE]:
            tile = int(tile_of[q])
            found.append(Violation(
                code=rep.PLAN_RACE_RW,
                message=f"task {int(reader[q])} (rank "
                        f"{int(p.rank[reader[q]])}) reads tile "
                        f"({tile // nb},{tile % nb}) that task "
                        f"{int(writer[q])} (rank "
                        f"{int(p.rank[writer[q]])}) writes, with no "
                        "happens-before ordering",
                task_ids=(int(reader[q]), int(writer[q])),
            ))
        return found

    # ------------------------------------------------------------------
    # pass 3 · coverage + fault-protocol liveness
    # ------------------------------------------------------------------
    def _check_coverage(self, out: VerificationReport) -> None:
        p = self.plan
        n = p.n_tasks
        for t in self._unknown[:MAX_PER_CODE]:
            out.add(Violation(
                code=rep.TASK_UNKNOWN,
                message=f"plan schedules task id {t} outside the DAG "
                        f"(0..{n - 1})",
                task_ids=(t,),
            ))
        for t in self._dupes[:MAX_PER_CODE]:
            out.add(Violation(
                code=rep.TASK_DUPLICATE,
                message=f"task {t} appears twice in the program order",
                task_ids=(t,),
            ))
        missing = np.flatnonzero(~self._sched)
        if missing.size:
            out.add(Violation(
                code=rep.TASK_MISSING,
                message=f"{missing.size} task(s) appear in no rank's "
                        "program order",
                task_ids=tuple(int(t) for t in missing[:MAX_PER_CODE]),
            ))
        if not p.edges.size:
            return
        prod = p.edges[:, 0]
        cons = p.edges[:, 1]
        cross = p.rank[prod] != p.rank[cons]
        orphan_send = cross & self._sched[prod] & ~self._sched[cons]
        for e in np.flatnonzero(orphan_send)[:MAX_PER_CODE]:
            out.add(Violation(
                code=rep.PLAN_ORPHAN_SEND,
                message=f"task {int(prod[e])} sends its tile to rank "
                        f"{int(p.rank[cons[e]])} but the receiving task "
                        f"{int(cons[e])} is never scheduled — the send "
                        "has no receiver",
                task_ids=(int(prod[e]), int(cons[e])),
                rank=int(p.rank[cons[e]]),
            ))
        orphan_recv = cross & self._sched[cons] & ~self._sched[prod]
        for e in np.flatnonzero(orphan_recv)[:MAX_PER_CODE]:
            out.add(Violation(
                code=rep.PLAN_ORPHAN_RECV,
                message=f"task {int(cons[e])} waits for a tile from task "
                        f"{int(prod[e])}, which is never scheduled — the "
                        "receive has no send and blocks forever",
                task_ids=(int(cons[e]), int(prod[e])),
                rank=int(p.rank[cons[e]]),
            ))

    def _check_dead_sends(self, out: VerificationReport) -> None:
        p = self.plan
        if p.faults is None or not p.faults.deaths or p.checkpointing:
            return
        if not p.edges.size:
            return
        prod = p.edges[:, 0]
        cons = p.edges[:, 1]
        cross = p.rank[prod] != p.rank[cons]
        emitted = 0
        for d in p.faults.deaths:
            into = cross & (p.rank[cons] == d.rank)
            outof = cross & (p.rank[prod] == d.rank)
            for e in np.flatnonzero(into | outof):
                if emitted >= MAX_PER_CODE:
                    return
                emitted += 1
                direction = ("into" if p.rank[cons[e]] == d.rank
                             else "out of")
                out.add(Violation(
                    code=rep.PLAN_DEAD_SEND,
                    message=f"send {int(prod[e])}->{int(cons[e])} "
                            f"{direction} rank {d.rank} cannot be "
                            f"certified: rank {d.rank} dies at "
                            f"t={d.time:g} and checkpoint re-homing is "
                            "disabled, so there is no surviving holder "
                            "to re-send from",
                    task_ids=(int(prod[e]), int(cons[e])),
                    rank=int(d.rank),
                ))

    # ------------------------------------------------------------------
    # pass 4 · per-rank memory high-water mark
    # ------------------------------------------------------------------
    def _check_memory(self, out: VerificationReport) -> None:
        p, fp = self.plan, self._fp
        budget = p.mem_budget_bytes
        if budget is None:
            return
        owned = np.zeros(p.nprocs)
        keep = self._sched & ~fp.is_atomic
        if keep.any():
            np.add.at(owned, p.rank[keep],
                      BYTES_PER_NNZ * p.nnz[keep].astype(np.float64))
        received = np.zeros(p.nprocs)
        if p.edges.size:
            prod = p.edges[:, 0]
            cons = p.edges[:, 1]
            cross = (p.rank[prod] != p.rank[cons]) & self._sched[prod] \
                & self._sched[cons]
            if cross.any():
                # one resident copy per (receiving rank, producer tile),
                # sized exactly like the simulator's messages
                key = np.unique(p.rank[cons[cross]] * p.n_tasks
                                + prod[cross])
                src = key % p.n_tasks
                dst = key // p.n_tasks
                nbytes = (p.nnz[src].astype(np.float64) * 8.0
                          * p.msg_scale).astype(np.int64)
                np.add.at(received, dst, nbytes.astype(np.float64))
        hwm = owned + received
        for r in np.flatnonzero(hwm > budget)[:MAX_PER_CODE]:
            out.add(Violation(
                code=rep.PLAN_MEM_HWM,
                message=f"rank {int(r)} worst-case high-water mark "
                        f"{hwm[r]:.0f} B (owned factors {owned[r]:.0f} B"
                        f" + resident received tiles {received[r]:.0f} B)"
                        f" exceeds the {budget:.0f} B budget under an "
                        "HB-consistent worst-case interleaving",
                rank=int(r),
            ))

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def verify(self, subject: str = "plan") -> VerificationReport:
        """Run all four passes; returns the full violation set."""
        checks = ["coverage", "effects", "races", "liveness"]
        if self.plan.mem_budget_bytes is not None:
            checks.append("memory")
        out = VerificationReport(subject=subject, checks=tuple(checks))
        if self.plan.n_tasks == 0:
            return out
        self._check_coverage(out)
        self._check_effects(out)
        vc, live, exact = self._hb(out)
        races = self._find_races(vc, live)
        if races and not exact:
            # the fast clocks only under-approximate HB: confirm the
            # candidates against the exact peel before reporting them
            vc, live = self._build_hb(out)
            races = self._find_races(vc, live)
        for v in races:
            out.add(v)
        self._check_dead_sends(out)
        self._check_memory(out)
        return out


def verify_plan(plan: PlanSpec, subject: str = "plan") -> VerificationReport:
    """One-shot convenience wrapper around :class:`PlanVerifier`."""
    return PlanVerifier(plan).verify(subject=subject)

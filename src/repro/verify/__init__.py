"""``repro.verify`` — static schedule/race verification + repo linting.

Four analyzers prove safety properties *without executing anything*:

* :class:`~repro.verify.schedule.ScheduleVerifier` — batch sequences
  against a :class:`~repro.core.dag.TaskDAG`: dependency order,
  intra-batch write/read tile hazards (honouring the atomic-SSSSM
  serial-apply rule), Collector capacity budgets, completeness and DAG
  cycles.
* :class:`~repro.verify.trace.TraceVerifier` — distributed comm traces:
  every send delivered, no early tile consumption, per-rank memory
  budgets.
* :class:`~repro.verify.plan.PlanVerifier` — whole distributed plans
  (DAG + per-rank program orders + grid ownership + fault spec),
  certified *before* simulation: vector-clock happens-before races,
  wait-cycle/orphaned-send liveness composed with the fault protocol,
  effect-footprint/edge consistency, per-rank memory high-water marks.
* :func:`~repro.verify.lint.lint_paths` — AST lint pass enforcing the
  repo's own invariants (vectorized hot modules, picklable sweep
  recipes, immutable cached analysis, exhaustive TaskType and
  event-kind dispatch, effect-declared arena mutation).

All four emit :class:`~repro.verify.report.VerificationReport` and are
wired into ``python -m repro verify`` plus the CI ``verify`` and
``verify-plan`` jobs.

Import-order note: :mod:`repro.core.executor` imports the leaf
:mod:`repro.verify.hazards` at module scope and
:mod:`repro.verify.effects` lazily (``effects`` needs
:mod:`repro.core.task`, which re-enters a mid-import ``repro.core``),
so this ``__init__`` pulls the leaf modules first and never imports
:mod:`repro.verify.plan`/``golden``/``cases`` — those need the fully
built :mod:`repro.core` (and ``plan`` also :mod:`repro.cluster`).
"""

from repro.verify.report import Violation, VerificationReport
from repro.verify.hazards import batch_atomic_flags
from repro.verify.effects import (
    ATOMIC_TASK_TYPES,
    EffectFootprints,
    atomic_write_targets,
    effect_footprints,
    footprints_from_arrays,
)
from repro.verify.schedule import ScheduleVerifier, verify_schedule
from repro.verify.trace import (
    DistTrace,
    SendRecord,
    TraceVerifier,
    verify_trace,
)
from repro.verify.lint import lint_file, lint_paths, lint_source, RULES

__all__ = [
    "Violation",
    "VerificationReport",
    "batch_atomic_flags",
    "ATOMIC_TASK_TYPES",
    "EffectFootprints",
    "atomic_write_targets",
    "effect_footprints",
    "footprints_from_arrays",
    "ScheduleVerifier",
    "verify_schedule",
    "DistTrace",
    "SendRecord",
    "TraceVerifier",
    "verify_trace",
    "lint_file",
    "lint_paths",
    "lint_source",
    "RULES",
]

"""``repro.verify`` — static schedule/race verification + repo linting.

Three analyzers prove safety properties *without executing anything*:

* :class:`~repro.verify.schedule.ScheduleVerifier` — batch sequences
  against a :class:`~repro.core.dag.TaskDAG`: dependency order,
  intra-batch write/read tile hazards (honouring the atomic-SSSSM
  serial-apply rule), Collector capacity budgets, completeness and DAG
  cycles.
* :class:`~repro.verify.trace.TraceVerifier` — distributed comm traces:
  every send delivered, no early tile consumption, per-rank memory
  budgets.
* :func:`~repro.verify.lint.lint_paths` — AST lint pass enforcing the
  repo's own invariants (vectorized hot modules, picklable sweep
  recipes, immutable cached analysis, exhaustive TaskType dispatch).

All three emit :class:`~repro.verify.report.VerificationReport` and are
wired into ``python -m repro verify`` plus the CI ``verify`` job.

Import-order note: :mod:`repro.core.executor` imports the leaf
:mod:`repro.verify.hazards`, so this ``__init__`` pulls the leaf modules
first and never imports :mod:`repro.verify.golden`/``cases`` (they need
the fully built :mod:`repro.core`).
"""

from repro.verify.report import Violation, VerificationReport
from repro.verify.hazards import batch_atomic_flags
from repro.verify.schedule import ScheduleVerifier, verify_schedule
from repro.verify.trace import (
    DistTrace,
    SendRecord,
    TraceVerifier,
    verify_trace,
)
from repro.verify.lint import lint_file, lint_paths, lint_source, RULES

__all__ = [
    "Violation",
    "VerificationReport",
    "batch_atomic_flags",
    "ScheduleVerifier",
    "verify_schedule",
    "DistTrace",
    "SendRecord",
    "TraceVerifier",
    "verify_trace",
    "lint_file",
    "lint_paths",
    "lint_source",
    "RULES",
]

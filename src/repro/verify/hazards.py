"""Vectorized in-batch hazard kernels shared by Executor and verifier.

The Executor must flag same-target Schur updates inside one batch as
atomic (the paper's 9S0/9S1 accumulation case), and the static
:class:`~repro.verify.schedule.ScheduleVerifier` must prove the *same*
rule over whole schedules — so the duplicate-target scan lives here, as
a leaf module (NumPy only) both sides import.
"""

from __future__ import annotations

import numpy as np


def batch_atomic_flags(target: np.ndarray,
                       out: np.ndarray | None = None) -> np.ndarray:
    """Mark batch members whose shared write target needs atomicity.

    Parameters
    ----------
    target:
        Per-batch-member flat output-tile id for atomic-capable tasks
        (SSSSM), ``-1`` for everything else — the
        :attr:`~repro.core.dag.TaskArrays.target` column gathered over
        the batch.
    out:
        Optional preallocated boolean buffer of at least ``len(target)``
        entries; its leading slice is reset and returned, keeping the
        Executor's per-launch path free of fresh flag allocations.

    Returns
    -------
    np.ndarray
        Boolean array: ``True`` where the member's target tile appears
        more than once in the batch (accumulation must be atomic and the
        products applied serially in batch order).
    """
    target = np.asarray(target)
    n = target.shape[0]
    if out is None:
        flags = np.zeros(n, dtype=bool)
    else:
        flags = out[:n]
        flags[:] = False
    mask = target >= 0
    if mask.any():
        _, inverse, counts = np.unique(target[mask], return_inverse=True,
                                       return_counts=True)
        flags[mask] = counts[inverse] > 1
    return flags

"""Structured verification results: violations instead of bare asserts.

Every analyzer in :mod:`repro.verify` emits a :class:`VerificationReport`
— a list of :class:`Violation` records, each carrying a stable machine
code (see the ``*_...`` constants below), the offending task/batch ids or
file/line, and a human-readable message.  Callers that want the old
fail-fast behaviour call :meth:`VerificationReport.raise_if_violations`;
everything else (the CLI, CI, tests asserting on specific codes) can
inspect the full set of problems in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# -- schedule verifier codes -------------------------------------------
DAG_CYCLE = "DAG_CYCLE"
TASK_MISSING = "TASK_MISSING"
TASK_DUPLICATE = "TASK_DUPLICATE"
TASK_UNKNOWN = "TASK_UNKNOWN"
DEP_ORDER = "DEP_ORDER"
HAZARD_WW = "HAZARD_WW"
HAZARD_RW = "HAZARD_RW"
CAPACITY_BLOCKS = "CAPACITY_BLOCKS"
CAPACITY_SHMEM = "CAPACITY_SHMEM"

# -- trace verifier codes ----------------------------------------------
TRACE_UNMATCHED_SEND = "TRACE_UNMATCHED_SEND"
TRACE_MISSING_SEND = "TRACE_MISSING_SEND"
TRACE_EARLY_CONSUME = "TRACE_EARLY_CONSUME"
TRACE_MEM_BUDGET = "TRACE_MEM_BUDGET"
TRACE_TASK_MISSING = "TRACE_TASK_MISSING"
TRACE_DEAD_SEND = "TRACE_DEAD_SEND"

# -- plan verifier codes (static whole-plan certification) -------------
PLAN_EFFECT_EDGE = "PLAN_EFFECT_EDGE"
PLAN_RACE_WW = "PLAN_RACE_WW"
PLAN_RACE_RW = "PLAN_RACE_RW"
PLAN_WAIT_CYCLE = "PLAN_WAIT_CYCLE"
PLAN_ORPHAN_SEND = "PLAN_ORPHAN_SEND"
PLAN_ORPHAN_RECV = "PLAN_ORPHAN_RECV"
PLAN_DEAD_SEND = "PLAN_DEAD_SEND"
PLAN_MEM_HWM = "PLAN_MEM_HWM"

# -- lint codes --------------------------------------------------------
LINT_NNZ_LOOP = "LINT_NNZ_LOOP"
LINT_UNPICKLABLE_RECIPE = "LINT_UNPICKLABLE_RECIPE"
LINT_CACHE_MUTATION = "LINT_CACHE_MUTATION"
LINT_TASKTYPE_DISPATCH = "LINT_TASKTYPE_DISPATCH"
LINT_EVENT_DISPATCH = "LINT_EVENT_DISPATCH"
LINT_ARENA_MUTATION = "LINT_ARENA_MUTATION"


@dataclass(frozen=True)
class Violation:
    """One verified-to-be-wrong fact about a schedule, trace or file.

    Attributes
    ----------
    code:
        Stable machine identifier (one of the module constants).
    message:
        Human-readable description.
    task_ids, batch_ids:
        Offending task/batch ids (schedule and trace analyzers).
    rank:
        Offending process rank (trace analyzer), if applicable.
    file, line:
        Offending source location (linter), if applicable.
    """

    code: str
    message: str
    task_ids: tuple = ()
    batch_ids: tuple = ()
    rank: int | None = None
    file: str | None = None
    line: int | None = None

    def location(self) -> str:
        """Compact source/ids prefix for report listings."""
        if self.file is not None:
            return f"{self.file}:{self.line}"
        parts = []
        if self.batch_ids:
            parts.append(f"batch {','.join(map(str, self.batch_ids))}")
        if self.task_ids:
            parts.append(f"task {','.join(map(str, self.task_ids))}")
        if self.rank is not None:
            parts.append(f"rank {self.rank}")
        return " ".join(parts)


@dataclass
class VerificationReport:
    """Outcome of one analyzer run (or several, merged).

    Attributes
    ----------
    subject:
        What was verified (schedule name, trace name, lint root).
    violations:
        Every violation found — analyzers never stop at the first.
    checks:
        Names of the checks that actually ran (a capacity check skipped
        for lack of a GPU spec is *not* listed, so "no violations" can
        be read precisely).
    """

    subject: str
    violations: list = field(default_factory=list)
    checks: tuple = ()

    @property
    def ok(self) -> bool:
        """True when no check found a violation."""
        return not self.violations

    def add(self, violation: Violation) -> None:
        """Record one violation."""
        self.violations.append(violation)

    def merge(self, other: "VerificationReport") -> None:
        """Fold another report's findings into this one."""
        self.violations.extend(other.violations)
        self.checks = tuple(dict.fromkeys(self.checks + other.checks))

    def codes(self) -> set:
        """The distinct violation codes present."""
        return {v.code for v in self.violations}

    def by_code(self, code: str) -> list:
        """Violations carrying one specific code."""
        return [v for v in self.violations if v.code == code]

    def counts_by_code(self) -> dict:
        """Violation tally keyed by code."""
        out: dict = {}
        for v in self.violations:
            out[v.code] = out.get(v.code, 0) + 1
        return out

    def describe(self, max_lines: int = 40) -> str:
        """Multi-line listing of every violation (capped for readability)."""
        if self.ok:
            return f"{self.subject}: ok ({len(self.checks)} checks)"
        lines = [f"{self.subject}: {len(self.violations)} violation(s)"]
        for v in self.violations[:max_lines]:
            loc = v.location()
            lines.append(f"  [{v.code}] {loc + ': ' if loc else ''}{v.message}")
        if len(self.violations) > max_lines:
            lines.append(f"  ... and {len(self.violations) - max_lines} more")
        return "\n".join(lines)

    def raise_if_violations(self) -> None:
        """Fail-fast wrapper: ``AssertionError`` listing every violation."""
        if not self.ok:
            raise AssertionError(self.describe())

    def summary(self) -> dict:
        """Compact dict for tables and JSON artifacts."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "checks": list(self.checks),
            "violations": len(self.violations),
            "by_code": self.counts_by_code(),
        }

"""Static verification of distributed communication traces.

The cluster simulator (:mod:`repro.cluster.distsim`) ships tiles between
ranks the moment their producers finish; a scheduling or routing bug
there shows up as a rank consuming a tile it never received, a message
nobody picks up, or a rank holding more factor data than its GPU fits.
:class:`TraceVerifier` proves the absence of all three over a recorded
:class:`DistTrace` — statically, after the fact, without re-running the
simulation.

The trace format is deliberately self-contained (plain arrays plus a
send log) so adversarial traces can be hand-written in JSON for the
``python -m repro verify --case`` gate and the test suite.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.verify import report as rep
from repro.verify.report import VerificationReport, Violation

#: Tolerance on simulated timestamps.
TIME_EPS = 1e-12

MAX_PER_CODE = 100


@dataclass(frozen=True)
class SendRecord:
    """One transmission attempt of a tile between ranks.

    ``t_recv`` is ``None`` for an attempt that was never delivered.
    Under fault injection one logical shipment may span several records
    (dropped attempts followed by a retransmit); ``attempt`` numbers
    them.  A ``(tid, succ)`` pair is satisfied as soon as *one* of its
    records is a valid delivery — a pair with none is exactly what the
    verifier must catch.
    """

    tid: int
    succ: int
    src: int
    dst: int
    t_send: float
    t_recv: float | None
    nbytes: int
    attempt: int = 0


@dataclass
class DistTrace:
    """A distributed execution trace in verifier-ready form.

    Attributes
    ----------
    nprocs:
        Number of simulated ranks.
    rank:
        Executing rank per task id.
    t_start, t_done:
        Launch start / completion time per task id (``-1`` = never ran).
    edges:
        ``(E, 2)`` array of DAG edges ``(producer, consumer)``.
    sends:
        Every cross-rank tile shipment attempt.
    deaths:
        ``(rank, time)`` pairs for ranks that died mid-run; deliveries
        departing a rank but arriving after its death are invalid.
    per_rank_bytes:
        Optional resident factor bytes per rank.
    mem_budget_bytes:
        Optional per-rank memory budget the factors must fit in.
    """

    nprocs: int
    rank: np.ndarray
    t_start: np.ndarray
    t_done: np.ndarray
    edges: np.ndarray
    sends: list = field(default_factory=list)
    deaths: list = field(default_factory=list)
    per_rank_bytes: np.ndarray | None = None
    mem_budget_bytes: float | None = None

    @property
    def n_tasks(self) -> int:
        """Number of tasks covered by the trace."""
        return int(self.rank.shape[0])

    def death_time(self, rank: int) -> float:
        """When ``rank`` died (``inf`` if it never did)."""
        for r, t in self.deaths:
            if int(r) == rank:
                return float(t)
        return math.inf

    @classmethod
    def from_dict(cls, payload: dict) -> "DistTrace":
        """Build a trace from the JSON case format.

        Expected keys: ``nprocs``, ``tasks`` (list of ``{tid, rank,
        t_start, t_done}``), ``edges`` (list of ``[producer, consumer]``
        pairs), ``sends`` (list of ``{tid, succ, src, dst, t_send,
        t_recv, bytes, attempt}``; ``t_recv: null`` marks an
        undelivered attempt), and optionally ``deaths`` (list of
        ``[rank, time]`` pairs), ``per_rank_bytes`` +
        ``mem_budget_bytes``.
        """
        tasks = payload["tasks"]
        n = 1 + max(int(t["tid"]) for t in tasks) if tasks else 0
        rank = np.full(n, -1, dtype=np.int64)
        t_start = np.full(n, -1.0)
        t_done = np.full(n, -1.0)
        for t in tasks:
            tid = int(t["tid"])
            rank[tid] = int(t["rank"])
            t_start[tid] = float(t["t_start"])
            t_done[tid] = float(t["t_done"])
        edges = np.asarray(payload.get("edges", []),
                           dtype=np.int64).reshape(-1, 2)
        sends = [
            SendRecord(
                tid=int(s["tid"]), succ=int(s["succ"]),
                src=int(s["src"]), dst=int(s["dst"]),
                t_send=float(s["t_send"]),
                t_recv=None if s.get("t_recv") is None
                else float(s["t_recv"]),
                nbytes=int(s.get("bytes", 0)),
                attempt=int(s.get("attempt", 0)),
            )
            for s in payload.get("sends", [])
        ]
        prb = payload.get("per_rank_bytes")
        return cls(
            nprocs=int(payload["nprocs"]),
            rank=rank, t_start=t_start, t_done=t_done, edges=edges,
            sends=sends,
            deaths=[(int(r), float(t))
                    for r, t in payload.get("deaths", [])],
            per_rank_bytes=None if prb is None else np.asarray(prb,
                                                               dtype=float),
            mem_budget_bytes=payload.get("mem_budget_bytes"),
        )

    def to_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        out: dict = {
            "nprocs": self.nprocs,
            "tasks": [
                {"tid": int(t), "rank": int(self.rank[t]),
                 "t_start": float(self.t_start[t]),
                 "t_done": float(self.t_done[t])}
                for t in range(self.n_tasks)
            ],
            "edges": [[int(p), int(c)] for p, c in self.edges],
            "sends": [
                {"tid": s.tid, "succ": s.succ, "src": s.src, "dst": s.dst,
                 "t_send": s.t_send, "t_recv": s.t_recv,
                 "bytes": s.nbytes, "attempt": s.attempt}
                for s in self.sends
            ],
        }
        if self.deaths:
            out["deaths"] = [[int(r), float(t)] for r, t in self.deaths]
        if self.per_rank_bytes is not None:
            out["per_rank_bytes"] = [float(b) for b in self.per_rank_bytes]
        if self.mem_budget_bytes is not None:
            out["mem_budget_bytes"] = float(self.mem_budget_bytes)
        return out

    def digest(self) -> str:
        """SHA-256 over the full trace content.

        The CI chaos gate's determinism check: identical (fault spec,
        seed) pairs must produce byte-identical traces, so their digests
        must match exactly.
        """
        h = hashlib.sha256()
        for arr in (self.rank, self.t_start, self.t_done, self.edges):
            h.update(np.ascontiguousarray(arr).tobytes())
        h.update(json.dumps(
            [[s.tid, s.succ, s.src, s.dst, s.t_send, s.t_recv, s.nbytes,
              s.attempt] for s in self.sends]
            + [["death", int(r), float(t)] for r, t in self.deaths],
            separators=(",", ":")).encode())
        return h.hexdigest()


class TraceVerifier:
    """Static checks over one :class:`DistTrace`."""

    def __init__(self, trace: DistTrace):
        self._trace = trace

    def verify(self, subject: str = "trace") -> VerificationReport:
        """Run every applicable check; returns the full violation set."""
        tr = self._trace
        checks = ["completeness", "sends", "consume-order"]
        if tr.per_rank_bytes is not None and tr.mem_budget_bytes is not None:
            checks.append("memory")
        out = VerificationReport(subject=subject, checks=tuple(checks))
        self._check_completeness(out)
        recv_of, dead_only = self._check_sends(out)
        self._check_consume_order(out, recv_of, dead_only)
        if "memory" in checks:
            self._check_memory(out)
        return out

    # ------------------------------------------------------------------
    def _check_completeness(self, out: VerificationReport) -> None:
        tr = self._trace
        never = np.flatnonzero(tr.t_start < 0)
        if never.size:
            out.add(Violation(
                code=rep.TRACE_TASK_MISSING,
                message=f"{never.size} task(s) never executed in the trace",
                task_ids=tuple(int(t) for t in never[:MAX_PER_CODE]),
            ))

    def _check_sends(self, out: VerificationReport) -> tuple[dict, set]:
        """Every shipment must have at least one valid delivery.

        A record is a *valid delivery* when it was received, no earlier
        than it departed, and before its source rank died — a payload
        still in flight when its sender dies is lost with the sender and
        must be re-delivered by the recovery protocol.  Dropped attempts
        (``t_recv: null``) are fine as long as a retransmit of the same
        ``(tid, succ)`` pair eventually lands.

        Returns the ``(tid, succ) -> receive time`` map the
        consume-order check resolves cross-rank edges against, plus the
        set of pairs whose only deliveries were invalidated by a source
        death.
        """
        tr = self._trace
        recv_of: dict = {}
        dropped: set = set()
        dead: set = set()
        flagged = 0
        for s in tr.sends:
            key = (s.tid, s.succ)
            if s.t_recv is None:
                dropped.add(key)
                continue
            if s.t_recv < s.t_send - TIME_EPS:
                if flagged < MAX_PER_CODE:
                    out.add(Violation(
                        code=rep.TRACE_UNMATCHED_SEND,
                        message=f"send of task {s.tid}'s tile to task "
                                f"{s.succ} received at {s.t_recv:g} "
                                f"before it departed at {s.t_send:g}",
                        task_ids=(s.tid, s.succ),
                        rank=s.src,
                    ))
                    flagged += 1
                continue
            if s.t_recv > tr.death_time(s.src) + TIME_EPS:
                dead.add(key)
                continue
            prev = recv_of.get(key)
            if prev is None or s.t_recv > prev:
                recv_of[key] = s.t_recv
        # a pair whose every attempt was dropped (and never delivered
        # another way) is an unmatched send
        for key in sorted(dropped - set(recv_of) - dead):
            if flagged >= MAX_PER_CODE:
                break
            out.add(Violation(
                code=rep.TRACE_UNMATCHED_SEND,
                message=f"send of task {key[0]}'s tile to task {key[1]} "
                        "was never received on any attempt",
                task_ids=key,
            ))
            flagged += 1
        return recv_of, dead - set(recv_of)

    def _check_consume_order(self, out: VerificationReport,
                             recv_of: dict, dead_only: set) -> None:
        """No rank may consume a tile before its producer's completion
        event (same rank) or the tile's arrival (cross rank).

        Recovery wrinkle: a producer re-executed after a rank death may
        finish *after* a consumer that validly received its payload from
        the original (pre-death) execution — a delivered send for the
        edge, consumed no earlier than its arrival, excuses the apparent
        same-rank inversion.
        """
        tr = self._trace
        if not tr.edges.size:
            return
        prod = tr.edges[:, 0]
        cons = tr.edges[:, 1]
        ran = (tr.t_start[prod] >= 0) & (tr.t_start[cons] >= 0)
        same = tr.rank[prod] == tr.rank[cons]
        # same-rank edges, fully vectorized
        local_bad = ran & same & (tr.t_start[cons]
                                  < tr.t_done[prod] - TIME_EPS)
        flagged = 0
        for e in np.flatnonzero(local_bad):
            if flagged >= MAX_PER_CODE:
                break
            p, c = int(prod[e]), int(cons[e])
            t_recv = recv_of.get((p, c))
            if t_recv is not None and tr.t_start[c] >= t_recv - TIME_EPS:
                continue  # consumed the original pre-death delivery
            out.add(Violation(
                code=rep.TRACE_EARLY_CONSUME,
                message=f"task {c} started at {tr.t_start[c]:g} before "
                        f"its producer {p} finished at {tr.t_done[p]:g}",
                task_ids=(c, p),
                rank=int(tr.rank[c]),
            ))
            flagged += 1
        # cross-rank edges must match a valid delivered send
        missing = early = deadf = 0
        for e in np.flatnonzero(ran & ~same):
            p, c = int(prod[e]), int(cons[e])
            t_recv = recv_of.get((p, c))
            if t_recv is None:
                if (p, c) in dead_only:
                    if deadf < MAX_PER_CODE:
                        out.add(Violation(
                            code=rep.TRACE_DEAD_SEND,
                            message=f"task {c} (rank {int(tr.rank[c])}) "
                                    f"consumed task {p}'s tile, but every "
                                    "delivery arrived after rank "
                                    f"{int(tr.rank[p])} died and was never "
                                    "re-delivered",
                            task_ids=(p, c),
                            rank=int(tr.rank[c]),
                        ))
                        deadf += 1
                elif missing < MAX_PER_CODE:
                    out.add(Violation(
                        code=rep.TRACE_MISSING_SEND,
                        message=f"tasks {p} (rank {int(tr.rank[p])}) and "
                                f"{c} (rank {int(tr.rank[c])}) share a "
                                "dependency edge but the trace records no "
                                "delivered send for it",
                        task_ids=(p, c),
                        rank=int(tr.rank[c]),
                    ))
                    missing += 1
            elif tr.t_start[c] < t_recv - TIME_EPS:
                if early < MAX_PER_CODE:
                    out.add(Violation(
                        code=rep.TRACE_EARLY_CONSUME,
                        message=f"task {c} started at {tr.t_start[c]:g} "
                                f"before task {p}'s tile arrived at "
                                f"{t_recv:g}",
                        task_ids=(c, p),
                        rank=int(tr.rank[c]),
                    ))
                    early += 1

    def _check_memory(self, out: VerificationReport) -> None:
        tr = self._trace
        budget = float(tr.mem_budget_bytes)
        if not math.isfinite(budget):
            return
        over = np.flatnonzero(tr.per_rank_bytes > budget)
        for r in over[:MAX_PER_CODE]:
            out.add(Violation(
                code=rep.TRACE_MEM_BUDGET,
                message=f"rank {int(r)} holds "
                        f"{tr.per_rank_bytes[r] / 1e9:.2f} GB of factors, "
                        f"budget is {budget / 1e9:.2f} GB",
                rank=int(r),
            ))


def verify_trace(trace: DistTrace, subject: str = "trace"
                 ) -> VerificationReport:
    """One-shot convenience wrapper around :class:`TraceVerifier`."""
    return TraceVerifier(trace).verify(subject=subject)

"""Static verification of distributed communication traces.

The cluster simulator (:mod:`repro.cluster.distsim`) ships tiles between
ranks the moment their producers finish; a scheduling or routing bug
there shows up as a rank consuming a tile it never received, a message
nobody picks up, or a rank holding more factor data than its GPU fits.
:class:`TraceVerifier` proves the absence of all three over a recorded
:class:`DistTrace` — statically, after the fact, without re-running the
simulation.

The trace format is deliberately self-contained (plain arrays plus a
send log) so adversarial traces can be hand-written in JSON for the
``python -m repro verify --case`` gate and the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.verify import report as rep
from repro.verify.report import VerificationReport, Violation

#: Tolerance on simulated timestamps.
TIME_EPS = 1e-12

MAX_PER_CODE = 100


@dataclass(frozen=True)
class SendRecord:
    """One tile shipment between ranks.

    ``t_recv`` is ``None`` for a send that was never delivered (lost or
    unmatched) — exactly what the verifier must catch.
    """

    tid: int
    succ: int
    src: int
    dst: int
    t_send: float
    t_recv: float | None
    nbytes: int


@dataclass
class DistTrace:
    """A distributed execution trace in verifier-ready form.

    Attributes
    ----------
    nprocs:
        Number of simulated ranks.
    rank:
        Executing rank per task id.
    t_start, t_done:
        Launch start / completion time per task id (``-1`` = never ran).
    edges:
        ``(E, 2)`` array of DAG edges ``(producer, consumer)``.
    sends:
        Every cross-rank tile shipment.
    per_rank_bytes:
        Optional resident factor bytes per rank.
    mem_budget_bytes:
        Optional per-rank memory budget the factors must fit in.
    """

    nprocs: int
    rank: np.ndarray
    t_start: np.ndarray
    t_done: np.ndarray
    edges: np.ndarray
    sends: list = field(default_factory=list)
    per_rank_bytes: np.ndarray | None = None
    mem_budget_bytes: float | None = None

    @property
    def n_tasks(self) -> int:
        """Number of tasks covered by the trace."""
        return int(self.rank.shape[0])

    @classmethod
    def from_dict(cls, payload: dict) -> "DistTrace":
        """Build a trace from the JSON case format.

        Expected keys: ``nprocs``, ``tasks`` (list of ``{tid, rank,
        t_start, t_done}``), ``edges`` (list of ``[producer, consumer]``
        pairs), ``sends`` (list of ``{tid, succ, src, dst, t_send,
        t_recv, bytes}``; ``t_recv: null`` marks an undelivered send),
        and optionally ``per_rank_bytes`` + ``mem_budget_bytes``.
        """
        tasks = payload["tasks"]
        n = 1 + max(int(t["tid"]) for t in tasks) if tasks else 0
        rank = np.full(n, -1, dtype=np.int64)
        t_start = np.full(n, -1.0)
        t_done = np.full(n, -1.0)
        for t in tasks:
            tid = int(t["tid"])
            rank[tid] = int(t["rank"])
            t_start[tid] = float(t["t_start"])
            t_done[tid] = float(t["t_done"])
        edges = np.asarray(payload.get("edges", []),
                           dtype=np.int64).reshape(-1, 2)
        sends = [
            SendRecord(
                tid=int(s["tid"]), succ=int(s["succ"]),
                src=int(s["src"]), dst=int(s["dst"]),
                t_send=float(s["t_send"]),
                t_recv=None if s.get("t_recv") is None
                else float(s["t_recv"]),
                nbytes=int(s.get("bytes", 0)),
            )
            for s in payload.get("sends", [])
        ]
        prb = payload.get("per_rank_bytes")
        return cls(
            nprocs=int(payload["nprocs"]),
            rank=rank, t_start=t_start, t_done=t_done, edges=edges,
            sends=sends,
            per_rank_bytes=None if prb is None else np.asarray(prb,
                                                               dtype=float),
            mem_budget_bytes=payload.get("mem_budget_bytes"),
        )


class TraceVerifier:
    """Static checks over one :class:`DistTrace`."""

    def __init__(self, trace: DistTrace):
        self._trace = trace

    def verify(self, subject: str = "trace") -> VerificationReport:
        """Run every applicable check; returns the full violation set."""
        tr = self._trace
        checks = ["completeness", "sends", "consume-order"]
        if tr.per_rank_bytes is not None and tr.mem_budget_bytes is not None:
            checks.append("memory")
        out = VerificationReport(subject=subject, checks=tuple(checks))
        self._check_completeness(out)
        send_keys = self._check_sends(out)
        self._check_consume_order(out, send_keys)
        if "memory" in checks:
            self._check_memory(out)
        return out

    # ------------------------------------------------------------------
    def _check_completeness(self, out: VerificationReport) -> None:
        tr = self._trace
        never = np.flatnonzero(tr.t_start < 0)
        if never.size:
            out.add(Violation(
                code=rep.TRACE_TASK_MISSING,
                message=f"{never.size} task(s) never executed in the trace",
                task_ids=tuple(int(t) for t in never[:MAX_PER_CODE]),
            ))

    def _check_sends(self, out: VerificationReport) -> dict:
        """Every send must be delivered after it departs.

        Returns the ``(tid, succ) -> receive time`` map the consume-order
        check resolves cross-rank edges against.
        """
        tr = self._trace
        recv_of: dict = {}
        flagged = 0
        for s in tr.sends:
            key = (s.tid, s.succ)
            if s.t_recv is None:
                if flagged < MAX_PER_CODE:
                    out.add(Violation(
                        code=rep.TRACE_UNMATCHED_SEND,
                        message=f"send of task {s.tid}'s tile to task "
                                f"{s.succ} (rank {s.src}→{s.dst}) was "
                                "never received",
                        task_ids=(s.tid, s.succ),
                        rank=s.src,
                    ))
                    flagged += 1
                continue
            if s.t_recv < s.t_send - TIME_EPS:
                if flagged < MAX_PER_CODE:
                    out.add(Violation(
                        code=rep.TRACE_UNMATCHED_SEND,
                        message=f"send of task {s.tid}'s tile to task "
                                f"{s.succ} received at {s.t_recv:g} "
                                f"before it departed at {s.t_send:g}",
                        task_ids=(s.tid, s.succ),
                        rank=s.src,
                    ))
                    flagged += 1
                continue
            prev = recv_of.get(key)
            if prev is None or s.t_recv > prev:
                recv_of[key] = s.t_recv
        return recv_of

    def _check_consume_order(self, out: VerificationReport,
                             recv_of: dict) -> None:
        """No rank may consume a tile before its producer's completion
        event (same rank) or the tile's arrival (cross rank)."""
        tr = self._trace
        if not tr.edges.size:
            return
        prod = tr.edges[:, 0]
        cons = tr.edges[:, 1]
        ran = (tr.t_start[prod] >= 0) & (tr.t_start[cons] >= 0)
        same = tr.rank[prod] == tr.rank[cons]
        # same-rank edges, fully vectorized
        local_bad = ran & same & (tr.t_start[cons]
                                  < tr.t_done[prod] - TIME_EPS)
        for e in np.flatnonzero(local_bad)[:MAX_PER_CODE]:
            p, c = int(prod[e]), int(cons[e])
            out.add(Violation(
                code=rep.TRACE_EARLY_CONSUME,
                message=f"task {c} started at {tr.t_start[c]:g} before "
                        f"its producer {p} finished at {tr.t_done[p]:g}",
                task_ids=(c, p),
                rank=int(tr.rank[c]),
            ))
        # cross-rank edges must match a delivered send
        missing = early = 0
        for e in np.flatnonzero(ran & ~same):
            p, c = int(prod[e]), int(cons[e])
            t_recv = recv_of.get((p, c))
            if t_recv is None:
                if missing < MAX_PER_CODE:
                    out.add(Violation(
                        code=rep.TRACE_MISSING_SEND,
                        message=f"tasks {p} (rank {int(tr.rank[p])}) and "
                                f"{c} (rank {int(tr.rank[c])}) share a "
                                "dependency edge but the trace records no "
                                "delivered send for it",
                        task_ids=(p, c),
                        rank=int(tr.rank[c]),
                    ))
                    missing += 1
            elif tr.t_start[c] < t_recv - TIME_EPS:
                if early < MAX_PER_CODE:
                    out.add(Violation(
                        code=rep.TRACE_EARLY_CONSUME,
                        message=f"task {c} started at {tr.t_start[c]:g} "
                                f"before task {p}'s tile arrived at "
                                f"{t_recv:g}",
                        task_ids=(c, p),
                        rank=int(tr.rank[c]),
                    ))
                    early += 1

    def _check_memory(self, out: VerificationReport) -> None:
        tr = self._trace
        budget = float(tr.mem_budget_bytes)
        if not math.isfinite(budget):
            return
        over = np.flatnonzero(tr.per_rank_bytes > budget)
        for r in over[:MAX_PER_CODE]:
            out.add(Violation(
                code=rep.TRACE_MEM_BUDGET,
                message=f"rank {int(r)} holds "
                        f"{tr.per_rank_bytes[r] / 1e9:.2f} GB of factors, "
                        f"budget is {budget / 1e9:.2f} GB",
                rank=int(r),
            ))


def verify_trace(trace: DistTrace, subject: str = "trace"
                 ) -> VerificationReport:
    """One-shot convenience wrapper around :class:`TraceVerifier`."""
    return TraceVerifier(trace).verify(subject=subject)

"""The golden schedule configurations, importable by CLI and tests.

``tests/golden/trojan_batches.json`` pins the trojan scheduler's batch
decomposition for five (matrix, GPU, kwargs) configurations.  The
configs used to live only in ``tests/golden/generate.py``; they moved
here so ``python -m repro verify --golden`` can rebuild each DAG and
statically verify the checked-in batch sequences, and the generator
script now imports them from this module.

This module imports solver-side machinery, so it is deliberately *not*
re-exported from :mod:`repro.verify`'s ``__init__`` (which must stay
importable from inside :mod:`repro.core`'s own import).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core import build_block_dag, make_scheduler
from repro.core.solve_dag import build_solve_dag, make_solve_scheduler
from repro.core.executor import EstimateBackend
from repro.gpusim import GPUCostModel, RTX5060TI, RTX5090
from repro.matrices import circuit_like, poisson2d
from repro.ordering import compute_ordering
from repro.sparse import permute_symmetric, uniform_partition
from repro.symbolic import block_fill
from repro.verify.report import VerificationReport
from repro.verify.schedule import ScheduleVerifier

#: Default location of the checked-in golden batch sequences, relative
#: to a repo-root working directory.
DEFAULT_GOLDEN_PATH = pathlib.Path("tests") / "golden" / \
    "trojan_batches.json"


def golden_configs():
    """The ``(name, dag, gpu, kwargs)`` tuples the goldens cover."""
    def dag_of(a, bs, sparse):
        b = permute_symmetric(a, compute_ordering(a, "mindeg"))
        part = uniform_partition(a.nrows, bs)
        return build_block_dag(block_fill(b, part), part,
                               sparse_tiles=sparse)

    circuit = dag_of(circuit_like(180, seed=2), 12, True)
    poisson = dag_of(poisson2d(16), 8, False)
    wide = dag_of(circuit_like(240, seed=7), 16, True)
    return [
        ("circuit180_b12_trojan", circuit, RTX5090, {}),
        ("circuit180_b12_trojan_slack2", circuit, RTX5090,
         {"critical_slack": 2}),
        ("poisson256_b8_trojan", poisson, RTX5090, {}),
        ("poisson256_b8_trojan_small_gpu", poisson, RTX5060TI, {}),
        ("circuit240_b16_trojan_cap24", wide, RTX5090,
         {"max_batch_tasks": 24}),
    ]


def solve_golden_configs():
    """The ``(name, dag, gpu)`` solve-phase (SpTRSV) configurations.

    The DAGs are purely structural — built from the block fill of the
    permuted matrix's triangular half, which is exactly the factor
    pattern a numeric run would produce — so the adversarial gate needs
    no factorisation to rebuild them.
    """
    def solve_dag_of(a, bs, nrhs, lower=True):
        b = permute_symmetric(a, compute_ordering(a, "mindeg"))
        part = uniform_partition(a.nrows, bs)
        bf = block_fill(b, part)
        pat = np.tril(bf) if lower else np.triu(bf)
        return build_solve_dag(pat, part, nrhs=nrhs, lower=lower)

    return [
        ("poisson256_b8_lsolve_r4",
         solve_dag_of(poisson2d(16), 8, 4), RTX5090),
        ("circuit180_b12_usolve_r1",
         solve_dag_of(circuit_like(180, seed=2), 12, 1, lower=False),
         RTX5090),
    ]


def solve_schedule_for_config(name: str):
    """Re-run the trojan scheduler for a named solve-phase config.

    Returns ``(dag, gpu, batches)``, mirroring
    :func:`schedule_for_config` for the solve DAGs.
    """
    for cfg_name, dag, gpu in solve_golden_configs():
        if cfg_name == name:
            result = make_solve_scheduler("trojan", dag, EstimateBackend(),
                                          GPUCostModel(gpu)).run()
            return dag, gpu, result.batches
    raise KeyError(f"unknown solve golden config {name!r}")


def golden_config_by_name(name: str):
    """One named golden configuration (raises ``KeyError`` if absent)."""
    for cfg in golden_configs():
        if cfg[0] == name:
            return cfg
    raise KeyError(f"unknown golden config {name!r}")


def schedule_for_config(name: str):
    """Re-run the trojan scheduler for a named config.

    Returns ``(dag, gpu, batches)`` with ``batches`` as the scheduler's
    list of :class:`~repro.core.executor.BatchRecord`.
    """
    _, dag, gpu, kwargs = golden_config_by_name(name)
    result = make_scheduler("trojan", dag, EstimateBackend(),
                            GPUCostModel(gpu), **kwargs).run()
    return dag, gpu, result.batches


def verify_golden_file(path=DEFAULT_GOLDEN_PATH) -> VerificationReport:
    """Statically verify every checked-in golden batch sequence.

    Rebuilds each configuration's DAG, then runs the full
    :class:`ScheduleVerifier` battery (with the config's GPU budgets)
    over the recorded batches.  Configs present in the file but unknown
    to :func:`golden_configs` are skipped — the golden *content* test
    lives in ``tests/test_golden_schedule.py``; this gate proves the
    sequences are safe schedules.
    """
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    configs = {name: (dag, gpu) for name, dag, gpu, _ in golden_configs()}
    out = VerificationReport(subject=f"golden:{path}")
    for name, record in payload.items():
        if name not in configs:
            continue
        dag, gpu = configs[name]
        report = ScheduleVerifier(dag, gpu=gpu).verify_batches(
            record["batches"], subject=f"golden:{name}")
        out.merge(report)
    return out

"""Distributed GPU-cluster simulation (the scale-out substitution).

The paper's scale-out evaluation runs MPI, one process per GPU, tiles
distributed 2-D block-cyclically, results exchanged over InfiniBand.
This package reproduces that environment as a discrete-event simulation:

* :class:`~repro.cluster.grid.ProcessGrid` — 2-D block-cyclic tile
  ownership;
* :class:`~repro.cluster.network.NetworkModel` /
  :class:`~repro.cluster.network.ClusterSpec` — latency+bandwidth message
  costs, intra- vs inter-node links, H100 and MI50 cluster presets
  (Table 3);
* :class:`~repro.cluster.distsim.DistributedSimulator` — event-driven
  execution with a per-process scheduler (baseline, streams or Trojan
  Horse), producing makespans for the Figure-12 strong-scaling study;
* :class:`~repro.cluster.faults.FaultSpec` — seeded, reproducible fault
  injection (lossy links with retransmission, stragglers, rank death +
  checkpoint recovery) for the CI chaos gate.

Link contention and MPI protocol effects are not modelled (DESIGN.md §3).
"""

from repro.cluster.grid import ProcessGrid
from repro.cluster.network import (
    NetworkModel,
    ClusterSpec,
    IB_400G,
    IB_200G,
    NVLINK,
    PCIE4,
    H100_CLUSTER,
    MI50_CLUSTER,
)
from repro.cluster.distsim import (
    DistributedSimulator,
    DistributedResult,
    ENGINES,
    default_engine,
)
from repro.cluster.eventarena import EventArena, EventLoopStats
from repro.cluster.synthetic import banded_block_dag
from repro.cluster.faults import (
    FaultSpec,
    FaultStats,
    LinkFaults,
    RankDeath,
    RecordOnceBackend,
    Straggler,
)
from repro.cluster.memory import factor_bytes_per_rank, fits_in_memory

__all__ = [
    "FaultSpec",
    "FaultStats",
    "LinkFaults",
    "RankDeath",
    "RecordOnceBackend",
    "Straggler",
    "ProcessGrid",
    "NetworkModel",
    "ClusterSpec",
    "IB_400G",
    "IB_200G",
    "NVLINK",
    "PCIE4",
    "H100_CLUSTER",
    "MI50_CLUSTER",
    "DistributedSimulator",
    "DistributedResult",
    "ENGINES",
    "default_engine",
    "EventArena",
    "EventLoopStats",
    "banded_block_dag",
    "factor_bytes_per_rank",
    "fits_in_memory",
]

"""Columnar event storage + calendar-queue scheduling (the distsim engine core).

PR 1's ScheduleArena replaced per-task Python objects with
struct-of-array columns; this module does the same for the *event queue*
of :mod:`repro.cluster.distsim`.  Events live in append-only columns
(time / kind / rank / payload — no per-event tuple objects on a global
heap) and are ordered by a calendar queue (a bucketed time wheel): a
small heap holds one entry per *non-empty* time bucket instead of one
per event, and each bucket is drained as a cohort — one stable sort over
the bucket replaces thousands of heap sift-downs.  Small cohorts sort in
Python (constant cost wins), wide cohorts through a vectorized
``np.argsort`` — the crossover is :data:`EventArena.VEC_COHORT_MIN`.

Determinism contract (DESIGN.md, "The EventArena engine"): events are
processed in exactly the legacy order ``(t, seq)``, where ``seq`` is the
global push counter.  The arena row index *is* the sequence number (rows
append monotonically), buckets sort by ``(t, row)`` — a stable sort on
``t`` over rows already in seq order — and pushes landing inside the
bucket currently being drained go through a spill heap merged against
the cohort by the same ``(t, row)`` key.  Simulated time never runs
backwards, so a new event's bucket is never *behind* the one being
drained.  The bucket width therefore affects only performance counters,
never the processing order — traces and digests are bit-identical for
any width, which is what lets the width adapt freely at run time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

#: Arena event kinds.  The payload column's meaning depends on the kind:
#: inline data (a task id) or an index into an engine-owned side list for
#: tuple-shaped payloads.
K_READY = 0    #: payload = task id
K_DONE = 1     #: payload = index into the engine's batch side list
K_WAKE = 2     #: payload unused (-1)
K_XMIT = 3     #: payload = index into the engine's xmit side list
K_DELIVER = 4  #: payload = index into the engine's deliver side list
K_DEATH = 5    #: payload unused (-1)


@dataclass
class EventLoopStats:
    """Event-engine observability counters.

    Attached to :class:`~repro.cluster.distsim.DistributedResult` as
    ``.events`` and nested under the ``"events"`` key of ``summary()``.
    The legacy heap loop reports the same counters with every cohort of
    size 1, so the two engines stay comparable in benchmark tables.
    """

    engine: str
    events: int = 0
    cohorts: int = 0
    max_cohort: int = 0
    peak_depth: int = 0
    width_shrinks: int = 0
    wall_s: float = 0.0

    @property
    def events_per_sec(self) -> float:
        """Simulated events processed per wall-clock second."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict:
        """JSON-serializable counter dict for ``summary()`` / CLI."""
        return {
            "engine": self.engine,
            "events": self.events,
            "cohorts": self.cohorts,
            "max_cohort": self.max_cohort,
            "peak_depth": self.peak_depth,
            "events_per_sec": round(self.events_per_sec, 1),
        }


class EventArena:
    """Calendar-queue event store with legacy ``(t, seq)`` pop order.

    Parameters
    ----------
    width:
        Initial bucket width in simulated seconds.  A good starting
        point is the dominant inter-event spacing (the engine uses the
        internode latency); the width self-tunes downwards when too many
        pushes land in the bucket being drained (spill ratio ≥ 1/2 over
        an :data:`ADAPT_WINDOW`-push window), deterministically — the
        shrink schedule depends only on the event stream.
    capacity:
        Accepted for compatibility with preallocating stores; the
        append-only columns need no preallocation.
    """

    #: pushes between width-adaptation checks
    ADAPT_WINDOW = 4096
    #: hard floor for the adaptive bucket width (seconds)
    MIN_WIDTH = 1e-9
    #: cohorts at least this wide sort via ``np.argsort`` instead of
    #: a Python sort (numpy call overhead dominates below this)
    VEC_COHORT_MIN = 128

    def __init__(self, width: float, capacity: int = 1024):
        if width <= 0:
            raise ValueError("bucket width must be positive")
        self._w = float(width)
        self._inv_w = 1.0 / self._w
        # append-only columns; the row index is the push sequence number
        self._t: list[float] = []
        self._kind: list[int] = []
        self._rank: list[int] = []
        self._payload: list[int] = []
        #: non-empty buckets: bucket id -> row list in push (seq) order
        self._buckets: dict[int, list[int]] = {}
        self._bidheap: list[int] = []
        #: (t, row) pushes that landed in the bucket being drained
        self._spill: list[tuple[float, int]] = []
        self._cur_bid: int | None = None
        # materialized current cohort (column lists, sorted by (t, row))
        self._ct: list = []
        self._ck: list = []
        self._cr: list = []
        self._cp: list = []
        self._crow: list = []
        self._ci = 0
        self._cn = 0
        self._live = 0
        self._pushes_window = 0
        self._spills_window = 0
        self.stats = EventLoopStats(engine="arena")

    def __len__(self) -> int:
        return self._live

    @property
    def width(self) -> float:
        """Current (possibly adapted) bucket width in seconds."""
        return self._w

    def push(self, t: float, kind: int, rank: int, payload: int) -> None:
        """Append one event; its row index is its tie-break sequence."""
        col = self._t
        n = len(col)
        col.append(t)
        self._kind.append(kind)
        self._rank.append(rank)
        self._payload.append(payload)
        live = self._live + 1
        self._live = live
        if live > self.stats.peak_depth:
            self.stats.peak_depth = live
        self._pushes_window += 1
        bid = int(t * self._inv_w)
        cur = self._cur_bid
        if cur is not None and bid <= cur:
            # lands in (or, defensively, behind) the bucket being
            # drained: merge by (t, row) against the cohort remainder
            heapq.heappush(self._spill, (t, n))
            self._spills_window += 1
            return
        rows = self._buckets.get(bid)
        if rows is None:
            self._buckets[bid] = [n]
            heapq.heappush(self._bidheap, bid)
        else:
            rows.append(n)

    def pop(self):
        """Earliest event as ``(t, kind, rank, payload)``; None if empty."""
        ci = self._ci
        if ci < self._cn:
            spill = self._spill
            if spill:
                ts, rs = spill[0]
                tc = self._ct[ci]
                if ts < tc or (ts == tc and rs < self._crow[ci]):
                    heapq.heappop(spill)
                    return self._emit_row(ts, rs)
            self._ci = ci + 1
            self.stats.events += 1
            self._live -= 1
            return self._ct[ci], self._ck[ci], self._cr[ci], self._cp[ci]
        if self._spill:
            ts, rs = heapq.heappop(self._spill)
            return self._emit_row(ts, rs)
        if not self._next_cohort():
            return None
        return self.pop()

    def take_cohort(self, spill_pops: int = 0) -> int:
        """Hand the next cohort's column lists to the caller.

        The fault-free engine drains cohorts inline (reading ``_ct`` /
        ``_ck`` / ``_cr`` / ``_cp`` / ``_crow`` directly and merging the
        spill heap itself) to avoid one method call per event; this
        loads the next cohort, transfers its event accounting in one
        batch, and marks it consumed for :meth:`pop`.  ``spill_pops``
        flushes the caller's spill-heap pops since the last call.  With
        batched accounting, ``peak_depth`` is tracked at cohort
        granularity on this path (exact at cohort boundaries).

        Returns the cohort size, 0 when the arena is drained.
        """
        if spill_pops:
            self._live -= spill_pops
            self.stats.events += spill_pops
        if not self._next_cohort():
            return 0
        m = self._cn
        self._live -= m
        self.stats.events += m
        self._ci = m
        return m

    def _emit_row(self, ts: float, row: int):
        self.stats.events += 1
        self._live -= 1
        return ts, self._kind[row], self._rank[row], self._payload[row]

    def _next_cohort(self) -> bool:
        self._maybe_adapt()
        buckets = self._buckets
        t_l = self._t
        while self._bidheap:
            bid = heapq.heappop(self._bidheap)
            rows = buckets.pop(bid, None)
            if not rows:
                continue
            self._cur_bid = bid
            m = len(rows)
            if m == 1:
                r = rows[0]
                self._ct = [t_l[r]]
                self._ck = [self._kind[r]]
                self._cr = [self._rank[r]]
                self._cp = [self._payload[r]]
                self._crow = rows
            elif m < self.VEC_COHORT_MIN:
                # Timsort on (t, row) pairs: stable total order by the
                # legacy heap key, cheap at bucket-sized m
                pairs = sorted(zip((t_l[r] for r in rows), rows))
                kind_l = self._kind
                rank_l = self._rank
                pay_l = self._payload
                self._ct = [p[0] for p in pairs]
                crow = [p[1] for p in pairs]
                self._crow = crow
                self._ck = [kind_l[r] for r in crow]
                self._cr = [rank_l[r] for r in crow]
                self._cp = [pay_l[r] for r in crow]
            else:
                r = np.asarray(rows, dtype=np.int64)
                ts = np.fromiter((t_l[x] for x in rows), np.float64, m)
                # stable sort on t over rows already in seq order ==
                # total order by (t, seq): the legacy heap key
                order = np.argsort(ts, kind="stable")
                crow = r[order].tolist()
                self._ct = ts[order].tolist()
                self._crow = crow
                kind_l = self._kind
                rank_l = self._rank
                pay_l = self._payload
                self._ck = [kind_l[x] for x in crow]
                self._cr = [rank_l[x] for x in crow]
                self._cp = [pay_l[x] for x in crow]
            self._ci = 0
            self._cn = m
            st = self.stats
            st.cohorts += 1
            if m > st.max_cohort:
                st.max_cohort = m
            return True
        return False

    def _maybe_adapt(self) -> None:
        """Deterministic shrink-only width adaptation.

        Checked only at cohort boundaries (spill empty, cohort drained),
        so re-bucketing never has to reconcile a half-drained bucket.
        """
        if self._pushes_window < self.ADAPT_WINDOW:
            return
        if (self._spills_window * 2 >= self._pushes_window
                and self._w > self.MIN_WIDTH):
            self._w = max(self._w * 0.5, self.MIN_WIDTH)
            self._inv_w = 1.0 / self._w
            self.stats.width_shrinks += 1
            self._rebucket()
        self._pushes_window = 0
        self._spills_window = 0

    def _rebucket(self) -> None:
        rows: list[int] = []
        for rs in self._buckets.values():
            rows.extend(rs)
        self._buckets.clear()
        self._bidheap.clear()
        self._cur_bid = None
        if not rows:
            return
        rows.sort()  # restore global seq order before regrouping
        t_l = self._t
        inv = self._inv_w
        buckets = self._buckets
        for r in rows:
            bid = int(t_l[r] * inv)
            grp = buckets.get(bid)
            if grp is None:
                buckets[bid] = [r]
            else:
                grp.append(r)
        # sorted bucket ids are already a valid min-heap
        self._bidheap = sorted(buckets)

"""Network cost model and cluster presets (paper Table 3)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.specs import GPUSpec, H100_SXM, MI50


@dataclass(frozen=True)
class NetworkModel:
    """Latency + bandwidth point-to-point message cost."""

    name: str
    latency_us: float
    bandwidth_gbs: float  # GB/s (bytes, not bits)

    def message_time(self, nbytes: int) -> float:
        """Seconds to deliver ``nbytes`` from send-complete to arrival."""
        if nbytes < 0:
            raise ValueError("negative message size")
        return self.latency_us * 1e-6 + nbytes / (self.bandwidth_gbs * 1e9)


IB_400G = NetworkModel("InfiniBand 400G", latency_us=2.0, bandwidth_gbs=50.0)
IB_200G = NetworkModel("InfiniBand 200G", latency_us=2.5, bandwidth_gbs=25.0)
NVLINK = NetworkModel("NVLink", latency_us=1.0, bandwidth_gbs=300.0)
PCIE4 = NetworkModel("PCIe 4.0 x16", latency_us=1.5, bandwidth_gbs=32.0)


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster.

    Attributes
    ----------
    gpu:
        Per-process device.
    gpus_per_node:
        Processes sharing one node (intra-node messages use the faster
        link).
    internode, intranode:
        Network models for the two locality classes.
    """

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    internode: NetworkModel
    intranode: NetworkModel

    def link(self, src: int, dst: int) -> NetworkModel | None:
        """The network model carrying ``src → dst`` traffic.

        ``None`` for self-messages — no link is crossed.  Fault
        injection keys its per-link drop probabilities off this same
        classification, so a spec targets the exact link the cost model
        charges.
        """
        if src == dst:
            return None
        same_node = src // self.gpus_per_node == dst // self.gpus_per_node
        return self.intranode if same_node else self.internode

    def message_time(self, src: int, dst: int, nbytes: int) -> float:
        """Message cost between two ranks (0 for self-messages)."""
        link = self.link(src, dst)
        return 0.0 if link is None else link.message_time(nbytes)

    def message_times(self, src, dst, nbytes) -> np.ndarray:
        """Vectorized :meth:`message_time` over parallel rank/size arrays.

        Used by the arena engine to price every DAG edge in one pass at
        setup.  The arithmetic is the same two-operation expression as
        the scalar path (precomputed latency seconds + bytes over
        precomputed bytes/sec), so each element is bit-identical to a
        scalar ``message_time`` call.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        b = np.asarray(nbytes, dtype=np.float64)
        if b.size and float(b.min()) < 0:
            raise ValueError("negative message size")
        gpn = self.gpus_per_node
        same_node = (src // gpn) == (dst // gpn)
        t_intra = (self.intranode.latency_us * 1e-6
                   + b / (self.intranode.bandwidth_gbs * 1e9))
        t_inter = (self.internode.latency_us * 1e-6
                   + b / (self.internode.bandwidth_gbs * 1e9))
        return np.where(src == dst, 0.0,
                        np.where(same_node, t_intra, t_inter))


H100_CLUSTER = ClusterSpec(
    name="2-node H100 SXM (8 GPUs/node, IB 400G)",
    gpu=H100_SXM,
    gpus_per_node=8,
    internode=IB_400G,
    intranode=NVLINK,
)
"""The paper's 16-GPU NVIDIA cluster."""

MI50_CLUSTER = ClusterSpec(
    name="4-node MI50 (4 GPUs/node, IB 200G)",
    gpu=MI50,
    gpus_per_node=4,
    internode=IB_200G,
    intranode=PCIE4,
)
"""The paper's 16-GPU AMD cluster."""

"""Discrete-event simulation of distributed numeric factorisation.

One simulated process per GPU; tiles owned 2-D block-cyclically; an edge
of the task DAG whose producer and consumer live on different ranks
becomes a message (producer's output tile, latency+bandwidth cost).  Each
process runs its own scheduler — the paper's integration point: baseline
per-task execution, the four-stream ablation, or the full Trojan Horse
Aggregate/Batch pipeline.

Contention-free network, zero software overhead on message handling, and
eager sends (a tile ships the moment its producer finishes) — the
standard simplifications for strong-scaling studies, recorded in
DESIGN.md §3.
"""

from __future__ import annotations

import heapq
import math
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.eventarena import EventLoopStats
from repro.cluster.faults import FaultSpec, FaultStats
from repro.cluster.grid import ProcessGrid
from repro.cluster.memory import USABLE_FRACTION, factor_bytes_per_rank
from repro.cluster.network import ClusterSpec
from repro.core.collector import Collector
from repro.core.container import Container
from repro.core.dag import TaskDAG
from repro.core.executor import ExecutionBackend, Executor
from repro.core.prioritizer import Prioritizer
from repro.core.task import TaskType
from repro.gpusim.costmodel import GPUCostModel, KernelLaunch
from repro.verify.trace import DistTrace, SendRecord

POLICIES = ("serial", "streams", "trojan", "dmdas")
"""Per-process scheduling policies supported by the simulator."""

ENGINES = ("arena", "legacy")
"""Event-loop engines: the vectorized calendar-queue arena (default) and
the kept per-message heap loop (the differential oracle)."""


def default_engine() -> str:
    """Engine used when ``DistributedSimulator(engine=None)``.

    ``REPRO_DISTSIM_LEGACY=1`` routes through the per-message heap loop
    (the differential oracle); anything else selects the arena engine.
    """
    flag = os.environ.get("REPRO_DISTSIM_LEGACY", "0").strip().lower()
    return "legacy" if flag in ("1", "true", "yes", "on") else "arena"


@dataclass
class DistributedResult:
    """Outcome of one distributed factorisation simulation."""

    cluster: str
    policy: str
    nprocs: int
    makespan: float
    total_tasks: int
    total_kernels: int
    total_flops: int
    per_proc_kernels: list[int]
    per_proc_busy: list[float]
    messages: int
    comm_bytes: int
    timeline: list[tuple[int, float, float, list[int]]] | None = None
    #: Verifier-ready communication trace (``record_trace=True`` runs);
    #: feed it to :class:`repro.verify.trace.TraceVerifier`.
    trace: DistTrace | None = None
    #: Fault accounting (``faults=FaultSpec(...)`` runs only).
    faults: FaultStats | None = None
    #: Event-loop counters (which engine ran, events processed, cohort
    #: sizes, peak queue depth, events/sec).
    events: EventLoopStats | None = None

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")

    @property
    def gflops(self) -> float:
        """Aggregate cluster throughput."""
        return (self.total_flops / self.makespan / 1e9
                if self.makespan > 0 else 0.0)

    @property
    def load_balance(self) -> float:
        """mean/max busy-time ratio (1.0 = perfectly balanced).

        An empty ``per_proc_busy`` (a result that has not run yet) is
        vacuously balanced: 1.0, rather than a zero-size reduction error.
        """
        busy = np.asarray(self.per_proc_busy, dtype=np.float64)
        if busy.size == 0:
            return 1.0
        return float(busy.mean() / busy.max()) if busy.max() > 0 else 1.0

    def summary(self) -> dict:
        """Compact dict for benchmark tables.

        Fault-injected runs also carry the fault counters (drops,
        retransmits, re-executed tasks, …) so CI can assert on them.
        """
        out = {
            "cluster": self.cluster,
            "policy": self.policy,
            "gpus": self.nprocs,
            "time_s": self.makespan,
            "gflops": self.gflops,
            "kernels": self.total_kernels,
            "messages": self.messages,
            "comm_MB": self.comm_bytes / 1e6,
            "balance": round(self.load_balance, 3),
        }
        if self.faults is not None:
            out.update(self.faults.as_dict())
        if self.events is not None:
            out["events"] = self.events.as_dict()
        return out


class _ProcState:
    """Scheduler state of one simulated process."""

    def __init__(self, rank: int, policy: str, dag: TaskDAG,
                 model: GPUCostModel, backend: ExecutionBackend,
                 cp: np.ndarray, n_streams: int = 4, slowdown=None):
        self.rank = rank
        self.policy = policy
        self.dag = dag
        self.model = model
        self.backend = backend
        self.executor = Executor(model, backend)
        self.kernels = 0
        self.busy = 0.0
        #: latency stretch ``t -> factor`` (straggler injection); the
        #: default identity factor keeps fault-free timing bit-exact
        self.slowdown = slowdown or (lambda _t: 1.0)
        #: task ids launched but not yet completed (fault path only —
        #: a rank death loses exactly this set)
        self.running: set[int] = set()
        if policy == "trojan":
            self.prio = Prioritizer(dag, cp)
            self.container = Container()
            self.collector = Collector(model.gpu)
            self.busy_until = 0.0
            # Algorithm 1 launches batches with GPU.AsyncExecutor: the CPU
            # may prepare and enqueue the next batch while one executes
            # (double buffering); the GPU itself runs batches in order
            self.gpu_free = 0.0
            self.inflight = 0
        elif policy in ("serial", "dmdas"):
            self.heap: list[tuple[int, int, int]] = []
            self.cp = cp
            self.busy_until = 0.0
        elif policy == "streams":
            self.heap = []
            self.cp = cp
            self.clocks = [0.0] * n_streams
            self.device_clock = 0.0    # SM time shared across streams
            self.dispatch_clock = 0.0  # CPU submission serialised
        else:
            raise ValueError(f"unknown policy {policy!r}")

    # -- ready bookkeeping ------------------------------------------------
    def add_ready(self, tid: int) -> None:
        task = self.dag.tasks[tid]
        if self.policy == "trojan":
            self.prio.push_ready(tid)
        elif self.policy == "dmdas":
            heapq.heappush(self.heap, (-int(self.cp[tid]), task.k, tid))
        else:
            heapq.heappush(self.heap, (task.distance, task.k, tid))

    def has_ready(self) -> bool:
        if self.policy == "trojan":
            return self.prio.has_ready or not self.container.is_empty
        return bool(self.heap)

    # -- timing hooks -----------------------------------------------------
    # The arena engine's _FastProcState overrides these two with
    # precomputed-array fast paths (repro.cluster.engine); the launch
    # methods below are shared by both engines, so the scheduling logic
    # cannot drift between them.
    def _run_batch_time(self, tids: list[int],
                        t_start: float) -> tuple[float, int]:
        """Simulated ``(duration, flops)`` of launching ``tids`` at
        ``t_start``.

        The duration is ``(t_start + launch_time) - t_start`` — the
        subtraction is part of the contract (``BatchRecord.duration``
        computes exactly that), and fast paths must reproduce its
        floating-point rounding to stay bit-identical.
        """
        record = self.executor.run_batch(
            [self.dag.tasks[x] for x in tids], t_start)
        return record.duration, record.flops

    def _task_body_time(self, tid: int) -> tuple[float, int]:
        """Kernel-body seconds (launch time minus overhead) and flops of
        one task — the streams policy's dispatch/body split."""
        task = self.dag.tasks[tid]
        stats = self.backend.run_task(task, False)
        launch = KernelLaunch()
        launch.add_task(task.cuda_blocks, stats.flops, stats.bytes,
                        task.shared_mem_bytes)
        overhead = self.model.gpu.launch_overhead_us * 1e-6
        return self.model.launch_time(launch) - overhead, stats.flops

    def _pop_ready(self) -> int:
        """Pop the highest-priority queued task id (serial/dmdas/streams)."""
        return heapq.heappop(self.heap)[2]

    # -- launching --------------------------------------------------------
    def launch(self, t: float) -> list[tuple[float, float, list[int], int]]:
        """Start work at time ``t`` if the policy allows.

        Returns a list of ``(start, end, task_ids, flops)`` launches.
        """
        if self.policy == "streams":
            return self._launch_streams(t)
        if self.policy == "trojan":
            return self._launch_trojan(t)
        if self.busy_until > t or not self.has_ready():
            return []
        tids = [self._pop_ready()]
        dur, flops = self._run_batch_time(tids, t)
        end = t + dur * self.slowdown(t)
        self.busy_until = end
        self.busy += end - t
        self.kernels += 1
        return [(t, end, tids, flops)]

    def _launch_trojan(self, t: float) -> list[tuple[float, float, list[int], int]]:
        out = []
        while self.inflight < 2 and self.has_ready():
            tids = self._form_trojan_batch()
            if self.inflight >= 1 and not self.collector.is_full:
                # GPU busy with a batch already queued behind it: keep
                # aggregating instead of enqueueing a partial batch —
                # push the formed tasks back and wait for a completion
                for tid in tids:
                    self.prio.push_ready(tid)
                break
            start = max(t, self.gpu_free)
            dur, flops = self._run_batch_time(tids, start)
            end = start + dur * self.slowdown(t)
            self.gpu_free = end
            self.inflight += 1
            self.busy += end - start
            self.kernels += 1
            out.append((start, end, tids, flops))
        return out

    def on_done(self) -> None:
        """A previously-enqueued batch finished (async-executor slot free)."""
        if self.policy == "trojan":
            self.inflight -= 1

    def _form_trojan_batch(self) -> list[int]:
        coll = self.collector
        coll.reset()
        prio, cont, dag = self.prio, self.container, self.dag
        prio.begin_round()
        while prio.has_ready:
            tid = prio.pop_most_urgent()
            task = dag.tasks[tid]
            if prio.is_critical(tid):
                if not coll.try_push(task):
                    cont.push(task, urgent=True)
                    for other in prio.drain():
                        cont.push(dag.tasks[other])
                    break
            else:
                cont.push(task)
        while not coll.is_full and not cont.is_empty:
            task = dag.tasks[cont.peek()]
            if coll.try_push(task):
                cont.pop()
            else:
                break
        if coll.is_empty:
            raise AssertionError("trojan process stalled with ready work")
        return [task.tid for task in coll.tasks]

    def _launch_streams(self, t: float) -> list[tuple[float, float, list[int], int]]:
        out = []
        overhead = self.model.gpu.launch_overhead_us * 1e-6
        dispatch = self.model.gpu.dispatch_serial_us * 1e-6
        while self.heap:
            free = [s for s in range(len(self.clocks)) if self.clocks[s] <= t]
            if not free:
                break
            s = free[0]
            tid = self._pop_ready()
            raw, flops = self._task_body_time(tid)
            issue = max(t, self.dispatch_clock)
            self.dispatch_clock = issue + dispatch
            body = raw * self.slowdown(t)
            start = max(issue + overhead, self.device_clock)
            end = start + body
            self.clocks[s] = end
            self.device_clock = end
            self.busy += end - t
            self.kernels += 1
            out.append((t, end, [tid], flops))
        return out

    def drain_pending(self) -> list[int]:
        """Remove and return every queued-but-unlaunched task id.

        Rank death re-homes this backlog onto the recovery rank; tasks
        already *running* are in :attr:`running`, not here.
        """
        if self.policy == "trojan":
            out = list(self.prio.drain())
            while not self.container.is_empty:
                out.append(self.container.pop())
            return out
        out = [entry[2] for entry in self.heap]
        self.heap.clear()
        return out

    def next_wake(self, t: float) -> float | None:
        """Earliest future time this process could start new work.

        Wakes are coalesced (one pending wake per process) and only
        cover *scheduler* stalls — a busy device with queued work.
        Retransmit deadlines must never be expressed as process wakes: a
        rank waiting on a lost message has no ready tasks, so its wake
        would be ``None`` and the coalescing would silently swallow the
        timer.  The fault path therefore keeps every retransmit timer as
        a first-class event on the global heap.
        """
        if self.policy == "streams":
            pending = [c for c in self.clocks if c > t]
            return min(pending) if pending and self.heap else None
        if self.policy == "trojan":
            # async executor: launches happen on arrivals and batch
            # completions; no timed wake needed
            return None
        if self.busy_until > t and self.has_ready():
            return self.busy_until
        return None


class DistributedSimulator:
    """Event-driven cluster-level factorisation simulation.

    Parameters
    ----------
    dag:
        Task DAG whose tasks carry tile metadata (``nnz`` sizes the
        messages).
    backend:
        Shared execution backend (replay/estimate; numeric also works —
        tasks execute exactly once across all processes).
    cluster:
        Hardware description (GPU + links).
    nprocs:
        Number of processes/GPUs.
    policy:
        Per-process scheduler (see :data:`POLICIES`).
    grid:
        Optional explicit :class:`ProcessGrid`.
    faults:
        Optional :class:`~repro.cluster.faults.FaultSpec`; when given,
        the run injects lossy links, stragglers and rank deaths,
        deterministically from the spec's seed, via the extended event
        loop (:meth:`_run_faulty`).
    engine:
        ``"arena"`` (vectorized calendar-queue engine,
        :mod:`repro.cluster.engine`) or ``"legacy"`` (the kept
        per-message heap loop).  ``None`` follows the
        ``REPRO_DISTSIM_LEGACY`` knob (default: arena).  Both engines
        produce bit-identical results — traces, digests, summaries —
        for the same inputs; the legacy loop is the differential oracle.
    """

    def __init__(self, dag: TaskDAG, backend: ExecutionBackend,
                 cluster: ClusterSpec, nprocs: int, policy: str = "serial",
                 grid: ProcessGrid | None = None,
                 record_timeline: bool = False,
                 record_trace: bool = False,
                 msg_scale: float = 1.0,
                 faults: FaultSpec | None = None,
                 engine: str | None = None,
                 certify: bool = False):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if msg_scale <= 0:
            raise ValueError("msg_scale must be positive")
        if faults is not None:
            faults.validate(nprocs)
        if engine is None:
            engine = default_engine()
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}")
        self.engine = engine
        self.faults = faults
        self.dag = dag
        self.backend = backend
        self.cluster = cluster
        self.nprocs = nprocs
        self.policy = policy
        self.grid = grid or ProcessGrid(nprocs)
        self.record_timeline = record_timeline
        #: record per-task start/done times and the cross-rank send log
        #: into a :class:`~repro.verify.trace.DistTrace` for static
        #: verification (small bookkeeping overhead, off by default)
        self.record_trace = record_trace
        #: message-size multiplier; work-extrapolated studies (Table 7 /
        #: Figure 12 regimes) scale tile bytes quadratically in the linear
        #: tile-scale factor (DESIGN.md §3)
        self.msg_scale = msg_scale
        #: opt-in static precondition: certify the whole plan (races,
        #: wait cycles, liveness, memory high-water marks) with
        #: :mod:`repro.verify.plan` before the first event fires
        self.certify = certify

    def owner_of_task(self, tid: int) -> int:
        """Rank executing a task = owner of its output tile."""
        task = self.dag.tasks[tid]
        return self.grid.owner(task.i, task.j)

    def run(self) -> DistributedResult:
        """Simulate the whole factorisation; returns cluster-level stats.

        Dispatches to the selected event engine.  Fault-free runs use
        the lean lossless loop; a :class:`FaultSpec` switches to the
        extended loop with per-edge delivery tracking, retransmit timers
        and death/recovery events — in both engines.
        """
        if self.certify:
            # lazy import: repro.verify.plan imports repro.cluster
            from repro.verify.plan import PlanSpec, verify_plan

            verify_plan(
                PlanSpec.from_dag(
                    self.dag, self.grid, faults=self.faults,
                    gpu=self.cluster.gpu, msg_scale=self.msg_scale),
                subject="distsim-plan").raise_if_violations()
        if self.engine == "arena":
            from repro.cluster.engine import run_arena, run_arena_faulty

            if self.faults is not None:
                return run_arena_faulty(self)
            return run_arena(self)
        if self.faults is not None:
            return self._run_faulty()
        return self._run_legacy()

    def _run_legacy(self) -> DistributedResult:
        """The per-message heap event loop (the differential oracle)."""
        dag = self.dag
        model = GPUCostModel(self.cluster.gpu)
        cp = dag.critical_path_lengths()
        procs = [
            _ProcState(r, self.policy, dag, model, self.backend, cp)
            for r in range(self.nprocs)
        ]
        pred = dag.pred_count.copy()
        arrival = np.zeros(dag.n_tasks)
        events: list[tuple[float, int, str, int, object]] = []
        seq = 0
        loop_stats = EventLoopStats(engine="legacy", max_cohort=1)
        t_wall = time.perf_counter()

        def push_event(t: float, kind: str, rank: int, payload) -> None:
            nonlocal seq
            heapq.heappush(events, (t, seq, kind, rank, payload))
            seq += 1
            if len(events) > loop_stats.peak_depth:
                loop_stats.peak_depth = len(events)

        for tid in dag.initial_ready():
            push_event(0.0, "ready", self.owner_of_task(tid), tid)

        # at most one pending wake per process — without this, every
        # arrival during a busy period schedules another wake at the same
        # instant and the event loop degenerates to O(events × backlog)
        wake_pending = [float("inf")] * self.nprocs

        done_tasks = 0
        messages = 0
        comm_bytes = 0
        makespan = 0.0
        total_flops = 0
        timeline = [] if self.record_timeline else None
        tracing = self.record_trace
        if tracing:
            task_t_start = np.full(dag.n_tasks, -1.0)
            task_t_done = np.full(dag.n_tasks, -1.0)
            send_log: list[SendRecord] = []

        def propagate(t_done: float, tids: list[int]) -> None:
            nonlocal messages, comm_bytes
            for tid in tids:
                src = self.owner_of_task(tid)
                out_bytes = int(8 * dag.tasks[tid].nnz * self.msg_scale)
                for s in dag.successors[tid]:
                    dst = self.owner_of_task(s)
                    delay = self.cluster.message_time(src, dst, out_bytes)
                    if src != dst:
                        messages += 1
                        comm_bytes += out_bytes
                    arr = t_done + delay
                    if src != dst and tracing:
                        send_log.append(SendRecord(
                            tid=tid, succ=int(s), src=src, dst=dst,
                            t_send=t_done, t_recv=arr, nbytes=out_bytes))
                    if arr > arrival[s]:
                        arrival[s] = arr
                    pred[s] -= 1
                    if pred[s] == 0:
                        push_event(arrival[s], "ready", dst, s)

        while events:
            t, _, kind, rank, payload = heapq.heappop(events)
            loop_stats.events += 1
            proc = procs[rank]
            if t >= wake_pending[rank]:
                wake_pending[rank] = float("inf")
            if kind == "ready":
                proc.add_ready(int(payload))
            elif kind == "done":
                proc.on_done()
                done_tasks += len(payload)
                propagate(t, payload)
                makespan = max(makespan, t)
            # try to start work wherever this event may have freed/added it
            for start, end, tids, flops in proc.launch(t):
                total_flops += flops
                if timeline is not None:
                    timeline.append((rank, start, end, list(tids)))
                if tracing:
                    task_t_start[tids] = start
                    task_t_done[tids] = end
                push_event(end, "done", rank, tids)
            wake = proc.next_wake(t)
            if wake is not None and wake < wake_pending[rank]:
                wake_pending[rank] = wake
                push_event(wake, "wake", rank, None)

        loop_stats.cohorts = loop_stats.events
        loop_stats.wall_s = time.perf_counter() - t_wall
        if done_tasks != dag.n_tasks:
            raise AssertionError(
                f"distributed sim finished {done_tasks}/{dag.n_tasks} tasks"
            )
        trace = None
        if tracing:
            indptr, indices = dag.successor_csr()
            producer = np.repeat(np.arange(dag.n_tasks, dtype=np.int64),
                                 np.diff(indptr))
            edges = np.stack(
                [producer, indices.astype(np.int64)], axis=1
            ) if indices.size else np.empty((0, 2), dtype=np.int64)
            task_rank = np.fromiter(
                (self.owner_of_task(t) for t in range(dag.n_tasks)),
                dtype=np.int64, count=dag.n_tasks)
            trace = DistTrace(
                nprocs=self.nprocs,
                rank=task_rank,
                t_start=task_t_start,
                t_done=task_t_done,
                edges=edges,
                sends=send_log,
                per_rank_bytes=factor_bytes_per_rank(dag, self.grid),
                mem_budget_bytes=USABLE_FRACTION
                * self.cluster.gpu.memory_gb * 1e9,
            )
        return DistributedResult(
            cluster=self.cluster.name,
            policy=self.policy,
            nprocs=self.nprocs,
            makespan=makespan,
            total_tasks=dag.n_tasks,
            total_kernels=sum(p.kernels for p in procs),
            total_flops=total_flops,
            per_proc_kernels=[p.kernels for p in procs],
            per_proc_busy=[p.busy for p in procs],
            messages=messages,
            comm_bytes=comm_bytes,
            timeline=timeline,
            trace=trace,
            events=loop_stats,
        )

    def _run_faulty(self) -> DistributedResult:
        """Event loop with fault injection (``faults`` was given).

        Differences from the lossless loop:

        * every DAG edge is tracked individually — a predecessor count
          drops at payload *arrival* (a ``deliver`` event), not at send
          time, so deliveries can be undone when a rank dies;
        * cross-rank shipments go through ``xmit`` events that draw
          drop/duplication outcomes from the spec's seeded RNG and
          schedule retransmits with exponential backoff.  Retransmit
          timers live on the global event heap, never as per-process
          wakes — ``_ProcState.next_wake`` coalescing would swallow a
          timer on a rank with no ready work;
        * a ``death`` event marks the rank dead, re-homes its tile
          ownership onto a recovery rank, restores the last periodic
          checkpoint there (task outputs and received payloads up to the
          checkpoint survive; everything later is re-executed or
          re-delivered) and re-queues the lost work after
          ``recovery_delay``.

        Everything stochastic comes from one ``numpy`` Generator drawn
        in deterministic event order, so identical (spec, seed) pairs
        reproduce bit-identical traces.
        """
        dag = self.dag
        spec = self.faults
        link = spec.link
        drop_table = link.drop_table()
        model = GPUCostModel(self.cluster.gpu)
        cp = dag.critical_path_lengths()
        rng = np.random.default_rng(spec.seed)
        fstats = FaultStats()
        nprocs = self.nprocs
        n = dag.n_tasks
        procs = [
            _ProcState(r, self.policy, dag, model, self.backend, cp,
                       slowdown=(lambda t, _r=r: spec.slowdown(_r, t)))
            for r in range(nprocs)
        ]

        # per-edge delivery state (CSR edge ids over successor lists)
        indptr, indices = dag.successor_csr()
        e_cons = indices.astype(np.int64)
        e_prod = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        n_edges = e_cons.size
        edge_recv = np.full(n_edges, -1.0)     # arrival time, -1 = not yet
        edge_dst = np.full(n_edges, -1, dtype=np.int64)
        edge_epoch = np.zeros(n_edges, dtype=np.int64)  # cancellation token

        # task lifecycle: 0 idle, 1 queued, 2 running, 3 done
        state = np.zeros(n, dtype=np.int8)
        exec_rank = np.full(n, -1, dtype=np.int64)
        done_at = np.full(n, -1.0)
        ready_after = np.zeros(n)  # earliest requeue time after recovery
        pred = dag.pred_count.copy()
        alive = np.ones(nprocs, dtype=bool)
        owner_override: dict[int, int] = {}  # dead rank -> recovery rank
        death_log: list[tuple[int, int, float]] = []  # (rank, recovery, t)

        def cur_owner(tid: int) -> int:
            r = self.owner_of_task(tid)
            while r in owner_override:
                r = owner_override[r]
            return r

        def holder(tid: int) -> int:
            """Alive rank holding a done task's output (checkpoint chain)."""
            r = int(exec_rank[tid])
            while r in owner_override:
                r = owner_override[r]
            return r

        events: list[tuple[float, int, str, int, object]] = []
        seq = 0
        loop_stats = EventLoopStats(engine="legacy", max_cohort=1)
        t_wall = time.perf_counter()

        def push_event(t: float, kind: str, rank: int, payload) -> None:
            nonlocal seq
            heapq.heappush(events, (t, seq, kind, rank, payload))
            seq += 1
            if len(events) > loop_stats.peak_depth:
                loop_stats.peak_depth = len(events)

        messages = 0
        comm_bytes = 0
        done_tasks = 0
        makespan = 0.0
        total_flops = 0
        timeline = [] if self.record_timeline else None
        tracing = self.record_trace
        if tracing:
            task_t_start = np.full(n, -1.0)
            task_t_done = np.full(n, -1.0)
            send_log: list[SendRecord] = []

        def edge_bytes(e: int) -> int:
            return int(8 * dag.tasks[int(e_prod[e])].nnz * self.msg_scale)

        def send_edge(e: int, src: int, t: float,
                      resend: bool = False) -> None:
            """Start shipping edge ``e``'s payload from ``src``."""
            if resend:
                fstats.resends += 1
            dst = cur_owner(int(e_cons[e]))
            if dst == src:
                if resend and tracing:
                    # recovery delivery that became rank-local (the
                    # consumer re-homed onto the payload's holder);
                    # record it so earlier dropped attempts of this
                    # (producer, consumer) pair have a matched delivery
                    send_log.append(SendRecord(
                        tid=int(e_prod[e]), succ=int(e_cons[e]), src=src,
                        dst=dst, t_send=t, t_recv=t,
                        nbytes=edge_bytes(e), attempt=0))
                push_event(t, "deliver", dst,
                           (e, int(edge_epoch[e]), src, dst))
            else:
                messages_add()
                push_event(t, "xmit", src, (e, 0, int(edge_epoch[e]), src))

        def messages_add() -> None:
            nonlocal messages
            messages += 1

        def handle_xmit(t: float, payload) -> None:
            """One transmission attempt; draws drop/dup from the RNG."""
            nonlocal comm_bytes
            e, attempt, epoch, src = payload
            if (epoch != edge_epoch[e] or not alive[src]
                    or edge_recv[e] >= 0):
                return
            p, c = int(e_prod[e]), int(e_cons[e])
            dst = cur_owner(c)  # re-routes to the recovery rank if dead
            if dst == src:
                # the consumer re-homed onto this very rank mid-flight;
                # deliver locally, with a record matching any earlier
                # dropped attempts of the pair
                if tracing:
                    send_log.append(SendRecord(
                        tid=p, succ=c, src=src, dst=dst, t_send=t,
                        t_recv=t, nbytes=edge_bytes(e), attempt=attempt))
                push_event(t, "deliver", dst, (e, epoch, src, dst))
                return
            nbytes = edge_bytes(e)
            comm_bytes += nbytes
            delay = self.cluster.message_time(src, dst, nbytes)
            pdrop = drop_table.get((src, dst), link.drop_prob)
            if (pdrop > 0.0 and attempt + 1 < link.max_attempts
                    and rng.random() < pdrop):
                # lost on the wire; the final attempt always lands
                # (reliable-transport fallback), so no payload is lost
                # forever and the run always completes
                fstats.drops += 1
                fstats.retransmits += 1
                if tracing:
                    send_log.append(SendRecord(
                        tid=p, succ=c, src=src, dst=dst, t_send=t,
                        t_recv=None, nbytes=nbytes, attempt=attempt))
                base = (link.timeout_s if link.timeout_s is not None
                        else link.timeout_factor * delay)
                push_event(t + base * link.backoff ** attempt, "xmit",
                           src, (e, attempt + 1, epoch, src))
                return
            stretch = max(spec.slowdown(src, t), spec.slowdown(dst, t))
            arr = t + delay * stretch
            if tracing:
                send_log.append(SendRecord(
                    tid=p, succ=c, src=src, dst=dst, t_send=t,
                    t_recv=arr, nbytes=nbytes, attempt=attempt))
            push_event(arr, "deliver", dst, (e, epoch, src, dst))
            if link.dup_prob > 0.0 and rng.random() < link.dup_prob:
                fstats.dups += 1
                push_event(arr, "deliver", dst, (e, epoch, src, dst))

        def handle_deliver(t: float, payload) -> None:
            e, epoch, src, dst = payload
            if epoch != edge_epoch[e] or edge_recv[e] >= 0:
                return  # cancelled, or a suppressed duplicate
            c = int(e_cons[e])
            if not alive[dst]:
                # receiver died while the payload was in flight:
                # invalidate this shipment and re-send to the consumer's
                # current owner
                edge_epoch[e] += 1
                send_edge(e, src, t, resend=True)
                return
            edge_recv[e] = t
            edge_dst[e] = dst
            pred[c] -= 1
            if pred[c] == 0 and state[c] == 0:
                push_event(max(t, ready_after[c]), "ready", cur_owner(c), c)

        def propagate(t_done: float, tids, src: int) -> None:
            for tid in tids:
                for e in range(int(indptr[tid]), int(indptr[tid + 1])):
                    if edge_recv[e] >= 0:
                        continue  # already delivered (re-execution)
                    send_edge(e, src, t_done)

        def handle_death(t: float, r: int) -> None:
            if not alive[r]:
                return
            alive[r] = False
            fstats.deaths += 1
            rec = next((r + off) % nprocs for off in range(1, nprocs)
                       if alive[(r + off) % nprocs])
            t_rec = t + spec.recovery_delay
            tc = math.floor(t / spec.checkpoint_interval) \
                * spec.checkpoint_interval
            # everything r ever executed, before the resets below — its
            # undelivered payloads all died with the NIC
            was_r = exec_rank == r
            # in-flight batches die with the GPU
            for tid in procs[r].running:
                state[tid] = 0
                exec_rank[tid] = -1
                fstats.reexecuted += 1
            procs[r].running.clear()
            # queued work re-homes to the recovery rank
            for tid in procs[r].drain_pending():
                state[tid] = 0
            # work completed after the last checkpoint is lost
            lost = np.flatnonzero((state == 3) & (exec_rank == r)
                                  & (done_at > tc))
            for tid in lost:
                state[tid] = 0
                exec_rank[tid] = -1
                nonlocal_done(-1)
                fstats.reexecuted += 1
            # tasks whose home was r now belong to the recovery rank,
            # available once the checkpoint is restored there
            moved = [tid for tid in range(n)
                     if state[tid] != 3 and cur_owner(tid) == r]
            owner_override[r] = rec
            death_log.append((r, rec, t))
            for tid in moved:
                ready_after[tid] = max(ready_after[tid], t_rec)
            # deliveries r had received: kept if checkpointed, undone
            # (and re-sent by whoever durably holds the payload) if not
            for e in np.flatnonzero((edge_dst == r) & (edge_recv >= 0)):
                c, p = int(e_cons[e]), int(e_prod[e])
                if state[c] == 3:
                    continue  # consumer survived via the checkpoint
                if edge_recv[e] > tc:
                    edge_recv[e] = -1.0
                    edge_dst[e] = -1
                    edge_epoch[e] += 1
                    pred[c] += 1
                    if state[p] == 3:
                        send_edge(e, holder(p), t_rec, resend=True)
                    # else: p itself re-executes and re-propagates
                elif state[p] == 3 and exec_rank[p] == r and tracing:
                    # local payload restored from the checkpoint on the
                    # recovery rank — record it so the verifier can match
                    # the (now cross-rank-looking) edge to a delivery
                    send_log.append(SendRecord(
                        tid=p, succ=c, src=rec, dst=rec, t_send=t_rec,
                        t_recv=t_rec, nbytes=edge_bytes(e), attempt=0))
            # undelivered payloads r produced: cancel anything still in
            # flight from the dead NIC; checkpointed (durable) outputs
            # are re-sent from the restored checkpoint, while reset
            # tasks re-deliver naturally when they re-execute
            for e in np.flatnonzero(was_r[e_prod] & (edge_recv < 0)):
                edge_epoch[e] += 1
                if state[int(e_prod[e])] == 3:
                    send_edge(e, rec, t_rec, resend=True)
            # requeue everything runnable once recovery completes
            for tid in np.flatnonzero((pred == 0) & (state == 0)):
                tid = int(tid)
                push_event(max(t_rec, ready_after[tid]), "ready",
                           cur_owner(tid), tid)

        def nonlocal_done(delta: int) -> None:
            nonlocal done_tasks
            done_tasks += delta

        for tid in dag.initial_ready():
            push_event(0.0, "ready", self.owner_of_task(tid), tid)
        for d in spec.deaths:
            push_event(d.time, "death", d.rank, None)

        wake_pending = [float("inf")] * nprocs

        while events:
            t, _, kind, rank, payload = heapq.heappop(events)
            loop_stats.events += 1
            if t >= wake_pending[rank]:
                wake_pending[rank] = float("inf")
            if kind == "death":
                handle_death(t, rank)
                continue
            if kind == "xmit":
                handle_xmit(t, payload)
                continue
            if kind == "deliver":
                handle_deliver(t, payload)
                rank = payload[3]  # try launching on the receiver
            elif kind == "ready":
                tid = int(payload)
                if state[tid] != 0 or pred[tid] != 0:
                    continue  # stale (already queued/launched or undone)
                if t < ready_after[tid]:
                    push_event(ready_after[tid], "ready", cur_owner(tid),
                               tid)
                    continue
                rank = cur_owner(tid)
                state[tid] = 1
                procs[rank].add_ready(tid)
            elif kind == "done":
                if not alive[rank]:
                    continue  # the batch died with its GPU
                proc = procs[rank]
                proc.on_done()
                finished = []
                for tid in payload:
                    if state[tid] == 2 and exec_rank[tid] == rank:
                        state[tid] = 3
                        done_at[tid] = t
                        proc.running.discard(tid)
                        nonlocal_done(1)
                        finished.append(tid)
                propagate(t, finished, rank)
                makespan = max(makespan, t)
            if not alive[rank]:
                continue
            proc = procs[rank]
            for start, end, tids, flops in proc.launch(t):
                total_flops += flops
                for tid in tids:
                    state[tid] = 2
                    exec_rank[tid] = rank
                    proc.running.add(tid)
                if timeline is not None:
                    timeline.append((rank, start, end, list(tids)))
                if tracing:
                    task_t_start[tids] = start
                    task_t_done[tids] = end
                push_event(end, "done", rank, tids)
            wake = proc.next_wake(t)
            if wake is not None and wake < wake_pending[rank]:
                wake_pending[rank] = wake
                push_event(wake, "wake", rank, None)

        loop_stats.cohorts = loop_stats.events
        loop_stats.wall_s = time.perf_counter() - t_wall
        if done_tasks != n:
            raise AssertionError(
                f"faulty distributed sim finished {done_tasks}/{n} tasks")
        trace = None
        if tracing:
            edges = np.stack([e_prod, e_cons], axis=1) if n_edges \
                else np.empty((0, 2), dtype=np.int64)
            per_rank = factor_bytes_per_rank(dag, self.grid).astype(float)
            for r, rec, _t in death_log:
                per_rank[rec] += per_rank[r]
                per_rank[r] = 0.0
            trace = DistTrace(
                nprocs=nprocs,
                rank=exec_rank.copy(),
                t_start=task_t_start,
                t_done=task_t_done,
                edges=edges,
                sends=send_log,
                deaths=[(r, t) for r, _rec, t in death_log],
                per_rank_bytes=per_rank,
                mem_budget_bytes=USABLE_FRACTION
                * self.cluster.gpu.memory_gb * 1e9,
            )
        return DistributedResult(
            cluster=self.cluster.name,
            policy=self.policy,
            nprocs=nprocs,
            makespan=makespan,
            total_tasks=n,
            total_kernels=sum(p.kernels for p in procs),
            total_flops=total_flops,
            per_proc_kernels=[p.kernels for p in procs],
            per_proc_busy=[p.busy for p in procs],
            messages=messages,
            comm_bytes=comm_bytes,
            timeline=timeline,
            trace=trace,
            faults=fstats,
            events=loop_stats,
        )

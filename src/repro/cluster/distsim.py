"""Discrete-event simulation of distributed numeric factorisation.

One simulated process per GPU; tiles owned 2-D block-cyclically; an edge
of the task DAG whose producer and consumer live on different ranks
becomes a message (producer's output tile, latency+bandwidth cost).  Each
process runs its own scheduler — the paper's integration point: baseline
per-task execution, the four-stream ablation, or the full Trojan Horse
Aggregate/Batch pipeline.

Contention-free network, zero software overhead on message handling, and
eager sends (a tile ships the moment its producer finishes) — the
standard simplifications for strong-scaling studies, recorded in
DESIGN.md §3.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.grid import ProcessGrid
from repro.cluster.memory import USABLE_FRACTION, factor_bytes_per_rank
from repro.cluster.network import ClusterSpec
from repro.core.collector import Collector
from repro.core.container import Container
from repro.core.dag import TaskDAG
from repro.core.executor import ExecutionBackend, Executor
from repro.core.prioritizer import Prioritizer
from repro.core.task import TaskType
from repro.gpusim.costmodel import GPUCostModel, KernelLaunch
from repro.verify.trace import DistTrace, SendRecord

POLICIES = ("serial", "streams", "trojan", "dmdas")
"""Per-process scheduling policies supported by the simulator."""


@dataclass
class DistributedResult:
    """Outcome of one distributed factorisation simulation."""

    cluster: str
    policy: str
    nprocs: int
    makespan: float
    total_tasks: int
    total_kernels: int
    total_flops: int
    per_proc_kernels: list[int]
    per_proc_busy: list[float]
    messages: int
    comm_bytes: int
    timeline: list[tuple[int, float, float, list[int]]] | None = None
    #: Verifier-ready communication trace (``record_trace=True`` runs);
    #: feed it to :class:`repro.verify.trace.TraceVerifier`.
    trace: DistTrace | None = None

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")

    @property
    def gflops(self) -> float:
        """Aggregate cluster throughput."""
        return (self.total_flops / self.makespan / 1e9
                if self.makespan > 0 else 0.0)

    @property
    def load_balance(self) -> float:
        """mean/max busy-time ratio (1.0 = perfectly balanced).

        An empty ``per_proc_busy`` (a result that has not run yet) is
        vacuously balanced: 1.0, rather than a zero-size reduction error.
        """
        busy = np.asarray(self.per_proc_busy, dtype=np.float64)
        if busy.size == 0:
            return 1.0
        return float(busy.mean() / busy.max()) if busy.max() > 0 else 1.0

    def summary(self) -> dict:
        """Compact dict for benchmark tables."""
        return {
            "cluster": self.cluster,
            "policy": self.policy,
            "gpus": self.nprocs,
            "time_s": self.makespan,
            "gflops": self.gflops,
            "kernels": self.total_kernels,
            "messages": self.messages,
            "comm_MB": self.comm_bytes / 1e6,
            "balance": round(self.load_balance, 3),
        }


class _ProcState:
    """Scheduler state of one simulated process."""

    def __init__(self, rank: int, policy: str, dag: TaskDAG,
                 model: GPUCostModel, backend: ExecutionBackend,
                 cp: np.ndarray, n_streams: int = 4):
        self.rank = rank
        self.policy = policy
        self.dag = dag
        self.model = model
        self.backend = backend
        self.executor = Executor(model, backend)
        self.kernels = 0
        self.busy = 0.0
        if policy == "trojan":
            self.prio = Prioritizer(dag, cp)
            self.container = Container()
            self.collector = Collector(model.gpu)
            self.busy_until = 0.0
            # Algorithm 1 launches batches with GPU.AsyncExecutor: the CPU
            # may prepare and enqueue the next batch while one executes
            # (double buffering); the GPU itself runs batches in order
            self.gpu_free = 0.0
            self.inflight = 0
        elif policy in ("serial", "dmdas"):
            self.heap: list[tuple[int, int, int]] = []
            self.cp = cp
            self.busy_until = 0.0
        elif policy == "streams":
            self.heap = []
            self.cp = cp
            self.clocks = [0.0] * n_streams
            self.device_clock = 0.0    # SM time shared across streams
            self.dispatch_clock = 0.0  # CPU submission serialised
        else:
            raise ValueError(f"unknown policy {policy!r}")

    # -- ready bookkeeping ------------------------------------------------
    def add_ready(self, tid: int) -> None:
        task = self.dag.tasks[tid]
        if self.policy == "trojan":
            self.prio.push_ready(tid)
        elif self.policy == "dmdas":
            heapq.heappush(self.heap, (-int(self.cp[tid]), task.k, tid))
        else:
            heapq.heappush(self.heap, (task.distance, task.k, tid))

    def has_ready(self) -> bool:
        if self.policy == "trojan":
            return self.prio.has_ready or not self.container.is_empty
        return bool(self.heap)

    # -- launching --------------------------------------------------------
    def launch(self, t: float) -> list[tuple[float, float, list[int], int]]:
        """Start work at time ``t`` if the policy allows.

        Returns a list of ``(start, end, task_ids, flops)`` launches.
        """
        if self.policy == "streams":
            return self._launch_streams(t)
        if self.policy == "trojan":
            return self._launch_trojan(t)
        if self.busy_until > t or not self.has_ready():
            return []
        tids = [heapq.heappop(self.heap)[2]]
        record = self.executor.run_batch([self.dag.tasks[x] for x in tids], t)
        self.busy_until = record.t_end
        self.busy += record.duration
        self.kernels += 1
        return [(record.t_start, record.t_end, tids, record.flops)]

    def _launch_trojan(self, t: float) -> list[tuple[float, float, list[int], int]]:
        out = []
        while self.inflight < 2 and self.has_ready():
            tids = self._form_trojan_batch()
            if self.inflight >= 1 and not self.collector.is_full:
                # GPU busy with a batch already queued behind it: keep
                # aggregating instead of enqueueing a partial batch —
                # push the formed tasks back and wait for a completion
                for tid in tids:
                    self.prio.push_ready(tid)
                break
            start = max(t, self.gpu_free)
            record = self.executor.run_batch(
                [self.dag.tasks[x] for x in tids], start)
            self.gpu_free = record.t_end
            self.inflight += 1
            self.busy += record.duration
            self.kernels += 1
            out.append((record.t_start, record.t_end, tids, record.flops))
        return out

    def on_done(self) -> None:
        """A previously-enqueued batch finished (async-executor slot free)."""
        if self.policy == "trojan":
            self.inflight -= 1

    def _form_trojan_batch(self) -> list[int]:
        coll = self.collector
        coll.reset()
        prio, cont, dag = self.prio, self.container, self.dag
        prio.begin_round()
        while prio.has_ready:
            tid = prio.pop_most_urgent()
            task = dag.tasks[tid]
            if prio.is_critical(tid):
                if not coll.try_push(task):
                    cont.push(task, urgent=True)
                    for other in prio.drain():
                        cont.push(dag.tasks[other])
                    break
            else:
                cont.push(task)
        while not coll.is_full and not cont.is_empty:
            task = dag.tasks[cont.peek()]
            if coll.try_push(task):
                cont.pop()
            else:
                break
        if coll.is_empty:
            raise AssertionError("trojan process stalled with ready work")
        return [task.tid for task in coll.tasks]

    def _launch_streams(self, t: float) -> list[tuple[float, float, list[int], int]]:
        out = []
        while self.heap:
            free = [s for s in range(len(self.clocks)) if self.clocks[s] <= t]
            if not free:
                break
            s = free[0]
            _, _, tid = heapq.heappop(self.heap)
            task = self.dag.tasks[tid]
            stats = self.backend.run_task(task, False)
            launch = KernelLaunch()
            launch.add_task(task.cuda_blocks, stats.flops, stats.bytes,
                            task.shared_mem_bytes)
            overhead = self.model.gpu.launch_overhead_us * 1e-6
            dispatch = self.model.gpu.dispatch_serial_us * 1e-6
            issue = max(t, self.dispatch_clock)
            self.dispatch_clock = issue + dispatch
            body = self.model.launch_time(launch) - overhead
            start = max(issue + overhead, self.device_clock)
            end = start + body
            self.clocks[s] = end
            self.device_clock = end
            self.busy += end - t
            self.kernels += 1
            out.append((t, end, [tid], stats.flops))
        return out

    def next_wake(self, t: float) -> float | None:
        """Earliest future time this process could start new work."""
        if self.policy == "streams":
            pending = [c for c in self.clocks if c > t]
            return min(pending) if pending and self.heap else None
        if self.policy == "trojan":
            # async executor: launches happen on arrivals and batch
            # completions; no timed wake needed
            return None
        if self.busy_until > t and self.has_ready():
            return self.busy_until
        return None


class DistributedSimulator:
    """Event-driven cluster-level factorisation simulation.

    Parameters
    ----------
    dag:
        Task DAG whose tasks carry tile metadata (``nnz`` sizes the
        messages).
    backend:
        Shared execution backend (replay/estimate; numeric also works —
        tasks execute exactly once across all processes).
    cluster:
        Hardware description (GPU + links).
    nprocs:
        Number of processes/GPUs.
    policy:
        Per-process scheduler (see :data:`POLICIES`).
    grid:
        Optional explicit :class:`ProcessGrid`.
    """

    def __init__(self, dag: TaskDAG, backend: ExecutionBackend,
                 cluster: ClusterSpec, nprocs: int, policy: str = "serial",
                 grid: ProcessGrid | None = None,
                 record_timeline: bool = False,
                 record_trace: bool = False,
                 msg_scale: float = 1.0):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if msg_scale <= 0:
            raise ValueError("msg_scale must be positive")
        self.dag = dag
        self.backend = backend
        self.cluster = cluster
        self.nprocs = nprocs
        self.policy = policy
        self.grid = grid or ProcessGrid(nprocs)
        self.record_timeline = record_timeline
        #: record per-task start/done times and the cross-rank send log
        #: into a :class:`~repro.verify.trace.DistTrace` for static
        #: verification (small bookkeeping overhead, off by default)
        self.record_trace = record_trace
        #: message-size multiplier; work-extrapolated studies (Table 7 /
        #: Figure 12 regimes) scale tile bytes quadratically in the linear
        #: tile-scale factor (DESIGN.md §3)
        self.msg_scale = msg_scale

    def owner_of_task(self, tid: int) -> int:
        """Rank executing a task = owner of its output tile."""
        task = self.dag.tasks[tid]
        return self.grid.owner(task.i, task.j)

    def run(self) -> DistributedResult:
        """Simulate the whole factorisation; returns cluster-level stats."""
        dag = self.dag
        model = GPUCostModel(self.cluster.gpu)
        cp = dag.critical_path_lengths()
        procs = [
            _ProcState(r, self.policy, dag, model, self.backend, cp)
            for r in range(self.nprocs)
        ]
        pred = dag.pred_count.copy()
        arrival = np.zeros(dag.n_tasks)
        events: list[tuple[float, int, str, int, object]] = []
        seq = 0

        def push_event(t: float, kind: str, rank: int, payload) -> None:
            nonlocal seq
            heapq.heappush(events, (t, seq, kind, rank, payload))
            seq += 1

        for tid in dag.initial_ready():
            push_event(0.0, "ready", self.owner_of_task(tid), tid)

        # at most one pending wake per process — without this, every
        # arrival during a busy period schedules another wake at the same
        # instant and the event loop degenerates to O(events × backlog)
        wake_pending = [float("inf")] * self.nprocs

        done_tasks = 0
        messages = 0
        comm_bytes = 0
        makespan = 0.0
        total_flops = 0
        timeline = [] if self.record_timeline else None
        tracing = self.record_trace
        if tracing:
            task_t_start = np.full(dag.n_tasks, -1.0)
            task_t_done = np.full(dag.n_tasks, -1.0)
            send_log: list[SendRecord] = []

        def propagate(t_done: float, tids: list[int]) -> None:
            nonlocal messages, comm_bytes
            for tid in tids:
                src = self.owner_of_task(tid)
                out_bytes = int(8 * dag.tasks[tid].nnz * self.msg_scale)
                for s in dag.successors[tid]:
                    dst = self.owner_of_task(s)
                    delay = self.cluster.message_time(src, dst, out_bytes)
                    if src != dst:
                        messages += 1
                        comm_bytes += out_bytes
                    arr = t_done + delay
                    if src != dst and tracing:
                        send_log.append(SendRecord(
                            tid=tid, succ=int(s), src=src, dst=dst,
                            t_send=t_done, t_recv=arr, nbytes=out_bytes))
                    if arr > arrival[s]:
                        arrival[s] = arr
                    pred[s] -= 1
                    if pred[s] == 0:
                        push_event(arrival[s], "ready", dst, s)

        while events:
            t, _, kind, rank, payload = heapq.heappop(events)
            proc = procs[rank]
            if t >= wake_pending[rank]:
                wake_pending[rank] = float("inf")
            if kind == "ready":
                proc.add_ready(int(payload))
            elif kind == "done":
                proc.on_done()
                done_tasks += len(payload)
                propagate(t, payload)
                makespan = max(makespan, t)
            # try to start work wherever this event may have freed/added it
            for start, end, tids, flops in proc.launch(t):
                total_flops += flops
                if timeline is not None:
                    timeline.append((rank, start, end, list(tids)))
                if tracing:
                    task_t_start[tids] = start
                    task_t_done[tids] = end
                push_event(end, "done", rank, tids)
            wake = proc.next_wake(t)
            if wake is not None and wake < wake_pending[rank]:
                wake_pending[rank] = wake
                push_event(wake, "wake", rank, None)

        if done_tasks != dag.n_tasks:
            raise AssertionError(
                f"distributed sim finished {done_tasks}/{dag.n_tasks} tasks"
            )
        trace = None
        if tracing:
            indptr, indices = dag.successor_csr()
            producer = np.repeat(np.arange(dag.n_tasks, dtype=np.int64),
                                 np.diff(indptr))
            edges = np.stack(
                [producer, indices.astype(np.int64)], axis=1
            ) if indices.size else np.empty((0, 2), dtype=np.int64)
            task_rank = np.fromiter(
                (self.owner_of_task(t) for t in range(dag.n_tasks)),
                dtype=np.int64, count=dag.n_tasks)
            trace = DistTrace(
                nprocs=self.nprocs,
                rank=task_rank,
                t_start=task_t_start,
                t_done=task_t_done,
                edges=edges,
                sends=send_log,
                per_rank_bytes=factor_bytes_per_rank(dag, self.grid),
                mem_budget_bytes=USABLE_FRACTION
                * self.cluster.gpu.memory_gb * 1e9,
            )
        return DistributedResult(
            cluster=self.cluster.name,
            policy=self.policy,
            nprocs=self.nprocs,
            makespan=makespan,
            total_tasks=dag.n_tasks,
            total_kernels=sum(p.kernels for p in procs),
            total_flops=total_flops,
            per_proc_kernels=[p.kernels for p in procs],
            per_proc_busy=[p.busy for p in procs],
            messages=messages,
            comm_bytes=comm_bytes,
            timeline=timeline,
            trace=trace,
        )

"""Synthetic banded workloads for scale-out sweeps.

The scale-out benchmarks (Fig. 12's 256–4096-rank regime) need DAGs
whose size grows with the rank count without paying a numeric
factorisation per cell.  A banded block fill is the natural knob: the
block count ``nb`` sets DAG length, the half-bandwidth ``bandwidth``
sets fan-out (and therefore event density), and the structural
estimates drive :class:`~repro.core.executor.EstimateBackend` with no
matrix data at all.
"""

from __future__ import annotations

import numpy as np

from repro.core.dag import TaskDAG, build_block_dag
from repro.sparse import uniform_partition


def banded_block_dag(nb: int, bandwidth: int, tile: int = 16) -> TaskDAG:
    """Task DAG of a banded matrix with ``nb`` tile rows.

    Parameters
    ----------
    nb:
        Number of tile rows/columns (DAG has O(nb · bandwidth²) tasks).
    bandwidth:
        Half-bandwidth in tiles; tile (i, j) is filled iff
        ``|i - j| <= bandwidth``.
    tile:
        Tile side length — only scales the per-task cost estimates.
    """
    if nb <= 0:
        raise ValueError("nb must be positive")
    if bandwidth < 0:
        raise ValueError("bandwidth must be non-negative")
    if tile <= 0:
        raise ValueError("tile must be positive")
    idx = np.arange(nb)
    fill = np.abs(idx[:, None] - idx[None, :]) <= bandwidth
    part = uniform_partition(nb * tile, tile)
    return build_block_dag(fill, part)

"""Fault injection for the distributed cluster simulator.

The paper's scale-out study (§6) — and the lossless event loop in
:mod:`repro.cluster.distsim` — assumes immortal ranks and perfect links.
Real clusters drop messages, straggle, and lose nodes.  This module
describes those failures as data (:class:`FaultSpec`) so the simulator
can replay them deterministically from a seed:

* :class:`LinkFaults` — per-link message drop/duplication probability
  with a retransmit protocol (timeout + exponential backoff, capped
  attempts; the final attempt rides a reliable fallback so the
  factorisation always completes);
* :class:`Straggler` — a per-rank slowdown factor, optionally limited to
  a time window, stretching both task and transfer latencies;
* :class:`RankDeath` — a rank dies at time *t*; its unreplayed work is
  re-executed on a recovery rank from the last periodic checkpoint and
  downstream consumers block until re-delivery.

Everything is driven by one ``numpy`` Generator seeded from
``FaultSpec.seed`` and drawn in event order, so identical (spec, seed)
pairs produce bit-identical traces — the property the CI ``chaos`` gate
asserts.

:class:`RecordOnceBackend` makes the *factors* fault-invariant too: it
executes each task's numerics exactly once, in a canonical topological
order, so recovery re-execution replays recorded stats instead of
re-touching tile state, and every fault configuration yields bit-identical
``L``/``U``.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "LinkFaults",
    "Straggler",
    "RankDeath",
    "FaultSpec",
    "FaultStats",
    "RecordOnceBackend",
]


@dataclass(frozen=True)
class LinkFaults:
    """Lossy-link model: drops, duplicates and the retransmit protocol.

    Attributes
    ----------
    drop_prob:
        Default probability that one transmission attempt is lost.
    dup_prob:
        Probability that a successful attempt is delivered twice
        (duplicate suppression happens at the receiver).
    timeout_factor:
        Retransmit timeout for attempt ``a`` is ``timeout_factor ×
        message_time × backoff**a`` — scale-free, so one spec works for
        any workload size.  ``timeout_s`` overrides with an absolute
        base timeout.
    backoff:
        Exponential backoff multiplier between attempts.
    max_attempts:
        Attempt cap.  The final attempt always succeeds (modelling a
        switch to a reliable transport) so no payload is lost forever.
    per_link_drop:
        Per-edge overrides: ``((src, dst, prob), ...)``.
    """

    drop_prob: float = 0.0
    dup_prob: float = 0.0
    timeout_factor: float = 3.0
    timeout_s: float | None = None
    backoff: float = 2.0
    max_attempts: int = 8
    per_link_drop: tuple = ()

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {p}")
        if self.timeout_factor <= 0:
            raise ValueError("timeout_factor must be positive")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        for entry in self.per_link_drop:
            src, dst, p = entry
            if not 0.0 <= float(p) < 1.0:
                raise ValueError(
                    f"per-link drop prob must be in [0, 1), got {p} "
                    f"for link {src}->{dst}")

    @property
    def lossy(self) -> bool:
        """True when any drop or duplication probability is non-zero."""
        return bool(self.drop_prob or self.dup_prob or self.per_link_drop)

    def drop_table(self) -> dict:
        """``(src, dst) -> drop probability`` override map."""
        return {(int(s), int(d)): float(p) for s, d, p in self.per_link_drop}


@dataclass(frozen=True)
class Straggler:
    """One slow rank: latencies stretch by ``factor`` inside the window."""

    rank: int
    factor: float
    t_start: float = 0.0
    t_end: float = math.inf

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("straggler rank must be >= 0")
        if self.factor <= 0:
            raise ValueError("straggler factor must be positive")
        if self.t_end < self.t_start:
            raise ValueError("straggler window ends before it starts")

    def active(self, t: float) -> bool:
        """Is the slowdown in effect at simulated time ``t``?"""
        return self.t_start <= t < self.t_end


@dataclass(frozen=True)
class RankDeath:
    """A rank dies at ``time``; recovery restores its last checkpoint."""

    rank: int
    time: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("death rank must be >= 0")
        if self.time < 0:
            raise ValueError("death time must be >= 0")


@dataclass(frozen=True)
class FaultSpec:
    """A complete, reproducible fault scenario for one simulated run.

    Attributes
    ----------
    seed:
        Seed for the fault RNG (drop/duplication draws, in event order).
    link:
        Lossy-link model (see :class:`LinkFaults`).
    stragglers:
        Slow ranks (see :class:`Straggler`).
    deaths:
        Rank deaths (see :class:`RankDeath`); at most one per rank, and
        at least one rank must survive.
    checkpoint_interval:
        Period of the per-rank checkpoints recovery restores from.
    recovery_delay:
        Time between a death and the recovery rank coming up with the
        restored checkpoint (detection + restore).
    """

    seed: int = 0
    link: LinkFaults = field(default_factory=LinkFaults)
    stragglers: tuple = ()
    deaths: tuple = ()
    checkpoint_interval: float = 1e-4
    recovery_delay: float = 1e-5

    def __post_init__(self) -> None:
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.recovery_delay < 0:
            raise ValueError("recovery_delay must be >= 0")
        ranks = [d.rank for d in self.deaths]
        if len(ranks) != len(set(ranks)):
            raise ValueError("at most one death per rank")

    def validate(self, nprocs: int) -> None:
        """Check the scenario fits a cluster of ``nprocs`` ranks."""
        for s in self.stragglers:
            if s.rank >= nprocs:
                raise ValueError(
                    f"straggler rank {s.rank} outside cluster of {nprocs}")
        for d in self.deaths:
            if d.rank >= nprocs:
                raise ValueError(
                    f"death rank {d.rank} outside cluster of {nprocs}")
        if len(self.deaths) >= nprocs:
            raise ValueError("every rank dies; at least one must survive")

    def slowdown(self, rank: int, t: float) -> float:
        """Latency stretch factor for ``rank`` at time ``t`` (1.0 = none)."""
        f = 1.0
        for s in self.stragglers:
            if s.rank == rank and s.active(t):
                f = max(f, s.factor)
        return f

    # -- (de)serialisation --------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        out: dict = {"seed": self.seed}
        link: dict = {
            "drop_prob": self.link.drop_prob,
            "dup_prob": self.link.dup_prob,
            "timeout_factor": self.link.timeout_factor,
            "backoff": self.link.backoff,
            "max_attempts": self.link.max_attempts,
        }
        if self.link.timeout_s is not None:
            link["timeout_s"] = self.link.timeout_s
        if self.link.per_link_drop:
            link["per_link_drop"] = [
                [int(s), int(d), float(p)]
                for s, d, p in self.link.per_link_drop]
        out["link"] = link
        out["stragglers"] = [
            {"rank": s.rank, "factor": s.factor, "t_start": s.t_start,
             **({} if math.isinf(s.t_end) else {"t_end": s.t_end})}
            for s in self.stragglers]
        out["deaths"] = [{"rank": d.rank, "time": d.time}
                         for d in self.deaths]
        out["checkpoint_interval"] = self.checkpoint_interval
        out["recovery_delay"] = self.recovery_delay
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        """Build a spec from the JSON format (see ``tests/faults/``)."""
        link_raw = dict(payload.get("link", {}))
        per_link = tuple(
            (int(s), int(d), float(p))
            for s, d, p in link_raw.pop("per_link_drop", []))
        link = LinkFaults(per_link_drop=per_link, **link_raw)
        stragglers = tuple(
            Straggler(rank=int(s["rank"]), factor=float(s["factor"]),
                      t_start=float(s.get("t_start", 0.0)),
                      t_end=(math.inf if s.get("t_end") is None
                             else float(s["t_end"])))
            for s in payload.get("stragglers", []))
        deaths = tuple(
            RankDeath(rank=int(d["rank"]), time=float(d["time"]))
            for d in payload.get("deaths", []))
        kwargs = {}
        for key in ("checkpoint_interval", "recovery_delay"):
            if key in payload:
                kwargs[key] = float(payload[key])
        return cls(seed=int(payload.get("seed", 0)), link=link,
                   stragglers=stragglers, deaths=deaths, **kwargs)

    @classmethod
    def from_json(cls, path) -> "FaultSpec":
        """Load a spec file."""
        return cls.from_dict(
            json.loads(pathlib.Path(path).read_text(encoding="utf-8")))

    def with_seed(self, seed: int) -> "FaultSpec":
        """The same scenario under a different RNG seed."""
        return replace(self, seed=int(seed))


@dataclass
class FaultStats:
    """Fault accounting for one simulated run (see
    :meth:`repro.cluster.distsim.DistributedResult.summary`).

    Attributes
    ----------
    drops:
        Transmission attempts lost on a link.
    dups:
        Duplicate deliveries injected (suppressed at the receiver).
    retransmits:
        Retransmission attempts scheduled after a timeout.
    resends:
        Payload re-deliveries initiated by the recovery protocol.
    reexecuted:
        Tasks run again after their rank died (in-flight or
        post-checkpoint work).
    deaths:
        Ranks that died.
    """

    drops: int = 0
    dups: int = 0
    retransmits: int = 0
    resends: int = 0
    reexecuted: int = 0
    deaths: int = 0

    def as_dict(self) -> dict:
        """Counter dict for benchmark tables and CI assertions."""
        return {
            "drops": self.drops,
            "dups": self.dups,
            "retransmits": self.retransmits,
            "resends": self.resends,
            "reexecuted": self.reexecuted,
            "deaths": self.deaths,
        }


class RecordOnceBackend:
    """Execute each task's numerics exactly once, in a canonical order.

    Rank death re-executes tasks, and faults reorder ready queues; a raw
    numeric backend would then redo tile arithmetic (corrupting in-place
    state) or reassociate commuting Schur updates (drifting in the last
    bits).  This wrapper pins both down:

    * the *first* request for a task triggers numeric execution of every
      not-yet-executed task up to it in a fixed topological order (the
      DAG's level schedule), with exact stats recorded;
    * every request — including recovery re-execution — answers from the
      recorded stats.

    Factors are therefore bit-identical across *all* fault
    configurations by construction, which is exactly the record-once /
    replay discipline the repo already uses for scheduling studies
    (:class:`repro.core.executor.ReplayBackend`).

    The reference kernels are sequential, so the ``atomic`` flag only
    affects byte accounting; canonical-order execution reports the
    canonical (non-atomic) stats.
    """

    def __init__(self, backend, dag):
        self._backend = backend
        self._dag = dag
        n = dag.n_tasks
        if n:
            order = np.concatenate(dag.level_schedule())
        else:
            order = np.empty(0, dtype=np.int64)
        self._order = order.astype(np.int64)
        pos = np.empty(n, dtype=np.int64)
        pos[self._order] = np.arange(n, dtype=np.int64)
        self._pos = pos
        self._next = 0
        self._stats: dict = {}

    def run_task(self, task, atomic: bool):
        """Stats for ``task``; executes ahead in canonical order once."""
        tid = task.tid
        stats = self._stats.get(tid)
        if stats is None:
            target = int(self._pos[tid])
            tasks = self._dag.tasks
            while self._next <= target:
                t2 = int(self._order[self._next])
                self._stats[t2] = self._backend.run_task(tasks[t2], False)
                self._next += 1
            stats = self._stats[tid]
        return stats

    @property
    def stats(self) -> dict:
        """Per-task stats recorded so far (canonical-order execution)."""
        return self._stats

"""The vectorized arena event engine for the cluster simulator.

:mod:`repro.cluster.distsim`'s legacy loop pops one Python tuple per
event off one ``heapq`` and walks task/edge *objects* per message —
intractable past a few hundred ranks.  This module is the scale-out
rewrite the ROADMAP calls for, in the spirit of PR 1's ScheduleArena:

* events live in an :class:`~repro.cluster.eventarena.EventArena`
  (SoA numpy columns, calendar-queue cohort pops);
* everything static is precomputed once into :class:`SimStatics`
  columns — tile owners, per-edge destination/bytes/latency (one
  vectorized ``message_times`` pass), and per-task single-launch times
  (one vectorized cost-model pass);
* per-rank ready heaps hold scalar ``int`` keys instead of tuples
  (:class:`_FastProcState`) — a monotone bijection of the legacy tuple
  keys, so heap *structure* (which ``drain()`` exposes) is preserved
  exactly;
* predecessor accounting for wide fan-outs runs through
  ``np.maximum.at``/``np.subtract.at`` with the newly-ready set pushed
  in last-decrement order — provably the sequential push order.

Everything here is pinned bit/digest-identical to the legacy loop (same
spec, same seed, fault-free and faulty) by the differential suite in
``tests/test_distsim_engines.py``; the legacy loop stays available via
``engine="legacy"`` / ``REPRO_DISTSIM_LEGACY=1`` as the oracle.
"""

from __future__ import annotations

import heapq
import math
import time

import numpy as np

from repro.cluster.distsim import DistributedResult, _ProcState
from repro.cluster.eventarena import (
    EventArena,
    K_DEATH,
    K_DELIVER,
    K_DONE,
    K_READY,
    K_WAKE,
    K_XMIT,
)
from repro.cluster.faults import FaultStats
from repro.cluster.memory import USABLE_FRACTION, factor_bytes_per_rank
from repro.core.executor import EstimateBackend, ReplayBackend
from repro.gpusim.costmodel import GPUCostModel, KernelLaunch
from repro.verify.hazards import batch_atomic_flags
from repro.verify.trace import DistTrace, SendRecord

#: scalar-key encodings must stay below this to be safe in a C long
_MAX_KEY = 2 ** 62

#: fan-outs at least this wide take the numpy propagate path; narrower
#: ones run a scalar loop over the precomputed edge columns
_VEC_EDGE_MIN = 48


def single_launch_times(model: GPUCostModel, cuda_blocks: np.ndarray,
                        flops: np.ndarray, nbytes: np.ndarray) -> np.ndarray:
    """``model.launch_time`` of every task's single-task launch, vectorized.

    Replicates :meth:`GPUCostModel.launch_time` operation-for-operation
    (same operands, same association order), so each element is
    bit-identical to the scalar call — the engine's fast path feeds
    these into the same ``t_end - t_start`` arithmetic the legacy
    ``BatchRecord.duration`` performs.
    """
    gpu = model.gpu
    overhead = gpu.launch_overhead_us * 1e-6
    blocks = np.asarray(cuda_blocks, dtype=np.int64)
    flops = np.asarray(flops, dtype=np.int64)
    nbytes = np.asarray(nbytes, dtype=np.int64)
    pos = blocks > 0
    blocks_f = blocks.astype(np.float64)
    occ = np.where(pos, np.minimum(1.0, blocks_f / gpu.sm_count),
                   1.0 / gpu.sm_count)
    flops_f = flops.astype(np.float64)
    per_block = np.where(pos, flops_f / np.where(pos, blocks_f, 1.0), 0.0)
    eff = np.where(
        pos & (flops > 0),
        np.maximum(0.05, np.minimum(
            1.0, per_block / model.block_saturation_flops)),
        0.05)
    gflops = gpu.fp64_gflops * occ * eff * model.base_efficiency
    t_compute = np.where(flops != 0, flops_f / (gflops * 1e9), 0.0)
    t_mem = np.where(nbytes != 0,
                     nbytes.astype(np.float64)
                     / (gpu.mem_bw_gbs * occ * 1e9), 0.0)
    lt = overhead + np.maximum(t_compute, t_mem)
    return np.where((flops <= 0) & (nbytes <= 0), overhead, lt)


class SimStatics:
    """Everything about a run that never changes, as columns.

    Built once per :func:`run_arena`/:func:`run_arena_faulty` call:
    tile owners, the CSR edge table with per-edge destination / bytes /
    lossless latency, per-task single-launch times for replay/estimate
    backends, and the scalar heap keys for every policy.  Hot columns
    are also materialized as Python lists — element reads off a list
    are ~5x cheaper than numpy scalar indexing, and the event loop does
    millions of them.
    """

    def __init__(self, sim, model: GPUCostModel, cp: np.ndarray):
        dag = sim.dag
        n = dag.n_tasks
        self.n = n
        arrays = dag.task_arrays()
        self.arrays = arrays
        self.model = model
        self.backend = sim.backend
        if n:
            owner = np.asarray(
                sim.grid.owner_array(arrays.i, arrays.j), dtype=np.int64)
        else:
            owner = np.zeros(0, dtype=np.int64)
        self.owner = owner
        self.owner_l = owner.tolist()
        indptr, indices = dag.successor_csr()
        self.indptr = indptr
        self.indptr_l = indptr.tolist()
        self.e_cons = indices.astype(np.int64)
        self.e_cons_l = self.e_cons.tolist()
        self.e_prod = np.repeat(np.arange(n, dtype=np.int64),
                                np.diff(indptr))
        # per-task output-tile bytes: float(nnz) * 8 is exact (a power
        # of two scale), so this truncation matches the legacy
        # int(8 * nnz * msg_scale) bit-for-bit
        out_bytes = (arrays.nnz.astype(np.float64) * 8.0
                     * sim.msg_scale).astype(np.int64)
        self.out_bytes = out_bytes
        self.e_bytes = out_bytes[self.e_prod]
        self.e_bytes_l = self.e_bytes.tolist()
        self.e_src = owner[self.e_prod]
        self.e_dst = owner[self.e_cons]
        self.e_dst_l = self.e_dst.tolist()
        self.e_delay = sim.cluster.message_times(
            self.e_src, self.e_dst, self.e_bytes)
        self.e_delay_l = self.e_delay.tolist()
        self.e_cross = self.e_src != self.e_dst
        self.e_cross_l = self.e_cross.tolist()

        # -- single-task launch fast path (stat-replay backends only;
        # -- numeric / record-once backends keep the executor path so
        # -- execution side effects are preserved) ----------------------
        self.lt1_l: list | None = None
        self.body1_l: list | None = None
        self.flops1_l: list | None = None
        self.have1_l: list | None = None
        self.needs_atomic = False
        flops1 = bytes1 = have1 = None
        if type(self.backend) is ReplayBackend:
            flops1, bytes1, have1 = self.backend.stat_arrays(n)
        elif type(self.backend) is EstimateBackend:
            flops1 = arrays.flops_est.astype(np.int64)
            bytes1 = arrays.bytes_est.astype(np.int64)
            self.needs_atomic = True  # atomic SSSSMs add 8*nnz bytes
        if flops1 is not None and n:
            lt1 = single_launch_times(model, arrays.cuda_blocks,
                                      flops1, bytes1)
            overhead = model.gpu.launch_overhead_us * 1e-6
            self.lt1_l = lt1.tolist()
            self.body1_l = (lt1 - overhead).tolist()
            self.flops1_l = flops1.tolist()
            self.have1_l = have1.tolist() if have1 is not None else None
        self._atomic_scratch = np.zeros(64, dtype=bool)

        # -- scalar heap keys -------------------------------------------
        # Monotone bijections of the legacy tuple keys; heapq's array
        # layout depends only on comparison outcomes, so these preserve
        # heap structure (and hence drain() order) exactly:
        #   serial/streams: (distance, k, tid)
        #   dmdas:          (-cp, k, tid)
        #   trojan prio:    (-cp, distance, tid)
        self.key_serial_l: list | None = None
        self.key_dmdas_l: list | None = None
        self.key_prio_l: list | None = None
        self.cp_l = cp.astype(np.int64).tolist()
        self.dist_l = arrays.distance.astype(np.int64).tolist()
        self.k_l = arrays.k.astype(np.int64).tolist()
        self.blocks_l = arrays.cuda_blocks.astype(np.int64).tolist()
        self.shmem_l = arrays.shared_mem.astype(np.int64).tolist()
        self.max_blocks = model.gpu.max_resident_blocks
        self.max_shmem = model.gpu.shared_mem_total_bytes
        if n:
            cp64 = cp.astype(np.int64)
            dist = arrays.distance.astype(np.int64)
            kcol = arrays.k.astype(np.int64)
            dmax = int(dist.max()) + 1
            kmax = int(kcol.max()) + 1
            cmax = int(cp64.max()) + 1
            if max(dmax * kmax, cmax * kmax, cmax * dmax) * n < _MAX_KEY:
                tid = np.arange(n, dtype=np.int64)
                self.key_serial_l = ((dist * kmax + kcol) * n + tid).tolist()
                self.key_dmdas_l = (
                    ((cmax - 1 - cp64) * kmax + kcol) * n + tid).tolist()
                self.key_prio_l = (
                    ((cmax - 1 - cp64) * dmax + dist) * n + tid).tolist()

    def batch_time(self, tids_list: list[int]) -> tuple[float, int]:
        """``(launch_time, flops)`` of a multi-task batch, array-side.

        Matches ``Executor.run_batch`` exactly: the same hazard kernel
        flags atomic SSSSMs (the batch-local and global target
        encodings flag identical duplicate groups), the same int sums
        feed the same cost-model call.
        """
        tids = np.asarray(tids_list, dtype=np.int64)
        m = tids.size
        if self._atomic_scratch.size < m:
            self._atomic_scratch = np.zeros(max(m, 64), dtype=bool)
        if self.needs_atomic:
            atomic = batch_atomic_flags(self.arrays.target[tids],
                                        out=self._atomic_scratch)
        else:
            atomic = self._atomic_scratch  # replay ignores the flags
        flops, nbytes = self.backend.batch_stats(tids, atomic, self.arrays)
        launch = KernelLaunch(
            cuda_blocks=int(self.arrays.cuda_blocks[tids].sum()),
            flops=int(flops),
            bytes=int(nbytes),
            shared_mem_bytes=int(self.arrays.shared_mem[tids].sum()),
            n_tasks=m,
        )
        return self.model.launch_time(launch), int(flops)


class _FastPrioritizer:
    """Prioritizer twin over scalar int keys (identical heap structure).

    ``repro.core.prioritizer.Prioritizer`` keeps ``(-cp, distance,
    tid)`` tuples; this keeps the bijective int encoding from
    :class:`SimStatics`, so every heap comparison resolves the same way
    and :meth:`drain` — whose heap-array order feeds the Container's
    sequence-numbered tie-breaks — returns the identical sequence.
    """

    __slots__ = ("_key", "_cp", "_n", "_heap", "_round_max")

    def __init__(self, statics: SimStatics):
        self._key = statics.key_prio_l
        self._cp = statics.cp_l
        self._n = statics.n
        self._heap: list[int] = []
        self._round_max: int | None = None

    def push_ready(self, tid: int) -> None:
        heapq.heappush(self._heap, self._key[tid])

    def push_many(self, tids) -> None:
        for t in tids:
            heapq.heappush(self._heap, self._key[t])

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def has_ready(self) -> bool:
        return bool(self._heap)

    def pop_most_urgent(self) -> int:
        return heapq.heappop(self._heap) % self._n

    def begin_round(self) -> None:
        self._round_max = (self._cp[self._heap[0] % self._n]
                           if self._heap else None)

    def is_critical(self, tid: int) -> bool:
        if self._round_max is None:
            max_cp = (self._cp[self._heap[0] % self._n]
                      if self._heap else self._cp[tid])
        else:
            max_cp = self._round_max
        return self._cp[tid] >= max_cp

    def drain(self) -> list[int]:
        n = self._n
        out = [k % n for k in self._heap]
        self._heap.clear()
        return out


class _FastContainer:
    """Container twin keyed on int columns instead of Task objects.

    Pushes the identical heap key — ``(not urgent, distance, k, seq,
    tid)`` — so pop/peek/drain order matches
    :class:`repro.core.container.Container` entry for entry, without
    touching ``dag.tasks``.
    """

    __slots__ = ("_heap", "_seq", "_dist", "_k")

    def __init__(self, statics: SimStatics):
        self._heap: list[tuple[bool, int, int, int, int]] = []
        self._seq = 0
        self._dist = statics.dist_l
        self._k = statics.k_l

    def push(self, tid: int, urgent: bool = False) -> None:
        heapq.heappush(
            self._heap,
            (not urgent, self._dist[tid], self._k[tid], self._seq, tid))
        self._seq += 1

    def pop(self) -> int:
        return heapq.heappop(self._heap)[4]

    def peek(self) -> int:
        return self._heap[0][4]

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_empty(self) -> bool:
        return not self._heap


class _FastProcState(_ProcState):
    """``_ProcState`` with precomputed-array timing + scalar heap keys.

    The launch/aggregation logic is inherited — only the timing hooks
    and the ready-queue representation change, so scheduling decisions
    cannot drift from the legacy engine.  Backends without precomputed
    stats (numeric, record-once) and DAGs whose key encoding would
    overflow fall back to the inherited tuple/object paths.
    """

    def __init__(self, rank, policy, dag, model, backend, cp,
                 statics: SimStatics, slowdown=None):
        super().__init__(rank, policy, dag, model, backend, cp,
                         slowdown=slowdown)
        self._st = statics
        self._n = statics.n
        self._fast_trojan = (policy == "trojan"
                             and statics.key_prio_l is not None)
        if self._fast_trojan:
            self.prio = _FastPrioritizer(statics)
            self.container = _FastContainer(statics)
            #: would the legacy Collector be full after the batch just
            #: formed?  (its is_full drives the double-buffer push-back)
            self._batch_full = False
        self._key_l = None
        if policy == "dmdas":
            self._key_l = statics.key_dmdas_l
        elif policy in ("serial", "streams"):
            self._key_l = statics.key_serial_l
        #: ``x * 1.0`` is a bitwise identity, so the identity slowdown
        #: can be skipped without perturbing a single float
        self._no_slow = slowdown is None
        self._fast_single = (policy in ("serial", "dmdas")
                             and self._key_l is not None
                             and statics.lt1_l is not None)

    def add_ready(self, tid: int) -> None:
        if self.policy == "trojan":
            self.prio.push_ready(tid)
        elif self._key_l is not None:
            heapq.heappush(self.heap, self._key_l[tid])
        else:
            super().add_ready(tid)

    def _pop_ready(self) -> int:
        if self._key_l is not None:
            return heapq.heappop(self.heap) % self._n
        return super()._pop_ready()

    def drain_pending(self) -> list[int]:
        if self.policy == "trojan" or self._key_l is None:
            return super().drain_pending()
        n = self._n
        out = [k % n for k in self.heap]
        self.heap.clear()
        return out

    def _form_trojan_batch(self) -> list[int]:
        """Aggregate/Batch over int columns — same admissions, same order.

        Replays ``_ProcState._form_trojan_batch`` against
        ``cuda_blocks``/``shared_mem`` columns and the int-keyed
        container, so every try_push verdict and every container seq
        number matches the legacy Collector/Container run.
        """
        if not self._fast_trojan:
            return super()._form_trojan_batch()
        st = self._st
        n = self._n
        prio = self.prio
        cont = self.container
        pheap = prio._heap
        cheap = cont._heap
        blocks_l = st.blocks_l
        shmem_l = st.shmem_l
        max_blocks = st.max_blocks
        max_shmem = st.max_shmem
        if len(pheap) == 1 and not cheap:
            # the dominant shape at high rank counts: one ready task,
            # nothing deferred — it is trivially critical and trivially
            # admitted, so skip the round machinery
            tid = pheap[0] % n
            pheap.clear()
            self._batch_full = (blocks_l[tid] >= max_blocks
                                or shmem_l[tid] >= max_shmem)
            return [tid]
        cp_l = st.cp_l
        heappop = heapq.heappop
        batch: list[int] = []
        tot_b = 0
        tot_s = 0
        round_max = cp_l[pheap[0] % n] if pheap else None
        prio._round_max = round_max
        while pheap:
            tid = heappop(pheap) % n
            if cp_l[tid] >= round_max:
                cb = blocks_l[tid]
                sm = shmem_l[tid]
                if batch and (tot_b + cb > max_blocks
                              or tot_s + sm > max_shmem):
                    cont.push(tid, urgent=True)
                    for other in prio.drain():
                        cont.push(other)
                    break
                batch.append(tid)
                tot_b += cb
                tot_s += sm
            else:
                cont.push(tid)
        while (tot_b < max_blocks and tot_s < max_shmem) and cheap:
            tid = cheap[0][4]
            cb = blocks_l[tid]
            sm = shmem_l[tid]
            if batch and (tot_b + cb > max_blocks
                          or tot_s + sm > max_shmem):
                break
            batch.append(tid)
            tot_b += cb
            tot_s += sm
            heappop(cheap)
        if not batch:
            raise AssertionError("trojan process stalled with ready work")
        self._batch_full = (tot_b >= max_blocks or tot_s >= max_shmem)
        return batch

    def _launch_trojan(self, t):
        if not self._fast_trojan:
            return super()._launch_trojan(t)
        inflight = self.inflight
        if inflight >= 2:
            return ()
        pheap = self.prio._heap
        cheap = self.container._heap
        if not pheap and not cheap:
            return ()
        out = []
        no_slow = self._no_slow
        while True:
            tids = self._form_trojan_batch()
            if inflight >= 1 and not self._batch_full:
                push_ready = self.prio.push_ready
                for tid in tids:
                    push_ready(tid)
                break
            gpu_free = self.gpu_free
            start = t if gpu_free <= t else gpu_free
            dur, flops = self._run_batch_time(tids, start)
            end = (start + dur if no_slow
                   else start + dur * self.slowdown(t))
            self.gpu_free = end
            inflight += 1
            self.busy += end - start
            self.kernels += 1
            out.append((start, end, tids, flops))
            if inflight >= 2 or not (pheap or cheap):
                break
        self.inflight = inflight
        return out

    def _launch_single(self, t):
        """``launch`` specialized for serial/dmdas on precomputed stats.

        Inlines ``_pop_ready`` + single-task ``_run_batch_time`` — the
        double rounding ``(t + lt) - t`` is preserved, and the identity
        slowdown multiply is skipped (bitwise no-op).
        """
        if self.busy_until > t:
            return ()
        heap = self.heap
        if not heap:
            return ()
        tid = heapq.heappop(heap) % self._n
        st = self._st
        if st.have1_l is not None and not st.have1_l[tid]:
            raise KeyError(tid)
        t_end = t + st.lt1_l[tid]
        dur = t_end - t
        end = t + dur if self._no_slow else t + dur * self.slowdown(t)
        self.busy_until = end
        self.busy += end - t
        self.kernels += 1
        return [(t, end, [tid], st.flops1_l[tid])]

    def next_wake(self, t):
        if self._fast_single:
            bu = self.busy_until
            return bu if (bu > t and self.heap) else None
        return super().next_wake(t)

    def _run_batch_time(self, tids, t_start):
        st = self._st
        if st.lt1_l is None:
            return super()._run_batch_time(tids, t_start)
        if len(tids) == 1:
            tid = tids[0]
            if st.have1_l is not None and not st.have1_l[tid]:
                raise KeyError(tid)
            lt = st.lt1_l[tid]
            flops = st.flops1_l[tid]
        else:
            lt, flops = st.batch_time(tids)
        # the subtraction reproduces BatchRecord.duration's rounding
        t_end = t_start + lt
        return t_end - t_start, flops

    def _task_body_time(self, tid):
        st = self._st
        if st.body1_l is None:
            return super()._task_body_time(tid)
        if st.have1_l is not None and not st.have1_l[tid]:
            raise KeyError(tid)
        return st.body1_l[tid], st.flops1_l[tid]


def _initial_width(cluster) -> float:
    """Starting calendar bucket width: the dominant event spacing.

    The internode latency separates most send/deliver event pairs;
    widths only shrink from here (deterministically), and the width
    never affects results — only cohort sizes.
    """
    width = max(cluster.internode.latency_us,
                cluster.intranode.latency_us) * 1e-6
    return width if width > 0 else 1e-6


# verify: effects(arena)
def run_arena(sim) -> DistributedResult:
    """Fault-free event loop on the arena engine.

    Bit-identical to ``DistributedSimulator._run_legacy`` — the event
    processing order is the legacy ``(t, push-seq)`` order by the
    arena's determinism contract, and every timing number flows through
    the same float operations.
    """
    t_wall = time.perf_counter()
    dag = sim.dag
    model = GPUCostModel(sim.cluster.gpu)
    cp = dag.critical_path_lengths()
    st = SimStatics(sim, model, cp)
    nprocs = sim.nprocs
    n = dag.n_tasks
    procs = [
        _FastProcState(r, sim.policy, dag, model, sim.backend, cp, st)
        for r in range(nprocs)
    ]
    pred = dag.pred_count.copy()
    arrival = np.zeros(n)
    owner_l = st.owner_l
    indptr_l = st.indptr_l
    e_cons_l = st.e_cons_l
    e_dst_l = st.e_dst_l
    e_delay_l = st.e_delay_l
    e_bytes_l = st.e_bytes_l
    e_cross_l = st.e_cross_l
    e_cons_np = st.e_cons
    e_delay_np = st.e_delay
    e_bytes_np = st.e_bytes
    e_cross_np = st.e_cross
    e_dst_np = st.e_dst

    arena = EventArena(_initial_width(sim.cluster),
                       capacity=max(1024, 2 * n))
    push = arena.push

    messages = 0
    comm_bytes = 0
    done_tasks = 0
    makespan = 0.0
    total_flops = 0
    timeline = [] if sim.record_timeline else None
    tracing = sim.record_trace
    if tracing:
        task_t_start = np.full(n, -1.0)
        task_t_done = np.full(n, -1.0)
        send_log: list[SendRecord] = []

    def propagate_vec(t_done: float, tid: int, lo: int, hi: int) -> None:
        """Vectorized predecessor accounting for one wide fan-out.

        Ready pushes happen in order of each consumer's *last* edge in
        the slice — exactly where the sequential loop's decrement hits
        zero — so the arena sees the identical push sequence.
        """
        nonlocal messages, comm_bytes
        cons = e_cons_np[lo:hi]
        arr = t_done + e_delay_np[lo:hi]
        cross = e_cross_np[lo:hi]
        nx = int(cross.sum())
        if nx:
            messages += nx
            comm_bytes += int(e_bytes_np[lo:hi][cross].sum())
            if tracing:
                src = owner_l[tid]
                for idx in np.flatnonzero(cross).tolist():
                    send_log.append(SendRecord(
                        tid=tid, succ=int(cons[idx]), src=src,
                        dst=e_dst_l[lo + idx], t_send=t_done,
                        t_recv=float(arr[idx]),
                        nbytes=e_bytes_l[lo + idx]))
        np.maximum.at(arrival, cons, arr)
        np.subtract.at(pred, cons, 1)
        rev = cons[::-1]
        u, first_rev = np.unique(rev, return_index=True)
        zero = pred[u] == 0
        if zero.any():
            uz = u[zero]
            last_pos = (cons.size - 1) - first_rev[zero]
            order = np.argsort(last_pos, kind="stable")
            for s in uz[order].tolist():
                push(float(arrival[s]), K_READY, owner_l[s], s)

    for tid in dag.initial_ready():
        push(0.0, K_READY, owner_l[tid], tid)

    wake_pending = [float("inf")] * nprocs
    batches: list[list[int]] = []
    # prebound per-rank methods: the loop below runs once per event,
    # and attribute lookups on _ProcState dominate at 1000+ ranks
    if sim.policy == "trojan":
        launch_of = [p._launch_trojan for p in procs]
    elif sim.policy == "streams":
        launch_of = [p._launch_streams for p in procs]
    elif nprocs and procs[0]._fast_single:
        launch_of = [p._launch_single for p in procs]
    else:
        launch_of = [p.launch for p in procs]

    def _mk_push_ready(heap, key, _hp=heapq.heappush):
        # per-rank closure: one heappush, no method dispatch (the ready
        # heaps are append/pop-only lists, never rebound)
        def _push_ready(tid):
            _hp(heap, key[tid])
        return _push_ready

    if sim.policy == "trojan" and nprocs and procs[0]._fast_trojan:
        # add_ready for fast-trojan procs is exactly prio.push_ready
        add_ready_of = [_mk_push_ready(p.prio._heap, st.key_prio_l)
                        for p in procs]
    elif nprocs and procs[0]._key_l is not None:
        add_ready_of = [_mk_push_ready(p.heap, p._key_l) for p in procs]
    else:
        add_ready_of = [p.add_ready for p in procs]
    next_wake_of = [p.next_wake for p in procs]
    # trojan never schedules wakes (launches happen on arrivals and
    # batch completions), so the whole wake path can be skipped
    no_wakes = sim.policy == "trojan"
    inf = float("inf")
    # inline cohort drain: read the arena's cohort columns directly and
    # merge the spill heap by (t, row) — one method call per *cohort*
    # instead of per event (the column/spill lists are never rebound by
    # EventArena, so aliasing them here is safe)
    kind_l = arena._kind
    rank_l = arena._rank
    pay_l = arena._payload
    spill = arena._spill
    heappop = heapq.heappop
    ct: list = []
    ck: list = []
    cr: list = []
    cp_: list = []
    crow: list = []
    i = 0
    m = 0
    spill_pops = 0

    while True:
        if i < m:
            if spill:
                sp = spill[0]
                ts = sp[0]
                tc = ct[i]
                if ts < tc or (ts == tc and sp[1] < crow[i]):
                    heappop(spill)
                    row = sp[1]
                    t = ts
                    kind = kind_l[row]
                    rank = rank_l[row]
                    payload = pay_l[row]
                    spill_pops += 1
                else:
                    t = tc
                    kind = ck[i]
                    rank = cr[i]
                    payload = cp_[i]
                    i += 1
            else:
                t = ct[i]
                kind = ck[i]
                rank = cr[i]
                payload = cp_[i]
                i += 1
        elif spill:
            ts, row = heappop(spill)
            t = ts
            kind = kind_l[row]
            rank = rank_l[row]
            payload = pay_l[row]
            spill_pops += 1
        else:
            m = arena.take_cohort(spill_pops)
            spill_pops = 0
            if not m:
                break
            ct = arena._ct
            ck = arena._ck
            cr = arena._cr
            cp_ = arena._cp
            crow = arena._crow
            i = 0
            continue
        if kind == K_READY:
            add_ready_of[rank](payload)
        elif kind == K_DONE:
            proc = procs[rank]
            tids_done = batches[payload]
            proc.on_done()
            done_tasks += len(tids_done)
            for tid in tids_done:
                lo = indptr_l[tid]
                hi = indptr_l[tid + 1]
                if hi - lo >= _VEC_EDGE_MIN:
                    propagate_vec(t, tid, lo, hi)
                    continue
                for e in range(lo, hi):
                    s = e_cons_l[e]
                    arr = t + e_delay_l[e]
                    if e_cross_l[e]:
                        messages += 1
                        comm_bytes += e_bytes_l[e]
                        if tracing:
                            send_log.append(SendRecord(
                                tid=tid, succ=s, src=owner_l[tid],
                                dst=e_dst_l[e], t_send=t, t_recv=arr,
                                nbytes=e_bytes_l[e]))
                    if arr > arrival[s]:
                        arrival[s] = arr
                    p = pred[s] - 1
                    pred[s] = p
                    if p == 0:
                        push(float(arrival[s]), K_READY, e_dst_l[e], s)
            if t > makespan:
                makespan = t
        elif kind == K_WAKE:
            pass  # wakes only exist to reach the launch tail below
        else:
            # K_XMIT / K_DELIVER / K_DEATH never enter the lossless loop
            raise AssertionError(
                f"unexpected event kind {kind} in the lossless loop")
        if no_wakes:
            # trojan never schedules wakes, so skip the wake-pending
            # bookkeeping entirely on this (hot) variant of the tail
            for start, end, tids, flops in launch_of[rank](t):
                total_flops += flops
                if timeline is not None:
                    timeline.append((rank, start, end, list(tids)))
                if tracing:
                    task_t_start[tids] = start
                    task_t_done[tids] = end
                push(end, K_DONE, rank, len(batches))
                batches.append(tids)
            continue
        if t >= wake_pending[rank]:
            wake_pending[rank] = inf
        for start, end, tids, flops in launch_of[rank](t):
            total_flops += flops
            if timeline is not None:
                timeline.append((rank, start, end, list(tids)))
            if tracing:
                task_t_start[tids] = start
                task_t_done[tids] = end
            push(end, K_DONE, rank, len(batches))
            batches.append(tids)
        wake = next_wake_of[rank](t)
        if wake is not None and wake < wake_pending[rank]:
            wake_pending[rank] = wake
            push(wake, K_WAKE, rank, -1)

    arena.stats.wall_s = time.perf_counter() - t_wall
    if done_tasks != n:
        raise AssertionError(
            f"distributed sim finished {done_tasks}/{n} tasks")
    trace = None
    if tracing:
        edges = (np.stack([st.e_prod, st.e_cons], axis=1)
                 if st.e_cons.size else np.empty((0, 2), dtype=np.int64))
        trace = DistTrace(
            nprocs=nprocs,
            rank=st.owner.copy(),
            t_start=task_t_start,
            t_done=task_t_done,
            edges=edges,
            sends=send_log,
            per_rank_bytes=factor_bytes_per_rank(dag, sim.grid),
            mem_budget_bytes=USABLE_FRACTION
            * sim.cluster.gpu.memory_gb * 1e9,
        )
    return DistributedResult(
        cluster=sim.cluster.name,
        policy=sim.policy,
        nprocs=nprocs,
        makespan=makespan,
        total_tasks=n,
        total_kernels=sum(p.kernels for p in procs),
        total_flops=total_flops,
        per_proc_kernels=[p.kernels for p in procs],
        per_proc_busy=[p.busy for p in procs],
        messages=messages,
        comm_bytes=comm_bytes,
        timeline=timeline,
        trace=trace,
        events=arena.stats,
    )


# verify: effects(arena)
def run_arena_faulty(sim) -> DistributedResult:
    """Fault-injected event loop on the arena engine.

    A line-for-line port of ``DistributedSimulator._run_faulty`` onto
    the arena queue: retransmits, stragglers and rank death are arena
    event kinds, tuple payloads live in side lists indexed by the
    payload column, and the owner-override chain is a flat
    chain-compressed ``rank_map`` array.  The RNG draw order is
    preserved because the event processing order is preserved, so
    traces and digests stay bit-identical per (spec, seed).
    """
    t_wall = time.perf_counter()
    dag = sim.dag
    spec = sim.faults
    link = spec.link
    drop_table = link.drop_table()
    model = GPUCostModel(sim.cluster.gpu)
    cp = dag.critical_path_lengths()
    st = SimStatics(sim, model, cp)
    rng = np.random.default_rng(spec.seed)
    fstats = FaultStats()
    nprocs = sim.nprocs
    n = dag.n_tasks
    procs = [
        _FastProcState(r, sim.policy, dag, model, sim.backend, cp, st,
                       slowdown=(lambda t, _r=r: spec.slowdown(_r, t)))
        for r in range(nprocs)
    ]

    owner_l = st.owner_l
    indptr_l = st.indptr_l
    e_cons = st.e_cons
    e_cons_l = st.e_cons_l
    e_prod = st.e_prod
    e_prod_l = e_prod.tolist()
    e_bytes_l = st.e_bytes_l
    n_edges = e_cons.size
    edge_recv = np.full(n_edges, -1.0)
    edge_dst = np.full(n_edges, -1, dtype=np.int64)
    edge_epoch = np.zeros(n_edges, dtype=np.int64)

    state = np.zeros(n, dtype=np.int8)
    exec_rank = np.full(n, -1, dtype=np.int64)
    done_at = np.full(n, -1.0)
    ready_after = np.zeros(n)
    pred = dag.pred_count.copy()
    alive = np.ones(nprocs, dtype=bool)
    #: chain-compressed owner re-homing: rank_map[r] is the alive rank
    #: currently responsible for home rank r (identity before deaths)
    rank_map = list(range(nprocs))
    death_log: list[tuple[int, int, float]] = []

    def cur_owner(tid: int) -> int:
        return rank_map[owner_l[tid]]

    def holder(tid: int) -> int:
        return rank_map[int(exec_rank[tid])]

    # scalar link costs, identical arithmetic to ClusterSpec.message_time
    gpn = sim.cluster.gpus_per_node
    lat_intra = sim.cluster.intranode.latency_us * 1e-6
    bps_intra = sim.cluster.intranode.bandwidth_gbs * 1e9
    lat_inter = sim.cluster.internode.latency_us * 1e-6
    bps_inter = sim.cluster.internode.bandwidth_gbs * 1e9

    def pair_delay(src: int, dst: int, nbytes: int) -> float:
        if src == dst:
            return 0.0
        if src // gpn == dst // gpn:
            return lat_intra + nbytes / bps_intra
        return lat_inter + nbytes / bps_inter

    arena = EventArena(_initial_width(sim.cluster),
                       capacity=max(1024, 2 * n))
    push = arena.push
    #: tuple payloads, indexed by the arena's int payload column
    xmit_list: list[tuple[int, int, int, int]] = []
    deliver_list: list[tuple[int, int, int, int]] = []
    batches: list[list[int]] = []

    messages = 0
    comm_bytes = 0
    done_tasks = 0
    makespan = 0.0
    total_flops = 0
    timeline = [] if sim.record_timeline else None
    tracing = sim.record_trace
    if tracing:
        task_t_start = np.full(n, -1.0)
        task_t_done = np.full(n, -1.0)
        send_log: list[SendRecord] = []

    def push_deliver(t: float, e: int, epoch: int, src: int,
                     dst: int) -> None:
        deliver_list.append((e, epoch, src, dst))
        push(t, K_DELIVER, dst, len(deliver_list) - 1)

    def push_xmit(t: float, e: int, attempt: int, epoch: int,
                  src: int) -> None:
        xmit_list.append((e, attempt, epoch, src))
        push(t, K_XMIT, src, len(xmit_list) - 1)

    def send_edge(e: int, src: int, t: float, resend: bool = False) -> None:
        nonlocal messages
        if resend:
            fstats.resends += 1
        dst = cur_owner(e_cons_l[e])
        if dst == src:
            if resend and tracing:
                send_log.append(SendRecord(
                    tid=e_prod_l[e], succ=e_cons_l[e], src=src,
                    dst=dst, t_send=t, t_recv=t,
                    nbytes=e_bytes_l[e], attempt=0))
            push_deliver(t, e, int(edge_epoch[e]), src, dst)
        else:
            messages += 1
            push_xmit(t, e, 0, int(edge_epoch[e]), src)

    def handle_xmit(t: float, payload: int) -> None:
        nonlocal comm_bytes
        e, attempt, epoch, src = xmit_list[payload]
        if (epoch != edge_epoch[e] or not alive[src]
                or edge_recv[e] >= 0):
            return
        p, c = e_prod_l[e], e_cons_l[e]
        dst = cur_owner(c)
        if dst == src:
            if tracing:
                send_log.append(SendRecord(
                    tid=p, succ=c, src=src, dst=dst, t_send=t,
                    t_recv=t, nbytes=e_bytes_l[e], attempt=attempt))
            push_deliver(t, e, epoch, src, dst)
            return
        nbytes = e_bytes_l[e]
        comm_bytes += nbytes
        delay = pair_delay(src, dst, nbytes)
        pdrop = drop_table.get((src, dst), link.drop_prob)
        if (pdrop > 0.0 and attempt + 1 < link.max_attempts
                and rng.random() < pdrop):
            fstats.drops += 1
            fstats.retransmits += 1
            if tracing:
                send_log.append(SendRecord(
                    tid=p, succ=c, src=src, dst=dst, t_send=t,
                    t_recv=None, nbytes=nbytes, attempt=attempt))
            base = (link.timeout_s if link.timeout_s is not None
                    else link.timeout_factor * delay)
            push_xmit(t + base * link.backoff ** attempt,
                      e, attempt + 1, epoch, src)
            return
        stretch = max(spec.slowdown(src, t), spec.slowdown(dst, t))
        arr = t + delay * stretch
        if tracing:
            send_log.append(SendRecord(
                tid=p, succ=c, src=src, dst=dst, t_send=t,
                t_recv=arr, nbytes=nbytes, attempt=attempt))
        push_deliver(arr, e, epoch, src, dst)
        if link.dup_prob > 0.0 and rng.random() < link.dup_prob:
            fstats.dups += 1
            push_deliver(arr, e, epoch, src, dst)

    def handle_deliver(t: float, payload: int) -> None:
        e, epoch, src, dst = deliver_list[payload]
        if epoch != edge_epoch[e] or edge_recv[e] >= 0:
            return
        c = e_cons_l[e]
        if not alive[dst]:
            edge_epoch[e] += 1
            send_edge(e, src, t, resend=True)
            return
        edge_recv[e] = t
        edge_dst[e] = dst
        pred[c] -= 1
        if pred[c] == 0 and state[c] == 0:
            push(max(t, ready_after[c]), K_READY, cur_owner(c), c)

    def propagate(t_done: float, tids, src: int) -> None:
        for tid in tids:
            for e in range(indptr_l[tid], indptr_l[tid + 1]):
                if edge_recv[e] >= 0:
                    continue
                send_edge(e, src, t_done)

    def handle_death(t: float, r: int) -> None:
        nonlocal done_tasks
        if not alive[r]:
            return
        alive[r] = False
        fstats.deaths += 1
        rec = next((r + off) % nprocs for off in range(1, nprocs)
                   if alive[(r + off) % nprocs])
        t_rec = t + spec.recovery_delay
        tc = math.floor(t / spec.checkpoint_interval) \
            * spec.checkpoint_interval
        was_r = exec_rank == r
        for tid in procs[r].running:
            state[tid] = 0
            exec_rank[tid] = -1
            fstats.reexecuted += 1
        procs[r].running.clear()
        for tid in procs[r].drain_pending():
            state[tid] = 0
        lost = np.flatnonzero((state == 3) & (exec_rank == r)
                              & (done_at > tc))
        for tid in lost:
            state[tid] = 0
            exec_rank[tid] = -1
            done_tasks -= 1
            fstats.reexecuted += 1
        moved = [tid for tid in range(n)
                 if state[tid] != 3 and cur_owner(tid) == r]
        for i in range(nprocs):
            if rank_map[i] == r:
                rank_map[i] = rec
        death_log.append((r, rec, t))
        for tid in moved:
            ready_after[tid] = max(ready_after[tid], t_rec)
        for e in np.flatnonzero((edge_dst == r) & (edge_recv >= 0)):
            c, p = e_cons_l[e], e_prod_l[e]
            if state[c] == 3:
                continue
            if edge_recv[e] > tc:
                edge_recv[e] = -1.0
                edge_dst[e] = -1
                edge_epoch[e] += 1
                pred[c] += 1
                if state[p] == 3:
                    send_edge(e, holder(p), t_rec, resend=True)
            elif state[p] == 3 and exec_rank[p] == r and tracing:
                send_log.append(SendRecord(
                    tid=p, succ=c, src=rec, dst=rec, t_send=t_rec,
                    t_recv=t_rec, nbytes=e_bytes_l[e], attempt=0))
        for e in np.flatnonzero(was_r[e_prod] & (edge_recv < 0)):
            edge_epoch[e] += 1
            if state[e_prod_l[e]] == 3:
                send_edge(e, rec, t_rec, resend=True)
        for tid in np.flatnonzero((pred == 0) & (state == 0)):
            tid = int(tid)
            push(max(t_rec, ready_after[tid]), K_READY,
                 cur_owner(tid), tid)

    for tid in dag.initial_ready():
        push(0.0, K_READY, owner_l[tid], tid)
    for d in spec.deaths:
        push(d.time, K_DEATH, d.rank, -1)

    wake_pending = [float("inf")] * nprocs
    pop = arena.pop

    while True:
        ev = pop()
        if ev is None:
            break
        t, kind, rank, payload = ev
        if t >= wake_pending[rank]:
            wake_pending[rank] = float("inf")
        if kind == K_DEATH:
            handle_death(t, rank)
            continue
        elif kind == K_XMIT:
            handle_xmit(t, payload)
            continue
        elif kind == K_DELIVER:
            handle_deliver(t, payload)
            rank = deliver_list[payload][3]
        elif kind == K_READY:
            tid = payload
            if state[tid] != 0 or pred[tid] != 0:
                continue
            if t < ready_after[tid]:
                push(float(ready_after[tid]), K_READY, cur_owner(tid),
                     tid)
                continue
            rank = cur_owner(tid)
            state[tid] = 1
            procs[rank].add_ready(tid)
        elif kind == K_DONE:
            if not alive[rank]:
                continue
            proc = procs[rank]
            proc.on_done()
            finished = []
            for tid in batches[payload]:
                if state[tid] == 2 and exec_rank[tid] == rank:
                    state[tid] = 3
                    done_at[tid] = t
                    proc.running.discard(tid)
                    done_tasks += 1
                    finished.append(tid)
            propagate(t, finished, rank)
            makespan = max(makespan, t)
        elif kind == K_WAKE:
            pass  # wakes only exist to reach the launch tail below
        else:
            raise AssertionError(
                f"unexpected event kind {kind} in the faulty loop")
        if not alive[rank]:
            continue
        proc = procs[rank]
        for start, end, tids, flops in proc.launch(t):
            total_flops += flops
            for tid in tids:
                state[tid] = 2
                exec_rank[tid] = rank
                proc.running.add(tid)
            if timeline is not None:
                timeline.append((rank, start, end, list(tids)))
            if tracing:
                task_t_start[tids] = start
                task_t_done[tids] = end
            push(end, K_DONE, rank, len(batches))
            batches.append(tids)
        wake = proc.next_wake(t)
        if wake is not None and wake < wake_pending[rank]:
            wake_pending[rank] = wake
            push(wake, K_WAKE, rank, -1)

    arena.stats.wall_s = time.perf_counter() - t_wall
    if done_tasks != n:
        raise AssertionError(
            f"faulty distributed sim finished {done_tasks}/{n} tasks")
    trace = None
    if tracing:
        edges = (np.stack([e_prod, e_cons], axis=1) if n_edges
                 else np.empty((0, 2), dtype=np.int64))
        per_rank = factor_bytes_per_rank(dag, sim.grid).astype(float)
        for r, rec, _t in death_log:
            per_rank[rec] += per_rank[r]
            per_rank[r] = 0.0
        trace = DistTrace(
            nprocs=nprocs,
            rank=exec_rank.copy(),
            t_start=task_t_start,
            t_done=task_t_done,
            edges=edges,
            sends=send_log,
            deaths=[(r, t) for r, _rec, t in death_log],
            per_rank_bytes=per_rank,
            mem_budget_bytes=USABLE_FRACTION
            * sim.cluster.gpu.memory_gb * 1e9,
        )
    return DistributedResult(
        cluster=sim.cluster.name,
        policy=sim.policy,
        nprocs=nprocs,
        makespan=makespan,
        total_tasks=n,
        total_kernels=sum(p.kernels for p in procs),
        total_flops=total_flops,
        per_proc_kernels=[p.kernels for p in procs],
        per_proc_busy=[p.busy for p in procs],
        messages=messages,
        comm_bytes=comm_bytes,
        timeline=timeline,
        trace=trace,
        faults=fstats,
        events=arena.stats,
    )

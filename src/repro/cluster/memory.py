"""Per-GPU factor-memory model.

Figure 12's caption notes that "some small GPU counts on the MI50 cluster
cannot complete due to out-of-memory errors" — each rank must hold its
2-D block-cyclic share of the factors, and 16 GB MI50s cannot fit the
Table-4 factors on few GPUs.  This module estimates the per-rank factor
footprint and flags infeasible configurations the way the paper's missing
bars do.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.grid import ProcessGrid
from repro.core.dag import TaskDAG
from repro.core.task import TaskType
from repro.gpusim.specs import GPUSpec

#: Fraction of device memory usable for factors (the rest holds buffers,
#: staging areas and the runtime).
USABLE_FRACTION = 0.8

#: Stored bytes per factor nonzero: 8 B value + compressed index overhead
#: (calibrated so the Table-7 single-H100 runs remain feasible, as they
#: were in the paper).
BYTES_PER_NNZ = 10.0


def factor_bytes_per_rank(dag: TaskDAG, grid: ProcessGrid) -> np.ndarray:
    """Per-rank factor bytes implied by the DAG's tile sizes.

    Each factor tile (the output of its GETRF/TSTRF/GEESM task) is stored
    by its owner; SSSSM tasks touch existing tiles and add nothing.

    Vectorized over :meth:`TaskDAG.task_arrays`; ``np.add.at`` applies
    its updates sequentially in operand order, so the accumulation order
    (ascending tid) — and therefore every last floating-point bit — is
    identical to the per-task loop this replaced.
    """
    out = np.zeros(grid.nprocs)
    arrays = dag.task_arrays()
    mask = arrays.type_code != int(TaskType.SSSSM)
    owners = grid.owner_array(arrays.i[mask], arrays.j[mask])
    np.add.at(out, owners,
              BYTES_PER_NNZ * arrays.nnz[mask].astype(np.float64))
    return out


def fits_in_memory(total_factor_nnz: float, nprocs: int, gpu: GPUSpec,
                   imbalance: float = 1.15) -> bool:
    """Would ``total_factor_nnz`` factor entries fit on ``nprocs`` GPUs?

    Used with the *paper-reported* nnz(L+U) (Tables 2/4) to reproduce the
    OOM pattern of Figure 12: block-cyclic distribution is nearly even, so
    the per-rank share is ``total / nprocs`` times a small imbalance
    factor.
    """
    if nprocs <= 0:
        raise ValueError("need at least one process")
    per_rank = BYTES_PER_NNZ * total_factor_nnz / nprocs * imbalance
    return per_rank <= USABLE_FRACTION * gpu.memory_gb * 1e9

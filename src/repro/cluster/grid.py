"""2-D block-cyclic process grid (the distribution both solvers use)."""

from __future__ import annotations

from dataclasses import dataclass


def _best_grid(nprocs: int) -> tuple[int, int]:
    """Most-square factorisation pr × pc = nprocs with pr ≤ pc."""
    best = (1, nprocs)
    for pr in range(1, int(nprocs ** 0.5) + 1):
        if nprocs % pr == 0:
            best = (pr, nprocs // pr)
    return best


@dataclass(frozen=True)
class ProcessGrid:
    """Process grid with 2-D block-cyclic tile ownership.

    Tile (i, j) belongs to process ``(i mod pr) · pc + (j mod pc)`` — the
    distribution SuperLU_DIST and PanguLU both employ (paper §2.2).

    Parameters
    ----------
    nprocs:
        Total processes (= GPUs).
    pr, pc:
        Optional explicit grid shape; defaults to the most-square
        factorisation.
    """

    nprocs: int
    pr: int = 0
    pc: int = 0

    def __post_init__(self):
        if self.nprocs <= 0:
            raise ValueError("need at least one process")
        if self.pr == 0 or self.pc == 0:
            pr, pc = _best_grid(self.nprocs)
            object.__setattr__(self, "pr", pr)
            object.__setattr__(self, "pc", pc)
        if self.pr * self.pc != self.nprocs:
            raise ValueError("pr × pc must equal nprocs")

    def owner(self, i: int, j: int) -> int:
        """Rank owning tile (i, j)."""
        return (i % self.pr) * self.pc + (j % self.pc)

    def coords(self, rank: int) -> tuple[int, int]:
        """Grid coordinates (row, col) of a rank."""
        if not 0 <= rank < self.nprocs:
            raise ValueError("rank out of range")
        return divmod(rank, self.pc)

"""2-D block-cyclic process grid (the distribution both solvers use)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _best_grid(nprocs: int) -> tuple[int, int]:
    """Most-square factorisation pr × pc = nprocs with pr ≤ pc."""
    best = (1, nprocs)
    for pr in range(1, int(nprocs ** 0.5) + 1):
        if nprocs % pr == 0:
            best = (pr, nprocs // pr)
    return best


@dataclass(frozen=True)
class ProcessGrid:
    """Process grid with 2-D block-cyclic tile ownership.

    Tile (i, j) belongs to process ``(i mod pr) · pc + (j mod pc)`` — the
    distribution SuperLU_DIST and PanguLU both employ (paper §2.2).

    Construction is O(√nprocs) (one trial-division factorisation) and
    ownership queries are O(1), so thousand-rank grids cost nothing to
    set up — the scale-out sweeps build 4096-rank grids per cell.

    Parameters
    ----------
    nprocs:
        Total processes (= GPUs).
    pr, pc:
        Optional explicit grid shape; defaults to the most-square
        factorisation.  Both must be positive when given — a negative
        dimension would silently wrap tile indices via Python's modulo
        instead of failing.
    """

    nprocs: int
    pr: int = 0
    pc: int = 0

    def __post_init__(self):
        if self.nprocs <= 0:
            raise ValueError("need at least one process")
        if self.pr < 0 or self.pc < 0:
            raise ValueError(
                f"grid shape must be positive, got {self.pr}x{self.pc}")
        if self.pr == 0 or self.pc == 0:
            pr, pc = _best_grid(self.nprocs)
            object.__setattr__(self, "pr", pr)
            object.__setattr__(self, "pc", pc)
        if self.pr * self.pc != self.nprocs:
            raise ValueError(
                f"pr × pc must equal nprocs "
                f"({self.pr}x{self.pc} != {self.nprocs})")

    @classmethod
    def rectangular(cls, pr: int, pc: int) -> "ProcessGrid":
        """Explicit (possibly non-square) ``pr × pc`` grid."""
        if pr <= 0 or pc <= 0:
            raise ValueError(
                f"grid shape must be positive, got {pr}x{pc}")
        return cls(nprocs=pr * pc, pr=pr, pc=pc)

    @property
    def shape(self) -> tuple[int, int]:
        """Grid dimensions ``(pr, pc)``."""
        return (self.pr, self.pc)

    def owner(self, i: int, j: int) -> int:
        """Rank owning tile (i, j).

        Tile indices must be non-negative: a negative index would wrap
        around the grid silently (Python's modulo), masking an indexing
        bug upstream, so it raises instead.
        """
        if i < 0 or j < 0:
            raise ValueError(
                f"tile indices must be non-negative, got ({i}, {j})")
        return (i % self.pr) * self.pc + (j % self.pc)

    def owner_array(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner` over parallel tile-index arrays.

        One pass over the whole task list replaces a per-task Python
        call — the engine setup cost that used to dominate large grids.
        """
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        if i.shape != j.shape:
            raise ValueError("tile index arrays must have matching shapes")
        if i.size and (int(i.min()) < 0 or int(j.min()) < 0):
            raise ValueError("tile indices must be non-negative")
        return (i % self.pr) * self.pc + (j % self.pc)

    def coords(self, rank: int) -> tuple[int, int]:
        """Grid coordinates (row, col) of a rank."""
        if not 0 <= rank < self.nprocs:
            raise ValueError("rank out of range")
        return divmod(rank, self.pc)

"""Static pivoting: row permutation for a strong diagonal.

SuperLU_DIST's GPU path replaces partial pivoting with *static pivoting*:
a row permutation computed once, before the numeric phase, that places
large entries on the diagonal (the role MC64 plays in the real pipeline).
This module implements the MC64 "maximise the product of diagonal
magnitudes" objective (option 4) as a maximum-weight bipartite matching
on log-magnitudes, solved with the classic O(n³) Hungarian algorithm
(potentials + column minima), inner loop vectorised.

The returned permutation ``rowperm`` satisfies: row ``rowperm[i]`` of the
original matrix becomes row ``i``, i.e. apply with
``permute_rows(a, rowperm)``; the permuted matrix has a structurally full
and magnitudally strong diagonal.
"""

from __future__ import annotations

import numpy as np

from repro.sparse import CSRMatrix

#: Cost standing in for "no structural entry" — any matching that uses
#: such an edge is evidence of structural singularity.
_FORBIDDEN = 1e30


def static_pivot_permutation(a: CSRMatrix) -> np.ndarray:
    """Row permutation maximising the product of diagonal magnitudes.

    Exact optimum (verified against ``scipy.optimize`` in the tests);
    raises ``ValueError`` for structurally singular matrices.
    """
    if a.nrows != a.ncols:
        raise ValueError("static pivoting requires a square matrix")
    n = a.nrows
    if a.nnz == 0:
        raise ValueError("matrix is structurally singular (empty)")

    # dense cost matrix: minimise −log|a_ij|
    cost = np.full((n, n), _FORBIDDEN)
    rows = np.repeat(np.arange(n, dtype=np.int64), a.row_lengths())
    nz = a.data != 0
    cost[rows[nz], a.indices[nz]] = -np.log(np.abs(a.data[nz]))

    # Hungarian algorithm (e-maxx formulation, 1-indexed buffers)
    INF = np.inf
    u = np.zeros(n + 1)
    v = np.zeros(n + 1)
    p = np.zeros(n + 1, dtype=np.int64)   # p[j] = row matched to column j
    way = np.zeros(n + 1, dtype=np.int64)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n + 1, INF)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            # vectorised relaxation over unused columns
            free = ~used[1:]
            cur = cost[i0 - 1, :] - u[i0] - v[1:]
            better = free & (cur < minv[1:])
            minv[1:][better] = cur[better]
            way[1:][better] = j0
            masked = np.where(free, minv[1:], INF)
            j1 = int(np.argmin(masked)) + 1
            delta = masked[j1 - 1]
            if not np.isfinite(delta):
                raise ValueError("matrix is structurally singular")
            u[p[used]] += delta
            v[used] -= delta
            minv[~used] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # augment along the recorded path
        while j0:
            j1 = int(way[j0])
            p[j0] = p[j1]
            j0 = j1

    # column j is matched to original row p[j]−1: that row becomes row j−1
    rowperm = p[1:] - 1
    if not np.array_equal(np.sort(rowperm), np.arange(n)):
        raise AssertionError("matching did not produce a permutation")
    # reject matchings forced through structurally-absent entries
    if np.any(cost[rowperm, np.arange(n)] >= _FORBIDDEN / 2):
        raise ValueError("matrix is structurally singular")
    return rowperm

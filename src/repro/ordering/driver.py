"""Ordering phase driver: select a method, permute, report statistics."""

from __future__ import annotations

import numpy as np

from repro.sparse import CSRMatrix
from repro.ordering.rcm import rcm
from repro.ordering.mindeg import minimum_degree
from repro.ordering.dissection import nested_dissection

ORDERING_METHODS = ("natural", "rcm", "mindeg", "nd")
"""Supported method names for :func:`compute_ordering`."""


def compute_ordering(a: CSRMatrix, method: str = "mindeg") -> np.ndarray:
    """Compute a fill-reducing permutation by name.

    Parameters
    ----------
    a:
        Square sparse matrix.
    method:
        One of :data:`ORDERING_METHODS`; ``"natural"`` is the identity
        (useful to isolate the numeric phase in experiments).

    Returns
    -------
    numpy.ndarray
        Permutation in new ← old convention, to be applied with
        :func:`repro.sparse.permute_symmetric`.
    """
    if method == "natural":
        return np.arange(a.nrows, dtype=np.int64)
    if method == "rcm":
        return rcm(a)
    if method == "mindeg":
        return minimum_degree(a)
    if method == "nd":
        return nested_dissection(a)
    raise ValueError(
        f"unknown ordering {method!r}; choose from {ORDERING_METHODS}"
    )

"""Fill-reducing orderings — the "reordering" phase of Figure 1.

Three orderings are provided, mirroring the options real solvers expose:

* :func:`rcm` — reverse Cuthill–McKee bandwidth reduction;
* :func:`minimum_degree` — greedy minimum-degree on the elimination graph
  (the algorithmic core of AMD, reference [7] of the paper);
* :func:`nested_dissection` — recursive separator ordering (the
  METIS/ParMETIS role in the paper's pipeline).

All operate on the symmetrised pattern of the input and return a
permutation in "new ← old" gather convention (see
:mod:`repro.sparse.permute`).
"""

from repro.ordering.graph import adjacency_from_pattern, pseudo_peripheral_node
from repro.ordering.rcm import rcm
from repro.ordering.mindeg import minimum_degree
from repro.ordering.dissection import nested_dissection
from repro.ordering.staticpivot import static_pivot_permutation
from repro.ordering.driver import compute_ordering, ORDERING_METHODS

__all__ = [
    "adjacency_from_pattern",
    "pseudo_peripheral_node",
    "rcm",
    "minimum_degree",
    "nested_dissection",
    "static_pivot_permutation",
    "compute_ordering",
    "ORDERING_METHODS",
]

"""Recursive nested dissection ordering.

Plays the role METIS/ParMETIS plays in the paper's pipeline: find a small
vertex separator, order the two halves recursively, and number the
separator last.  Separators come from the middle level of a BFS level
structure rooted at a pseudo-peripheral vertex — the classic
level-structure bisection, robust and dependency-free.
"""

from __future__ import annotations

import numpy as np

from repro.sparse import CSRMatrix
from repro.ordering.graph import (
    adjacency_from_pattern,
    bfs_levels,
    pseudo_peripheral_node,
)
from repro.ordering.mindeg import minimum_degree
from repro.sparse.blocking import extract_block  # noqa: F401  (doc link)


def nested_dissection(a: CSRMatrix, leaf_size: int = 32) -> np.ndarray:
    """Nested-dissection permutation (new ← old convention).

    Parameters
    ----------
    a:
        Square sparse matrix.
    leaf_size:
        Subgraphs at or below this size are ordered by natural index
        (they end up inside a single diagonal block anyway).
    """
    n = a.nrows
    indptr, indices = adjacency_from_pattern(a)
    out: list[int] = []

    def recurse(vertices: np.ndarray) -> list[int]:
        if vertices.size <= leaf_size:
            return sorted(int(v) for v in vertices)
        mask = np.zeros(n, dtype=bool)
        mask[vertices] = True
        start = pseudo_peripheral_node(indptr, indices, int(vertices[0]), mask)
        level, fronts = bfs_levels(indptr, indices, start, mask)
        reached = np.flatnonzero(level >= 0)
        unreached = vertices[level[vertices] < 0]
        if len(fronts) <= 2:
            # no usable level structure (near-clique): fall back to natural
            return sorted(int(v) for v in vertices)
        mid = len(fronts) // 2
        separator = fronts[mid]
        left = reached[level[reached] < mid]
        right = reached[level[reached] > mid]
        # disconnected leftovers go with the left half
        left = np.concatenate([left, unreached]) if unreached.size else left
        ordered = []
        if left.size:
            ordered.extend(recurse(left))
        if right.size:
            ordered.extend(recurse(right))
        ordered.extend(sorted(int(v) for v in separator))
        return ordered

    out = recurse(np.arange(n, dtype=np.int64))
    perm = np.asarray(out, dtype=np.int64)
    if perm.size != n or not np.array_equal(np.sort(perm), np.arange(n)):
        raise AssertionError("nested dissection produced an invalid permutation")
    return perm

"""Graph utilities shared by the orderings.

The adjacency structure of a square sparse matrix is its symmetrised
pattern with the diagonal removed, stored as CSR-style ``(indptr,
indices)`` arrays for cache-friendly BFS sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.sparse import CSRMatrix


def adjacency_from_pattern(a: CSRMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Adjacency ``(indptr, indices)`` of the symmetrised, diagonal-free
    pattern of a square matrix."""
    if a.nrows != a.ncols:
        raise ValueError("adjacency requires a square matrix")
    s = a.pattern_symmetrized()
    rows = np.repeat(np.arange(s.nrows, dtype=np.int64), s.row_lengths())
    keep = rows != s.indices
    rows = rows[keep]
    cols = s.indices[keep]
    indptr = np.zeros(a.nrows + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, cols


def bfs_levels(indptr: np.ndarray, indices: np.ndarray, start: int,
               mask: np.ndarray | None = None) -> tuple[np.ndarray, list[np.ndarray]]:
    """Breadth-first level structure from ``start``.

    Parameters
    ----------
    indptr, indices:
        Adjacency arrays.
    start:
        Root vertex.
    mask:
        Optional boolean array; ``False`` vertices are invisible (used by
        nested dissection to restrict BFS to a subgraph).

    Returns
    -------
    (level, fronts):
        ``level[v]`` is the BFS distance (−1 if unreached) and ``fronts``
        lists the vertex arrays of each level.
    """
    n = indptr.size - 1
    level = np.full(n, -1, dtype=np.int64)
    if mask is not None and not mask[start]:
        raise ValueError("BFS start vertex is masked out")
    level[start] = 0
    frontier = np.asarray([start], dtype=np.int64)
    fronts = [frontier]
    d = 0
    while frontier.size:
        nxt = []
        for v in frontier:
            nbrs = indices[indptr[v]:indptr[v + 1]]
            for u in nbrs:
                if level[u] == -1 and (mask is None or mask[u]):
                    level[u] = d + 1
                    nxt.append(u)
        frontier = np.asarray(nxt, dtype=np.int64)
        if frontier.size:
            fronts.append(frontier)
        d += 1
    return level, fronts


def pseudo_peripheral_node(indptr: np.ndarray, indices: np.ndarray,
                           start: int = 0,
                           mask: np.ndarray | None = None) -> int:
    """Find a vertex of (near-)maximal eccentricity by repeated BFS.

    Standard George–Liu heuristic: walk to a minimum-degree vertex of the
    last BFS level until the eccentricity stops growing.
    """
    degree = np.diff(indptr)
    node = start
    _, fronts = bfs_levels(indptr, indices, node, mask)
    ecc = len(fronts) - 1
    while True:
        last = fronts[-1]
        node2 = int(last[np.argmin(degree[last])])
        _, fronts2 = bfs_levels(indptr, indices, node2, mask)
        ecc2 = len(fronts2) - 1
        if ecc2 <= ecc:
            return node
        node, ecc, fronts = node2, ecc2, fronts2


def connected_components(indptr: np.ndarray, indices: np.ndarray,
                         mask: np.ndarray | None = None) -> list[np.ndarray]:
    """Connected components of the (optionally masked) graph."""
    n = indptr.size - 1
    seen = np.zeros(n, dtype=bool)
    if mask is not None:
        seen |= ~mask
    comps = []
    for v in range(n):
        if seen[v]:
            continue
        level, fronts = bfs_levels(indptr, indices, v,
                                   mask=None if mask is None else mask)
        comp = np.flatnonzero(level >= 0)
        # bfs_levels ignores `seen`; restrict to genuinely new vertices
        comp = comp[~seen[comp]]
        seen[comp] = True
        comps.append(comp)
    return comps

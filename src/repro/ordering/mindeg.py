"""Greedy minimum-degree ordering on the elimination graph.

This is the algorithmic core of AMD (the paper's reference [7]) without
the approximate-degree and supervariable machinery: at each step the
lowest-degree vertex is eliminated and its neighbourhood is turned into a
clique.  Exact degrees are maintained with Python sets — quadratic in the
clique sizes, which is fine at reproduction scale and much easier to audit
than a quotient graph.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.sparse import CSRMatrix
from repro.ordering.graph import adjacency_from_pattern


def minimum_degree(a: CSRMatrix, tie_break: str = "index") -> np.ndarray:
    """Minimum-degree permutation (new ← old convention).

    Parameters
    ----------
    a:
        Square sparse matrix; ordering uses its symmetrised pattern.
    tie_break:
        ``"index"`` (deterministic, lowest vertex id first) — the only
        supported policy, kept as a parameter to document the invariant.
    """
    if tie_break != "index":
        raise ValueError("only 'index' tie-breaking is supported")
    n = a.nrows
    indptr, indices = adjacency_from_pattern(a)
    adj: list[set[int]] = [
        set(indices[indptr[v]:indptr[v + 1]].tolist()) for v in range(n)
    ]
    heap: list[tuple[int, int]] = [(len(adj[v]), v) for v in range(n)]
    heapq.heapify(heap)
    eliminated = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    k = 0
    while heap:
        deg, v = heapq.heappop(heap)
        if eliminated[v] or deg != len(adj[v]):
            continue  # stale heap entry
        eliminated[v] = True
        order[k] = v
        k += 1
        nbrs = adj[v]
        # clique the neighbourhood, drop v everywhere
        for u in nbrs:
            au = adj[u]
            au.discard(v)
            au |= nbrs
            au.discard(u)
        for u in nbrs:
            heapq.heappush(heap, (len(adj[u]), u))
        adj[v] = set()
    if k != n:
        raise AssertionError("minimum degree failed to eliminate all vertices")
    return order

"""Reverse Cuthill–McKee ordering."""

from __future__ import annotations

import numpy as np

from repro.sparse import CSRMatrix
from repro.ordering.graph import (
    adjacency_from_pattern,
    pseudo_peripheral_node,
)


def rcm(a: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill–McKee permutation (new ← old convention).

    BFS from a pseudo-peripheral node, visiting each vertex's unnumbered
    neighbours in increasing-degree order, then reverse.  Handles
    disconnected graphs by restarting from the lowest-degree unvisited
    vertex.
    """
    n = a.nrows
    indptr, indices = adjacency_from_pattern(a)
    degree = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    while len(order) < n:
        remaining = np.flatnonzero(~visited)
        start = int(remaining[np.argmin(degree[remaining])])
        # refine the start inside this component
        mask = ~visited
        start = pseudo_peripheral_node(indptr, indices, start, mask)
        queue = [start]
        visited[start] = True
        qi = 0
        while qi < len(queue):
            v = queue[qi]
            qi += 1
            order.append(v)
            nbrs = indices[indptr[v]:indptr[v + 1]]
            nbrs = nbrs[~visited[nbrs]]
            if nbrs.size:
                nbrs = nbrs[np.argsort(degree[nbrs], kind="stable")]
                visited[nbrs] = True
                queue.extend(int(u) for u in nbrs)
    return np.asarray(order[::-1], dtype=np.int64)

"""Analytic GPU/CPU performance model — the hardware substitution.

No GPU is available to this reproduction, so the paper's hardware
(Tables 1 and 3) is replaced by an occupancy + roofline cost model that
consumes exactly the quantities the real Collector/Executor reason about:
CUDA block counts, shared-memory footprints, structural flops and bytes.
A kernel launch costs a fixed overhead; a *batched* launch pays it once
and earns the occupancy of all its tasks' CUDA blocks together — the
mechanism behind every headline result in the paper.

Calibration targets the published peak numbers only; absolute times are
not claimed (DESIGN.md §3).
"""

from repro.gpusim.specs import (
    GPUSpec,
    CPUSpec,
    RTX5060TI,
    RTX5090,
    A100_40GB,
    H100_SXM,
    MI50,
    XEON_6462C,
    GPU_PRESETS,
)
from repro.gpusim.costmodel import GPUCostModel, CPUCostModel, KernelLaunch
from repro.gpusim.streams import StreamSimulator

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "RTX5060TI",
    "RTX5090",
    "A100_40GB",
    "H100_SXM",
    "MI50",
    "XEON_6462C",
    "GPU_PRESETS",
    "GPUCostModel",
    "CPUCostModel",
    "KernelLaunch",
    "StreamSimulator",
]

"""Occupancy + roofline kernel cost model.

A launched kernel (single task or batch) is described by a
:class:`KernelLaunch` aggregating CUDA blocks, flops and bytes.  Its
simulated time is::

    launch_overhead + max(flops / effective_flops, bytes / effective_bw)

with both effective rates scaled by occupancy (what fraction of the SMs
the launch's CUDA blocks can cover) and by a per-block work efficiency
(tiny per-block workloads cannot keep even one SM's pipelines busy).
Batching therefore helps twice, exactly as in the paper: one overhead for
many tasks, and far better occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.specs import CPUSpec, GPUSpec


@dataclass
class KernelLaunch:
    """Aggregate work description of one kernel launch.

    Build incrementally with :meth:`add_task` (the Collector does this as
    it admits tasks) or construct directly for single-task launches.
    """

    cuda_blocks: int = 0
    flops: int = 0
    bytes: int = 0
    shared_mem_bytes: int = 0
    n_tasks: int = 0

    def add_task(self, cuda_blocks: int, flops: int, nbytes: int,
                 shared_mem_bytes: int) -> None:
        """Fold one task's resource usage into the launch."""
        self.cuda_blocks += int(cuda_blocks)
        self.flops += int(flops)
        self.bytes += int(nbytes)
        self.shared_mem_bytes += int(shared_mem_bytes)
        self.n_tasks += 1


@dataclass(frozen=True)
class GPUCostModel:
    """Simulated execution time of kernel launches on a :class:`GPUSpec`.

    Parameters
    ----------
    gpu:
        Hardware description.
    base_efficiency:
        Fraction of peak achievable by these irregular sparse kernels even
        at full occupancy (real sparse LU kernels reach 20–40% of FP64
        peak; we use 0.3).
    block_saturation_flops:
        Per-CUDA-block work at which a block's pipelines are considered
        saturated; below it efficiency degrades linearly (a 16-wide column
        update cannot fill 32-wide warps).
    """

    gpu: GPUSpec
    base_efficiency: float = 0.3
    block_saturation_flops: float = 4096.0

    def occupancy(self, cuda_blocks: int) -> float:
        """Fraction of SMs covered by ``cuda_blocks`` resident blocks."""
        if cuda_blocks <= 0:
            return 1.0 / self.gpu.sm_count
        return min(1.0, cuda_blocks / self.gpu.sm_count)

    def block_efficiency(self, flops: int, cuda_blocks: int) -> float:
        """Per-block pipeline efficiency from average per-block work."""
        if cuda_blocks <= 0 or flops <= 0:
            return 0.05
        per_block = flops / cuda_blocks
        return max(0.05, min(1.0, per_block / self.block_saturation_flops))

    def launch_time(self, launch: KernelLaunch) -> float:
        """Simulated seconds for one launch (including launch overhead)."""
        overhead = self.gpu.launch_overhead_us * 1e-6
        if launch.flops <= 0 and launch.bytes <= 0:
            return overhead
        occ = self.occupancy(launch.cuda_blocks)
        eff = self.block_efficiency(launch.flops, launch.cuda_blocks)
        gflops = self.gpu.fp64_gflops * occ * eff * self.base_efficiency
        t_compute = launch.flops / (gflops * 1e9) if launch.flops else 0.0
        bw = self.gpu.mem_bw_gbs * occ
        t_mem = launch.bytes / (bw * 1e9) if launch.bytes else 0.0
        return overhead + max(t_compute, t_mem)

    def compute_time(self, launch: KernelLaunch) -> float:
        """Launch time excluding the launch overhead (kernel body only)."""
        return self.launch_time(launch) - self.gpu.launch_overhead_us * 1e-6


@dataclass(frozen=True)
class CPUCostModel:
    """Simulated execution time of tasks on a :class:`CPUSpec`.

    CPUs pay only a tiny per-task dispatch cost and retain
    ``small_task_efficiency`` of peak on small kernels, so they are not
    launch-bound — reproducing Table 7's "CPU beats the baseline GPU
    path" regime.
    """

    cpu: CPUSpec
    parallel_fraction: float = 0.95

    def task_time(self, flops: int, nbytes: int) -> float:
        """Seconds for one task executed on the (fully parallel) socket."""
        eff = self.cpu.small_task_efficiency
        gflops = self.cpu.fp64_gflops * eff
        t_compute = flops / (gflops * 1e9) if flops > 0 else 0.0
        t_mem = nbytes / (self.cpu.mem_bw_gbs * 1e9) if nbytes > 0 else 0.0
        return self.cpu.task_overhead_us * 1e-6 + max(t_compute, t_mem)

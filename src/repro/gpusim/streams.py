"""Multi-stream execution model.

The paper's §4 evaluates a PanguLU variant that replaces the Trojan Horse
Executor with four CUDA streams: tasks are still launched one kernel each,
but launches on different streams overlap.  The model keeps a per-stream
clock; a task launched on stream ``s`` starts at
``max(stream_clock[s], ready_time)`` and the device-wide occupancy is that
of a single task (streams overlap launch latency, not SM starvation —
concurrent small kernels still leave most SMs idle, which is why streams
lose to aggregate-and-batch in Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.costmodel import GPUCostModel, KernelLaunch


@dataclass
class StreamSimulator:
    """Round-robin multi-stream launch timeline.

    Parameters
    ----------
    model:
        The GPU cost model used for per-kernel durations.
    n_streams:
        Number of concurrent streams (paper variant: 4).
    """

    model: GPUCostModel
    n_streams: int = 4
    _clocks: list[float] = field(default_factory=list)
    _next: int = 0

    def __post_init__(self):
        if self.n_streams <= 0:
            raise ValueError("need at least one stream")
        self._clocks = [0.0] * self.n_streams

    def reset(self) -> None:
        """Clear all stream clocks."""
        self._clocks = [0.0] * self.n_streams
        self._next = 0

    def launch(self, launch: KernelLaunch, ready_time: float = 0.0) -> float:
        """Launch a kernel on the next stream; returns its completion time."""
        s = self._next
        self._next = (self._next + 1) % self.n_streams
        start = max(self._clocks[s], ready_time)
        end = start + self.model.launch_time(launch)
        self._clocks[s] = end
        return end

    @property
    def makespan(self) -> float:
        """Completion time of the last kernel across all streams."""
        return max(self._clocks)

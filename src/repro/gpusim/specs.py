"""Hardware specifications from the paper's Tables 1 and 3.

Core counts, FP64 peaks, memory sizes and bandwidths are the paper's
numbers; SM counts derive from core counts (128 CUDA cores per NVIDIA SM,
64 per AMD CU), and the remaining microarchitectural constants (shared
memory, launch overhead) use public vendor figures.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """A GPU for the cost model.

    Attributes
    ----------
    name:
        Display name.
    sm_count:
        Streaming multiprocessors (CUs for AMD).
    fp64_gflops:
        Peak double-precision throughput in GFLOP/s.
    mem_bw_gbs:
        Memory bandwidth in GB/s.
    memory_gb:
        Device memory capacity.
    shared_mem_per_sm_kb:
        Shared memory per SM in KiB — one of the Collector's two capacity
        budgets.
    max_blocks_per_sm:
        Resident CUDA blocks per SM the Collector targets — the other
        capacity budget.
    launch_overhead_us:
        Fixed cost of one kernel launch in microseconds (driver +
        dispatch); the quantity batching amortises.
    dispatch_serial_us:
        CPU-side portion of a launch that serialises across streams (the
        driver submits kernels through one path).  Streams overlap the
        GPU-side latency but never this component — the structural reason
        multi-stream execution cannot match aggregate-and-batch.
    """

    name: str
    sm_count: int
    fp64_gflops: float
    mem_bw_gbs: float
    memory_gb: float
    shared_mem_per_sm_kb: float = 100.0
    max_blocks_per_sm: int = 8
    launch_overhead_us: float = 8.0
    dispatch_serial_us: float = 4.0

    @property
    def max_resident_blocks(self) -> int:
        """Device-wide resident CUDA block budget."""
        return self.sm_count * self.max_blocks_per_sm

    @property
    def shared_mem_total_bytes(self) -> float:
        """Device-wide shared-memory budget in bytes."""
        return self.sm_count * self.shared_mem_per_sm_kb * 1024.0


@dataclass(frozen=True)
class CPUSpec:
    """A CPU socket for the Table-7 comparison.

    CPUs pay no kernel-launch overhead and keep decent efficiency on tiny
    tasks (caches + out-of-order cores), which is exactly why the paper's
    CPU baselines beat launch-bound GPU solvers.
    """

    name: str
    cores: int
    fp64_gflops: float
    mem_bw_gbs: float
    task_overhead_us: float = 0.3
    small_task_efficiency: float = 0.35


# ----------------------------------------------------------------------
# Table 1 — scale-up platforms
# ----------------------------------------------------------------------
RTX5060TI = GPUSpec(
    name="RTX 5060 Ti",
    sm_count=36,            # 4,608 cores / 128
    fp64_gflops=370.0,      # 0.37 TFlops
    mem_bw_gbs=450.0,       # 0.45 TB/s
    memory_gb=16.0,
    shared_mem_per_sm_kb=100.0,
)

RTX5090 = GPUSpec(
    name="RTX 5090",
    sm_count=170,           # 21,760 cores / 128
    fp64_gflops=1640.0,     # 1.64 TFlops
    mem_bw_gbs=1790.0,      # 1.79 TB/s
    memory_gb=32.0,
    shared_mem_per_sm_kb=100.0,
)

A100_40GB = GPUSpec(
    name="A100 PCIe 40GB",
    sm_count=108,           # 6,912 cores / 64 FP32-pairs → official 108 SMs
    fp64_gflops=9750.0,     # 9.75 TFlops
    mem_bw_gbs=1560.0,      # 1.56 TB/s
    memory_gb=40.0,
    shared_mem_per_sm_kb=164.0,
)

# ----------------------------------------------------------------------
# Table 3 — scale-out platforms
# ----------------------------------------------------------------------
H100_SXM = GPUSpec(
    name="H100 SXM",
    sm_count=114,           # 14,592 cores / 128
    fp64_gflops=25610.0,    # 25.61 TFlops (per-GPU share of Table 3)
    mem_bw_gbs=2040.0,      # 2.04 TB/s
    memory_gb=80.0,
    shared_mem_per_sm_kb=228.0,
)

MI50 = GPUSpec(
    name="MI50 PCIe",
    sm_count=60,            # 3,840 cores / 64 per CU
    fp64_gflops=6710.0,     # 6.71 TFlops
    mem_bw_gbs=1020.0,      # 1.02 TB/s
    memory_gb=16.0,
    shared_mem_per_sm_kb=64.0,
    launch_overhead_us=12.0,  # ROCm dispatch is costlier than CUDA
    dispatch_serial_us=6.0,   # ... including its CPU-side serial share
)

# ----------------------------------------------------------------------
# §4.5 CPU platform
# ----------------------------------------------------------------------
XEON_6462C = CPUSpec(
    name="Xeon Gold 6462C (32c Sapphire Rapids)",
    cores=32,
    fp64_gflops=2970.0,     # 32 cores × 2.9 GHz × 32 flops/cycle (AVX-512 FMA)
    mem_bw_gbs=307.0,       # 8×DDR5-4800
)

GPU_PRESETS: dict[str, GPUSpec] = {
    "rtx5060ti": RTX5060TI,
    "rtx5090": RTX5090,
    "a100": A100_40GB,
    "h100": H100_SXM,
    "mi50": MI50,
}
"""Lookup table used by benches and examples (keys are lowercase)."""

"""Command-line interface: factor, solve and simulate from the shell.

Examples::

    python -m repro info
    python -m repro factor --matrix cage12 --solver pangulu --scheduler trojan
    python -m repro factor --mtx system.mtx --solver superlu --gpu a100 --solve
    python -m repro sptrsv --matrix cage12 --nrhs 8 --solve-scheduler trojan
    python -m repro scaleout --matrix cage13 --cluster h100 --policy trojan
    python -m repro distsim --matrix c-71 --gpus 4 \\
        --faults tests/faults/chaos.json --seed 42 --verify
    python -m repro compare --matrix c-71 --solver superlu
    python -m repro sweep --count 24 --workers 4
    python -m repro serve --port 7070 --max-inflight 4
    python -m repro client --port 7070 --matrix c-71 --steps 10
    python -m repro verify
    python -m repro verify --case tests/golden/adversarial/reversed_dep.json
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.analysis import format_table
from repro.cluster import DistributedSimulator, H100_CLUSTER, MI50_CLUSTER
from repro.core import SOLVE_SCHEDULER_NAMES, compare_solve_schedulers
from repro.core.baselines import SCHEDULER_NAMES
from repro.core.executor import ReplayBackend
from repro.gpusim import GPU_PRESETS
from repro.io import read_matrix_market
from repro.matrices import PAPER_MATRICES, paper_matrix, suite_kinds
from repro.ordering import ORDERING_METHODS
from repro.solvers import SOLVER_REGISTRY, resimulate
from repro.sparse import CSRMatrix, matvec
from repro.sweep import (
    cache_stats_table,
    default_workers,
    fig10_items,
    fig10_table,
    run_sweep,
)

CLUSTERS = {"h100": H100_CLUSTER, "mi50": MI50_CLUSTER}

SOLVERS = SOLVER_REGISTRY


def _load_matrix(args):
    if args.mtx:
        return read_matrix_market(args.mtx)
    if args.matrix:
        return paper_matrix(args.matrix, scale=args.scale)
    raise SystemExit("provide --matrix <paper-name> or --mtx <file>")


def _make_solver(args, a):
    cls = SOLVERS[args.solver]
    kwargs = {"ordering": args.ordering, "gpu": GPU_PRESETS[args.gpu]}
    if args.solver != "pastix":  # dmdas is PaStiX's native policy
        kwargs["scheduler"] = args.scheduler
    return cls(a, **kwargs)


def cmd_info(args) -> int:
    """List the available matrices, devices and policies."""
    print(format_table(
        ["paper matrix", "group", "analogue kind"],
        [[n, i.group, i.kind] for n, i in sorted(PAPER_MATRICES.items())],
        title="matrices (also: --mtx <MatrixMarket file>)"))
    print()
    print(format_table(
        ["gpu key", "name", "SMs", "FP64 GFLOPS", "BW GB/s", "mem GB"],
        [[k, g.name, g.sm_count, g.fp64_gflops, g.mem_bw_gbs, g.memory_gb]
         for k, g in GPU_PRESETS.items()],
        title="GPU models"))
    print()
    print(f"solvers:    {', '.join(sorted(SOLVERS))}")
    print(f"schedulers: {', '.join(SCHEDULER_NAMES)} (+ dmdas for pastix)")
    print(f"orderings:  {', '.join(ORDERING_METHODS)}")
    print(f"clusters:   {', '.join(CLUSTERS)}")
    print(f"suite:      200-matrix collection over {len(suite_kinds())} kinds")
    return 0


def cmd_factor(args) -> int:
    """Factorise one matrix and report the schedule."""
    a = _load_matrix(args)
    solver = _make_solver(args, a)
    result = solver.factorize()
    s = result.schedule
    print(format_table(
        ["n", "nnz(A)", "nnz(L+U)", "tasks", "kernels", "tasks/kernel",
         "sim time (ms)", "GFLOPS"],
        [[a.nrows, a.nnz,
          getattr(result, "fill_nnz", result.L.nnz),
          s.task_count, s.kernel_count, round(s.mean_batch_size, 1),
          s.total_time * 1e3, round(s.gflops, 2)]],
        title=f"{args.solver} / {s.scheduler} on {s.device}"))
    if args.solve:
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(a.nrows)
        b = matvec(a, x_true)
        x = result.solve(b)
        err = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
        print(f"solve check: relative error {err:.2e}")
    return 0


def cmd_sptrsv(args) -> int:
    """Solve-phase report: batched SpTRSV vs the per-column oracle.

    Factorises the matrix, solves a random multi-RHS system through the
    batched solve DAG, bit-compares against the tiled per-column oracle,
    and prints the trojan-vs-level-set scheduler comparison for both the
    L-solve and U-solve DAGs under the GPU cost model.
    """
    a = _load_matrix(args)
    solver = SOLVERS[args.solver](a, ordering=args.ordering,
                                  gpu=GPU_PRESETS[args.gpu])
    result = solver.factorize()
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal((a.nrows, args.nrhs))
    b = np.column_stack([matvec(a, x_true[:, c])
                         for c in range(args.nrhs)])
    x = result.solve(b, batch_solve=True,
                     solve_scheduler=args.solve_scheduler)
    oracle = result.solve_per_column_oracle(b)
    err = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
    print(format_table(
        ["n", "nrhs", "scheduler", "oracle bitwise", "relative error"],
        [[a.nrows, args.nrhs, args.solve_scheduler,
          "yes" if np.array_equal(x, oracle) else "NO",
          f"{err:.2e}"]],
        title=f"{args.solver} batched SpTRSV on {args.gpu}"))
    lctx, uctx = result.solve_contexts()
    for phase, ctx in (("L-solve", lctx), ("U-solve", uctx)):
        info = compare_solve_schedulers(ctx.dag_for(args.nrhs),
                                        GPU_PRESETS[args.gpu])
        rows = [[name, s["kernels"], round(s["mean_batch"], 1),
                 round(s["makespan_ms"], 3)]
                for name, s in info["schedulers"].items()]
        print()
        print(format_table(
            ["scheduler", "kernels", "tasks/kernel", "time (ms)"],
            rows,
            title=f"{phase}: {info['tasks']} tasks, depth "
                  f"{info['depth']}"))
    return 0


def cmd_parallel(args) -> int:
    """Multiprocess factor + solve, bit-checked against the in-process
    engine.

    Runs the coordinator/worker engine over shared-memory tile pools,
    then replays the identical configuration on the single-process
    engine and bit-compares L, U and the solve vectors.  Exit status 1
    on any mismatch — this is the CI gate's workhorse.
    """
    from repro.parallel import ParallelExecutor

    a = _load_matrix(args)
    kwargs = {"ordering": args.ordering, "gpu": GPU_PRESETS[args.gpu]}
    if args.solver == "superlu":
        # the fusion rewrite bypasses batched groups; keep both sides on
        # the same unfused DAG (ParallelExecutor defaults this off too)
        kwargs["merge_schur"] = False
    rng = np.random.default_rng(0)
    b = rng.standard_normal((a.nrows, args.nrhs)) if args.nrhs > 1 \
        else rng.standard_normal(a.nrows)
    t0 = time.perf_counter()
    with ParallelExecutor(a, solver=args.solver, workers=args.workers,
                          scheduler=args.scheduler,
                          solve_scheduler=args.solve_scheduler,
                          certify=not args.no_certify,
                          log_dir=args.log_dir, pin_blas=args.pin_blas,
                          **kwargs) as ex:
        res = ex.factorize()
        x = ex.solve(b)
        solve_messages = ex.solve_messages
    wall = time.perf_counter() - t0
    ref = SOLVERS[args.solver](a, scheduler=args.scheduler,
                               **kwargs).factorize()
    xr = ref.solve(b, batch_solve=True,
                   solve_scheduler=args.solve_scheduler)
    lu_ok = (np.array_equal(res.L.data, ref.L.data)
             and np.array_equal(res.U.data, ref.U.data))
    stats_ok = res.stats == ref.stats
    x_ok = np.array_equal(x, xr)
    print(format_table(
        ["workers", "grid", "tasks", "batches", "msgs", "solve msgs",
         "comm MB", "L/U bitwise", "stats", "x bitwise", "wall (s)"],
        [[res.workers, f"{res.grid.pr}x{res.grid.pc}",
          res.batch_plan.n_tasks, len(res.batch_plan.batches),
          res.messages, solve_messages,
          round(res.comm_bytes / 1e6, 3),
          "yes" if lu_ok else "NO",
          "yes" if stats_ok else "NO",
          "yes" if x_ok else "NO",
          round(wall, 3)]],
        title=f"{args.solver} / {args.scheduler} multiprocess vs "
              f"in-process (certify={'off' if args.no_certify else 'on'})"))
    phases = res.phase_seconds
    print("phases: " + "  ".join(f"{k}={v * 1e3:.1f}ms"
                                 for k, v in sorted(phases.items())))
    return 0 if (lu_ok and stats_ok and x_ok) else 1


def cmd_compare(args) -> int:
    """Compare all schedulers for one matrix on one GPU."""
    a = _load_matrix(args)
    cls = SOLVERS[args.solver]
    if args.solver not in ("pangulu", "superlu"):
        raise SystemExit("compare supports pangulu and superlu")
    gpu = GPU_PRESETS[args.gpu]
    run = cls(a, ordering=args.ordering, scheduler="serial",
              gpu=gpu).factorize()
    rows = []
    for sched in SCHEDULER_NAMES:
        r = resimulate(run, sched, gpu,
                       merge_schur=args.solver == "superlu"
                       and sched == "trojan")
        rows.append([sched, r.kernel_count, round(r.mean_batch_size, 1),
                     r.total_time * 1e3, round(r.gflops, 2)])
    print(format_table(
        ["scheduler", "kernels", "tasks/kernel", "time (ms)", "GFLOPS"],
        rows, title=f"{args.solver} on {gpu.name}: scheduler comparison"))
    return 0


def cmd_scaleout(args) -> int:
    """Strong-scaling simulation on a cluster."""
    a = _load_matrix(args)
    if args.solver not in ("pangulu", "superlu"):
        raise SystemExit("scaleout supports pangulu and superlu")
    cls = SOLVERS[args.solver]
    run = cls(a, ordering=args.ordering, scheduler="serial").factorize()
    backend = ReplayBackend(run.stats)
    cluster = CLUSTERS[args.cluster]
    rows = []
    for g in (1, 2, 4, 8, 16):
        if g > args.gpus:
            break
        res = DistributedSimulator(run.dag, backend, cluster, g,
                                   args.policy).run()
        rows.append([g, res.makespan * 1e3, round(res.gflops, 2),
                     res.total_kernels, res.messages,
                     round(res.load_balance, 3)])
    print(format_table(
        ["GPUs", "time (ms)", "GFLOPS", "kernels", "messages", "balance"],
        rows,
        title=f"{args.solver}/{args.policy} on {cluster.name}"))
    return 0


def cmd_distsim(args) -> int:
    """One distributed simulation, optionally with fault injection.

    Records a communication trace whenever it is needed (``--verify``,
    ``--trace-out`` or ``--out``) and prints its digest — the CI chaos
    gate compares digests across repeated same-seed runs to prove the
    fault injection is deterministic.  With ``--verify`` the trace is
    also run through the TraceVerifier; violations exit 1.
    """
    import json

    from repro.cluster import FaultSpec, banded_block_dag
    from repro.core.executor import EstimateBackend
    from repro.verify.trace import verify_trace

    if args.synthetic:
        try:
            nb, bw = (int(x) for x in args.synthetic.lower().split("x"))
        except ValueError:
            raise SystemExit("--synthetic wants NBxBW, e.g. 128x8")
        dag, backend = banded_block_dag(nb, bw), EstimateBackend()
        workload = f"banded {nb}x{bw}"
    else:
        a = _load_matrix(args)
        if args.solver not in ("pangulu", "superlu"):
            raise SystemExit("distsim supports pangulu and superlu")
        run = SOLVERS[args.solver](a, ordering=args.ordering,
                                   scheduler="serial").factorize()
        dag, backend = run.dag, ReplayBackend(run.stats)
        workload = args.solver
    spec = None
    if args.faults:
        spec = FaultSpec.from_json(args.faults)
        if args.seed is not None:
            spec = spec.with_seed(args.seed)
    want_trace = bool(args.verify or args.trace_out or args.out)
    res = DistributedSimulator(
        dag, backend, CLUSTERS[args.cluster],
        args.gpus, args.policy, record_trace=want_trace,
        faults=spec, engine=args.engine, certify=args.certify).run()
    summary = res.summary()
    rows = []
    for k, v in summary.items():
        if isinstance(v, dict):  # the nested event-loop counters
            rows.extend([f"{k}.{kk}", vv] for kk, vv in v.items())
        else:
            rows.append([k, v])
    print(format_table(
        ["metric", "value"], rows,
        title=f"distsim: {workload}/{args.policy} on "
              f"{CLUSTERS[args.cluster].name}"))
    digest = res.trace.digest() if res.trace is not None else None
    if digest:
        print(f"trace digest: {digest}")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            json.dump(res.trace.to_dict(), fh)
        print(f"trace written to {args.trace_out}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump({
                "summary": summary,
                "trace_digest": digest,
                "faults": None if spec is None else spec.to_dict(),
            }, fh, indent=1)
        print(f"summary written to {args.out}")
    if args.verify:
        report = verify_trace(res.trace, subject="distsim-trace")
        print(report.describe())
        if report.violations:
            return 1
    return 0


def cmd_verify(args) -> int:
    """Static verification gate: linter, golden schedules, case files.

    With ``--plan`` the whole-plan analyzer certifies every golden
    configuration's distributed plan (owner-compute ranks on a
    ``--gpus``-wide grid) before any simulation — happens-before races,
    wait cycles, fault-protocol liveness and worst-case memory
    high-water marks — once fault-free plus once per ``--faults`` spec.

    Exit status: 0 when everything verifies clean, 1 when violations are
    found, 2 when an adversarial case misses one of its declared
    ``expect`` codes (a silently weakened analyzer).
    """
    import pathlib

    from repro.verify.lint import lint_paths

    if args.plan:
        from repro.cluster import FaultSpec, ProcessGrid
        from repro.verify.golden import golden_configs
        from repro.verify.plan import PlanSpec, verify_plan

        specs = [(None, None)]
        for path in args.faults or []:
            specs.append((path, FaultSpec.from_json(path)))
        grid = ProcessGrid(args.gpus)
        gpu = CLUSTERS[args.cluster].gpu
        total = 0
        for name, dag, _, _ in golden_configs():
            for label, spec in specs:
                subject = f"plan:{name}/{label or 'fault-free'}"
                report = verify_plan(
                    PlanSpec.from_dag(dag, grid, faults=spec, gpu=gpu),
                    subject=subject)
                print(report.describe())
                total += len(report.violations)
        return 1 if total else 0

    if args.case:
        from repro.verify.cases import run_case_file
        exit_code = 0
        for path in args.case:
            report, expected, missed = run_case_file(path)
            print(report.describe())
            if report.violations:
                tally = report.counts_by_code()
                print("  codes: " + ", ".join(
                    f"{c}×{tally[c]}" for c in sorted(tally)))
            if missed:
                print(f"  MISSED expected codes: {', '.join(missed)}")
                exit_code = 2
            elif report.violations:
                exit_code = max(exit_code, 1)
        return exit_code

    total = 0
    if not args.no_lint:
        roots = args.lint_root or [
            str(pathlib.Path(__file__).resolve().parent)]
        report = lint_paths(roots, subject="lint:" + ",".join(roots))
        print(report.describe())
        total += len(report.violations)
    if not args.no_golden:
        from repro.verify.golden import DEFAULT_GOLDEN_PATH, \
            verify_golden_file
        golden = pathlib.Path(args.golden) if args.golden \
            else DEFAULT_GOLDEN_PATH
        if golden.exists():
            report = verify_golden_file(golden)
            print(report.describe())
            total += len(report.violations)
        elif args.golden:
            raise SystemExit(f"golden file not found: {golden}")
        else:
            print(f"goldens: skipped ({golden} not present)")
    return 1 if total else 0


def cmd_serve(args) -> int:
    """Run the factorisation-as-a-service solver server (Ctrl-C stops)."""
    import asyncio

    from repro.serve import SolverServer

    async def _run() -> None:
        server = SolverServer(
            host=args.host, port=args.port,
            max_inflight=args.max_inflight, max_queue=args.max_queue,
            batch_window=args.batch_window,
            micro_batch=not args.no_micro_batch,
            cache_capacity=args.cache_capacity,
            default_deadline_ms=args.deadline_ms,
            session_ttl=args.session_ttl,
            max_sessions=args.max_sessions)
        await server.start()
        print(f"repro solver server on {server.host}:{server.port} "
              f"(max_inflight={server.max_inflight}, "
              f"queue={server.max_queue}, "
              f"batch_window={server.batch_window * 1e3:.1f}ms)",
              flush=True)
        await server.serve_until_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("server stopped")
    return 0


def cmd_client(args) -> int:
    """Drive a demo workload against a running server and print stats.

    The seed scenario of the serve subsystem: one cold factorize, a
    Newton-style refactorise loop (same pattern, perturbed values, one
    solve per step), then a burst of pipelined multi-RHS solves that
    exercises the server's cross-request micro-batching.
    """
    import time as _time

    from repro.serve import SolverClient

    a = _load_matrix(args)
    rng = np.random.default_rng(args.seed)
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    off = rows != a.indices
    with SolverClient(args.host, args.port) as client:
        client.ping()
        t0 = _time.perf_counter()
        info = client.factorize(a, solver=args.solver,
                                ordering=args.ordering)
        cold = _time.perf_counter() - t0
        session = info["session"]
        print(f"cold factorize: n={info['n']} fill={info['fill_nnz']} "
              f"{cold * 1e3:.1f}ms (fast_path={info['fast_path']})")
        worst = 0.0
        refact = []
        for _ in range(args.steps):
            data = a.data.copy()
            data[off] *= 1.0 + 0.05 * rng.standard_normal(int(off.sum()))
            t0 = _time.perf_counter()
            client.refactorize(session, data=data)
            refact.append(_time.perf_counter() - t0)
            step = CSRMatrix(a.shape, a.indptr, a.indices, data)
            x_true = rng.standard_normal(a.nrows)
            b = matvec(step, x_true)
            x = client.solve(session, b, refine=args.refine)
            worst = max(worst, float(np.linalg.norm(x - x_true)
                                     / np.linalg.norm(x_true)))
        if refact:
            print(f"refactorise loop: {args.steps} steps, "
                  f"mean {np.mean(refact) * 1e3:.1f}ms "
                  f"({cold / np.mean(refact):.1f}x faster than cold), "
                  f"worst relative error {worst:.2e}")
        bs = [rng.standard_normal(a.nrows) for _ in range(args.burst)]
        t0 = _time.perf_counter()
        client.solve_many(session, bs, batch_solve=True)
        burst = _time.perf_counter() - t0
        print(f"solve burst: {args.burst} pipelined requests in "
              f"{burst * 1e3:.1f}ms "
              f"({args.burst / burst:.1f} req/s)")
        stats = client.stats()
        m = stats["metrics"]
        rows_out = [["requests", sum(m["requests"].values())],
                    ["rejections", sum(m["rejections"].values()) or 0],
                    ["queue peak", m["queue"]["peak"]],
                    ["batch launches", m["batching"]["launches"]],
                    ["mean batch requests",
                     round(m["batching"]["mean_requests"], 2)],
                    ["session-cache hit rate",
                     round(m["session_cache"]["hit_rate"], 3)],
                    ["analysis-cache hit rate",
                     round(stats["analysis_cache"]["hit_rate"], 3)]]
        solve_lat = m["latency"].get("solve", {}).get("total")
        if solve_lat:
            rows_out.append(["solve p50 (ms)",
                            round(solve_lat["p50_ms"], 2)])
            rows_out.append(["solve p99 (ms)",
                            round(solve_lat["p99_ms"], 2)])
        print(format_table(["metric", "value"], rows_out,
                           title="server stats"))
        if args.shutdown:
            client.shutdown()
            print("server shutdown requested")
    return 0


def cmd_sweep(args) -> int:
    """Run the Figure-10 collection sweep, optionally multiprocess."""
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    items = fig10_items(count=args.count, base_size=args.base, gpu=args.gpu)
    outcome = run_sweep(items, workers=args.workers)
    print(fig10_table(outcome.rows, args.count))
    print()
    print(cache_stats_table(outcome))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Trojan Horse sparse-direct-solver reproduction",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("--matrix", choices=sorted(PAPER_MATRICES),
                        help="paper-matrix analogue name")
        sp.add_argument("--mtx", help="MatrixMarket file to load instead")
        sp.add_argument("--scale", type=float, default=1.0,
                        help="analogue size multiplier")
        sp.add_argument("--solver", default="pangulu",
                        choices=sorted(SOLVERS))
        sp.add_argument("--ordering", default="mindeg",
                        choices=ORDERING_METHODS)
        sp.add_argument("--gpu", default="rtx5090",
                        choices=sorted(GPU_PRESETS))

    sub.add_parser("info", help="list matrices, devices, policies")

    f = sub.add_parser("factor", help="factorise and report the schedule")
    common(f)
    f.add_argument("--scheduler", default="trojan",
                   choices=SCHEDULER_NAMES + ("dmdas",))
    f.add_argument("--solve", action="store_true",
                   help="verify with a random right-hand side")

    t = sub.add_parser(
        "sptrsv", help="batched solve phase vs the per-column oracle")
    common(t)
    t.add_argument("--nrhs", type=int, default=4,
                   help="number of right-hand-side columns")
    t.add_argument("--solve-scheduler", default="trojan",
                   choices=SOLVE_SCHEDULER_NAMES)

    pl = sub.add_parser(
        "parallel",
        help="multiprocess factor+solve over shared-memory tile pools, "
             "bit-checked against the in-process engine")
    common(pl)
    pl.add_argument("--workers", type=int, default=2,
                    help="worker-process count (= owner-compute ranks)")
    pl.add_argument("--scheduler", default="trojan",
                    choices=SCHEDULER_NAMES)
    pl.add_argument("--solve-scheduler", default="trojan",
                    choices=SOLVE_SCHEDULER_NAMES)
    pl.add_argument("--nrhs", type=int, default=1,
                    help="right-hand-side columns for the solve check")
    pl.add_argument("--no-certify", action="store_true",
                    help="skip the PlanVerifier certification gate")
    pl.add_argument("--log-dir", default=None,
                    help="directory for per-worker log files")
    pl.add_argument("--pin-blas", type=int, default=None, metavar="T",
                    help="spawn workers with BLAS pinned to T threads")

    c = sub.add_parser("compare", help="compare all schedulers")
    common(c)

    s = sub.add_parser("scaleout", help="cluster strong-scaling simulation")
    common(s)
    s.add_argument("--cluster", default="h100", choices=sorted(CLUSTERS))
    s.add_argument("--policy", default="trojan",
                   choices=("serial", "streams", "trojan"))
    s.add_argument("--gpus", type=int, default=16)

    d = sub.add_parser(
        "distsim",
        help="one cluster simulation, optionally fault-injected")
    common(d)
    d.add_argument("--cluster", default="h100", choices=sorted(CLUSTERS))
    d.add_argument("--policy", default="trojan",
                   choices=("serial", "streams", "trojan", "dmdas"))
    d.add_argument("--gpus", type=int, default=4)
    d.add_argument("--faults", default=None,
                   help="fault-spec JSON file (see tests/faults/)")
    d.add_argument("--seed", type=int, default=None,
                   help="override the fault spec's RNG seed")
    d.add_argument("--trace-out", default=None,
                   help="write the recorded trace as JSON")
    d.add_argument("--out", default=None,
                   help="write summary + trace digest as JSON")
    d.add_argument("--verify", action="store_true",
                   help="run the TraceVerifier on the recorded trace "
                        "(violations exit 1)")
    d.add_argument("--certify", action="store_true",
                   help="statically certify the whole plan (races, wait "
                        "cycles, liveness, memory) before simulating")
    d.add_argument("--engine", default=None,
                   choices=("arena", "legacy"),
                   help="event engine (default: arena, or "
                        "REPRO_DISTSIM_LEGACY=1 for the heap loop)")
    d.add_argument("--synthetic", default=None, metavar="NBxBW",
                   help="banded synthetic workload (e.g. 128x8) with "
                        "estimated costs — skips the matrix entirely, "
                        "for scale-out sweeps")

    srv = sub.add_parser(
        "serve", help="run the long-lived solver server")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7070,
                     help="TCP port (0 picks a free one)")
    srv.add_argument("--max-inflight", type=int, default=4,
                     help="concurrently executing numeric requests")
    srv.add_argument("--max-queue", type=int, default=64,
                     help="admission-queue bound (beyond: OVERLOADED)")
    srv.add_argument("--batch-window", type=float, default=0.002,
                     help="seconds a solve waits for micro-batch company")
    srv.add_argument("--no-micro-batch", action="store_true",
                     help="disable cross-request solve folding")
    srv.add_argument("--cache-capacity", type=int, default=32,
                     help="pattern-keyed analysis-cache entries")
    srv.add_argument("--deadline-ms", type=float, default=None,
                     help="default per-request deadline while queued")
    srv.add_argument("--session-ttl", type=float, default=None,
                     help="seconds an idle warm session survives "
                          "(default: forever)")
    srv.add_argument("--max-sessions", type=int, default=None,
                     help="resident-session cap; beyond it the "
                          "least-recently-used idle session is evicted")

    cl = sub.add_parser(
        "client", help="drive a demo workload against a running server")
    common(cl)
    cl.add_argument("--host", default="127.0.0.1")
    cl.add_argument("--port", type=int, default=7070)
    cl.add_argument("--steps", type=int, default=10,
                    help="Newton-style refactorise+solve steps")
    cl.add_argument("--burst", type=int, default=16,
                    help="pipelined solves in the micro-batch burst")
    cl.add_argument("--refine", type=int, default=1,
                    help="refinement sweeps per loop solve")
    cl.add_argument("--seed", type=int, default=0)
    cl.add_argument("--shutdown", action="store_true",
                    help="ask the server to exit afterwards")

    w = sub.add_parser(
        "sweep", help="Figure-10 collection sweep over a worker pool")
    w.add_argument("--count", type=int, default=200,
                   help="number of collection matrices (paper: 200)")
    w.add_argument("--base", type=int, default=220,
                   help="nominal matrix size the collection varies around")
    w.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: $REPRO_SWEEP_WORKERS "
                        f"or {default_workers()})")
    w.add_argument("--gpu", default="a100", choices=sorted(GPU_PRESETS))

    v = sub.add_parser(
        "verify",
        help="static verification: repo linter, golden schedules, cases")
    v.add_argument("--lint-root", action="append", default=None,
                   help="file/directory to lint (repeatable; default: the "
                        "installed repro package)")
    v.add_argument("--no-lint", action="store_true",
                   help="skip the AST linter")
    v.add_argument("--golden", default=None,
                   help="golden schedule file to statically verify "
                        "(default: tests/golden/trojan_batches.json when "
                        "present)")
    v.add_argument("--no-golden", action="store_true",
                   help="skip golden schedule verification")
    v.add_argument("--case", action="append", default=None,
                   help="adversarial case JSON to run (repeatable; runs "
                        "only the cases)")
    v.add_argument("--plan", action="store_true",
                   help="statically certify every golden configuration's "
                        "distributed plan (races, wait cycles, liveness, "
                        "memory high-water marks) before simulation")
    v.add_argument("--faults", action="append", default=None,
                   help="fault-spec JSON the plan certification composes "
                        "with (repeatable; used with --plan)")
    v.add_argument("--gpus", type=int, default=8,
                   help="process-grid width for --plan certification")
    v.add_argument("--cluster", default="h100", choices=sorted(CLUSTERS),
                   help="cluster preset supplying the per-rank memory "
                        "budget for --plan")
    return p


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "factor": cmd_factor,
        "sptrsv": cmd_sptrsv,
        "parallel": cmd_parallel,
        "compare": cmd_compare,
        "scaleout": cmd_scaleout,
        "distsim": cmd_distsim,
        "serve": cmd_serve,
        "client": cmd_client,
        "sweep": cmd_sweep,
        "verify": cmd_verify,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

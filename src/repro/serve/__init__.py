"""Factorisation-as-a-service: the long-lived solver server.

``repro.serve`` turns the library into a resident service that
amortises symbolic analysis (shared pattern-keyed cache), tile storage
(warm per-session :class:`~repro.solvers.tilepool.TileArena` pools and
lazily-built SpTRSV contexts) and kernel batching (cross-request
multi-RHS folding) across *requests* — the serving analogue of the
paper's aggregate-and-batch strategy.  See DESIGN.md §"Serving".

Entry points: ``python -m repro serve`` (server), ``python -m repro
client`` (demo workload driver), :class:`SolverClient` (library use),
:class:`BackgroundServer` (in-process server for tests and benches).
"""

from repro.serve.client import ServerError, SolverClient
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import ProtocolError, pack_message, read_message_sync
from repro.serve.server import BackgroundServer, ServeError, SolverServer

__all__ = [
    "BackgroundServer",
    "ProtocolError",
    "ServeError",
    "ServerError",
    "ServerMetrics",
    "SolverClient",
    "SolverServer",
    "pack_message",
    "read_message_sync",
]

"""Synchronous client for the solver server.

One TCP connection, length-prefixed JSON+binary frames (see
:mod:`repro.serve.protocol`).  Requests carry monotonically increasing
ids; normal calls are lock-step (send one, read one), while
:meth:`SolverClient.solve_many` pipelines several solve requests onto
the wire before reading any response — the deterministic way to land in
the server's same-session micro-batch window from a single client.
"""

from __future__ import annotations

import socket
import threading

import numpy as np

from repro.serve.protocol import (
    csr_arrays,
    pack_message,
    read_message_sync,
)


class ServerError(Exception):
    """An error response from the server, with its stable wire code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code


class SolverClient:
    """Blocking client for one server connection (context manager).

    Thread-safe per instance: the wire is guarded by a lock, so a
    client object can be shared, but sharing serialises requests —
    concurrent load generators should open one client per thread.
    """

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fh = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._next_id = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SolverClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # wire plumbing
    # ------------------------------------------------------------------
    def _send(self, header: dict, arrays: "dict | None" = None) -> int:
        rid = self._next_id
        self._next_id += 1
        header = dict(header, id=rid)
        self._fh.write(pack_message(header, arrays))
        self._fh.flush()
        return rid

    def _recv(self) -> tuple[dict, dict]:
        return read_message_sync(self._fh)

    @staticmethod
    def _raise_on_error(header: dict) -> dict:
        if not header.get("ok"):
            raise ServerError(header.get("error", "UNKNOWN"),
                              header.get("message", ""))
        return header

    def _request(self, header: dict, arrays: "dict | None" = None
                 ) -> tuple[dict, dict]:
        with self._lock:
            rid = self._send(header, arrays)
            resp, resp_arrays = self._recv()
        if resp.get("id") != rid:
            raise ServerError("PROTOCOL",
                              f"response id {resp.get('id')} for request "
                              f"{rid}")
        return self._raise_on_error(resp), resp_arrays

    # ------------------------------------------------------------------
    # the request vocabulary
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """Round-trip liveness check."""
        self._request({"op": "ping"})
        return True

    def analyze(self, a, solver: str = "pangulu", **options) -> dict:
        """Warm the server's analysis cache for this pattern."""
        header = {"op": "analyze", "solver": solver,
                  "shape": list(a.shape), **options}
        resp, _ = self._request(header, csr_arrays(a))
        return resp

    def factorize(self, a, solver: str = "pangulu",
                  deadline_ms: "float | None" = None, **options) -> dict:
        """Factorise (or fast-path refactorise a resident same-pattern
        session) and return the session id + schedule summary."""
        header = {"op": "factorize", "solver": solver,
                  "shape": list(a.shape), **options}
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        resp, _ = self._request(header, csr_arrays(a))
        return resp

    def refactorize(self, session: str, a=None, data=None,
                    deadline_ms: "float | None" = None) -> dict:
        """Value-only refactorisation of a resident session.

        Send either the full matrix ``a`` or just the new ``data``
        stream (aligned with the session's stored nonzeros) — the
        cheapest possible Newton-step request.
        """
        header: dict = {"op": "refactorize", "session": session}
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        if a is not None:
            header["shape"] = list(a.shape)
            arrays = csr_arrays(a)
        elif data is not None:
            arrays = {"data": np.asarray(data, dtype=np.float64)}
        else:
            raise ValueError("refactorize needs a matrix or a data array")
        resp, _ = self._request(header, arrays)
        return resp

    def solve(self, session: str, b: np.ndarray, refine: int = 0,
              batch_solve: "bool | None" = None,
              solve_scheduler: str = "trojan",
              deadline_ms: "float | None" = None) -> np.ndarray:
        """Solve against a resident session's warm factors."""
        header = self._solve_header(session, refine, batch_solve,
                                    solve_scheduler, deadline_ms)
        _, arrays = self._request(
            header, {"b": np.asarray(b, dtype=np.float64)})
        return arrays["x"]

    def solve_many(self, session: str, bs, refine: int = 0,
                   batch_solve: "bool | None" = None,
                   solve_scheduler: str = "trojan",
                   deadline_ms: "float | None" = None) -> list:
        """Pipeline several solves; returns solutions in request order.

        All requests hit the wire before any response is read, so on
        the server they land in one micro-batch window and (on the DAG
        path) fold into a single multi-RHS SpTRSV launch.
        """
        with self._lock:
            rids = [self._send(self._solve_header(
                session, refine, batch_solve, solve_scheduler,
                deadline_ms), {"b": np.asarray(b, dtype=np.float64)})
                for b in bs]
            by_id = {}
            for _ in rids:
                resp, arrays = self._recv()
                by_id[resp.get("id")] = (resp, arrays)
        out = []
        for rid in rids:
            resp, arrays = by_id[rid]
            self._raise_on_error(resp)
            out.append(arrays["x"])
        return out

    @staticmethod
    def _solve_header(session, refine, batch_solve, solve_scheduler,
                      deadline_ms) -> dict:
        header: dict = {"op": "solve", "session": session,
                        "refine": int(refine),
                        "solve_scheduler": solve_scheduler}
        if batch_solve is not None:
            header["batch_solve"] = bool(batch_solve)
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        return header

    def stats(self) -> dict:
        """The server's instrumentation snapshot."""
        resp, _ = self._request({"op": "stats"})
        return resp

    def shutdown(self) -> None:
        """Ask the server to stop accepting connections and exit."""
        self._request({"op": "shutdown"})

"""Length-prefixed JSON + binary wire protocol for the solver server.

One message = a 4-byte big-endian header length, the UTF-8 JSON header,
then the raw bytes of every array the header declares, concatenated in
declaration order.  The header carries the small structured fields (op,
request id, options, scalars); matrices and right-hand sides travel as
binary little-endian C-contiguous blobs described by ``arrays`` specs —
no base64 inflation, no JSON float round-tripping, so a solve response's
``x`` is the solver's bits exactly.

Both framing directions are symmetric; the asyncio server reads with
:func:`read_message` and the synchronous client with
:func:`read_message_sync` over a socket file object.
"""

from __future__ import annotations

import json
import struct

import numpy as np

#: 4-byte big-endian frame prefix (header byte count).
_LEN = struct.Struct(">I")

#: Upper bound on a JSON header, far above any real request.
MAX_HEADER_BYTES = 8 << 20

#: Upper bound on one declared array (1 GiB); a malformed or hostile
#: header cannot make the receiver allocate unbounded memory.
MAX_ARRAY_BYTES = 1 << 30

#: dtypes allowed on the wire (everything the solver exchanges).
WIRE_DTYPES = ("float64", "int64", "int32")


class ProtocolError(Exception):
    """Malformed frame, header, or array declaration."""


def _check_specs(specs) -> list:
    """Validate array declarations before any allocation happens."""
    if not isinstance(specs, list):
        raise ProtocolError("'arrays' must be a list of specs")
    out = []
    for spec in specs:
        name = spec.get("name")
        dtype = spec.get("dtype")
        shape = spec.get("shape")
        if not isinstance(name, str):
            raise ProtocolError("array spec without a name")
        if dtype not in WIRE_DTYPES:
            raise ProtocolError(f"array dtype {dtype!r} not allowed on "
                                f"the wire (allowed: {WIRE_DTYPES})")
        if (not isinstance(shape, list)
                or any((not isinstance(d, int)) or d < 0 for d in shape)):
            raise ProtocolError(f"bad shape for array {name!r}: {shape!r}")
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        if nbytes > MAX_ARRAY_BYTES:
            raise ProtocolError(f"array {name!r} exceeds the wire size cap")
        out.append((name, dtype, tuple(shape), nbytes))
    return out


def pack_message(header: dict, arrays: "dict[str, np.ndarray] | None" = None
                 ) -> bytes:
    """Serialise one message (header + arrays) into wire bytes."""
    arrays = arrays or {}
    specs = []
    blobs = []
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        if str(arr.dtype) not in WIRE_DTYPES:
            raise ProtocolError(f"array {name!r} has non-wire dtype "
                                f"{arr.dtype}")
        specs.append({"name": name, "dtype": str(arr.dtype),
                      "shape": list(arr.shape)})
        blobs.append(arr.tobytes())
    head = dict(header)
    head["arrays"] = specs
    hb = json.dumps(head, separators=(",", ":")).encode("utf-8")
    if len(hb) > MAX_HEADER_BYTES:
        raise ProtocolError("header exceeds the wire size cap")
    return b"".join([_LEN.pack(len(hb)), hb] + blobs)


def _decode(hb: bytes, payload_of) -> tuple[dict, dict]:
    """Shared header decode + array materialisation.

    ``payload_of(nbytes)`` returns exactly that many payload bytes; the
    sync and asyncio readers differ only in how they produce them.
    """
    try:
        header = json.loads(hb.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("header must be a JSON object")
    arrays = {}
    for name, dtype, shape, nbytes in _check_specs(header.pop("arrays", [])):
        raw = payload_of(nbytes)
        arrays[name] = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    return header, arrays


async def read_message(reader) -> tuple[dict, dict]:
    """Read one message from an ``asyncio.StreamReader``.

    Raises ``EOFError`` on a clean end-of-stream before any frame byte,
    :class:`ProtocolError` on malformed frames.
    """
    prefix = await reader.read(_LEN.size)
    if not prefix:
        raise EOFError("connection closed")
    if len(prefix) < _LEN.size:
        prefix += await reader.readexactly(_LEN.size - len(prefix))
    (hlen,) = _LEN.unpack(prefix)
    if hlen > MAX_HEADER_BYTES:
        raise ProtocolError("header exceeds the wire size cap")
    hb = await reader.readexactly(hlen)
    try:
        header = json.loads(hb.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("header must be a JSON object")
    arrays = {}
    for name, dtype, shape, nbytes in _check_specs(header.pop("arrays", [])):
        raw = await reader.readexactly(nbytes)
        arrays[name] = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    return header, arrays


def read_message_sync(fh) -> tuple[dict, dict]:
    """Read one message from a blocking binary file object (socket file)."""

    def _exactly(n: int) -> bytes:
        buf = b""
        while len(buf) < n:
            chunk = fh.read(n - len(buf))
            if not chunk:
                raise EOFError("connection closed")
            buf += chunk
        return buf

    prefix = fh.read(_LEN.size)
    if not prefix:
        raise EOFError("connection closed")
    if len(prefix) < _LEN.size:
        prefix += _exactly(_LEN.size - len(prefix))
    (hlen,) = _LEN.unpack(prefix)
    if hlen > MAX_HEADER_BYTES:
        raise ProtocolError("header exceeds the wire size cap")
    return _decode(_exactly(hlen), _exactly)


# ----------------------------------------------------------------------
# matrix framing helpers
# ----------------------------------------------------------------------
def csr_arrays(a) -> dict:
    """The three wire arrays of one CSR matrix."""
    return {"indptr": a.indptr, "indices": a.indices, "data": a.data}


def csr_from_arrays(header: dict, arrays: dict):
    """Rebuild a CSR matrix from a request's ``shape`` + arrays."""
    from repro.sparse import CSRMatrix

    shape = header.get("shape")
    if (not isinstance(shape, list) or len(shape) != 2
            or any((not isinstance(d, int)) or d <= 0 for d in shape)):
        raise ProtocolError(f"bad matrix shape: {shape!r}")
    for name in ("indptr", "indices", "data"):
        if name not in arrays:
            raise ProtocolError(f"matrix request missing array {name!r}")
    indptr = arrays["indptr"]
    indices = arrays["indices"]
    data = arrays["data"]
    if indptr.ndim != 1 or indptr.size != shape[0] + 1:
        raise ProtocolError("indptr does not cover the declared shape")
    if indices.ndim != 1 or data.ndim != 1 or indices.size != data.size:
        raise ProtocolError("indices/data are not aligned 1-D arrays")
    if indices.size != int(indptr[-1]):
        raise ProtocolError("indptr does not address the nonzero stream")
    return CSRMatrix((shape[0], shape[1]), indptr, indices, data)

"""End-to-end instrumentation for the solver server.

Everything the ``stats`` request surfaces lives here: per-op request
counters, per-phase latency windows (queue wait, execute, total) with
percentile summaries, the admission-queue depth gauge, rejection
tallies, and the micro-batch occupancy record (how many requests and
RHS columns each folded SpTRSV launch carried).

The server mutates metrics from the asyncio event loop *and* reads them
from worker threads finishing ``asyncio.to_thread`` work, so every
compound update takes the internal lock — same discipline as
:class:`~repro.core.analysis_cache.AnalysisCache`.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

#: Latency observations retained per (op, phase) window; old samples
#: roll off so a long-lived server's snapshot stays O(window).
DEFAULT_WINDOW = 4096

#: Latency phases every admitted request passes through.
PHASES = ("queue", "execute", "total")


def _percentiles(samples) -> dict:
    """p50/p90/p99 + mean/max summary of one latency window, in ms."""
    arr = np.asarray(samples, dtype=np.float64) * 1e3
    return {
        "count": int(arr.size),
        "mean_ms": float(arr.mean()),
        "p50_ms": float(np.percentile(arr, 50)),
        "p90_ms": float(np.percentile(arr, 90)),
        "p99_ms": float(np.percentile(arr, 99)),
        "max_ms": float(arr.max()),
    }


class ServerMetrics:
    """Thread-safe counters, gauges and latency windows."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self._lock = threading.Lock()
        self._window = int(window)
        self._requests: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self._rejections: dict[str, int] = {}
        self._latency: dict[tuple[str, str], deque] = {}
        self._queue_depth = 0
        self._queue_peak = 0
        self._batch_requests: deque = deque(maxlen=window)
        self._batch_columns: deque = deque(maxlen=window)
        self._session_hits = 0
        self._session_misses = 0
        self._session_evictions: dict[str, int] = {}

    # ------------------------------------------------------------------
    # request lifecycle
    # ------------------------------------------------------------------
    def request(self, op: str) -> None:
        """Count one received request."""
        with self._lock:
            self._requests[op] = self._requests.get(op, 0) + 1

    def error(self, op: str) -> None:
        """Count one request that finished with an error response."""
        with self._lock:
            self._errors[op] = self._errors.get(op, 0) + 1

    def rejection(self, reason: str) -> None:
        """Count one admission rejection (``overloaded``/``deadline``)."""
        with self._lock:
            self._rejections[reason] = self._rejections.get(reason, 0) + 1

    def observe(self, op: str, phase: str, seconds: float) -> None:
        """Record one latency sample for ``(op, phase)``."""
        with self._lock:
            key = (op, phase)
            dq = self._latency.get(key)
            if dq is None:
                dq = self._latency[key] = deque(maxlen=self._window)
            dq.append(float(seconds))

    # ------------------------------------------------------------------
    # gauges and batch accounting
    # ------------------------------------------------------------------
    def queue_enter(self) -> None:
        """A request joined the admission queue."""
        with self._lock:
            self._queue_depth += 1
            self._queue_peak = max(self._queue_peak, self._queue_depth)

    def queue_exit(self) -> None:
        """A request left the admission queue (admitted or rejected)."""
        with self._lock:
            self._queue_depth -= 1

    @property
    def queue_depth(self) -> int:
        """Current number of queued-or-running admitted requests."""
        with self._lock:
            return self._queue_depth

    def batch(self, requests: int, columns: int) -> None:
        """Record one micro-batched solve launch's occupancy."""
        with self._lock:
            self._batch_requests.append(int(requests))
            self._batch_columns.append(int(columns))

    def session_lookup(self, hit: bool) -> None:
        """Record one pattern-keyed session-cache lookup."""
        with self._lock:
            if hit:
                self._session_hits += 1
            else:
                self._session_misses += 1

    def session_evicted(self, reason: str) -> None:
        """Record one warm-session eviction (``ttl``/``lru``)."""
        with self._lock:
            self._session_evictions[reason] = (
                self._session_evictions.get(reason, 0) + 1)

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One consistent JSON-serialisable view of everything."""
        with self._lock:
            latency: dict[str, dict] = {}
            for (op, phase), dq in self._latency.items():
                if dq:
                    latency.setdefault(op, {})[phase] = _percentiles(dq)
            session_total = self._session_hits + self._session_misses
            breq = list(self._batch_requests)
            bcol = list(self._batch_columns)
            return {
                "requests": dict(self._requests),
                "errors": dict(self._errors),
                "rejections": dict(self._rejections),
                "latency": latency,
                "queue": {"depth": self._queue_depth,
                          "peak": self._queue_peak},
                "batching": {
                    "launches": len(breq),
                    "mean_requests": (float(np.mean(breq)) if breq else 0.0),
                    "mean_columns": (float(np.mean(bcol)) if bcol else 0.0),
                    "max_requests": (max(breq) if breq else 0),
                    "max_columns": (max(bcol) if bcol else 0),
                },
                "session_cache": {
                    "hits": self._session_hits,
                    "misses": self._session_misses,
                    "hit_rate": (self._session_hits / session_total
                                 if session_total else 0.0),
                    "evictions": dict(self._session_evictions),
                },
            }

"""Factorisation-as-a-service: the long-lived asyncio solver server.

The paper's thesis is amortisation — aggregate small irregular work and
batch it so fixed costs are paid once.  This server is the serving-side
analogue: one resident process amortises the *symbolic analysis* (the
shared thread-safe :class:`~repro.core.analysis_cache.AnalysisCache`),
the *tile storage* (each session's factor tiles stay stamped in the
pooled :class:`~repro.solvers.tilepool.TileArena`), and the *kernel
batching* (same-pattern solve requests arriving within a small window
fold into one multi-RHS SpTRSV launch) across requests instead of
across tasks.

Request model
-------------
Sessions are pattern-keyed: a ``factorize`` whose (pattern, solver
config) matches a resident session takes the refactorise fast path —
re-stamp tiles, re-run numeric tasks, skip ordering + symbolic — which
is the Newton-loop traffic shape of ``examples/circuit_simulation.py``.
``solve`` requests hit the session's warm, lazily-built SpTRSV contexts.
Admission control (a max-inflight bound over a bounded queue, plus
per-request deadlines honoured while queued) turns overload into fast
``OVERLOADED``/``DEADLINE`` rejections instead of collapse.

Execution model
---------------
The event loop never runs numerics: admitted work executes in worker
threads (``asyncio.to_thread``) while a per-session asyncio lock
serialises same-session mutations.  Different sessions factorise and
solve concurrently; the GIL-bound interpreter still overlaps the NumPy
kernels' C time.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np

from repro.core.analysis_cache import AnalysisCache, pattern_digest
from repro.kernels.batched import batch_solve_enabled
from repro.ordering import compute_ordering
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    ProtocolError,
    csr_from_arrays,
    pack_message,
    read_message,
)
from repro.solvers import SOLVER_REGISTRY
from repro.solvers.engine import NumericEngine
from repro.solvers.sptrsv import fold_rhs, unfold_rhs
from repro.sparse import CSRMatrix, permute_symmetric

#: ops that skip admission control (cheap, metadata-only)
_UNGATED_OPS = ("ping", "stats", "shutdown")


class ServeError(Exception):
    """A request-level failure with a stable wire code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


class _Session:
    """One resident (pattern, solver-config) factorisation."""

    def __init__(self, key: str, solver, a: CSRMatrix):
        self.key = key
        self.solver = solver
        self.a = a
        self.lock = asyncio.Lock()
        self.factorizes = 1
        self.refactorizes = 0
        self.solves = 0
        self.last_used = time.perf_counter()

    def touch(self) -> None:
        """Mark the session recently used (defers TTL/LRU eviction)."""
        self.last_used = time.perf_counter()

    @property
    def result(self):
        return self.solver.result


def _solver_options(header: dict) -> tuple[str, dict]:
    """Validated solver construction options from a request header."""
    name = header.get("solver", "pangulu")
    if name not in SOLVER_REGISTRY:
        raise ServeError("BAD_REQUEST",
                         f"unknown solver {name!r} "
                         f"(available: {sorted(SOLVER_REGISTRY)})")
    opts = {"ordering": header.get("ordering", "mindeg"),
            "scheduler": header.get("scheduler", "trojan")}
    if header.get("block_size") is not None:
        if name != "pangulu":
            raise ServeError("BAD_REQUEST",
                             "block_size applies to the pangulu solver")
        opts["block_size"] = int(header["block_size"])
    return name, opts


def _session_key(a: CSRMatrix, solver: str, opts: dict) -> str:
    """Pattern digest + solver config — the session identity."""
    cfg = ":".join(f"{k}={opts[k]}" for k in sorted(opts))
    return f"{pattern_digest(a)}:{solver}:{cfg}"


class SolverServer:
    """The long-lived solver service.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    max_inflight:
        Admitted numeric requests executing concurrently; everything
        beyond waits in the admission queue.
    max_queue:
        Bound on the admission queue; requests arriving with the queue
        full are rejected ``OVERLOADED`` immediately (backpressure).
    batch_window:
        Seconds a foldable solve request waits for same-session company
        before its micro-batched launch flushes.
    micro_batch:
        Fold same-session DAG-path solves into one multi-RHS launch.
        CSR-path solves always run solo: only the DAG path carries the
        bitwise column-equivariance contract folding relies on.
    cache_capacity:
        Entries in the shared pattern-keyed analysis cache.
    default_deadline_ms:
        Deadline applied to requests that do not carry their own.
    session_ttl:
        Seconds a warm session may sit idle before eviction (``None``
        keeps sessions forever).  Evicted sessions release their tile
        arenas; a later same-pattern ``factorize`` simply rebuilds.
    max_sessions:
        Resident-session cap; inserting beyond it evicts the
        least-recently-used idle session (``None`` = unbounded).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 max_inflight: int = 4, max_queue: int = 64,
                 batch_window: float = 0.002, micro_batch: bool = True,
                 cache_capacity: int = 32,
                 default_deadline_ms: float | None = None,
                 session_ttl: float | None = None,
                 max_sessions: int | None = None):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if session_ttl is not None and session_ttl <= 0:
            raise ValueError("session_ttl must be positive")
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.host = host
        self.port = port
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.batch_window = float(batch_window)
        self.micro_batch = bool(micro_batch)
        self.default_deadline_ms = default_deadline_ms
        self.session_ttl = session_ttl
        self.max_sessions = max_sessions
        self.cache = AnalysisCache(capacity=cache_capacity)
        self.metrics = ServerMetrics()
        self.sessions: dict[str, _Session] = {}
        self._sem: asyncio.Semaphore | None = None
        self._queued = 0
        self._pending: dict[tuple, list] = {}
        self._creation_locks: dict[str, asyncio.Lock] = {}
        self._server: asyncio.base_events.Server | None = None
        self._stop = None
        self._started = time.perf_counter()
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_writers: set = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._sem = asyncio.Semaphore(self.max_inflight)
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.perf_counter()

    async def serve_until_stopped(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`stop`)."""
        await self._stop.wait()
        await self._close()

    def stop(self) -> None:
        """Request shutdown (safe from the server's own event loop)."""
        self._stop.set()

    async def _close(self) -> None:
        """Stop listening and drain open connections cleanly.

        Closing each client transport unblocks its handler's pending
        read with EOF, so handlers exit normally instead of being
        cancelled mid-write by event-loop teardown."""
        self._server.close()
        await self._server.wait_closed()
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader, writer) -> None:
        wlock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            while True:
                try:
                    header, arrays = await read_message(reader)
                except (EOFError, ConnectionResetError,
                        asyncio.IncompleteReadError):
                    break
                except ProtocolError as exc:
                    await self._write(writer, wlock,
                                      {"ok": False, "id": None,
                                       "error": "PROTOCOL",
                                       "message": str(exc)}, {})
                    break
                task = asyncio.create_task(
                    self._serve_one(header, arrays, writer, wlock))
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        finally:
            self._conn_writers.discard(writer)
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._conn_tasks.discard(task)

    async def _write(self, writer, wlock, header: dict, arrays: dict) -> None:
        async with wlock:
            try:
                writer.write(pack_message(header, arrays))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away; nothing left to deliver

    async def _serve_one(self, header, arrays, writer, wlock) -> None:
        op = header.get("op", "<missing>")
        rid = header.get("id")
        t0 = time.perf_counter()
        self.metrics.request(op)
        resp_arrays: dict = {}
        try:
            resp, resp_arrays = await self._dispatch(op, header, arrays, t0)
            resp = {"ok": True, "id": rid, **resp}
        except ServeError as exc:
            self.metrics.error(op)
            resp = {"ok": False, "id": rid, "error": exc.code,
                    "message": str(exc)}
        except Exception as exc:  # noqa: BLE001 — the connection survives
            self.metrics.error(op)
            resp = {"ok": False, "id": rid, "error": "INTERNAL",
                    "message": f"{type(exc).__name__}: {exc}"}
        self.metrics.observe(op, "total", time.perf_counter() - t0)
        await self._write(writer, wlock, resp, resp_arrays)

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def _deadline_of(self, header: dict, t0: float) -> float | None:
        """Absolute admission deadline (perf_counter seconds) or None."""
        ms = header.get("deadline_ms", self.default_deadline_ms)
        if ms is None:
            return None
        ms = float(ms)
        if ms <= 0:
            raise ServeError("BAD_REQUEST", "deadline_ms must be positive")
        return t0 + ms / 1e3

    async def _admit(self, op: str, deadline: float | None) -> float:
        """Wait for an execution slot; returns the queue wait in seconds.

        Enforces the queue bound (immediate ``OVERLOADED``) and the
        request deadline *while queued* (``DEADLINE``): once admitted, a
        request runs to completion — killing half-done numeric work
        would leave a session's tiles in an undefined state.
        """
        if self._queued >= self.max_queue:
            self.metrics.rejection("overloaded")
            raise ServeError("OVERLOADED",
                             f"admission queue full ({self.max_queue})")
        self._queued += 1
        self.metrics.queue_enter()
        t0 = time.perf_counter()
        try:
            timeout = None if deadline is None else deadline - t0
            if timeout is not None and timeout <= 0:
                self.metrics.rejection("deadline")
                raise ServeError("DEADLINE", "deadline expired while queued")
            try:
                await asyncio.wait_for(self._sem.acquire(), timeout)
            except asyncio.TimeoutError:
                self.metrics.rejection("deadline")
                raise ServeError("DEADLINE",
                                 "deadline expired while queued") from None
        finally:
            self._queued -= 1
            self.metrics.queue_exit()
        wait = time.perf_counter() - t0
        self.metrics.observe(op, "queue", wait)
        return wait

    async def _run_admitted(self, op: str, header: dict, t0: float,
                            session: "_Session | None", fn):
        """Admission → (session lock) → worker thread → release."""
        await self._admit(op, self._deadline_of(header, t0))
        t1 = time.perf_counter()
        try:
            if session is not None:
                async with session.lock:
                    out = await asyncio.to_thread(fn)
            else:
                out = await asyncio.to_thread(fn)
        finally:
            self._sem.release()
        self.metrics.observe(op, "execute", time.perf_counter() - t1)
        return out

    # ------------------------------------------------------------------
    # session eviction
    # ------------------------------------------------------------------
    def _evict(self, session: "_Session", reason: str) -> None:
        self.sessions.pop(session.key, None)
        self._creation_locks.pop(session.key, None)
        self.metrics.session_evicted(reason)

    def _evict_idle(self) -> None:
        """TTL sweep: drop sessions idle past ``session_ttl``.

        Runs at dispatch time (O(sessions), no timers to leak).  A
        session whose lock is held is mid-request — skipped; it is
        re-examined on the next sweep with a fresh ``last_used``.
        """
        if self.session_ttl is None or not self.sessions:
            return
        cutoff = time.perf_counter() - self.session_ttl
        for session in [s for s in self.sessions.values()
                        if s.last_used < cutoff]:
            if not session.lock.locked():
                self._evict(session, "ttl")

    def _enforce_session_cap(self) -> None:
        """LRU sweep after an insert: shed beyond ``max_sessions``.

        Locked (mid-request) sessions are never shed, so the cap can be
        transiently exceeded while every resident session is executing.
        """
        if self.max_sessions is None:
            return
        excess = len(self.sessions) - self.max_sessions
        if excess <= 0:
            return
        for session in sorted(self.sessions.values(),
                              key=lambda s: s.last_used):
            if excess <= 0:
                break
            if not session.lock.locked():
                self._evict(session, "lru")
                excess -= 1

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, op, header, arrays, t0):
        self._evict_idle()
        if op == "ping":
            return {}, {}
        if op == "stats":
            return self._op_stats(), {}
        if op == "shutdown":
            self._stop.set()
            return {}, {}
        if op == "analyze":
            return await self._op_analyze(header, arrays, t0)
        if op == "factorize":
            return await self._op_factorize(header, arrays, t0)
        if op == "refactorize":
            return await self._op_refactorize(header, arrays, t0)
        if op == "solve":
            return await self._op_solve(header, arrays, t0)
        raise ServeError("BAD_REQUEST", f"unknown op {op!r}")

    # -- analyze -------------------------------------------------------
    async def _op_analyze(self, header, arrays, t0):
        """Warm the analysis cache for a pattern without factorising.

        Values are optional — the symbolic products depend only on the
        pattern, so ordering, element fill, block fill and the task DAG
        are computed (through the shared cache) on a ones-valued stand-in
        and every later same-pattern ``factorize`` starts warm.
        """
        if "data" not in arrays and "indices" in arrays:
            arrays = dict(arrays)
            arrays["data"] = np.ones(arrays["indices"].size)
        a = self._matrix_of(header, arrays)
        solver_name, opts = _solver_options(header)
        key = _session_key(a, solver_name, opts)

        def work():
            cls = SOLVER_REGISTRY[solver_name]
            solver = cls(a, analysis_cache=self.cache,
                         **{k: v for k, v in opts.items()
                            if k != "scheduler"})
            perm = compute_ordering(a, solver.ordering)
            permuted = permute_symmetric(a, perm)
            part, fill = solver._build_partition(permuted)
            engine = NumericEngine(permuted, part,
                                   sparse_tiles=solver.sparse_tiles,
                                   fill=fill, cache=self.cache)
            return engine.fill.nnz_lu, engine.dag.n_tasks

        fill_nnz, n_tasks = await self._run_admitted(
            "analyze", header, t0, None, work)
        return {"session": key, "n": a.nrows, "nnz": a.nnz,
                "fill_nnz": int(fill_nnz), "tasks": int(n_tasks),
                "analysis_cache": self.cache.stats()}, {}

    # -- factorize / refactorize ---------------------------------------
    def _matrix_of(self, header, arrays) -> CSRMatrix:
        try:
            return csr_from_arrays(header, arrays)
        except ProtocolError as exc:
            raise ServeError("BAD_REQUEST", str(exc)) from exc

    async def _op_factorize(self, header, arrays, t0):
        a = self._matrix_of(header, arrays)
        solver_name, opts = _solver_options(header)
        key = _session_key(a, solver_name, opts)
        allow_fast = bool(header.get("fast_path", True))
        lock = self._creation_locks.setdefault(key, asyncio.Lock())
        async with lock:
            session = self.sessions.get(key)
            if session is not None and allow_fast:
                self.metrics.session_lookup(hit=True)
                session.touch()
                return await self._refactorize_into(
                    session, a, header, t0, op="factorize", fast_path=True)
            self.metrics.session_lookup(hit=False)

            def work():
                cls = SOLVER_REGISTRY[solver_name]
                solver = cls(a, analysis_cache=self.cache, **opts)
                t = time.perf_counter()
                solver.factorize()
                return solver, time.perf_counter() - t

            solver, seconds = await self._run_admitted(
                "factorize", header, t0, None, work)
            session = _Session(key, solver, a)
            self.sessions[key] = session
            self._enforce_session_cap()
        return self._factor_response(session, seconds, fast_path=False), {}

    async def _op_refactorize(self, header, arrays, t0):
        session = self._session_of(header)
        if "indptr" in arrays:
            a = self._matrix_of(header, arrays)
        elif "data" in arrays:
            data = arrays["data"]
            if data.ndim != 1 or data.size != session.a.nnz:
                raise ServeError("BAD_REQUEST",
                                 "data-only refactorize must carry one "
                                 "value per stored nonzero")
            a = CSRMatrix(session.a.shape, session.a.indptr,
                          session.a.indices, data)
        else:
            raise ServeError("BAD_REQUEST",
                             "refactorize needs a matrix or a data array")
        return await self._refactorize_into(session, a, header, t0,
                                            op="refactorize",
                                            fast_path=True)

    async def _refactorize_into(self, session, a, header, t0, op, fast_path):
        if a.shape != session.a.shape or not (
                np.array_equal(a.indptr, session.a.indptr)
                and np.array_equal(a.indices, session.a.indices)):
            raise ServeError("PATTERN_MISMATCH",
                             "matrix pattern differs from the session's")

        def work():
            t = time.perf_counter()
            session.solver.refactorize(a)
            # Re-pin the session's analysis products in the shared
            # cache: warm traffic keeps its pattern LRU-fresh (cold
            # patterns are evicted first) and, if the entry was ever
            # evicted, the still-live triple is re-inserted for free.
            engine = session.solver._engine
            self.cache.fill_for(engine.a, lambda: engine.fill)
            self.cache.block_analysis_for(
                engine.a, engine.part, engine.sparse_tiles,
                lambda: (engine.bfill, engine.tile_nnz, engine.dag))
            return time.perf_counter() - t

        seconds = await self._run_admitted(op, header, t0, session, work)
        session.a = a
        session.refactorizes += 1
        session.touch()
        return self._factor_response(session, seconds, fast_path), {}

    def _factor_response(self, session, seconds, fast_path):
        res = session.result
        s = res.schedule
        return {
            "session": session.key,
            "fast_path": bool(fast_path),
            "n": session.a.nrows,
            "nnz": session.a.nnz,
            "fill_nnz": int(res.fill_nnz),
            "seconds": seconds,
            "phase_seconds": dict(res.phase_seconds),
            "schedule": {"tasks": s.task_count, "kernels": s.kernel_count,
                         "sim_time_ms": s.total_time * 1e3,
                         "gflops": s.gflops},
        }

    def _session_of(self, header) -> _Session:
        key = header.get("session")
        session = self.sessions.get(key)
        if session is None:
            self.metrics.session_lookup(hit=False)
            raise ServeError("UNKNOWN_SESSION",
                             f"no resident session {key!r} — factorize "
                             "first")
        self.metrics.session_lookup(hit=True)
        session.touch()
        return session

    # -- solve ---------------------------------------------------------
    async def _op_solve(self, header, arrays, t0):
        session = self._session_of(header)
        b = arrays.get("b")
        if b is None or b.ndim not in (1, 2):
            raise ServeError("BAD_REQUEST",
                             "solve needs a 1-D or 2-D array 'b'")
        if b.shape[0] != session.a.nrows:
            raise ServeError("BAD_REQUEST",
                             f"b has {b.shape[0]} rows, system has "
                             f"{session.a.nrows}")
        refine = int(header.get("refine", 0))
        if refine < 0:
            raise ServeError("BAD_REQUEST", "refine must be >= 0")
        scheduler = header.get("solve_scheduler", "trojan")
        batch_solve = header.get("batch_solve")
        use_dag = (batch_solve_enabled() if batch_solve is None
                   else bool(batch_solve))
        if self.micro_batch and use_dag:
            x, folded = await self._solve_batched(
                session, b, refine, scheduler, header, t0)
        else:
            def work():
                session.solves += 1
                return session.result.solve(
                    b, refine=refine, a=session.a, batch_solve=use_dag,
                    solve_scheduler=scheduler)

            x = await self._run_admitted("solve", header, t0, session, work)
            folded = 1
        return ({"session": session.key, "nrhs": 1 if b.ndim == 1
                 else b.shape[1], "refine": refine, "batched_with": folded,
                 "path": "dag" if use_dag else "csr"}, {"x": x})

    async def _solve_batched(self, session, b, refine, scheduler,
                             header, t0):
        """Enqueue into the session's fold group and await the launch.

        The first request of a group arms a flush ``batch_window``
        seconds out; everything that joins the group before the flush
        shares one multi-RHS DAG solve.  Folding is bit-safe because
        the DAG path is bitwise column-equivariant, and refinement
        folds too: 2-D :func:`~repro.sparse.ops.matvec` is bitwise
        column-equivariant as well (the frontline bug this PR fixed).
        """
        loop = asyncio.get_running_loop()
        key = (session.key, refine, scheduler)
        fut = loop.create_future()
        group = self._pending.get(key)
        entry = (fut, b, self._deadline_of(header, t0))
        if group is None:
            self._pending[key] = [entry]
            loop.call_later(
                self.batch_window,
                lambda: asyncio.ensure_future(self._flush(key, session)))
        else:
            group.append(entry)
        return await fut

    async def _flush(self, key, session) -> None:
        group = self._pending.pop(key, None)
        if not group:
            return
        _, refine, scheduler = key
        try:
            await self._admit("solve", None)
        except ServeError as exc:
            for fut, _, _ in group:
                if not fut.done():
                    fut.set_exception(exc)
            return
        try:
            now = time.perf_counter()
            live = []
            for fut, b, deadline in group:
                if deadline is not None and now > deadline:
                    self.metrics.rejection("deadline")
                    fut.set_exception(ServeError(
                        "DEADLINE", "deadline expired while queued"))
                else:
                    live.append((fut, b))
            if not live:
                return
            folded, splits = fold_rhs([b for _, b in live])
            t1 = time.perf_counter()

            def work():
                session.solves += len(live)
                return session.result.solve(
                    folded, refine=refine, a=session.a, batch_solve=True,
                    solve_scheduler=scheduler)

            async with session.lock:
                x2 = await asyncio.to_thread(work)
            self.metrics.observe("solve", "execute",
                                 time.perf_counter() - t1)
            self.metrics.batch(requests=len(live),
                               columns=folded.shape[1])
            for (fut, _), x in zip(live, unfold_rhs(x2, splits)):
                if not fut.done():
                    fut.set_result((x, len(live)))
        except Exception as exc:  # noqa: BLE001 — fail the waiters, not the loop
            for fut, *_ in group:
                if not fut.done():
                    fut.set_exception(exc)
        finally:
            self._sem.release()

    # -- stats ---------------------------------------------------------
    def _op_stats(self) -> dict:
        return {
            "uptime_s": time.perf_counter() - self._started,
            "metrics": self.metrics.snapshot(),
            "analysis_cache": self.cache.stats(),
            "config": {"max_inflight": self.max_inflight,
                       "max_queue": self.max_queue,
                       "batch_window": self.batch_window,
                       "micro_batch": self.micro_batch,
                       "session_ttl": self.session_ttl,
                       "max_sessions": self.max_sessions},
            "sessions": [
                {"session": s.key, "n": s.a.nrows, "nnz": s.a.nnz,
                 "solver": s.solver.solver_name,
                 "refactorizes": s.refactorizes, "solves": s.solves,
                 "idle_s": time.perf_counter() - s.last_used}
                for s in self.sessions.values()
            ],
        }


class BackgroundServer:
    """A :class:`SolverServer` on its own event-loop thread.

    The shape tests, benches and the CI gate use: start in-process,
    read ``host``/``port``, drive it with the synchronous client, stop.

    >>> with BackgroundServer(max_inflight=2) as bg:
    ...     client = SolverClient(bg.host, bg.port)
    """

    def __init__(self, **server_kwargs):
        self._kwargs = server_kwargs
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self.server: SolverServer | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 — surfaced via start()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.server = SolverServer(**self._kwargs)
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.serve_until_stopped()

    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        if self.server is None or self._loop is None:
            raise RuntimeError("server failed to start within 30s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.stop)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

"""Aggregate-stage Module 1: the Prioritizer (paper §3.3).

Holds the pool of *ready* tasks (all dependencies satisfied), ranks them,
and classifies each as urgent (on the critical path → go straight to the
Collector) or deferrable (→ Container).  Urgency combines two signals
from the paper: position on the critical path (computed statically as
longest-path-to-sink) and distance of the task's tile to the main
diagonal.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.dag import TaskDAG
from repro.core.task import Task


class Prioritizer:
    """Ready-task pool with urgency classification.

    Parameters
    ----------
    dag:
        The task DAG (used for task metadata).
    cp_lengths:
        Longest-path-to-sink per task
        (:meth:`repro.core.dag.TaskDAG.critical_path_lengths`).
    critical_slack:
        A ready task is *urgent* when its critical-path length is within
        ``critical_slack`` of the longest among currently-ready tasks.
        0 reproduces the paper's strict "on the critical path" rule.
    """

    def __init__(self, dag: TaskDAG, cp_lengths: np.ndarray,
                 critical_slack: int = 0):
        if cp_lengths.shape[0] != dag.n_tasks:
            raise ValueError("critical-path array does not match the DAG")
        self._dag = dag
        self._cp = cp_lengths
        self._slack = int(critical_slack)
        # heap of (-cp, distance, tid): longest chain first, then nearest
        # to the diagonal
        self._heap: list[tuple[int, int, int]] = []
        self._round_max: int | None = None

    def push_ready(self, tid: int) -> None:
        """Register a task whose dependencies just completed."""
        task = self._dag.tasks[tid]
        heapq.heappush(self._heap, (-int(self._cp[tid]), task.distance, tid))

    def push_many(self, tids) -> None:
        """Register several newly ready tasks."""
        for t in tids:
            self.push_ready(t)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def has_ready(self) -> bool:
        """True while ready tasks remain unclassified."""
        return bool(self._heap)

    def pop_most_urgent(self) -> int:
        """Remove and return the highest-ranked ready task id."""
        return heapq.heappop(self._heap)[2]

    def begin_round(self) -> None:
        """Snapshot the critical frontier before classifying a round.

        Criticality is judged against the longest chain among the tasks
        ready *at the start* of the round — judging against the shrinking
        heap would mark every popped task critical (the pop order is by
        chain length), making the classification vacuous.
        """
        self._round_max = -self._heap[0][0] if self._heap else None

    def is_critical(self, tid: int) -> bool:
        """Is this task on the critical path among the round's ready work?

        The longest ready chain (snapshot from :meth:`begin_round`)
        defines the frontier of the critical path; tasks within
        ``critical_slack`` of it are urgent and bypass the Container.
        """
        if self._round_max is None:
            max_cp = -self._heap[0][0] if self._heap else int(self._cp[tid])
        else:
            max_cp = self._round_max
        return int(self._cp[tid]) >= max_cp - self._slack

    def drain(self) -> list[int]:
        """Remove and return every ready task (used when the Collector
        fills early and the remainder must be deferred, Algorithm 1
        lines 8–10)."""
        out = [entry[2] for entry in self._heap]
        self._heap.clear()
        return out

    # ------------------------------------------------------------------
    # vectorized classification (the ScheduleArena hot path)
    # ------------------------------------------------------------------
    @staticmethod
    def rank_ready(cp: np.ndarray, distance: np.ndarray,
                   tids: np.ndarray) -> np.ndarray:
        """Ready task ids in heap pop order, in one lexsort.

        Sorts by ``(-cp, distance, tid)`` — exactly the key
        :meth:`pop_most_urgent` drains the heap in, so the vectorized
        scheduler classifies an identical sequence.
        """
        order = np.lexsort((tids, distance[tids], -cp[tids]))
        return tids[order]

    @staticmethod
    def urgent_prefix(cp_ranked: np.ndarray, critical_slack: int) -> int:
        """Length of the urgent prefix of a ranked ready list.

        ``cp_ranked`` is descending (the primary ranking key), so the
        round's critical set — tasks within ``critical_slack`` of the
        longest ready chain (:meth:`is_critical` against the
        :meth:`begin_round` snapshot) — is a prefix, and the
        urgent/deferrable split is a single boolean-mask partition.
        """
        if cp_ranked.size == 0:
            return 0
        threshold = int(cp_ranked[0]) - int(critical_slack)
        return int(np.searchsorted(-cp_ranked, -threshold, side="right"))

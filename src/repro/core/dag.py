"""The numeric-factorisation task DAG.

Built from the block-level fill pattern: one GETRF per diagonal tile, one
TSTRF/GEESM per off-diagonal factor tile, one SSSSM per (k, i, j) panel
pair.  Dependencies follow §2.3 of the paper:

* GETRF(k) ⇐ every SSSSM(·, k, k);
* TSTRF(k, i) ⇐ GETRF(k) and every SSSSM(·, i, k);
* GEESM(k, j) ⇐ GETRF(k) and every SSSSM(·, k, j);
* SSSSM(k, i, j) ⇐ TSTRF(k, i) and GEESM(k, j).

SSSSM tasks sharing a target tile but coming from different steps ``k``
are mutually order-independent — they may run in the same batch with
atomic accumulation (the 9S0/9S1 example of Figure 4).

The DAG itself is immutable at run time: schedulers copy the predecessor
counters, so one DAG serves every scheduler variant and GPU model in an
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.task import Task, TaskType
from repro.kernels.flops import (
    gemm_flops_dense,
    getrf_flops_dense,
    trsm_flops_dense,
)
from repro.sparse.blocking import Partition


@dataclass
class TaskDAG:
    """Immutable task graph plus lookup indices.

    Attributes
    ----------
    tasks:
        All tasks, indexed by ``tid``.
    pred_count:
        Number of predecessors per task (int64 array).
    successors:
        Adjacency list: ``successors[tid]`` are the task ids unlocked by
        completing ``tid``.
    part:
        The tile partition the DAG was built over.
    """

    tasks: list[Task]
    pred_count: np.ndarray
    successors: list[list[int]]
    part: Partition

    @property
    def n_tasks(self) -> int:
        """Total number of tasks."""
        return len(self.tasks)

    def initial_ready(self) -> list[int]:
        """Task ids with no predecessors."""
        return [t for t in range(self.n_tasks) if self.pred_count[t] == 0]

    def counts_by_type(self) -> dict[str, int]:
        """Task counts keyed by kernel-type name."""
        out = {t.name: 0 for t in TaskType}
        for task in self.tasks:
            out[task.type.name] += 1
        return out

    def total_flops_est(self) -> int:
        """Sum of structural flop estimates over all tasks."""
        return int(sum(t.flops_est for t in self.tasks))

    def validate(self) -> None:
        """Structural sanity: acyclic and every task reachable.

        Runs a full Kahn peel; raises ``AssertionError`` on a cycle.
        Intended for tests, not hot paths.
        """
        indeg = self.pred_count.copy()
        stack = [t for t in range(self.n_tasks) if indeg[t] == 0]
        seen = 0
        while stack:
            t = stack.pop()
            seen += 1
            for s in self.successors[t]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        if seen != self.n_tasks:
            raise AssertionError(
                f"task DAG has a cycle or orphan: peeled {seen}/{self.n_tasks}"
            )

    def level_schedule(self) -> list[np.ndarray]:
        """Peel the DAG level by level (the Figure-3 static analysis).

        Level ``d`` holds every task whose longest chain of predecessors
        has length ``d``; its width is the number of tasks executable in
        parallel at time step ``d``.
        """
        indeg = self.pred_count.copy()
        frontier = np.asarray(
            [t for t in range(self.n_tasks) if indeg[t] == 0], dtype=np.int64
        )
        levels = []
        while frontier.size:
            levels.append(frontier)
            nxt = []
            for t in frontier:
                for s in self.successors[t]:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        nxt.append(s)
            frontier = np.asarray(nxt, dtype=np.int64)
        if sum(f.size for f in levels) != self.n_tasks:
            raise AssertionError("level schedule did not cover the DAG")
        return levels

    def critical_path_lengths(self) -> np.ndarray:
        """Longest path (in tasks) from each task to any sink, inclusive.

        The Prioritizer uses this to decide which ready tasks sit on the
        critical path.  Unit task weights: the metric ranks *dependency
        depth*, which is what throttles parallelism.
        """
        cp = np.ones(self.n_tasks, dtype=np.int64)
        # reverse topological order via Kahn on the reversed graph: process
        # tasks in an order where all successors come first.
        order = []
        indeg = self.pred_count.copy()
        stack = [t for t in range(self.n_tasks) if indeg[t] == 0]
        while stack:
            t = stack.pop()
            order.append(t)
            for s in self.successors[t]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        for t in reversed(order):
            best = 0
            for s in self.successors[t]:
                if cp[s] > best:
                    best = cp[s]
            cp[t] = 1 + best
        return cp


def _sparse_getrf_est(m: int, nnz: int) -> int:
    density = min(1.0, nnz / max(1, m * m))
    return max(nnz, int(getrf_flops_dense(m) * density ** 1.5))


def build_block_dag(
    fill: np.ndarray,
    part: Partition,
    tile_nnz: dict[tuple[int, int], int] | None = None,
    sparse_tiles: bool = False,
    owner_of=None,
) -> TaskDAG:
    """Construct the task DAG from a block fill pattern.

    Parameters
    ----------
    fill:
        Boolean ``nb × nb`` tile map from
        :func:`repro.symbolic.block_fill`.
    part:
        The tile partition.
    tile_nnz:
        Structural nonzeros per factor tile (from the element-level fill
        split over the partition).  ``None`` treats tiles as dense.
    sparse_tiles:
        Mark tasks for sparse kernel accounting (the PanguLU substrate).
    owner_of:
        Optional ``owner_of(i, j) -> rank`` for distributed runs (2-D
        block-cyclic in :mod:`repro.cluster`).
    """
    nb = part.nblocks
    fill = np.asarray(fill, dtype=bool)
    if fill.shape != (nb, nb):
        raise ValueError("fill pattern does not match partition")
    sizes = part.sizes()

    def nnz_of(i: int, j: int) -> int:
        full = int(sizes[i]) * int(sizes[j])
        if tile_nnz is None:
            return full
        return min(full, int(tile_nnz.get((i, j), full)))

    tasks: list[Task] = []
    getrf_id: dict[int, int] = {}
    tstrf_id: dict[tuple[int, int], int] = {}
    geesm_id: dict[tuple[int, int], int] = {}

    def add(task_type: TaskType, k: int, i: int, j: int) -> int:
        tid = len(tasks)
        rows, cols = int(sizes[i]), int(sizes[j])
        nnz = nnz_of(i, j)
        mk = int(sizes[k])
        if task_type == TaskType.GETRF:
            flops = _sparse_getrf_est(rows, nnz) if sparse_tiles \
                else getrf_flops_dense(rows)
            nbytes = 8 * 2 * nnz
        elif task_type in (TaskType.TSTRF, TaskType.GEESM):
            diag_nnz = nnz_of(k, k)
            if sparse_tiles:
                flops = max(nnz, int(2 * nnz * diag_nnz / max(1, mk)))
            else:
                flops = trsm_flops_dense(mk, rows if task_type == TaskType.TSTRF
                                         else cols)
            nbytes = 8 * (2 * nnz + diag_nnz)
        else:  # SSSSM
            l_nnz = nnz_of(i, k)
            u_nnz = nnz_of(k, j)
            if sparse_tiles:
                flops = max(1, int(2 * l_nnz * u_nnz / max(1, mk)))
            else:
                flops = gemm_flops_dense(rows, mk, cols)
            nbytes = 8 * (nnz + l_nnz + u_nnz)
        tasks.append(
            Task(
                tid=tid, type=task_type, k=k, i=i, j=j,
                rows=rows, cols=cols, nnz=nnz, sparse=sparse_tiles,
                atomic=task_type == TaskType.SSSSM,
                flops_est=int(flops), bytes_est=int(nbytes),
                owner=0 if owner_of is None else int(owner_of(i, j)),
            )
        )
        return tid

    # enumerate tasks step by step
    lower_of: list[np.ndarray] = []
    upper_of: list[np.ndarray] = []
    for k in range(nb):
        getrf_id[k] = add(TaskType.GETRF, k, k, k)
        li = np.flatnonzero(fill[k + 1:, k]) + k + 1
        uj = np.flatnonzero(fill[k, k + 1:]) + k + 1
        lower_of.append(li)
        upper_of.append(uj)
        for i in li:
            tstrf_id[(int(i), k)] = add(TaskType.TSTRF, k, int(i), k)
        for j in uj:
            geesm_id[(k, int(j))] = add(TaskType.GEESM, k, k, int(j))

    ssssm_ids: list[tuple[int, int, int, int]] = []  # (tid, k, i, j)
    for k in range(nb):
        for i in lower_of[k]:
            for j in upper_of[k]:
                tid = add(TaskType.SSSSM, k, int(i), int(j))
                ssssm_ids.append((tid, k, int(i), int(j)))

    n = len(tasks)
    pred_count = np.zeros(n, dtype=np.int64)
    successors: list[list[int]] = [[] for _ in range(n)]

    def edge(a: int, b: int) -> None:
        successors[a].append(b)
        pred_count[b] += 1

    for k in range(nb):
        g = getrf_id[k]
        for i in lower_of[k]:
            edge(g, tstrf_id[(int(i), k)])
        for j in upper_of[k]:
            edge(g, geesm_id[(k, int(j))])
    for tid, k, i, j in ssssm_ids:
        edge(tstrf_id[(i, k)], tid)
        edge(geesm_id[(k, j)], tid)
        # hand-off to the tile's own factor-time operation
        if i == j:
            edge(tid, getrf_id[i])
        elif i > j:
            edge(tid, tstrf_id[(i, j)])
        else:
            edge(tid, geesm_id[(i, j)])
    return TaskDAG(tasks=tasks, pred_count=pred_count,
                   successors=successors, part=part)

"""The numeric-factorisation task DAG.

Built from the block-level fill pattern: one GETRF per diagonal tile, one
TSTRF/GEESM per off-diagonal factor tile, one SSSSM per (k, i, j) panel
pair.  Dependencies follow §2.3 of the paper:

* GETRF(k) ⇐ every SSSSM(·, k, k);
* TSTRF(k, i) ⇐ GETRF(k) and every SSSSM(·, i, k);
* GEESM(k, j) ⇐ GETRF(k) and every SSSSM(·, k, j);
* SSSSM(k, i, j) ⇐ TSTRF(k, i) and GEESM(k, j).

SSSSM tasks sharing a target tile but coming from different steps ``k``
are mutually order-independent — they may run in the same batch with
atomic accumulation (the 9S0/9S1 example of Figure 4).

The DAG itself is immutable at run time: schedulers copy the predecessor
counters, so one DAG serves every scheduler variant and GPU model in an
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.task import Task, TaskType
from repro.kernels.flops import (
    gemm_flops_dense,
    getrf_flops_dense,
    trsm_flops_dense,
)
from repro.sparse.blocking import Partition


@dataclass(frozen=True)
class TaskArrays:
    """Column-oriented task metadata for the vectorized scheduling path.

    One row per task, mirroring the :class:`~repro.core.task.Task`
    attributes the schedulers touch per round.  Built once per DAG
    (:meth:`TaskDAG.task_arrays`) so the hot loop never walks Python
    objects.

    Attributes
    ----------
    type_code:
        ``TaskType`` as int8.
    k, i, j:
        Elimination step and tile coordinates.
    distance:
        ``|i - j|`` — the Prioritizer's diagonal-distance metric.
    cuda_blocks, shared_mem:
        Per-task Executor resource footprint.
    flops_est, bytes_est, nnz:
        Structural work estimates.
    target:
        Output-tile id ``i * nblocks + j`` for SSSSM tasks, ``-1``
        otherwise — used for vectorized in-batch write-conflict
        detection.
    """

    type_code: np.ndarray
    k: np.ndarray
    i: np.ndarray
    j: np.ndarray
    distance: np.ndarray
    cuda_blocks: np.ndarray
    shared_mem: np.ndarray
    flops_est: np.ndarray
    bytes_est: np.ndarray
    nnz: np.ndarray
    target: np.ndarray


def _gather_csr(indptr: np.ndarray, indices: np.ndarray,
                tids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``indices[indptr[t]:indptr[t+1]]`` for every ``t``.

    Returns ``(gathered, counts)`` where ``counts[q]`` is the slice
    length of ``tids[q]`` — the multi-slice gather that replaces the
    per-task successor loops.
    """
    counts = indptr[tids + 1] - indptr[tids]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype), counts
    ends = np.cumsum(counts)
    pos = (np.arange(total, dtype=np.int64)
           - np.repeat(ends - counts, counts)
           + np.repeat(indptr[tids], counts))
    return indices[pos], counts


@dataclass
class TaskDAG:
    """Immutable task graph plus lookup indices.

    Attributes
    ----------
    tasks:
        All tasks, indexed by ``tid``.
    pred_count:
        Number of predecessors per task (int64 array).
    successors:
        Adjacency list: ``successors[tid]`` are the task ids unlocked by
        completing ``tid``.
    part:
        The tile partition the DAG was built over.
    """

    tasks: list[Task]
    pred_count: np.ndarray
    successors: list[list[int]]
    part: Partition
    _succ_csr: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, init=False, repr=False, compare=False)
    _arrays: TaskArrays | None = field(
        default=None, init=False, repr=False, compare=False)
    _cp_cache: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False)
    _levels_cache: list | None = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def n_tasks(self) -> int:
        """Total number of tasks."""
        return len(self.tasks)

    def initial_ready(self) -> list[int]:
        """Task ids with no predecessors."""
        return np.flatnonzero(self.pred_count == 0).tolist()

    def successor_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR-style successor index ``(indptr, indices)``, built once.

        ``indices[indptr[t]:indptr[t+1]]`` are the task ids unlocked by
        completing ``t`` — the flat form the vectorized schedulers use
        for `np.subtract.at` successor decrements.
        """
        if self._succ_csr is None:
            n = self.n_tasks
            counts = np.fromiter(
                (len(s) for s in self.successors), dtype=np.int64, count=n
            )
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            total = int(indptr[-1])
            indices = np.empty(total, dtype=np.int64)
            at = 0
            for s in self.successors:
                indices[at:at + len(s)] = s
                at += len(s)
            object.__setattr__(self, "_succ_csr", (indptr, indices))
        return self._succ_csr

    def gather_successors(self, tids: np.ndarray) -> np.ndarray:
        """All successors of ``tids`` concatenated (duplicates kept)."""
        indptr, indices = self.successor_csr()
        out, _ = _gather_csr(indptr, indices, np.asarray(tids, np.int64))
        return out

    def task_arrays(self) -> TaskArrays:
        """Column-oriented task metadata, built once per DAG."""
        if self._arrays is None:
            n = self.n_tasks
            nb = self.part.nblocks
            type_code = np.fromiter((int(t.type) for t in self.tasks),
                                    dtype=np.int8, count=n)
            k = np.fromiter((t.k for t in self.tasks), np.int64, count=n)
            i = np.fromiter((t.i for t in self.tasks), np.int64, count=n)
            j = np.fromiter((t.j for t in self.tasks), np.int64, count=n)
            blocks = np.fromiter((t.cuda_blocks for t in self.tasks),
                                 np.int64, count=n)
            shmem = np.fromiter((t.shared_mem_bytes for t in self.tasks),
                                np.int64, count=n)
            flops = np.fromiter((t.flops_est for t in self.tasks),
                                np.int64, count=n)
            nbytes = np.fromiter((t.bytes_est for t in self.tasks),
                                 np.int64, count=n)
            nnz = np.fromiter((t.nnz for t in self.tasks), np.int64, count=n)
            # lazy import: repro.verify.effects is the single definition
            # of write footprints, but importing it at module top would
            # cycle through repro.verify.__init__ while repro.core is
            # still mid-import
            from repro.verify.effects import atomic_write_targets
            target = atomic_write_targets(type_code, i, j, nb)
            object.__setattr__(self, "_arrays", TaskArrays(
                type_code=type_code, k=k, i=i, j=j, distance=np.abs(i - j),
                cuda_blocks=blocks, shared_mem=shmem, flops_est=flops,
                bytes_est=nbytes, nnz=nnz, target=target,
            ))
        return self._arrays

    def counts_by_type(self) -> dict[str, int]:
        """Task counts keyed by kernel-type name."""
        out = {t.name: 0 for t in TaskType}
        for task in self.tasks:
            out[task.type.name] += 1
        return out

    def total_flops_est(self) -> int:
        """Sum of structural flop estimates over all tasks."""
        return int(sum(t.flops_est for t in self.tasks))

    def validate(self) -> None:
        """Structural sanity: acyclic and every task reachable.

        Runs a full Kahn peel; raises ``AssertionError`` on a cycle.
        Intended for tests, not hot paths.
        """
        seen = sum(f.size for f in self._peel_levels(check=False))
        if seen != self.n_tasks:
            raise AssertionError(
                f"task DAG has a cycle or orphan: peeled {seen}/{self.n_tasks}"
            )

    def _peel_levels(self, check: bool = True) -> list[np.ndarray]:
        if self._levels_cache is not None:
            levels = self._levels_cache
        else:
            indptr, indices = self.successor_csr()
            indeg = self.pred_count.copy()
            frontier = np.flatnonzero(indeg == 0)
            levels = []
            while frontier.size:
                levels.append(frontier)
                succ, _ = _gather_csr(indptr, indices, frontier)
                np.subtract.at(indeg, succ, 1)
                frontier = np.unique(succ[indeg[succ] == 0])
            # cache only complete peels: a cyclic DAG's partial peel
            # must stay recomputable so validate() keeps reporting it
            if sum(f.size for f in levels) == self.n_tasks:
                object.__setattr__(self, "_levels_cache", levels)
        if check and sum(f.size for f in levels) != self.n_tasks:
            raise AssertionError("level schedule did not cover the DAG")
        return levels

    def level_schedule(self) -> list[np.ndarray]:
        """Peel the DAG level by level (the Figure-3 static analysis).

        Level ``d`` holds every task whose longest chain of predecessors
        has length ``d``; its width is the number of tasks executable in
        parallel at time step ``d``.  Tasks within a level are in
        ascending id order.  Computed once and cached (the DAG is
        immutable); treat the returned arrays as read-only.
        """
        return self._peel_levels(check=True)

    def critical_path_lengths(self) -> np.ndarray:
        """Longest path (in tasks) from each task to any sink, inclusive.

        The Prioritizer uses this to decide which ready tasks sit on the
        critical path.  Unit task weights: the metric ranks *dependency
        depth*, which is what throttles parallelism.  Computed once and
        cached (the DAG is immutable); treat the returned array as
        read-only.
        """
        if self._cp_cache is None:
            indptr, indices = self.successor_csr()
            cp = np.ones(self.n_tasks, dtype=np.int64)
            # every successor of a level-d task sits in a level > d, so a
            # reverse sweep over the levels sees all successors resolved
            for level in reversed(self._peel_levels(check=True)):
                succ, counts = _gather_csr(indptr, indices, level)
                if not succ.size:
                    continue
                owners = np.repeat(np.arange(level.size), counts)
                best = np.zeros(level.size, dtype=np.int64)
                np.maximum.at(best, owners, cp[succ])
                cp[level] = 1 + best
            object.__setattr__(self, "_cp_cache", cp)
        return self._cp_cache

    def is_verified_acyclic(self) -> bool:
        """Cheap acyclicity witness: a cached critical-path labeling
        exists, meaning a full Kahn peel already covered every task.

        ``False`` only means "not proven yet" — the static verifier uses
        this to skip re-peeling DAGs a scheduler has already processed.
        """
        return self._cp_cache is not None


def _sparse_getrf_est(m: int, nnz: int) -> int:
    density = min(1.0, nnz / max(1, m * m))
    return max(nnz, int(getrf_flops_dense(m) * density ** 1.5))


def build_block_dag(
    fill: np.ndarray,
    part: Partition,
    tile_nnz: dict[tuple[int, int], int] | None = None,
    sparse_tiles: bool = False,
    owner_of=None,
) -> TaskDAG:
    """Construct the task DAG from a block fill pattern.

    Parameters
    ----------
    fill:
        Boolean ``nb × nb`` tile map from
        :func:`repro.symbolic.block_fill`.
    part:
        The tile partition.
    tile_nnz:
        Structural nonzeros per factor tile (from the element-level fill
        split over the partition).  ``None`` treats tiles as dense.
    sparse_tiles:
        Mark tasks for sparse kernel accounting (the PanguLU substrate).
    owner_of:
        Optional ``owner_of(i, j) -> rank`` for distributed runs (2-D
        block-cyclic in :mod:`repro.cluster`).
    """
    nb = part.nblocks
    fill = np.asarray(fill, dtype=bool)
    if fill.shape != (nb, nb):
        raise ValueError("fill pattern does not match partition")
    sizes = part.sizes()

    def nnz_of(i: int, j: int) -> int:
        full = int(sizes[i]) * int(sizes[j])
        if tile_nnz is None:
            return full
        return min(full, int(tile_nnz.get((i, j), full)))

    tasks: list[Task] = []
    getrf_id: dict[int, int] = {}
    tstrf_id: dict[tuple[int, int], int] = {}
    geesm_id: dict[tuple[int, int], int] = {}

    def add(task_type: TaskType, k: int, i: int, j: int) -> int:
        tid = len(tasks)
        rows, cols = int(sizes[i]), int(sizes[j])
        nnz = nnz_of(i, j)
        mk = int(sizes[k])
        if task_type == TaskType.GETRF:
            flops = _sparse_getrf_est(rows, nnz) if sparse_tiles \
                else getrf_flops_dense(rows)
            nbytes = 8 * 2 * nnz
        elif task_type in (TaskType.TSTRF, TaskType.GEESM):
            diag_nnz = nnz_of(k, k)
            if sparse_tiles:
                flops = max(nnz, int(2 * nnz * diag_nnz / max(1, mk)))
            else:
                flops = trsm_flops_dense(mk, rows if task_type == TaskType.TSTRF
                                         else cols)
            nbytes = 8 * (2 * nnz + diag_nnz)
        else:  # SSSSM
            l_nnz = nnz_of(i, k)
            u_nnz = nnz_of(k, j)
            if sparse_tiles:
                flops = max(1, int(2 * l_nnz * u_nnz / max(1, mk)))
            else:
                flops = gemm_flops_dense(rows, mk, cols)
            nbytes = 8 * (nnz + l_nnz + u_nnz)
        tasks.append(
            Task(
                tid=tid, type=task_type, k=k, i=i, j=j,
                rows=rows, cols=cols, nnz=nnz, sparse=sparse_tiles,
                atomic=task_type == TaskType.SSSSM,
                flops_est=int(flops), bytes_est=int(nbytes),
                owner=0 if owner_of is None else int(owner_of(i, j)),
            )
        )
        return tid

    # enumerate tasks step by step
    lower_of: list[np.ndarray] = []
    upper_of: list[np.ndarray] = []
    for k in range(nb):
        getrf_id[k] = add(TaskType.GETRF, k, k, k)
        li = np.flatnonzero(fill[k + 1:, k]) + k + 1
        uj = np.flatnonzero(fill[k, k + 1:]) + k + 1
        lower_of.append(li)
        upper_of.append(uj)
        for i in li:
            tstrf_id[(int(i), k)] = add(TaskType.TSTRF, k, int(i), k)
        for j in uj:
            geesm_id[(k, int(j))] = add(TaskType.GEESM, k, k, int(j))

    ssssm_ids: list[tuple[int, int, int, int]] = []  # (tid, k, i, j)
    for k in range(nb):
        for i in lower_of[k]:
            for j in upper_of[k]:
                tid = add(TaskType.SSSSM, k, int(i), int(j))
                ssssm_ids.append((tid, k, int(i), int(j)))

    n = len(tasks)
    pred_count = np.zeros(n, dtype=np.int64)
    successors: list[list[int]] = [[] for _ in range(n)]

    def edge(a: int, b: int) -> None:
        successors[a].append(b)
        pred_count[b] += 1

    for k in range(nb):
        g = getrf_id[k]
        for i in lower_of[k]:
            edge(g, tstrf_id[(int(i), k)])
        for j in upper_of[k]:
            edge(g, geesm_id[(k, int(j))])
    for tid, k, i, j in ssssm_ids:
        edge(tstrf_id[(i, k)], tid)
        edge(geesm_id[(k, j)], tid)
        # hand-off to the tile's own factor-time operation
        if i == j:
            edge(tid, getrf_id[i])
        elif i > j:
            edge(tid, tstrf_id[(i, j)])
        else:
            edge(tid, geesm_id[(i, j)])
    return TaskDAG(tasks=tasks, pred_count=pred_count,
                   successors=successors, part=part)

"""Schur-task fusion — the SuperLU_DIST integration detail (§3.5.1).

SuperLU's tiny supernodes explode the task count, and "the bottleneck
arises at the task aggregation stage on the CPU.  To overcome this
challenge, we aggregate all vectors of matrix U in advance, therefore all
Schur complement tasks in one supernode can be done in a relative larger
GEMM."  This module implements that transform on the task DAG: all
SSSSM(k, i, ·) updates sharing a step and a target row panel fuse into
one task whose dependencies/successors are the unions of its members'.

Fusion is a *scheduling-level* rewrite — numerically a fused task simply
executes its members, so factors are unchanged (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dag import TaskDAG
from repro.core.task import Task, TaskType
from repro.kernels.tilekernels import KernelStats


@dataclass
class FusionResult:
    """A fused DAG plus the member map back to the original tasks.

    Attributes
    ----------
    dag:
        The fused task DAG (new dense task ids).
    members:
        ``members[new_tid]`` lists the original task ids the new task
        executes (singleton for unfused tasks).
    """

    dag: TaskDAG
    members: list[list[int]]

    def fuse_stats(self, stats: dict[int, KernelStats]) -> dict[int, KernelStats]:
        """Aggregate recorded per-task stats onto the fused ids."""
        out = {}
        for new_tid, group in enumerate(self.members):
            flops = sum(stats[t].flops for t in group)
            nbytes = sum(stats[t].bytes for t in group)
            out[new_tid] = KernelStats(flops=flops, bytes=nbytes)
        return out


def merge_schur_tasks(dag: TaskDAG) -> FusionResult:
    """Fuse SSSSM tasks per (step k, target row i) group.

    Non-SSSSM tasks are kept one-to-one.  Duplicate edges created by the
    union are collapsed, so predecessor counts stay consistent.
    """
    group_of: dict[tuple[int, int], int] = {}
    members: list[list[int]] = []
    new_id = np.empty(dag.n_tasks, dtype=np.int64)
    new_tasks: list[Task] = []

    for task in dag.tasks:
        if task.type == TaskType.SSSSM:
            key = (task.k, task.i)
            if key in group_of:
                g = group_of[key]
                new_id[task.tid] = g
                members[g].append(task.tid)
                fused = new_tasks[g]
                fused.cols += task.cols
                fused.nnz += task.nnz
                fused.flops_est += task.flops_est
                fused.bytes_est += task.bytes_est
                fused.j = min(fused.j, task.j)
                continue
        g = len(new_tasks)
        new_id[task.tid] = g
        members.append([task.tid])
        new_tasks.append(Task(
            tid=g, type=task.type, k=task.k, i=task.i, j=task.j,
            rows=task.rows, cols=task.cols, nnz=task.nnz,
            sparse=task.sparse, atomic=task.atomic,
            flops_est=task.flops_est, bytes_est=task.bytes_est,
            owner=task.owner,
        ))
        if task.type == TaskType.SSSSM:
            group_of[(task.k, task.i)] = g

    n = len(new_tasks)
    succ_sets: list[set[int]] = [set() for _ in range(n)]
    for t in range(dag.n_tasks):
        a = int(new_id[t])
        for s in dag.successors[t]:
            b = int(new_id[s])
            if a != b:
                succ_sets[a].add(b)
    successors = [sorted(s) for s in succ_sets]
    pred_count = np.zeros(n, dtype=np.int64)
    for a in range(n):
        for b in successors[a]:
            pred_count[b] += 1
    fused_dag = TaskDAG(tasks=new_tasks, pred_count=pred_count,
                        successors=successors, part=dag.part)
    return FusionResult(dag=fused_dag, members=members)


class FusedBackend:
    """Execution backend that runs a fused task's members in sequence."""

    def __init__(self, inner, fusion: FusionResult, original: TaskDAG):
        self._inner = inner
        self._fusion = fusion
        self._orig = original

    def run_task(self, task: Task, atomic: bool) -> KernelStats:
        """Execute every member of the fused task; sum the stats."""
        flops = 0
        nbytes = 0
        for tid in self._fusion.members[task.tid]:
            s = self._inner.run_task(self._orig.tasks[tid], atomic)
            flops += s.flops
            nbytes += s.bytes
        return KernelStats(flops=flops, bytes=nbytes)

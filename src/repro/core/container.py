"""Aggregate-stage Module 2: the Container (paper §3.3).

A priority heap of deferred-but-ready tasks.  Pops always return the
highest-priority stored task: urgency flag first (tasks the Collector had
to bounce stay urgent), then distance to the main diagonal (closer tiles
unlock the next diagonal factorisation sooner), then elimination step.
"""

from __future__ import annotations

import heapq

from repro.core.task import Task


class Container:
    """Priority buffer for deferred tasks.

    The heap key is ``(not urgent, distance, k, seq)`` — urgent re-queued
    tasks first, then the paper's diagonal-distance priority; ``seq``
    makes ordering deterministic and insertion-stable.
    """

    def __init__(self):
        self._heap: list[tuple[bool, int, int, int, int]] = []
        self._seq = 0

    def push(self, task: Task, urgent: bool = False) -> None:
        """Store a ready task for deferred execution."""
        heapq.heappush(
            self._heap,
            (not urgent, task.distance, task.k, self._seq, task.tid),
        )
        self._seq += 1

    def push_all(self, tasks, urgent: bool = False) -> None:
        """Store several ready tasks."""
        for t in tasks:
            self.push(t, urgent=urgent)

    def pop(self) -> int:
        """Remove and return the highest-priority stored task id."""
        return heapq.heappop(self._heap)[4]

    def peek(self) -> int:
        """Highest-priority stored task id without removing it."""
        return self._heap[0][4]

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_empty(self) -> bool:
        """True when no deferred tasks are stored."""
        return not self._heap

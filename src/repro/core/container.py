"""Aggregate-stage Module 2: the Container (paper §3.3).

A priority heap of deferred-but-ready tasks.  Pops always return the
highest-priority stored task: urgency flag first (tasks the Collector had
to bounce stay urgent), then distance to the main diagonal (closer tiles
unlock the next diagonal factorisation sooner), then elimination step.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.task import Task


class ArrayContainer:
    """Vectorized Container: deferred tasks in preallocated NumPy slabs.

    Same pop priority as :class:`Container` — ``(not urgent, distance,
    k, seq)`` — but tasks are pushed a whole round at a time and drained
    a whole admission prefix at a time, so the per-task heap churn of
    the Aggregate stage disappears.  The slot index doubles as the
    insertion sequence number: a stable lexsort over ``(urgency,
    distance, k)`` in slot order reproduces the heap's tie-breaking.

    Parameters
    ----------
    capacity:
        Upper bound on total pushes over the run (a task is deferred at
        most once, so the DAG's task count suffices); slabs grow
        automatically if exceeded.
    """

    def __init__(self, capacity: int):
        capacity = max(1, int(capacity))
        self._tid = np.empty(capacity, dtype=np.int64)
        self._dist = np.empty(capacity, dtype=np.int64)
        self._k = np.empty(capacity, dtype=np.int64)
        self._deferred = np.empty(capacity, dtype=bool)  # i.e. not urgent
        self._live = np.zeros(capacity, dtype=bool)
        self._top = 0
        self._nlive = 0

    def __len__(self) -> int:
        return self._nlive

    @property
    def is_empty(self) -> bool:
        """True when no deferred tasks are stored."""
        return self._nlive == 0

    def _grow(self, need: int) -> None:
        cap = max(2 * self._tid.size, self._top + need)
        for name in ("_tid", "_dist", "_k", "_deferred", "_live"):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=old.dtype) if old.dtype == bool \
                else np.empty(cap, dtype=old.dtype)
            new[:self._top] = old[:self._top]
            setattr(self, name, new)

    def push_ids(self, tids: np.ndarray, distance: np.ndarray,
                 k: np.ndarray, urgent: bool = False) -> None:
        """Store a block of ready tasks (one Container.push per element)."""
        m = len(tids)
        if m == 0:
            return
        if self._top + m > self._tid.size:
            self._grow(m)
        lo, hi = self._top, self._top + m
        self._tid[lo:hi] = tids
        self._dist[lo:hi] = distance
        self._k[lo:hi] = k
        self._deferred[lo:hi] = not urgent
        self._live[lo:hi] = True
        self._top = hi
        self._nlive += m

    def ranked_slots(self) -> np.ndarray:
        """Live slot indices in pop-priority order.

        ``np.lexsort`` is stable, so equal-key entries keep slot
        (= insertion) order — the heap's ``seq`` tie-break.
        """
        slots = np.flatnonzero(self._live[:self._top])
        # lexsort's primary key is the *last* one: urgent-first, then
        # distance, then elimination step; the sort is stable, so equal
        # keys keep ascending-slot (= insertion) order
        return slots[np.lexsort(
            (self._k[slots], self._dist[slots], self._deferred[slots])
        )]

    def tids_of(self, slots: np.ndarray) -> np.ndarray:
        """Task ids stored in the given slots."""
        return self._tid[slots]

    def remove(self, slots: np.ndarray) -> None:
        """Drop the given slots (their tasks were admitted to a batch)."""
        if len(slots):
            self._live[slots] = False
            self._nlive -= len(slots)


class Container:
    """Priority buffer for deferred tasks.

    The heap key is ``(not urgent, distance, k, seq)`` — urgent re-queued
    tasks first, then the paper's diagonal-distance priority; ``seq``
    makes ordering deterministic and insertion-stable.
    """

    def __init__(self):
        self._heap: list[tuple[bool, int, int, int, int]] = []
        self._seq = 0

    def push(self, task: Task, urgent: bool = False) -> None:
        """Store a ready task for deferred execution."""
        heapq.heappush(
            self._heap,
            (not urgent, task.distance, task.k, self._seq, task.tid),
        )
        self._seq += 1

    def push_all(self, tasks, urgent: bool = False) -> None:
        """Store several ready tasks."""
        for t in tasks:
            self.push(t, urgent=urgent)

    def pop(self) -> int:
        """Remove and return the highest-priority stored task id."""
        return heapq.heappop(self._heap)[4]

    def peek(self) -> int:
        """Highest-priority stored task id without removing it."""
        return self._heap[0][4]

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_empty(self) -> bool:
        """True when no deferred tasks are stored."""
        return not self._heap

"""The scheduling baselines the paper compares against.

* :class:`SerialScheduler` — PanguLU's original behaviour: ready tasks
  executed one kernel each, ordered by priority (Figure 6(e));
* :class:`LevelBatchScheduler` — SuperLU's level-synchronous batching:
  same-type tasks within one elimination-DAG level share a launch
  (Figure 6(d), reference [49]);
* :class:`StreamScheduler` — the §4 ablation that replaces the Executor
  with four CUDA streams: still one kernel per task, but launches on
  different streams overlap.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.collector import Collector
from repro.core.dag import TaskDAG
from repro.core.executor import BatchRecord, ExecutionBackend, Executor
from repro.core.scheduler import (
    PER_BATCH_SCHED_US,
    PER_TASK_SCHED_US,
    ScheduleResult,
    TrojanHorseScheduler,
)
from repro.core.task import TaskType
from repro.gpusim.costmodel import GPUCostModel, KernelLaunch
from repro.gpusim.streams import StreamSimulator


class SerialScheduler:
    """One kernel launch per task, priority order (PanguLU baseline)."""

    name = "serial"

    def __init__(self, dag: TaskDAG, backend: ExecutionBackend,
                 model: GPUCostModel):
        self._dag = dag
        self._backend = backend
        self._model = model

    def run(self) -> ScheduleResult:
        """Execute the whole DAG task by task."""
        dag = self._dag
        pred = dag.pred_count.copy()
        execu = Executor(self._model, self._backend)
        heap = [(dag.tasks[t].distance, dag.tasks[t].k, t)
                for t in dag.initial_ready()]
        heapq.heapify(heap)
        batches: list[BatchRecord] = []
        t = 0.0
        while heap:
            _, _, tid = heapq.heappop(heap)
            record = execu.run_batch([dag.tasks[tid]], t)
            t = record.t_end
            batches.append(record)
            for s in dag.successors[tid]:
                pred[s] -= 1
                if pred[s] == 0:
                    task = dag.tasks[s]
                    heapq.heappush(heap, (task.distance, task.k, s))
        if len(batches) != dag.n_tasks:
            raise AssertionError("serial scheduler missed tasks — DAG bug")
        sched = (PER_TASK_SCHED_US * dag.n_tasks) * 1e-6
        return ScheduleResult(
            scheduler=self.name,
            device=self._model.gpu.name,
            batches=batches,
            kernel_count=len(batches),
            task_count=dag.n_tasks,
            kernel_time=t,
            sched_overhead=sched,
            total_flops=sum(b.flops for b in batches),
            counts_by_type=dag.counts_by_type(),
        )


class LevelBatchScheduler:
    """Level-synchronous same-type batching (SuperLU-style).

    Tasks are grouped by (DAG level, kernel type); each group launches as
    one batch, split only when it exceeds the Collector budgets.  Levels
    are barriers: no cross-level aggregation — precisely the restriction
    Trojan Horse removes.
    """

    name = "levelbatch"

    def __init__(self, dag: TaskDAG, backend: ExecutionBackend,
                 model: GPUCostModel):
        self._dag = dag
        self._backend = backend
        self._model = model

    def run(self) -> ScheduleResult:
        """Execute the DAG level by level."""
        dag = self._dag
        execu = Executor(self._model, self._backend)
        coll = Collector(self._model.gpu)
        batches: list[BatchRecord] = []
        t = 0.0
        for level in dag.level_schedule():
            by_type: dict[TaskType, list[int]] = {}
            for tid in level:
                by_type.setdefault(dag.tasks[tid].type, []).append(int(tid))
            for ttype in sorted(by_type, key=int):
                group = by_type[ttype]
                coll.reset()
                for tid in group:
                    task = dag.tasks[tid]
                    if not coll.try_push(task):
                        record = execu.run_batch(coll.tasks, t)
                        t = record.t_end
                        batches.append(record)
                        coll.reset()
                        coll.try_push(task)
                if not coll.is_empty:
                    record = execu.run_batch(coll.tasks, t)
                    t = record.t_end
                    batches.append(record)
        sched = (PER_TASK_SCHED_US * dag.n_tasks
                 + PER_BATCH_SCHED_US * len(batches)) * 1e-6
        return ScheduleResult(
            scheduler=self.name,
            device=self._model.gpu.name,
            batches=batches,
            kernel_count=len(batches),
            task_count=dag.n_tasks,
            kernel_time=t,
            sched_overhead=sched,
            total_flops=sum(b.flops for b in batches),
            counts_by_type=dag.counts_by_type(),
        )


class StreamScheduler:
    """Per-task kernels distributed over ``n_streams`` CUDA streams.

    List scheduling: each ready task launches on the earliest-available
    stream no earlier than its dependencies' completion times.  Launch
    overheads overlap across streams, but kernel *bodies* still contend
    for the same SMs (modelled as serialised device time at single-task
    occupancy) — streams hide launch latency, not starvation, which is
    why the paper's stream variant loses to aggregate-and-batch.
    """

    name = "streams"

    def __init__(self, dag: TaskDAG, backend: ExecutionBackend,
                 model: GPUCostModel, n_streams: int = 4):
        self._dag = dag
        self._backend = backend
        self._model = model
        self._n_streams = n_streams

    def run(self) -> ScheduleResult:
        """Execute the DAG with stream-overlapped per-task kernels."""
        dag = self._dag
        pred = dag.pred_count.copy()
        ready_time = np.zeros(dag.n_tasks)
        clocks = [0.0] * self._n_streams
        overhead = self._model.gpu.launch_overhead_us * 1e-6
        dispatch = self._model.gpu.dispatch_serial_us * 1e-6
        device_clock = 0.0   # SM time is shared across streams
        dispatch_clock = 0.0  # CPU-side submission is serialised
        heap = [(0.0, dag.tasks[t].distance, t) for t in dag.initial_ready()]
        heapq.heapify(heap)
        batches: list[BatchRecord] = []
        done = 0
        while heap:
            r_time, _, tid = heapq.heappop(heap)
            task = dag.tasks[tid]
            stats = self._backend.run_task(task, False)
            launch = KernelLaunch()
            launch.add_task(task.cuda_blocks, stats.flops, stats.bytes,
                            task.shared_mem_bytes)
            s = min(range(self._n_streams), key=lambda q: clocks[q])
            issue = max(clocks[s], r_time, dispatch_clock)
            dispatch_clock = issue + dispatch
            body = self._model.launch_time(launch) - overhead
            start = max(issue + overhead, device_clock)
            end = start + body
            clocks[s] = end
            device_clock = end
            batches.append(BatchRecord(
                t_start=start, t_end=end, task_ids=[tid], n_tasks=1,
                cuda_blocks=task.cuda_blocks, flops=stats.flops,
                bytes=stats.bytes, types={task.type.name: 1},
            ))
            done += 1
            for nxt in dag.successors[tid]:
                ready_time[nxt] = max(ready_time[nxt], end)
                pred[nxt] -= 1
                if pred[nxt] == 0:
                    heapq.heappush(
                        heap, (ready_time[nxt], dag.tasks[nxt].distance, nxt)
                    )
        if done != dag.n_tasks:
            raise AssertionError("stream scheduler missed tasks — DAG bug")
        sched = (PER_TASK_SCHED_US * dag.n_tasks) * 1e-6
        makespan = max(b.t_end for b in batches)
        return ScheduleResult(
            scheduler=self.name,
            device=self._model.gpu.name,
            batches=batches,
            kernel_count=len(batches),
            task_count=dag.n_tasks,
            kernel_time=makespan,
            sched_overhead=sched,
            total_flops=sum(b.flops for b in batches),
            counts_by_type=dag.counts_by_type(),
        )


SCHEDULER_NAMES = ("serial", "levelbatch", "streams", "trojan")
"""Names accepted by :func:`make_scheduler`."""


def make_scheduler(name: str, dag: TaskDAG, backend: ExecutionBackend,
                   model: GPUCostModel, **kwargs):
    """Factory over the four scheduling policies."""
    if name == "serial":
        return SerialScheduler(dag, backend, model)
    if name == "levelbatch":
        return LevelBatchScheduler(dag, backend, model)
    if name == "streams":
        return StreamScheduler(dag, backend, model, **kwargs)
    if name == "trojan":
        return TrojanHorseScheduler(dag, backend, model, **kwargs)
    raise ValueError(f"unknown scheduler {name!r}; choose from {SCHEDULER_NAMES}")

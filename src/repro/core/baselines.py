"""The scheduling baselines the paper compares against.

* :class:`SerialScheduler` — PanguLU's original behaviour: ready tasks
  executed one kernel each, ordered by priority (Figure 6(e));
* :class:`LevelBatchScheduler` — SuperLU's level-synchronous batching:
  same-type tasks within one elimination-DAG level share a launch
  (Figure 6(d), reference [49]);
* :class:`StreamScheduler` — the §4 ablation that replaces the Executor
  with four CUDA streams: still one kernel per task, but launches on
  different streams overlap.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.arena import ScheduleArena
from repro.core.collector import admissible_prefix
from repro.core.dag import TaskDAG
from repro.core.executor import BatchRecord, ExecutionBackend, Executor
from repro.core.scheduler import (
    PER_BATCH_SCHED_US,
    PER_TASK_SCHED_US,
    ScheduleResult,
    TrojanHorseScheduler,
    empty_schedule_result,
)
from repro.core.task import TaskType
from repro.gpusim.costmodel import GPUCostModel, KernelLaunch
from repro.gpusim.streams import StreamSimulator


class SerialScheduler:
    """One kernel launch per task, priority order (PanguLU baseline).

    The launch-per-task policy is inherently sequential, but the run
    state still lives in a :class:`ScheduleArena`: per-completion
    successor decrements are one array slice instead of a Python loop,
    and replay/estimate backends account each launch without touching
    ``Task`` objects.
    """

    name = "serial"

    def __init__(self, dag: TaskDAG, backend: ExecutionBackend,
                 model: GPUCostModel):
        self._dag = dag
        self._backend = backend
        self._model = model

    def run(self) -> ScheduleResult:
        """Execute the whole DAG task by task."""
        dag = self._dag
        if dag.n_tasks == 0:
            return empty_schedule_result(self.name, self._model.gpu.name, dag)
        arena = ScheduleArena(dag)
        arrays = arena.arrays
        execu = Executor(self._model, self._backend)
        heap = [(int(arrays.distance[t]), int(arrays.k[t]), int(t))
                for t in arena.initial_ready()]
        heapq.heapify(heap)
        batches: list[BatchRecord] = []
        one = np.empty(1, dtype=np.int64)
        t = 0.0
        while heap:
            _, _, tid = heapq.heappop(heap)
            one[0] = tid
            record = execu.run_batch_ids(one, t, arena)
            t = record.t_end
            batches.append(record)
            for s in arena.complete(one):
                heapq.heappush(
                    heap, (int(arrays.distance[s]), int(arrays.k[s]), int(s))
                )
        if len(batches) != dag.n_tasks:
            raise AssertionError("serial scheduler missed tasks — DAG bug")
        sched = (PER_TASK_SCHED_US * dag.n_tasks) * 1e-6
        return ScheduleResult(
            scheduler=self.name,
            device=self._model.gpu.name,
            batches=batches,
            kernel_count=len(batches),
            task_count=dag.n_tasks,
            kernel_time=t,
            sched_overhead=sched,
            total_flops=sum(b.flops for b in batches),
            counts_by_type=dag.counts_by_type(),
        )


class LevelBatchScheduler:
    """Level-synchronous same-type batching (SuperLU-style).

    Tasks are grouped by (DAG level, kernel type); each group launches as
    one batch, split only when it exceeds the Collector budgets.  Levels
    are barriers: no cross-level aggregation — precisely the restriction
    Trojan Horse removes.
    """

    name = "levelbatch"

    def __init__(self, dag: TaskDAG, backend: ExecutionBackend,
                 model: GPUCostModel):
        self._dag = dag
        self._backend = backend
        self._model = model

    def run(self) -> ScheduleResult:
        """Execute the DAG level by level.

        Vectorized: each level is partitioned into same-type runs with
        one lexsort, and every run is split into capacity-bound batches
        by repeated cumulative-sum admission prefixes — equivalent to
        feeding the run through a Collector task by task.
        """
        dag = self._dag
        if dag.n_tasks == 0:
            return empty_schedule_result(self.name, self._model.gpu.name, dag)
        arena = ScheduleArena(dag)
        arrays = arena.arrays
        max_blocks = self._model.gpu.max_resident_blocks
        max_shmem = self._model.gpu.shared_mem_total_bytes
        execu = Executor(self._model, self._backend)
        batches: list[BatchRecord] = []
        t = 0.0
        for level in dag.level_schedule():
            codes = arrays.type_code[level]
            ordered = level[np.lexsort((level, codes))]
            # boundaries of the same-type runs (codes ascending)
            splits = np.flatnonzero(np.diff(arrays.type_code[ordered])) + 1
            for group in np.split(ordered, splits):
                start = 0
                while start < group.size:
                    rest = group[start:]
                    admitted = admissible_prefix(
                        arrays.cuda_blocks[rest], arrays.shared_mem[rest],
                        max_blocks, max_shmem,
                    )
                    record = execu.run_batch_ids(rest[:admitted], t, arena)
                    t = record.t_end
                    batches.append(record)
                    start += admitted
        sched = (PER_TASK_SCHED_US * dag.n_tasks
                 + PER_BATCH_SCHED_US * len(batches)) * 1e-6
        return ScheduleResult(
            scheduler=self.name,
            device=self._model.gpu.name,
            batches=batches,
            kernel_count=len(batches),
            task_count=dag.n_tasks,
            kernel_time=t,
            sched_overhead=sched,
            total_flops=sum(b.flops for b in batches),
            counts_by_type=dag.counts_by_type(),
        )


class StreamScheduler:
    """Per-task kernels distributed over ``n_streams`` CUDA streams.

    List scheduling: each ready task launches on the earliest-available
    stream no earlier than its dependencies' completion times.  Launch
    overheads overlap across streams, but kernel *bodies* still contend
    for the same SMs (modelled as serialised device time at single-task
    occupancy) — streams hide launch latency, not starvation, which is
    why the paper's stream variant loses to aggregate-and-batch.
    """

    name = "streams"

    def __init__(self, dag: TaskDAG, backend: ExecutionBackend,
                 model: GPUCostModel, n_streams: int = 4):
        self._dag = dag
        self._backend = backend
        self._model = model
        self._n_streams = n_streams

    def run(self) -> ScheduleResult:
        """Execute the DAG with stream-overlapped per-task kernels."""
        dag = self._dag
        if dag.n_tasks == 0:
            return empty_schedule_result(self.name, self._model.gpu.name, dag)
        arena = ScheduleArena(dag)
        arrays = arena.arrays
        fast = hasattr(self._backend, "batch_stats")
        no_atomic = np.zeros(1, dtype=bool)
        one = np.empty(1, dtype=np.int64)
        ready_time = np.zeros(dag.n_tasks)
        clocks = [0.0] * self._n_streams
        overhead = self._model.gpu.launch_overhead_us * 1e-6
        dispatch = self._model.gpu.dispatch_serial_us * 1e-6
        device_clock = 0.0   # SM time is shared across streams
        dispatch_clock = 0.0  # CPU-side submission is serialised
        heap = [(0.0, int(arrays.distance[t]), int(t))
                for t in arena.initial_ready()]
        heapq.heapify(heap)
        batches: list[BatchRecord] = []
        done = 0
        while heap:
            r_time, _, tid = heapq.heappop(heap)
            one[0] = tid
            if fast:
                flops, nbytes = self._backend.batch_stats(
                    one, no_atomic, arrays
                )
            else:
                stats = self._backend.run_task(dag.tasks[tid], False)
                flops, nbytes = stats.flops, stats.bytes
            blocks = int(arrays.cuda_blocks[tid])
            launch = KernelLaunch(
                cuda_blocks=blocks, flops=flops, bytes=nbytes,
                shared_mem_bytes=int(arrays.shared_mem[tid]), n_tasks=1,
            )
            s = min(range(self._n_streams), key=lambda q: clocks[q])
            issue = max(clocks[s], r_time, dispatch_clock)
            dispatch_clock = issue + dispatch
            body = self._model.launch_time(launch) - overhead
            start = max(issue + overhead, device_clock)
            end = start + body
            clocks[s] = end
            device_clock = end
            batches.append(BatchRecord(
                t_start=start, t_end=end, task_ids=[tid], n_tasks=1,
                cuda_blocks=blocks, flops=flops,
                bytes=nbytes,
                types={TaskType(int(arrays.type_code[tid])).name: 1},
            ))
            done += 1
            # kernel ends are monotone (device time is serialised), so the
            # completion that readies a task carries its max-predecessor end
            newly = arena.complete(one)
            ready_time[newly] = end
            for nxt in newly:
                heapq.heappush(
                    heap,
                    (float(ready_time[nxt]), int(arrays.distance[nxt]),
                     int(nxt))
                )
        if done != dag.n_tasks:
            raise AssertionError("stream scheduler missed tasks — DAG bug")
        sched = (PER_TASK_SCHED_US * dag.n_tasks) * 1e-6
        makespan = max(b.t_end for b in batches)
        return ScheduleResult(
            scheduler=self.name,
            device=self._model.gpu.name,
            batches=batches,
            kernel_count=len(batches),
            task_count=dag.n_tasks,
            kernel_time=makespan,
            sched_overhead=sched,
            total_flops=sum(b.flops for b in batches),
            counts_by_type=dag.counts_by_type(),
        )


SCHEDULER_NAMES = ("serial", "levelbatch", "streams", "trojan")
"""Names accepted by :func:`make_scheduler`."""


def make_scheduler(name: str, dag: TaskDAG, backend: ExecutionBackend,
                   model: GPUCostModel, **kwargs):
    """Factory over the four scheduling policies."""
    if name == "serial":
        return SerialScheduler(dag, backend, model)
    if name == "levelbatch":
        return LevelBatchScheduler(dag, backend, model)
    if name == "streams":
        return StreamScheduler(dag, backend, model, **kwargs)
    if name == "trojan":
        return TrojanHorseScheduler(dag, backend, model, **kwargs)
    raise ValueError(f"unknown scheduler {name!r}; choose from {SCHEDULER_NAMES}")

"""Algorithm 1: the Trojan Horse task-collection loop.

Wires the four modules together for a single process: the Prioritizer
classifies ready tasks, critical ones go straight to the Collector,
deferrable ones to the Container; the Collector tops itself up from the
Container until a hardware budget trips; the Executor launches the batch
and its completions unlock new ready tasks.

The hot loop is vectorized over a :class:`~repro.core.arena.ScheduleArena`:
ready tasks are ranked with one lexsort, the urgent/deferrable split is a
boolean-mask partition (the ranking is descending in chain length, so the
round's critical set is a prefix), Collector admission is a cumulative-sum
prefix, and batch completion decrements all successor counters with a
single ``np.subtract.at``.  The per-task reference implementation the
rewrite is verified against lives in :mod:`repro.core.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.arena import ScheduleArena
from repro.core.collector import admissible_prefix
from repro.core.container import ArrayContainer
from repro.core.dag import TaskDAG
from repro.core.executor import BatchRecord, ExecutionBackend, Executor
from repro.core.prioritizer import Prioritizer
from repro.gpusim.costmodel import GPUCostModel

#: CPU-side cost of classifying one task (Prioritizer + Container ops).
PER_TASK_SCHED_US = 0.5
#: CPU-side cost of assembling one batch (Collector + mapping array).
PER_BATCH_SCHED_US = 2.0


@dataclass
class ScheduleResult:
    """Outcome of scheduling one factorisation on one device.

    ``total_time`` is kernel timeline end plus the (serialised) CPU
    scheduling overhead — the decomposition Figure 11 reports.
    """

    scheduler: str
    device: str
    batches: list[BatchRecord]
    kernel_count: int
    task_count: int
    kernel_time: float
    sched_overhead: float
    total_flops: int
    counts_by_type: dict[str, int]

    @property
    def total_time(self) -> float:
        """End-to-end simulated numeric-phase time."""
        return self.kernel_time + self.sched_overhead

    @property
    def gflops(self) -> float:
        """Aggregate achieved throughput over the whole factorisation."""
        return self.total_flops / self.total_time / 1e9 if self.total_time else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Average tasks per kernel launch — the aggregation factor."""
        return self.task_count / self.kernel_count if self.kernel_count else 0.0

    def gflops_timeline(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-launch throughput series for Figure-8 style plots.

        Returns ``(t_end, gflops)`` arrays, one point per kernel launch.
        """
        t = np.asarray([b.t_end for b in self.batches])
        g = np.asarray([b.gflops for b in self.batches])
        return t, g

    def summary(self) -> dict:
        """Compact dict for benchmark tables."""
        return {
            "scheduler": self.scheduler,
            "device": self.device,
            "tasks": self.task_count,
            "kernels": self.kernel_count,
            "mean_batch": round(self.mean_batch_size, 2),
            "kernel_time_s": self.kernel_time,
            "sched_time_s": self.sched_overhead,
            "total_time_s": self.total_time,
            "gflops": self.gflops,
        }


def empty_schedule_result(name: str, device: str,
                          dag: TaskDAG) -> ScheduleResult:
    """A well-defined no-op schedule for an empty DAG.

    Scheduling zero tasks is zero batches in zero time — every scheduler
    returns this instead of tripping its stall assertion, and
    ``gflops``/``mean_batch_size`` degrade to 0.0 rather than dividing
    by zero.
    """
    return ScheduleResult(
        scheduler=name,
        device=device,
        batches=[],
        kernel_count=0,
        task_count=0,
        kernel_time=0.0,
        sched_overhead=0.0,
        total_flops=0,
        counts_by_type=dag.counts_by_type(),
    )


class TrojanHorseScheduler:
    """Single-process Algorithm-1 driver.

    Parameters
    ----------
    dag:
        The task DAG (never mutated — predecessor counts are copied).
    backend:
        Numeric or replay execution backend.
    model:
        GPU cost model providing launch times and the Collector budgets.
    critical_slack:
        Forwarded to the Prioritizer's criticality test.
    max_batch_tasks:
        Optional Collector cardinality cap.
    """

    name = "trojan"

    def __init__(self, dag: TaskDAG, backend: ExecutionBackend,
                 model: GPUCostModel, critical_slack: int = 0,
                 max_batch_tasks: int | None = None):
        self._dag = dag
        self._backend = backend
        self._model = model
        self._slack = critical_slack
        self._max_batch = max_batch_tasks

    def run(self) -> ScheduleResult:
        """Execute the whole DAG; returns the schedule record.

        Each round performs the two Algorithm-1 stages on arrays:

        * **Aggregate** — the newly ready tasks are ranked with one
          lexsort (heap pop order); the urgent set is the prefix within
          ``critical_slack`` of the longest ready chain.  Urgent tasks
          enter the Collector up to the cumulative-sum budget prefix;
          everything else lands in the :class:`ArrayContainer` in one
          block append (an urgent task bounced off a full Collector
          keeps its flag, §3.4).
        * **Batch** — the Collector tops itself up from the Container's
          ranked live slots, again as a budget prefix, and the batch
          launches through the Executor's vectorized path.  Completions
          decrement every successor counter with one ``np.subtract.at``.
        """
        dag = self._dag
        model = self._model
        if dag.n_tasks == 0:
            return empty_schedule_result(self.name, model.gpu.name, dag)
        arena = ScheduleArena(dag)
        arrays = arena.arrays
        cp = arena.cp
        max_blocks = model.gpu.max_resident_blocks
        max_shmem = model.gpu.shared_mem_total_bytes
        cont = ArrayContainer(dag.n_tasks)
        execu = Executor(model, self._backend)

        ready = arena.initial_ready()
        batches: list[BatchRecord] = []
        t = 0.0
        remaining = dag.n_tasks
        while remaining > 0:
            # ---- Aggregate stage: classify every ready task -------------
            if ready.size:
                ranked = Prioritizer.rank_ready(cp, arrays.distance, ready)
                n_urgent = Prioritizer.urgent_prefix(cp[ranked], self._slack)
                urgent = ranked[:n_urgent]
                admitted = admissible_prefix(
                    arrays.cuda_blocks[urgent], arrays.shared_mem[urgent],
                    max_blocks, max_shmem, max_tasks=self._max_batch,
                )
                batch = urgent[:admitted]
                if admitted < n_urgent:
                    # Collector full before all urgent tasks fit: defer
                    # the rest, keeping the bounced task's flag (§3.4)
                    bounced = ranked[admitted:admitted + 1]
                    cont.push_ids(bounced, arrays.distance[bounced],
                                  arrays.k[bounced], urgent=True)
                    rest = ranked[admitted + 1:]
                else:
                    rest = ranked[n_urgent:]
                cont.push_ids(rest, arrays.distance[rest], arrays.k[rest])
            else:
                batch = np.empty(0, dtype=np.int64)
            # ---- Batch stage: top up from the Container ------------------
            if not cont.is_empty:
                slots = cont.ranked_slots()
                tids = cont.tids_of(slots)
                topped = admissible_prefix(
                    arrays.cuda_blocks[tids], arrays.shared_mem[tids],
                    max_blocks, max_shmem,
                    base_blocks=int(arrays.cuda_blocks[batch].sum()),
                    base_shmem=int(arrays.shared_mem[batch].sum()),
                    base_count=int(batch.size),
                    max_tasks=self._max_batch, stop_when_full=True,
                )
                if topped:
                    cont.remove(slots[:topped])
                    batch = np.concatenate([batch, tids[:topped]])
            if batch.size == 0:
                raise AssertionError(
                    "scheduler stalled with work remaining — DAG bug"
                )
            record = execu.run_batch_ids(batch, t, arena)
            t = record.t_end
            batches.append(record)
            remaining -= batch.size
            ready = arena.complete(batch)
        sched = (PER_TASK_SCHED_US * dag.n_tasks
                 + PER_BATCH_SCHED_US * len(batches)) * 1e-6
        return ScheduleResult(
            scheduler=self.name,
            device=model.gpu.name,
            batches=batches,
            kernel_count=len(batches),
            task_count=dag.n_tasks,
            kernel_time=t,
            sched_overhead=sched,
            total_flops=sum(b.flops for b in batches),
            counts_by_type=dag.counts_by_type(),
        )

"""Algorithm 1: the Trojan Horse task-collection loop.

Wires the four modules together for a single process: the Prioritizer
classifies ready tasks, critical ones go straight to the Collector,
deferrable ones to the Container; the Collector tops itself up from the
Container until a hardware budget trips; the Executor launches the batch
and its completions unlock new ready tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.collector import Collector
from repro.core.container import Container
from repro.core.dag import TaskDAG
from repro.core.executor import BatchRecord, ExecutionBackend, Executor
from repro.core.prioritizer import Prioritizer
from repro.gpusim.costmodel import GPUCostModel

#: CPU-side cost of classifying one task (Prioritizer + Container ops).
PER_TASK_SCHED_US = 0.5
#: CPU-side cost of assembling one batch (Collector + mapping array).
PER_BATCH_SCHED_US = 2.0


@dataclass
class ScheduleResult:
    """Outcome of scheduling one factorisation on one device.

    ``total_time`` is kernel timeline end plus the (serialised) CPU
    scheduling overhead — the decomposition Figure 11 reports.
    """

    scheduler: str
    device: str
    batches: list[BatchRecord]
    kernel_count: int
    task_count: int
    kernel_time: float
    sched_overhead: float
    total_flops: int
    counts_by_type: dict[str, int]

    @property
    def total_time(self) -> float:
        """End-to-end simulated numeric-phase time."""
        return self.kernel_time + self.sched_overhead

    @property
    def gflops(self) -> float:
        """Aggregate achieved throughput over the whole factorisation."""
        return self.total_flops / self.total_time / 1e9 if self.total_time else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Average tasks per kernel launch — the aggregation factor."""
        return self.task_count / self.kernel_count if self.kernel_count else 0.0

    def gflops_timeline(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-launch throughput series for Figure-8 style plots.

        Returns ``(t_end, gflops)`` arrays, one point per kernel launch.
        """
        t = np.asarray([b.t_end for b in self.batches])
        g = np.asarray([b.gflops for b in self.batches])
        return t, g

    def summary(self) -> dict:
        """Compact dict for benchmark tables."""
        return {
            "scheduler": self.scheduler,
            "device": self.device,
            "tasks": self.task_count,
            "kernels": self.kernel_count,
            "mean_batch": round(self.mean_batch_size, 2),
            "kernel_time_s": self.kernel_time,
            "sched_time_s": self.sched_overhead,
            "total_time_s": self.total_time,
            "gflops": self.gflops,
        }


class TrojanHorseScheduler:
    """Single-process Algorithm-1 driver.

    Parameters
    ----------
    dag:
        The task DAG (never mutated — predecessor counts are copied).
    backend:
        Numeric or replay execution backend.
    model:
        GPU cost model providing launch times and the Collector budgets.
    critical_slack:
        Forwarded to the Prioritizer's criticality test.
    max_batch_tasks:
        Optional Collector cardinality cap.
    """

    name = "trojan"

    def __init__(self, dag: TaskDAG, backend: ExecutionBackend,
                 model: GPUCostModel, critical_slack: int = 0,
                 max_batch_tasks: int | None = None):
        self._dag = dag
        self._backend = backend
        self._model = model
        self._slack = critical_slack
        self._max_batch = max_batch_tasks

    def run(self) -> ScheduleResult:
        """Execute the whole DAG; returns the schedule record."""
        dag = self._dag
        pred = dag.pred_count.copy()
        prio = Prioritizer(dag, dag.critical_path_lengths(),
                           critical_slack=self._slack)
        cont = Container()
        coll = Collector(self._model.gpu, max_tasks=self._max_batch)
        execu = Executor(self._model, self._backend)
        prio.push_many(dag.initial_ready())

        batches: list[BatchRecord] = []
        t = 0.0
        remaining = dag.n_tasks
        while remaining > 0:
            coll.reset()
            # ---- Aggregate stage: classify every ready task -------------
            prio.begin_round()
            while prio.has_ready:
                tid = prio.pop_most_urgent()
                task = dag.tasks[tid]
                if prio.is_critical(tid):
                    if not coll.try_push(task):
                        # Collector full before all urgent tasks fit:
                        # defer the rest, keeping the urgent flag (§3.4)
                        cont.push(task, urgent=True)
                        for other in prio.drain():
                            cont.push(dag.tasks[other])
                        break
                else:
                    cont.push(task)
            # ---- Batch stage: top up from the Container ------------------
            while not coll.is_full and not cont.is_empty:
                task = dag.tasks[cont.peek()]
                if coll.try_push(task):
                    cont.pop()
                else:
                    break
            if coll.is_empty:
                raise AssertionError(
                    "scheduler stalled with work remaining — DAG bug"
                )
            record = execu.run_batch(coll.tasks, t)
            t = record.t_end
            batches.append(record)
            remaining -= len(coll.tasks)
            for task in coll.tasks:
                for s in dag.successors[task.tid]:
                    pred[s] -= 1
                    if pred[s] == 0:
                        prio.push_ready(s)
        sched = (PER_TASK_SCHED_US * dag.n_tasks
                 + PER_BATCH_SCHED_US * len(batches)) * 1e-6
        return ScheduleResult(
            scheduler=self.name,
            device=self._model.gpu.name,
            batches=batches,
            kernel_count=len(batches),
            task_count=dag.n_tasks,
            kernel_time=t,
            sched_overhead=sched,
            total_flops=sum(b.flops for b in batches),
            counts_by_type=dag.counts_by_type(),
        )

"""The original per-task Algorithm-1 loop, kept as a semantic oracle.

:class:`~repro.core.scheduler.TrojanHorseScheduler` now runs a
vectorized arena loop; this module preserves the pre-rewrite
implementation — heap pops through the :class:`Prioritizer`, per-task
``try_push`` into the :class:`Collector`, per-successor decrements —
bit-for-bit.  It exists for three reasons:

* the golden tests pin the vectorized loop's batch decomposition
  against this one on the seed matrices;
* the differential suite factorises through both and checks the factors
  agree;
* ``benchmarks/test_sched_overhead.py`` measures the per-task
  scheduling wall-time the rewrite removed.

Do not optimise this file: being slow and obviously-sequential is its
job.
"""

from __future__ import annotations

from repro.core.collector import Collector
from repro.core.container import Container
from repro.core.dag import TaskDAG
from repro.core.executor import BatchRecord, ExecutionBackend, Executor
from repro.core.prioritizer import Prioritizer
from repro.core.scheduler import (
    PER_BATCH_SCHED_US,
    PER_TASK_SCHED_US,
    ScheduleResult,
    empty_schedule_result,
)
from repro.gpusim.costmodel import GPUCostModel


class ReferenceTrojanScheduler:
    """Single-process Algorithm-1 driver, original per-task hot loop.

    Same constructor and semantics as
    :class:`~repro.core.scheduler.TrojanHorseScheduler`; kept as the
    oracle the vectorized loop is verified against.
    """

    name = "trojan"

    def __init__(self, dag: TaskDAG, backend: ExecutionBackend,
                 model: GPUCostModel, critical_slack: int = 0,
                 max_batch_tasks: int | None = None):
        self._dag = dag
        self._backend = backend
        self._model = model
        self._slack = critical_slack
        self._max_batch = max_batch_tasks

    def run(self) -> ScheduleResult:
        """Execute the whole DAG; returns the schedule record."""
        dag = self._dag
        if dag.n_tasks == 0:
            return empty_schedule_result(self.name, self._model.gpu.name, dag)
        pred = dag.pred_count.copy()
        prio = Prioritizer(dag, dag.critical_path_lengths(),
                           critical_slack=self._slack)
        cont = Container()
        coll = Collector(self._model.gpu, max_tasks=self._max_batch)
        execu = Executor(self._model, self._backend)
        prio.push_many(dag.initial_ready())

        batches: list[BatchRecord] = []
        t = 0.0
        remaining = dag.n_tasks
        while remaining > 0:
            coll.reset()
            # ---- Aggregate stage: classify every ready task -------------
            prio.begin_round()
            while prio.has_ready:
                tid = prio.pop_most_urgent()
                task = dag.tasks[tid]
                if prio.is_critical(tid):
                    if not coll.try_push(task):
                        # Collector full before all urgent tasks fit:
                        # defer the rest, keeping the urgent flag (§3.4)
                        cont.push(task, urgent=True)
                        for other in prio.drain():
                            cont.push(dag.tasks[other])
                        break
                else:
                    cont.push(task)
            # ---- Batch stage: top up from the Container ------------------
            while not coll.is_full and not cont.is_empty:
                task = dag.tasks[cont.peek()]
                if coll.try_push(task):
                    cont.pop()
                else:
                    break
            if coll.is_empty:
                raise AssertionError(
                    "scheduler stalled with work remaining — DAG bug"
                )
            record = execu.run_batch(coll.tasks, t)
            t = record.t_end
            batches.append(record)
            remaining -= len(coll.tasks)
            for task in coll.tasks:
                for s in dag.successors[task.tid]:
                    pred[s] -= 1
                    if pred[s] == 0:
                        prio.push_ready(s)
        sched = (PER_TASK_SCHED_US * dag.n_tasks
                 + PER_BATCH_SCHED_US * len(batches)) * 1e-6
        return ScheduleResult(
            scheduler=self.name,
            device=self._model.gpu.name,
            batches=batches,
            kernel_count=len(batches),
            task_count=dag.n_tasks,
            kernel_time=t,
            sched_overhead=sched,
            total_flops=sum(b.flops for b in batches),
            counts_by_type=dag.counts_by_type(),
        )

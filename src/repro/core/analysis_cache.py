"""Pattern-keyed LRU cache for the symbolic-analysis products.

The symbolic phase — element-level fill, block fill, tile nnz split and
the task DAG — depends only on the *sparsity pattern* of the (permuted)
matrix and the tile partition, never on the numeric values.  Workloads
that factorise many same-pattern matrices (circuit-simulation Newton
loops, parameter sweeps, the Figure-10 200-matrix collection with
repeated generators) therefore pay for the analysis exactly once: the
cache key is a digest of ``indptr``/``indices`` plus the partition
boundaries, and the cached value is the finished analysis.

Cached objects are shared, which is safe by construction: ``FillResult``
is frozen, the block-fill map and tile-nnz dict are never written after
construction, and :class:`~repro.core.dag.TaskDAG` is immutable at run
time (schedulers copy the predecessor counters).  Sharing the DAG also
shares its lazily built successor CSR index, task arrays and
critical-path ranks, so a cache hit skips the scheduler's static
analysis too.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable

import numpy as np


def pattern_digest(a) -> str:
    """Digest of a CSR matrix's sparsity pattern (values excluded).

    Hashes ``shape``, ``indptr`` *and* ``indices`` — two matrices with
    equal shape and nnz but different patterns never collide.
    """
    h = hashlib.sha1()
    h.update(np.asarray(a.shape, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(a.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(a.indices, dtype=np.int64).tobytes())
    return h.hexdigest()


def partition_digest(part) -> str:
    """Digest of a tile partition's boundaries."""
    h = hashlib.sha1()
    h.update(np.ascontiguousarray(part.boundaries, dtype=np.int64).tobytes())
    return h.hexdigest()


class AnalysisCache:
    """Bounded LRU over namespaced analysis keys.

    Thread-safe: the solver server shares one cache across concurrent
    connections, so every compound operation — the hit/miss counters,
    the LRU move-to-front, eviction, and the :meth:`stats` snapshot —
    runs under one re-entrant lock.  On a miss the ``factory`` executes
    *inside* the lock: concurrent same-key lookups compute the analysis
    exactly once and everyone shares the single cached product (the
    analyses are pure, so holding the lock is safe; it trades some
    cross-pattern compute overlap for single-compute semantics).

    Parameters
    ----------
    capacity:
        Maximum number of stored entries; the least recently used entry
        is evicted on overflow.  Each entry is one analysis product (an
        element fill, or one block-analysis triple), so memory scales
        with the fill size of the ``capacity`` most recent patterns.
    """

    def __init__(self, capacity: int = 32):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self._store: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # generic LRU plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._store

    def get_or_compute(self, key: str, factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss."""
        with self._lock:
            if key in self._store:
                self.hits += 1
                self._store.move_to_end(key)
                return self._store[key]
            self.misses += 1
            value = factory()
            self._store[key] = value
            if len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self.evictions += 1
            return value

    def clear(self) -> None:
        """Drop every entry and reset the accounting."""
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    #: counter-reset alias — the server's ``stats`` op documents both
    reset = clear

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Accounting snapshot for benches and tests.

        Taken atomically: ``hits + misses`` always equals the number of
        completed lookups even while other threads are mid-lookup.
        """
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._store),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
            }

    # ------------------------------------------------------------------
    # the two analysis namespaces
    # ------------------------------------------------------------------
    def fill_for(self, a, compute: Callable[[], Any]):
        """Memoized element-level fill (``symbolic_fill``) for ``a``."""
        return self.get_or_compute(f"fill:{pattern_digest(a)}", compute)

    def block_analysis_for(self, a, part, sparse_tiles: bool,
                           compute: Callable[[], Any]):
        """Memoized block-level products for ``(pattern, partition)``.

        The value is whatever ``compute`` returns — the engine stores a
        ``(block_fill, tile_nnz, TaskDAG)`` triple.  ``sparse_tiles`` is
        part of the key because it changes the DAG's task accounting.
        """
        key = (f"dag:{pattern_digest(a)}:{partition_digest(part)}"
               f":{int(bool(sparse_tiles))}")
        return self.get_or_compute(key, compute)


def merge_stats(stats_list) -> dict:
    """Aggregate several :meth:`AnalysisCache.stats` snapshots.

    Used by the multiprocess sweep runner to fold per-worker cache
    accounting into one table row: counters are summed, ``hit_rate`` is
    recomputed over the combined lookup count, and ``capacity`` /
    ``entries`` report totals across the (disjoint) worker caches.
    """
    total = {"entries": 0, "capacity": 0, "hits": 0, "misses": 0,
             "evictions": 0}
    for s in stats_list:
        for key in total:
            total[key] += s[key]
    lookups = total["hits"] + total["misses"]
    total["hit_rate"] = total["hits"] / lookups if lookups else 0.0
    return total


#: Process-wide default cache the solver drivers share, sized for a
#: couple of solver/partition combinations over a handful of patterns.
DEFAULT_ANALYSIS_CACHE = AnalysisCache(capacity=32)

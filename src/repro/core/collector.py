"""Batch-stage Module 1: the Collector (paper §3.4).

Assembles the next batch under two hardware budgets derived from the GPU
spec: total resident CUDA blocks (``SMs × blocks-per-SM``) and total
shared memory.  A task is admitted only if both budgets still hold — with
the exception that a single oversized task may occupy an empty Collector
alone (it must run *somehow*).
"""

from __future__ import annotations

from repro.core.task import Task
from repro.gpusim.specs import GPUSpec


class Collector:
    """Capacity-bounded batch assembly.

    Parameters
    ----------
    gpu:
        Hardware budget source.
    max_tasks:
        Optional hard cap on batch cardinality (the block→task mapping
        array is cheap, so the default is effectively unbounded).
    """

    def __init__(self, gpu: GPUSpec, max_tasks: int | None = None):
        self._gpu = gpu
        self._max_blocks = gpu.max_resident_blocks
        self._max_shmem = gpu.shared_mem_total_bytes
        self._max_tasks = max_tasks
        self.tasks: list[Task] = []
        self._blocks = 0
        self._shmem = 0

    def reset(self) -> None:
        """Empty the Collector for the next batch."""
        self.tasks = []
        self._blocks = 0
        self._shmem = 0

    @property
    def cuda_blocks(self) -> int:
        """CUDA blocks of the batch assembled so far."""
        return self._blocks

    @property
    def shared_mem_bytes(self) -> int:
        """Shared-memory footprint of the batch so far."""
        return self._shmem

    @property
    def is_empty(self) -> bool:
        """No tasks admitted yet."""
        return not self.tasks

    @property
    def is_full(self) -> bool:
        """Either budget exhausted (no further *typical* task fits)."""
        return (
            self._blocks >= self._max_blocks
            or self._shmem >= self._max_shmem
            or (self._max_tasks is not None and len(self.tasks) >= self._max_tasks)
        )

    def fits(self, task: Task) -> bool:
        """Would this task respect both budgets?"""
        if self._max_tasks is not None and len(self.tasks) >= self._max_tasks:
            return False
        if self.is_empty:
            return True  # an oversized task may run alone
        return (
            self._blocks + task.cuda_blocks <= self._max_blocks
            and self._shmem + task.shared_mem_bytes <= self._max_shmem
        )

    def try_push(self, task: Task) -> bool:
        """Admit the task if capacity permits; returns success."""
        if not self.fits(task):
            return False
        self.tasks.append(task)
        self._blocks += task.cuda_blocks
        self._shmem += task.shared_mem_bytes
        return True

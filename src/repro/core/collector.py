"""Batch-stage Module 1: the Collector (paper §3.4).

Assembles the next batch under two hardware budgets derived from the GPU
spec: total resident CUDA blocks (``SMs × blocks-per-SM``) and total
shared memory.  A task is admitted only if both budgets still hold — with
the exception that a single oversized task may occupy an empty Collector
alone (it must run *somehow*).
"""

from __future__ import annotations

import numpy as np

from repro.core.task import Task
from repro.gpusim.specs import GPUSpec


def admissible_prefix(blocks: np.ndarray, shmem: np.ndarray,
                      max_blocks: int, max_shmem: int,
                      base_blocks: int = 0, base_shmem: int = 0,
                      base_count: int = 0, max_tasks: int | None = None,
                      stop_when_full: bool = False) -> int:
    """How many leading candidates a sequential ``try_push`` run admits.

    Vectorized equivalent of feeding ``blocks[q], shmem[q]`` tasks one by
    one into a :class:`Collector` holding ``base_*`` resources already:
    running budget totals become cumulative sums and the admission rule a
    boolean mask, so one call replaces the per-task Python loop of the
    Aggregate/Batch stages.

    Parameters
    ----------
    blocks, shmem:
        Per-candidate CUDA-block and shared-memory footprints, in the
        order the sequential loop would offer them.
    max_blocks, max_shmem, max_tasks:
        The Collector budgets.
    base_blocks, base_shmem, base_count:
        Resources already admitted before the first candidate.
    stop_when_full:
        Also stop when the Collector is already *full* before a push
        (the Batch-stage top-up checks ``is_full`` between pushes; the
        Aggregate stage does not).

    Returns
    -------
    int
        Length of the admitted prefix (0..len(blocks)).
    """
    m = len(blocks)
    if m == 0:
        return 0
    cum_b = base_blocks + np.cumsum(blocks)
    cum_s = base_shmem + np.cumsum(shmem)
    count_after = base_count + np.arange(1, m + 1)
    ok = (cum_b <= max_blocks) & (cum_s <= max_shmem)
    # an oversized task may occupy an empty Collector alone
    ok |= count_after == 1
    if max_tasks is not None:
        ok &= count_after <= max_tasks
    if stop_when_full:
        full_before = ((cum_b - blocks) >= max_blocks) \
            | ((cum_s - shmem) >= max_shmem)
        if max_tasks is not None:
            full_before |= (count_after - 1) >= max_tasks
        ok &= ~full_before
    bad = np.flatnonzero(~ok)
    return int(bad[0]) if bad.size else m


class Collector:
    """Capacity-bounded batch assembly.

    Parameters
    ----------
    gpu:
        Hardware budget source.
    max_tasks:
        Optional hard cap on batch cardinality (the block→task mapping
        array is cheap, so the default is effectively unbounded).
    """

    def __init__(self, gpu: GPUSpec, max_tasks: int | None = None):
        self._gpu = gpu
        self._max_blocks = gpu.max_resident_blocks
        self._max_shmem = gpu.shared_mem_total_bytes
        self._max_tasks = max_tasks
        self.tasks: list[Task] = []
        self._blocks = 0
        self._shmem = 0

    def reset(self) -> None:
        """Empty the Collector for the next batch."""
        self.tasks = []
        self._blocks = 0
        self._shmem = 0

    @property
    def cuda_blocks(self) -> int:
        """CUDA blocks of the batch assembled so far."""
        return self._blocks

    @property
    def shared_mem_bytes(self) -> int:
        """Shared-memory footprint of the batch so far."""
        return self._shmem

    @property
    def is_empty(self) -> bool:
        """No tasks admitted yet."""
        return not self.tasks

    @property
    def is_full(self) -> bool:
        """Either budget exhausted (no further *typical* task fits)."""
        return (
            self._blocks >= self._max_blocks
            or self._shmem >= self._max_shmem
            or (self._max_tasks is not None and len(self.tasks) >= self._max_tasks)
        )

    def fits(self, task: Task) -> bool:
        """Would this task respect both budgets?"""
        if self._max_tasks is not None and len(self.tasks) >= self._max_tasks:
            return False
        if self.is_empty:
            return True  # an oversized task may run alone
        return (
            self._blocks + task.cuda_blocks <= self._max_blocks
            and self._shmem + task.shared_mem_bytes <= self._max_shmem
        )

    def try_push(self, task: Task) -> bool:
        """Admit the task if capacity permits; returns success."""
        if not self.fits(task):
            return False
        self.tasks.append(task)
        self._blocks += task.cuda_blocks
        self._shmem += task.shared_mem_bytes
        return True

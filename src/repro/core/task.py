"""Task descriptors for the numeric-factorisation and solve DAGs.

A task is one of the four factorisation kernel operations on one tile
(or tile triple for SSSSM), or one of the two triangular-solve (SpTRSV)
operations on a block row of right-hand sides.  Its resource footprint
follows the paper's CUDA-block mapping (§3.4 / Figure 7): GETRF one
block per column, TSTRF one per row, GEESM/SSSSM one per column, and the
SpTRSV tasks one block per right-hand-side column; each block stages one
row/column in shared memory when it fits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

_SHARED_MEM_CAP_BYTES = 48 * 1024  # per-CUDA-block staging limit


class TaskType(enum.IntEnum):
    """The Executor kernel types: the paper's four factorisation kernels
    plus the two solve-phase (SpTRSV) kernels of the solve DAG."""

    GETRF = 0  #: LU factorisation of a diagonal tile
    TSTRF = 1  #: row-panel triangular solve, L(i,k) = A(i,k)·U(k,k)⁻¹
    GEESM = 2  #: column-panel triangular solve, U(k,j) = L(k,k)⁻¹·A(k,j)
    SSSSM = 3  #: Schur-complement update, A(i,j) −= L(i,k)·U(k,j)
    SPTRSV_DIAG = 4    #: diagonal solve of one RHS block, y_i = T(i,i)⁻¹·y_i
    SPTRSV_UPDATE = 5  #: off-diagonal RHS update, y_i −= T(i,k)·y_k


@dataclass
class Task:
    """One schedulable kernel task.

    Attributes
    ----------
    tid:
        Dense task id (index into the DAG arrays).
    type:
        Kernel type.
    k, i, j:
        Elimination step and tile coordinates.  GETRF has ``i == j == k``;
        TSTRF is the (i, k) tile; GEESM the (k, j) tile; SSSSM updates
        tile (i, j) using step-``k`` panels.  Solve tasks write RHS block
        ``i`` (encoded as tile (i, i)): SPTRSV_DIAG has ``i == j == k``,
        SPTRSV_UPDATE applies factor tile (i, k) with ``j == i``.
    rows, cols:
        Dimensions of the task's output tile.
    nnz:
        Structural nonzeros of the output tile (dense tiles: rows·cols).
    sparse:
        Whether the tile kernel runs in sparse (gather/compute/scatter)
        mode — affects flop/byte accounting only.
    atomic:
        SSSSM only: the update may share its target tile with other
        batched SSSSM tasks and must accumulate atomically (paper's
        9S0/9S1 case).
    flops_est, bytes_est:
        Structural work estimates used for scheduling decisions and for
        replay-mode simulation; numeric execution refines them with exact
        counts.
    owner:
        Owning process rank in distributed runs (0 for single process).
    """

    tid: int
    type: TaskType
    k: int
    i: int
    j: int
    rows: int
    cols: int
    nnz: int
    sparse: bool = False
    atomic: bool = False
    flops_est: int = 0
    bytes_est: int = 0
    owner: int = 0

    @property
    def cuda_blocks(self) -> int:
        """CUDA blocks per the paper's Figure-7 mapping."""
        if self.type == TaskType.TSTRF:
            return max(1, self.rows)
        return max(1, self.cols)

    @property
    def shared_mem_bytes(self) -> int:
        """Per-task shared-memory footprint (one staged row/column per
        CUDA block, capped at the hardware per-block limit; oversized
        rows/columns fall back to global memory and cost nothing here)."""
        if self.type == TaskType.TSTRF:
            vector = self.cols * 8
        else:
            vector = self.rows * 8
        if vector > _SHARED_MEM_CAP_BYTES:
            return 0
        return self.cuda_blocks * vector

    @property
    def distance(self) -> int:
        """Distance of the output tile to the main diagonal — the
        Prioritizer's urgency metric (§3.3)."""
        return abs(self.i - self.j)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Task({self.tid}:{self.type.name} k={self.k} "
            f"({self.i},{self.j}) {self.rows}x{self.cols})"
        )

"""The Trojan Horse strategy: Aggregate and Batch stages (paper §3).

Four modules over two stages, mirroring Figure 5:

* Aggregate stage (CPU side):
  :class:`~repro.core.prioritizer.Prioritizer` tags ready tasks and
  separates critical-path tasks from deferrable ones;
  :class:`~repro.core.container.Container` is the priority heap of
  deferred tasks.
* Batch stage (GPU side):
  :class:`~repro.core.collector.Collector` assembles a batch under the
  GPU's CUDA-block and shared-memory budgets;
  :class:`~repro.core.executor.Executor` runs the heterogeneous batch as
  one kernel through a block→task mapping array.

:class:`~repro.core.scheduler.TrojanHorseScheduler` wires the four modules
into Algorithm 1; the baseline schedulers the paper compares against live
in :mod:`repro.core.baselines`.
"""

from repro.core.task import Task, TaskType
from repro.core.dag import TaskDAG, TaskArrays, build_block_dag
from repro.core.arena import ScheduleArena
from repro.core.analysis_cache import (
    AnalysisCache,
    DEFAULT_ANALYSIS_CACHE,
    pattern_digest,
    partition_digest,
)
from repro.core.prioritizer import Prioritizer
from repro.core.container import Container, ArrayContainer
from repro.core.collector import Collector, admissible_prefix
from repro.core.executor import (
    Executor,
    ExecutionBackend,
    ReplayBackend,
    EstimateBackend,
    BlockTaskMapping,
    BatchRecord,
)
from repro.core.scheduler import (
    TrojanHorseScheduler,
    ScheduleResult,
    empty_schedule_result,
)
from repro.core.reference import ReferenceTrojanScheduler
from repro.core.baselines import (
    SerialScheduler,
    LevelBatchScheduler,
    StreamScheduler,
    make_scheduler,
    SCHEDULER_NAMES,
)
from repro.core.staticanalysis import (
    parallelism_profile,
    dag_statistics,
    validate_schedule,
)
from repro.core.fusion import FusedBackend, FusionResult, merge_schur_tasks
from repro.core.solve_dag import (
    build_solve_dag,
    solve_sources,
    LevelSetScheduler,
    make_solve_scheduler,
    compare_solve_schedulers,
    SOLVE_SCHEDULER_NAMES,
)

__all__ = [
    "Task",
    "TaskType",
    "TaskDAG",
    "TaskArrays",
    "build_block_dag",
    "ScheduleArena",
    "AnalysisCache",
    "DEFAULT_ANALYSIS_CACHE",
    "pattern_digest",
    "partition_digest",
    "Prioritizer",
    "Container",
    "ArrayContainer",
    "Collector",
    "admissible_prefix",
    "Executor",
    "ExecutionBackend",
    "ReplayBackend",
    "EstimateBackend",
    "BlockTaskMapping",
    "BatchRecord",
    "TrojanHorseScheduler",
    "ScheduleResult",
    "empty_schedule_result",
    "ReferenceTrojanScheduler",
    "SerialScheduler",
    "LevelBatchScheduler",
    "StreamScheduler",
    "make_scheduler",
    "SCHEDULER_NAMES",
    "parallelism_profile",
    "dag_statistics",
    "validate_schedule",
    "FusedBackend",
    "FusionResult",
    "merge_schur_tasks",
    "build_solve_dag",
    "solve_sources",
    "LevelSetScheduler",
    "make_solve_scheduler",
    "compare_solve_schedulers",
    "SOLVE_SCHEDULER_NAMES",
]

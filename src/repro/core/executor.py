"""Batch-stage Module 2: the Executor (paper §3.4, Figure 7).

Executes a heterogeneous batch as a single simulated kernel launch.  The
block→task mapping array of the paper is built verbatim: element ``t``
holds the starting CUDA-block index of task ``t``, and a CUDA block finds
its task by binary search — :class:`BlockTaskMapping` reproduces and tests
that lookup.

Numeric execution is delegated to an :class:`ExecutionBackend` so the same
Executor drives both real tile arithmetic (the solver engines) and
replay-mode scheduling studies (recorded per-task stats, no numerics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.core.task import Task, TaskType
from repro.gpusim.costmodel import GPUCostModel, KernelLaunch
from repro.kernels.tilekernels import KernelStats
from repro.verify.hazards import batch_atomic_flags


class ExecutionBackend(Protocol):
    """Anything that can run one task and report its exact work."""

    def run_task(self, task: Task, atomic: bool) -> KernelStats:
        """Execute (or account) one task; ``atomic`` marks an in-batch
        write conflict on the task's target tile."""
        ...


class ReplayBackend:
    """Backend that replays stats recorded by a previous numeric run.

    Enables cheap scheduling studies: factorise once numerically, then
    simulate every scheduler/GPU combination against the recorded exact
    per-task work.
    """

    def __init__(self, stats: dict[int, KernelStats]):
        self._stats = stats
        self._flops_arr = np.empty(0, dtype=np.int64)
        self._bytes_arr = np.empty(0, dtype=np.int64)
        self._have = np.empty(0, dtype=bool)
        # sorted-by-tid snapshot of the stats dict, built on first use
        self._tids_sorted: np.ndarray | None = None
        self._flops_by_tid: np.ndarray | None = None
        self._bytes_by_tid: np.ndarray | None = None
        self.rebuilds = 0

    def run_task(self, task: Task, atomic: bool) -> KernelStats:
        """Return the recorded stats for this task id."""
        return self._stats[task.tid]

    def _ensure_arrays(self, n: int) -> None:
        """Grow the tid-indexed gather arrays to cover ``n`` tasks.

        Growth is incremental: the existing prefix is copied and only the
        stats with tids in the new ``[old, n)`` range are scattered in
        (vectorized via a one-time sorted snapshot of the dict), so
        several engines of different DAG sizes sharing one backend cost
        one small extension each instead of a full O(S) Python rebuild
        per size change.  ``rebuilds`` counts the extensions.
        """
        if self._flops_arr.size >= n:
            return
        if self._tids_sorted is None:
            count = len(self._stats)
            tids = np.fromiter(self._stats.keys(), dtype=np.int64,
                               count=count)
            order = np.argsort(tids)
            self._tids_sorted = tids[order]
            self._flops_by_tid = np.fromiter(
                (s.flops for s in self._stats.values()), dtype=np.int64,
                count=count)[order]
            self._bytes_by_tid = np.fromiter(
                (s.bytes for s in self._stats.values()), dtype=np.int64,
                count=count)[order]
        old = self._flops_arr.size
        flops = np.zeros(n, dtype=np.int64)
        nbytes = np.zeros(n, dtype=np.int64)
        have = np.zeros(n, dtype=bool)
        flops[:old] = self._flops_arr
        nbytes[:old] = self._bytes_arr
        have[:old] = self._have
        lo = int(np.searchsorted(self._tids_sorted, old))
        hi = int(np.searchsorted(self._tids_sorted, n))
        fresh = self._tids_sorted[lo:hi]
        flops[fresh] = self._flops_by_tid[lo:hi]
        nbytes[fresh] = self._bytes_by_tid[lo:hi]
        have[fresh] = True
        self._flops_arr = flops
        self._bytes_arr = nbytes
        self._have = have
        self.rebuilds += 1

    def stat_arrays(self, n: int) -> tuple[np.ndarray, np.ndarray,
                                           np.ndarray]:
        """tid-indexed ``(flops, bytes, recorded)`` views over ``n`` tasks.

        The distsim arena engine uses these to precompute every
        single-task launch time in one vectorized pass; the ``recorded``
        mask lets it replicate :meth:`run_task`'s ``KeyError`` for tasks
        with no recorded stats.
        """
        self._ensure_arrays(n)
        return self._flops_arr[:n], self._bytes_arr[:n], self._have[:n]

    def batch_stats(self, tids: np.ndarray, atomic: np.ndarray,
                    arrays) -> tuple[int, int]:
        """Vectorized batch totals: one gather-sum over the stat arrays.

        Raises ``KeyError`` like :meth:`run_task` if a requested task has
        no recorded stats.
        """
        self._ensure_arrays(arrays.nnz.size)
        if not self._have[tids].all():
            missing = int(tids[~self._have[tids]][0])
            raise KeyError(missing)
        return (int(self._flops_arr[tids].sum()),
                int(self._bytes_arr[tids].sum()))


class EstimateBackend:
    """Backend that uses the structural estimates attached to each task.

    Used before any numeric run exists (e.g. pure scheduling analyses) —
    estimates come from the symbolic fill, so they are structure-exact for
    dense tiles and slightly conservative for sparse ones.
    """

    def run_task(self, task: Task, atomic: bool) -> KernelStats:
        """Return the task's structural estimate as its stats."""
        extra = task.nnz * 8 if atomic else 0
        return KernelStats(flops=task.flops_est, bytes=task.bytes_est + extra)

    def batch_stats(self, tids: np.ndarray, atomic: np.ndarray,
                    arrays) -> tuple[int, int]:
        """Vectorized batch totals over the structural-estimate columns."""
        flops = int(arrays.flops_est[tids].sum())
        nbytes = int(arrays.bytes_est[tids].sum()
                     + 8 * arrays.nnz[tids[atomic]].sum())
        return flops, nbytes


@dataclass(frozen=True)
class BlockTaskMapping:
    """The paper's CUDA-block→task mapping array.

    ``starts[t]`` is the first CUDA block of task ``t``; block ``b``
    executes the task returned by :meth:`task_of_block` — a binary search,
    exactly as in the real kernel.
    """

    starts: np.ndarray
    total_blocks: int

    @classmethod
    def build(cls, tasks: list[Task]) -> "BlockTaskMapping":
        """Lay the batch's tasks out over consecutive CUDA blocks."""
        blocks = np.fromiter((t.cuda_blocks for t in tasks),
                             dtype=np.int64, count=len(tasks))
        return cls.from_blocks(blocks)

    @classmethod
    def from_blocks(cls, blocks: np.ndarray) -> "BlockTaskMapping":
        """Build the mapping from a per-task CUDA-block array (exclusive
        prefix sum — the vectorized layout)."""
        starts = np.zeros(len(blocks), dtype=np.int64)
        np.cumsum(blocks[:-1], out=starts[1:])
        return cls(starts=starts, total_blocks=int(blocks.sum()))

    def task_of_block(self, block_id: int) -> int:
        """Which task (index within the batch) does CUDA block ``block_id``
        belong to?"""
        if not 0 <= block_id < self.total_blocks:
            raise IndexError("CUDA block id outside the batch")
        return int(np.searchsorted(self.starts, block_id, side="right") - 1)


@dataclass
class BatchRecord:
    """Execution record of one batched kernel launch."""

    t_start: float
    t_end: float
    task_ids: list[int]
    n_tasks: int
    cuda_blocks: int
    flops: int
    bytes: int
    types: dict[str, int]

    @property
    def duration(self) -> float:
        """Seconds spent in this launch (overhead included)."""
        return self.t_end - self.t_start

    @property
    def gflops(self) -> float:
        """Achieved throughput of the launch."""
        return self.flops / self.duration / 1e9 if self.duration > 0 else 0.0


class Executor:
    """Runs batches through a backend and the GPU cost model."""

    def __init__(self, model: GPUCostModel, backend: ExecutionBackend):
        self._model = model
        self._backend = backend
        # reusable hazard-flag scratch, grown as needed so the hot
        # run_batch_ids path never allocates a fresh flag array per launch
        self._atomic_scratch = np.zeros(0, dtype=bool)

    def _atomic_out(self, n: int) -> np.ndarray:
        """The scratch flag buffer, grown to cover ``n`` batch members."""
        if self._atomic_scratch.size < n:
            self._atomic_scratch = np.zeros(max(n, 64), dtype=bool)
        return self._atomic_scratch

    def run_batch(self, tasks: list[Task], t_start: float) -> BatchRecord:
        """Execute ``tasks`` as one kernel starting at ``t_start``.

        SSSSM tasks sharing a target tile within the batch are flagged
        atomic (write-conflict accounting), via the shared hazard kernel
        the static verifier also uses (:mod:`repro.verify.hazards`).
        Returns the batch record with simulated start/end times.
        """
        if not tasks:
            raise ValueError("cannot launch an empty batch")
        # lazy import: repro.verify.effects imports TaskType, which
        # re-enters repro.core while it is still mid-import if
        # repro.verify loads first
        from repro.verify.effects import ATOMIC_TASK_TYPES
        # in-batch write conflicts among Schur updates: encode SSSSM
        # targets as flat tile ids (-1 = no atomic-capable target)
        n = len(tasks)
        max_j = max(t.j for t in tasks) + 1
        target = np.fromiter(
            (t.i * max_j + t.j if t.type in ATOMIC_TASK_TYPES else -1
             for t in tasks),
            dtype=np.int64, count=n)
        atomic_flags = batch_atomic_flags(target, out=self._atomic_out(n))
        mapping = BlockTaskMapping.build(tasks)
        launch = KernelLaunch()
        types = {t.name: 0 for t in TaskType}
        for idx, task in enumerate(tasks):
            stats = self._backend.run_task(task, bool(atomic_flags[idx]))
            launch.add_task(task.cuda_blocks, stats.flops, stats.bytes,
                            task.shared_mem_bytes)
            types[task.type.name] += 1
        t_end = t_start + self._model.launch_time(launch)
        return BatchRecord(
            t_start=t_start,
            t_end=t_end,
            task_ids=[t.tid for t in tasks],
            n_tasks=len(tasks),
            cuda_blocks=mapping.total_blocks,
            flops=launch.flops,
            bytes=launch.bytes,
            types=types,
        )

    def run_batch_ids(self, tids: np.ndarray, t_start: float,
                      arena) -> BatchRecord:
        """Vectorized :meth:`run_batch` over task *ids* and a
        :class:`~repro.core.arena.ScheduleArena`.

        Write-conflict detection, resource totals and the block→task
        layout all come from array operations.  Backends exposing
        ``batch_stats`` (replay/estimate) avoid the per-task call
        entirely; backends exposing ``run_batch_tasks`` (the numeric
        engine) execute the launch as batched kernel groups with the
        identical atomic flags; anything else falls back to one
        ``run_task`` call per task.
        """
        if not len(tids):
            raise ValueError("cannot launch an empty batch")
        tids = np.asarray(tids, dtype=np.int64)
        arrays = arena.arrays
        # in-batch write conflicts among Schur updates on one target tile
        # (shared hazard kernel; allocation-free via the scratch buffer)
        atomic = batch_atomic_flags(arrays.target[tids],
                                    out=self._atomic_out(tids.size))
        if hasattr(self._backend, "batch_stats"):
            flops, nbytes = self._backend.batch_stats(tids, atomic, arrays)
        elif hasattr(self._backend, "run_batch_tasks"):
            flops, nbytes = self._backend.run_batch_tasks(tids, atomic,
                                                          arrays)
        else:
            flops = 0
            nbytes = 0
            tasks = arena.dag.tasks
            for idx in range(tids.size):
                stats = self._backend.run_task(
                    tasks[int(tids[idx])], bool(atomic[idx])
                )
                flops += stats.flops
                nbytes += stats.bytes
        launch = KernelLaunch(
            cuda_blocks=int(arrays.cuda_blocks[tids].sum()),
            flops=int(flops),
            bytes=int(nbytes),
            shared_mem_bytes=int(arrays.shared_mem[tids].sum()),
            n_tasks=int(tids.size),
        )
        type_counts = np.bincount(arrays.type_code[tids],
                                  minlength=len(TaskType))
        t_end = t_start + self._model.launch_time(launch)
        return BatchRecord(
            t_start=t_start,
            t_end=t_end,
            task_ids=[int(t) for t in tids],
            n_tasks=int(tids.size),
            cuda_blocks=launch.cuda_blocks,
            flops=launch.flops,
            bytes=launch.bytes,
            types={t.name: int(type_counts[int(t)]) for t in TaskType},
        )


@dataclass(frozen=True)
class BatchPlan:
    """A scheduler's emitted batch sequence, detached from execution.

    The picklable dispatch artifact of the multiprocess executor: batch
    composition is deterministic and backend-independent (Collector
    admission reads only the static resource columns, Prioritizer
    ranking only ``cp``/``distance``), so a plan recorded against
    :class:`EstimateBackend` replays bit-identically on the numeric
    engine — in one process or many.
    """

    scheduler: str
    device: str
    batches: list[np.ndarray]
    n_tasks: int


def record_batch_plan(dag, model: GPUCostModel, scheduler: str = "trojan",
                      solve: bool = False, **sched_kwargs) -> BatchPlan:
    """Dry-run ``scheduler`` over ``dag`` and record its batch sequence.

    Runs the full Prioritizer → Collector → Executor pipeline against
    :class:`EstimateBackend` (no numerics touched) and returns the
    emitted batches as int64 task-id arrays in launch order.  ``solve``
    selects the solve-phase scheduler factory.
    """
    # lazy imports: the scheduler factories import this module
    if solve:
        from repro.core.solve_dag import make_solve_scheduler
        sched = make_solve_scheduler(scheduler, dag, EstimateBackend(),
                                     model, **sched_kwargs)
    else:
        from repro.core.baselines import make_scheduler
        sched = make_scheduler(scheduler, dag, EstimateBackend(),
                               model, **sched_kwargs)
    result = sched.run()
    batches = [np.asarray(b.task_ids, dtype=np.int64)
               for b in result.batches]
    return BatchPlan(
        scheduler=scheduler, device=result.device, batches=batches,
        n_tasks=int(sum(b.size for b in batches)),
    )

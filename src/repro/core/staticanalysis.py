"""Static DAG parallelism analysis (paper §2.2, Figure 3).

The paper motivates aggregation by iteratively removing zero-in-degree
nodes from the task DAG and recording how many tasks could run in
parallel at each step.  :func:`parallelism_profile` reproduces exactly
that peel; :func:`dag_statistics` condenses it into the summary values a
violin plot encodes (max width, mean width, distribution quantiles).

Schedule validation (:func:`validate_schedule`) is a thin wrapper over
the shared static verifier in :mod:`repro.verify.schedule` — one
implementation serves the test suites, the Executor's hazard scan and
the ``python -m repro verify`` CLI.
"""

from __future__ import annotations

import numpy as np

from repro.core.dag import TaskDAG


def validate_schedule(dag: TaskDAG, batches, strict: bool = True,
                      gpu=None, hazards: bool = True):
    """Statically verify a schedule is a correct execution of the DAG.

    Runs the full :class:`~repro.verify.schedule.ScheduleVerifier`
    battery — completeness (every task exactly once), dependency order,
    intra-batch tile hazards, DAG acyclicity, and (when ``gpu`` is
    given) Collector capacity budgets — and reports **every** violation,
    not just the first.

    Parameters
    ----------
    dag:
        The task DAG.
    batches:
        Iterable of :class:`~repro.core.executor.BatchRecord`, or plain
        task-id sequences (taken to execute in list order).
    strict:
        When ``True`` (the default, matching the historical behaviour),
        raise ``AssertionError`` describing all violations; when
        ``False``, return the report for the caller to inspect.
    gpu:
        Optional GPU spec enabling the capacity-budget check.
    hazards:
        Set ``False`` for DAGs whose tile coordinates are synthetic
        metadata (random property-test DAGs) rather than real access
        sets — the dependency edges alone then define correctness.

    Returns
    -------
    VerificationReport
        The structured violation report (empty when the schedule is
        valid).
    """
    # imported here, not at module level: repro.verify.schedule itself
    # imports repro.core.dag, so a top-level import would be circular
    # whichever package loads first
    from repro.verify.schedule import ScheduleVerifier

    report = ScheduleVerifier(dag, gpu=gpu).verify_batches(
        batches, hazards=hazards)
    if strict:
        report.raise_if_violations()
    return report


def parallelism_profile(dag: TaskDAG) -> np.ndarray:
    """Parallelisable-task count per time step (DAG level widths)."""
    return np.asarray([lvl.size for lvl in dag.level_schedule()],
                      dtype=np.int64)


def dag_statistics(dag: TaskDAG) -> dict:
    """Summary of the parallelism distribution for one matrix/solver.

    Returns the quantities Figure 3 visualises: number of time steps,
    total task count, maximum/mean parallel width, and quartiles of the
    width distribution.
    """
    widths = parallelism_profile(dag)
    q25, q50, q75 = np.percentile(widths, [25, 50, 75])
    return {
        "tasks": int(widths.sum()),
        "time_steps": int(widths.size),
        "max_parallel": int(widths.max()),
        "mean_parallel": float(widths.mean()),
        "p25": float(q25),
        "median": float(q50),
        "p75": float(q75),
        "critical_path": int(dag.critical_path_lengths().max()),
    }

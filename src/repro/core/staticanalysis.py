"""Static DAG parallelism analysis (paper §2.2, Figure 3).

The paper motivates aggregation by iteratively removing zero-in-degree
nodes from the task DAG and recording how many tasks could run in
parallel at each step.  :func:`parallelism_profile` reproduces exactly
that peel; :func:`dag_statistics` condenses it into the summary values a
violin plot encodes (max width, mean width, distribution quantiles).
"""

from __future__ import annotations

import numpy as np

from repro.core.dag import TaskDAG


def validate_schedule(dag: TaskDAG, batches) -> None:
    """Assert a schedule is a correct execution of the DAG.

    Checks that every task runs exactly once and that no task starts
    before all of its predecessors' batches have finished.  Raises
    ``AssertionError`` with a description otherwise — used by the test
    suite and available to users instrumenting their own schedulers.

    Parameters
    ----------
    dag:
        The task DAG.
    batches:
        Iterable of :class:`~repro.core.executor.BatchRecord`.
    """
    start = {}
    end = {}
    for b in batches:
        for tid in b.task_ids:
            if tid in end:
                raise AssertionError(f"task {tid} executed twice")
            start[tid] = b.t_start
            end[tid] = b.t_end
    missing = set(range(dag.n_tasks)) - set(end)
    if missing:
        raise AssertionError(f"{len(missing)} tasks never executed")
    for t in range(dag.n_tasks):
        for s in dag.successors[t]:
            if start[s] < end[t] - 1e-12:
                raise AssertionError(
                    f"task {s} started before its dependency {t} finished"
                )


def parallelism_profile(dag: TaskDAG) -> np.ndarray:
    """Parallelisable-task count per time step (DAG level widths)."""
    return np.asarray([lvl.size for lvl in dag.level_schedule()],
                      dtype=np.int64)


def dag_statistics(dag: TaskDAG) -> dict:
    """Summary of the parallelism distribution for one matrix/solver.

    Returns the quantities Figure 3 visualises: number of time steps,
    total task count, maximum/mean parallel width, and quartiles of the
    width distribution.
    """
    widths = parallelism_profile(dag)
    q25, q50, q75 = np.percentile(widths, [25, 50, 75])
    return {
        "tasks": int(widths.sum()),
        "time_steps": int(widths.size),
        "max_parallel": int(widths.max()),
        "mean_parallel": float(widths.mean()),
        "p25": float(q25),
        "median": float(q50),
        "p75": float(q75),
        "critical_path": int(dag.critical_path_lengths().max()),
    }

"""Preallocated vectorized scheduling state (the ScheduleArena).

The Algorithm-1 loop used to pay per-task Python costs three times per
round: heap pops in the Prioritizer, dict/attribute lookups on ``Task``
objects, and a per-successor decrement loop after every batch.  The
arena removes all three: task metadata lives in column arrays
(:meth:`~repro.core.dag.TaskDAG.task_arrays`), successor edges in a
CSR-style index built once (:meth:`~repro.core.dag.TaskDAG.successor_csr`),
and batch completion becomes one ``np.subtract.at`` over the gathered
successor slice.

One arena serves one scheduler run; the static per-DAG products (CSR
index, task arrays, critical-path ranks) are cached on the DAG itself,
so constructing a fresh arena per run is O(n) in the predecessor-copy
only — cheap enough for the resimulate-based scheduler sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.core.dag import TaskArrays, TaskDAG, _gather_csr


class ScheduleArena:
    """Mutable vectorized run state over an immutable :class:`TaskDAG`.

    Attributes
    ----------
    dag:
        The task DAG (never mutated).
    arrays:
        Column-oriented task metadata shared across runs.
    cp:
        Criticality ranks (longest path to sink), shared across runs.
    pred:
        This run's live predecessor counters (the only per-run copy).
    """

    def __init__(self, dag: TaskDAG):
        self.dag = dag
        self._indptr, self._indices = dag.successor_csr()
        self.arrays: TaskArrays = dag.task_arrays()
        self.cp: np.ndarray = dag.critical_path_lengths()
        self.pred: np.ndarray = dag.pred_count.copy()

    @property
    def n_tasks(self) -> int:
        """Total number of tasks."""
        return self.dag.n_tasks

    def reset(self) -> None:
        """Rewind the run state so the arena can schedule again."""
        np.copyto(self.pred, self.dag.pred_count)

    def initial_ready(self) -> np.ndarray:
        """Task ids with no predecessors, ascending."""
        return np.flatnonzero(self.pred == 0)

    def complete(self, tids: np.ndarray) -> np.ndarray:
        """Retire a batch; returns the newly ready task ids (ascending).

        All successor counters of the batch decrement in one
        ``np.subtract.at`` over the CSR gather — a successor fed by
        several batch members is decremented once per edge.
        """
        succ, _ = _gather_csr(self._indptr, self._indices,
                              np.asarray(tids, dtype=np.int64))
        if not succ.size:
            return succ
        np.subtract.at(self.pred, succ, 1)
        return np.unique(succ[self.pred[succ] == 0])

"""The triangular-solve (SpTRSV) task DAG — Trojan-Horsing the solve phase.

The factorisation DAG batches GETRF/TSTRF/GEESM/SSSSM; this module gives
the *solve* phase the same treatment.  For a blocked triangular factor
``T`` and a block of right-hand sides ``Y`` (solved in place), the tasks
are:

* ``SPTRSV_DIAG(i)`` — solve RHS block ``i`` against diagonal tile
  ``T(i, i)``;
* ``SPTRSV_UPDATE(i ← k)`` — accumulate ``Y_i −= T(i, k) · Y_k``.

Dependencies:

* ``SPTRSV_UPDATE(i ← k)`` ⇐ ``SPTRSV_DIAG(k)`` (the source block must
  be solved);
* updates into one destination block form a **canonical accumulation
  chain** — ascending source order for a lower solve, descending for an
  upper solve — so the accumulation order of each RHS block is fixed by
  the DAG, not by the schedule;
* ``SPTRSV_DIAG(i)`` ⇐ the last update of block ``i``'s chain.

The chains are the static analogue of the factorisation's atomic-SSSSM
serial-apply rule: where same-target Schur updates may co-batch and
apply in batch order, same-destination RHS updates are *serialised by
construction*, which is what makes every schedule — serial, level-set,
trojan, batched or per-task — produce bit-identical solutions.  It also
means two updates of one RHS block can never legally share a batch, so
the verifier's plain write-write hazard check applies unchanged.

Task encoding: both task types write RHS block ``i``, encoded as tile
``(i, i)`` so the existing write-tile machinery (verifier, executor
conflict scan) works without change; ``k`` is the source block
(``k == i`` for DIAG); ``cols`` is the RHS count, giving the paper's
one-CUDA-block-per-column footprint for multi-RHS batching.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import make_scheduler
from repro.core.arena import ScheduleArena
from repro.core.dag import TaskDAG
from repro.core.executor import (
    BatchRecord,
    EstimateBackend,
    ExecutionBackend,
    Executor,
)
from repro.core.scheduler import (
    PER_TASK_SCHED_US,
    ScheduleResult,
    empty_schedule_result,
)
from repro.core.task import Task, TaskType
from repro.gpusim.costmodel import GPUCostModel
from repro.kernels.flops import gemm_flops_dense, trsm_flops_dense
from repro.sparse.blocking import Partition


def solve_sources(pattern: np.ndarray, dest: int, lower: bool) -> list[int]:
    """Canonical-order source blocks updating ``dest`` (the chain order).

    Ascending for a lower solve, descending for an upper solve — the
    natural sweep direction, and the order the per-column oracle and
    every DAG schedule share.
    """
    if lower:
        return [int(s) for s in np.flatnonzero(pattern[dest, :dest])]
    srcs = np.flatnonzero(pattern[dest, dest + 1:]) + dest + 1
    return [int(s) for s in srcs[::-1]]


def build_solve_dag(
    pattern: np.ndarray,
    part: Partition,
    nrhs: int = 1,
    lower: bool = True,
    tile_nnz: dict[tuple[int, int], int] | None = None,
    sparse_tiles: bool = False,
) -> TaskDAG:
    """Construct the SpTRSV task DAG for one triangular factor.

    Parameters
    ----------
    pattern:
        Boolean ``nb × nb`` block pattern of the triangular factor
        (entries on the wrong side of the diagonal are ignored; the
        diagonal is always treated as present — a solve needs every
        diagonal tile).
    part:
        The tile partition.
    nrhs:
        Number of right-hand-side columns solved together (the multi-RHS
        width every task operates on).
    lower:
        Forward (lower) vs backward (upper) substitution.
    tile_nnz:
        Structural nonzeros per factor tile for sparse flop estimates;
        ``None`` treats tiles as dense.
    sparse_tiles:
        Mark tasks for sparse kernel accounting.
    """
    nb = part.nblocks
    pattern = np.asarray(pattern, dtype=bool)
    if pattern.shape != (nb, nb):
        raise ValueError("block pattern does not match partition")
    if nrhs < 1:
        raise ValueError("nrhs must be >= 1")
    sizes = part.sizes()

    def nnz_of(i: int, j: int) -> int:
        full = int(sizes[i]) * int(sizes[j])
        if tile_nnz is None:
            return full
        return min(full, int(tile_nnz.get((i, j), full)))

    tasks: list[Task] = []

    def add(task_type: TaskType, k: int, i: int) -> int:
        tid = len(tasks)
        m = int(sizes[i])
        mk = int(sizes[k])
        rhs_words = m * nrhs
        if task_type == TaskType.SPTRSV_DIAG:
            diag_nnz = nnz_of(i, i)
            if sparse_tiles:
                flops = max(nrhs, 2 * nrhs * diag_nnz // max(1, m))
            else:
                flops = trsm_flops_dense(m, nrhs)
            nbytes = 8 * (diag_nnz + 2 * rhs_words)
        else:  # SPTRSV_UPDATE: Y_i -= T(i,k) @ Y_k
            t_nnz = nnz_of(i, k)
            if sparse_tiles:
                flops = max(nrhs, 2 * t_nnz * nrhs)
            else:
                flops = gemm_flops_dense(m, mk, nrhs)
            nbytes = 8 * (t_nnz + mk * nrhs + 2 * rhs_words)
        tasks.append(Task(
            tid=tid, type=task_type, k=k, i=i, j=i,
            rows=m, cols=nrhs, nnz=rhs_words, sparse=sparse_tiles,
            flops_est=int(flops), bytes_est=int(nbytes),
        ))
        return tid

    diag_id = {i: add(TaskType.SPTRSV_DIAG, i, i) for i in range(nb)}

    n_updates = 0
    chains: list[tuple[int, list[int]]] = []
    for dest in range(nb):
        srcs = solve_sources(pattern, dest, lower)
        chains.append((dest, srcs))
        n_updates += len(srcs)

    pred_count = np.zeros(nb + n_updates, dtype=np.int64)
    successors: list[list[int]] = [[] for _ in range(nb + n_updates)]

    def edge(a: int, b: int) -> None:
        successors[a].append(b)
        pred_count[b] += 1

    for dest, srcs in chains:
        prev = None
        for src in srcs:
            tid = add(TaskType.SPTRSV_UPDATE, src, dest)
            edge(diag_id[src], tid)
            if prev is not None:
                edge(prev, tid)  # canonical accumulation chain
            prev = tid
        if prev is not None:
            edge(prev, diag_id[dest])
    return TaskDAG(tasks=tasks, pred_count=pred_count,
                   successors=successors, part=part)


class LevelSetScheduler:
    """Level-set SpTRSV baseline: level-synchronous *per-task* launches.

    The classic GPU SpTRSV strategy (Böhnlein et al. in PAPERS.md):
    compute the level sets of the dependency DAG, then run level by
    level with one kernel per task and a barrier between levels.  This
    is the per-task counterpart of :class:`LevelBatchScheduler` (which
    batches within a level) and the baseline the solve-phase benches
    compare trojan-batched execution against.
    """

    name = "levelset"

    def __init__(self, dag: TaskDAG, backend: ExecutionBackend,
                 model: GPUCostModel):
        self._dag = dag
        self._backend = backend
        self._model = model

    def run(self) -> ScheduleResult:
        """Execute the DAG level by level, one launch per task."""
        dag = self._dag
        if dag.n_tasks == 0:
            return empty_schedule_result(self.name, self._model.gpu.name, dag)
        arena = ScheduleArena(dag)
        execu = Executor(self._model, self._backend)
        batches: list[BatchRecord] = []
        one = np.empty(1, dtype=np.int64)
        t = 0.0
        for level in dag.level_schedule():
            for tid in level:
                one[0] = tid
                record = execu.run_batch_ids(one, t, arena)
                t = record.t_end
                batches.append(record)
        sched = (PER_TASK_SCHED_US * dag.n_tasks) * 1e-6
        return ScheduleResult(
            scheduler=self.name,
            device=self._model.gpu.name,
            batches=batches,
            kernel_count=len(batches),
            task_count=dag.n_tasks,
            kernel_time=t,
            sched_overhead=sched,
            total_flops=sum(b.flops for b in batches),
            counts_by_type=dag.counts_by_type(),
        )


SOLVE_SCHEDULER_NAMES = ("levelset", "serial", "levelbatch", "trojan")
"""Scheduling policies accepted for the solve DAG."""


def make_solve_scheduler(name: str, dag: TaskDAG,
                         backend: ExecutionBackend,
                         model: GPUCostModel, **kwargs):
    """Factory over the solve-phase scheduling policies.

    ``levelset`` is the solve-specific baseline; every factorisation
    scheduler (serial/levelbatch/trojan) is generic over any
    :class:`TaskDAG` and works on the solve DAG unchanged.
    """
    if name == "levelset":
        return LevelSetScheduler(dag, backend, model)
    return make_scheduler(name, dag, backend, model, **kwargs)


def compare_solve_schedulers(dag: TaskDAG, gpu,
                             schedulers=("levelset", "levelbatch", "trojan"),
                             ) -> dict:
    """Trojan-vs-level-set comparison on one solve DAG under ``gpusim``.

    Runs each policy against the structural-estimate backend and the
    given GPU's cost model; returns DAG depth (level count), per-policy
    kernel counts, mean batch sizes and simulated makespans.
    """
    model = GPUCostModel(gpu)
    out = {
        "tasks": dag.n_tasks,
        "depth": len(dag.level_schedule()),
        "schedulers": {},
    }
    for name in schedulers:
        r = make_solve_scheduler(name, dag, EstimateBackend(), model).run()
        out["schedulers"][name] = {
            "kernels": r.kernel_count,
            "mean_batch": round(r.mean_batch_size, 2),
            "makespan_ms": r.total_time * 1e3,
        }
    return out

"""Trojan Horse reproduction: aggregate-and-batch scheduling for sparse
direct solvers on (simulated) GPU clusters.

The package reproduces Li et al., *Trojan Horse: Aggregate-and-Batch for
Scaling Up Sparse Direct Solvers on GPU Clusters* (PPoPP '26), end to end
in pure Python: sparse LU substrates (SuperLU_DIST-like supernodal and
PanguLU-like sparse-block solvers), the Trojan Horse scheduling layer
(Prioritizer / Container / Collector / Executor), a GPU occupancy +
roofline performance model, and a discrete-event GPU-cluster simulator.

Quickstart::

    import numpy as np
    from repro import matrices, solvers

    A = matrices.poisson2d(24)                  # a 576x576 system
    solver = solvers.PanguLUSolver(A, scheduler="trojan")
    result = solver.factorize()
    x = solver.solve(np.ones(A.nrows))
"""

__version__ = "1.0.0"

"""CSR (compressed sparse row) matrix — the workhorse format.

The invariant maintained everywhere is that within each row the column
indices are strictly increasing.  All construction paths (COO
canonicalisation, :meth:`CSRMatrix.from_dense`, transpose, SpGEMM) preserve
it, and :meth:`CSRMatrix.check` verifies it in tests.
"""

from __future__ import annotations

import numpy as np


class CSRMatrix:
    """Compressed sparse row matrix with float64 values.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    indptr:
        ``int64`` array of length ``nrows + 1``; row ``i`` occupies the
        half-open slice ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        Column indices, strictly increasing within each row.
    data:
        Values aligned with ``indices``.
    """

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(self, shape, indptr, indices, data):
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    @property
    def nrows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def ncols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    def row_lengths(self) -> np.ndarray:
        """Per-row nonzero counts as an ``int64`` array."""
        return np.diff(self.indptr)

    def row_slice(self, i: int):
        """Return ``(indices, data)`` views for row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def check(self) -> None:
        """Validate structural invariants; raises ``ValueError`` on breakage.

        Checked: indptr monotone and sized ``nrows+1``; indices in range and
        strictly increasing within each row; array lengths consistent.
        """
        m, n = self.shape
        if self.indptr.shape != (m + 1,):
            raise ValueError("indptr has wrong length")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr endpoints inconsistent with indices")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size != self.data.size:
            raise ValueError("indices and data lengths differ")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= n:
                raise ValueError("column index out of range")
            # strictly increasing inside each row: a decrease is only legal
            # at a row boundary.
            dec = np.flatnonzero(np.diff(self.indices) <= 0) + 1
            if dec.size:
                boundaries = self.indptr[1:-1]
                if not np.all(np.isin(dec, boundaries)):
                    raise ValueError("column indices not sorted within a row")

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_coo(self):
        """Expand to :class:`~repro.sparse.coo.COOMatrix` (no copy of data)."""
        from repro.sparse.coo import COOMatrix

        rows = np.repeat(
            np.arange(self.nrows, dtype=np.int64), self.row_lengths()
        )
        return COOMatrix(self.shape, rows, self.indices.copy(), self.data.copy())

    def to_csc(self):
        """Convert to :class:`~repro.sparse.csc.CSCMatrix`."""
        from repro.sparse.csc import CSCMatrix

        t = self.transpose()
        return CSCMatrix(self.shape, t.indptr, t.indices, t.data)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense ``float64`` array."""
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(
            np.arange(self.nrows, dtype=np.int64), self.row_lengths()
        )
        out[rows, self.indices] = self.data
        return out

    @classmethod
    def from_dense(cls, dense) -> "CSRMatrix":
        """Compress the nonzeros of a dense array into CSR."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(dense)
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(dense.shape, indptr, cols.astype(np.int64), dense[rows, cols])

    @classmethod
    def empty(cls, shape) -> "CSRMatrix":
        """An all-zero matrix of the given shape."""
        return cls(
            shape,
            np.zeros(int(shape[0]) + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """The ``n`` × ``n`` identity."""
        return cls(
            (n, n),
            np.arange(n + 1, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            np.ones(n, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRMatrix":
        """Return the transpose, itself in canonical CSR form.

        Implemented as a counting sort on column indices (the classic
        "CSR → CSC is a histogram + scatter" kernel), which also yields
        sorted row indices within each transposed row for free because the
        scatter scans rows in order.
        """
        m, n = self.shape
        counts = np.bincount(self.indices, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # Stable sort by column index: because the nonzero stream is already
        # in row order, a stable sort leaves each destination row's entries
        # sorted by (original) row — the canonical CSR invariant of Aᵀ.
        rows = np.repeat(np.arange(m, dtype=np.int64), self.row_lengths())
        order = np.argsort(self.indices, kind="stable")
        return CSRMatrix((n, m), indptr, rows[order], self.data[order])

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal as a dense vector (zeros where absent)."""
        m, n = self.shape
        k = min(m, n)
        out = np.zeros(k, dtype=np.float64)
        for i in range(k):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            pos = np.searchsorted(self.indices[lo:hi], i)
            if pos < hi - lo and self.indices[lo + pos] == i:
                out[i] = self.data[lo + pos]
        return out

    def prune(self, tol: float = 0.0) -> "CSRMatrix":
        """Drop stored entries with ``|value| <= tol`` (structural cleanup)."""
        keep = np.abs(self.data) > tol
        rows = np.repeat(
            np.arange(self.nrows, dtype=np.int64), self.row_lengths()
        )[keep]
        indptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(self.shape, indptr, self.indices[keep], self.data[keep])

    def copy(self) -> "CSRMatrix":
        """Deep copy."""
        return CSRMatrix(
            self.shape, self.indptr.copy(), self.indices.copy(), self.data.copy()
        )

    def pattern_symmetrized(self) -> "CSRMatrix":
        """Structure of ``A + Aᵀ`` with all-ones values.

        Used by the ordering and symbolic phases, which (like SuperLU_DIST
        and PanguLU) operate on the symmetrised sparsity pattern of an
        unsymmetric matrix.
        """
        from repro.sparse.ops import sparse_add

        ones = self.copy()
        ones.data = np.ones_like(ones.data)
        t = ones.transpose()
        s = sparse_add(ones, t)
        s.data = np.ones_like(s.data)
        return s

    def __matmul__(self, other):
        from repro.sparse.ops import matvec, spgemm

        if isinstance(other, CSRMatrix):
            return spgemm(self, other)
        return matvec(self, np.asarray(other))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"

"""Permutation utilities for the reordering phase.

A permutation ``perm`` is stored in "new ← old" gather convention:
``perm[new_index] = old_index``, i.e. row ``new_index`` of the permuted
matrix is row ``perm[new_index]`` of the original.  This matches the
output convention of every ordering in :mod:`repro.ordering`.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """Invert a permutation: ``inv[perm[i]] = i``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv


def _validate(perm: np.ndarray, n: int) -> np.ndarray:
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (n,):
        raise ValueError("permutation length mismatch")
    if not np.array_equal(np.sort(perm), np.arange(n)):
        raise ValueError("not a permutation")
    return perm


def permute_rows(a: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Reorder rows: ``B[i, :] = A[perm[i], :]``."""
    perm = _validate(perm, a.nrows)
    lens = a.row_lengths()[perm]
    indptr = np.zeros(a.nrows + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    # Gather each permuted row's slice.
    starts = a.indptr[perm]
    total = int(lens.sum())
    group_starts = indptr[:-1]
    offset = np.arange(total, dtype=np.int64) - np.repeat(group_starts, lens)
    src = np.repeat(starts, lens) + offset
    return CSRMatrix(a.shape, indptr, a.indices[src], a.data[src])


def permute_cols(a: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Reorder columns: ``B[:, j] = A[:, perm[j]]``."""
    perm = _validate(perm, a.ncols)
    inv = inverse_permutation(perm)
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    coo = COOMatrix(a.shape, rows, inv[a.indices], a.data.copy())
    return coo.to_csr()


def permute_symmetric(a: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Symmetric permutation ``P A Pᵀ`` with ``P`` defined by ``perm``.

    ``B[i, j] = A[perm[i], perm[j]]`` — the operation the reordering phase
    applies before symbolic factorisation.
    """
    if a.nrows != a.ncols:
        raise ValueError("symmetric permutation requires a square matrix")
    return permute_cols(permute_rows(a, perm), perm)

"""From-scratch sparse matrix infrastructure.

This subpackage provides the storage formats and structural operations that
every other layer of the reproduction builds on: COO (triplet) assembly,
CSR/CSC compressed formats, format conversion, symmetric permutation, block
(tile) extraction and scatter, sparse matrix products, and triangular
solves.  Everything is implemented directly on NumPy arrays — no SciPy —
following the vectorisation idioms of the HPC-Python guides (expand /
sort / reduce rather than Python-level loops wherever the operation is on
the nonzero stream).
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.ops import (
    spgemm,
    sparse_add,
    sparse_scale,
    triangular_solve,
    matvec,
)
from repro.sparse.permute import (
    permute_symmetric,
    permute_rows,
    permute_cols,
    inverse_permutation,
)
from repro.sparse.blocking import (
    Partition,
    uniform_partition,
    partition_from_boundaries,
    extract_block,
    split_tiles,
    block_pattern,
    assemble_from_blocks,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "spgemm",
    "sparse_add",
    "sparse_scale",
    "triangular_solve",
    "matvec",
    "permute_symmetric",
    "permute_rows",
    "permute_cols",
    "inverse_permutation",
    "Partition",
    "uniform_partition",
    "partition_from_boundaries",
    "extract_block",
    "split_tiles",
    "block_pattern",
    "assemble_from_blocks",
]

"""Sparse linear-algebra operations on the from-scratch formats.

All nonzero-stream operations follow the expand/sort/reduce (ESC) pattern:
build the full product stream with `np.repeat`-style index arithmetic, then
canonicalise through COO.  Only the triangular solve is an ordered
recurrence and therefore row-sequential.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def matvec(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Sparse matrix–vector product ``A @ x`` (``x`` 1-D or 2-D).

    Vectorised as a weighted histogram over row ids (``np.bincount``),
    which handles empty rows without special-casing.  A 2-D ``x`` is one
    system per column; the ``(row, column)`` pairs fold into a single
    flat bin index so one ``bincount`` reduces every column at once.
    Because the per-bin accumulation order is the nonzero-stream order
    either way, each column of the 2-D result is bit-identical to the
    1-D product of that column alone.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim not in (1, 2):
        raise ValueError(f"operand must be 1-D or 2-D, got {x.ndim}-D")
    if x.shape[0] != a.ncols:
        raise ValueError("dimension mismatch in matvec")
    if x.ndim == 1:
        if a.nnz == 0:
            return np.zeros(a.nrows, dtype=np.float64)
        rows = np.repeat(np.arange(a.nrows, dtype=np.int64),
                         a.row_lengths())
        return np.bincount(rows, weights=a.data * x[a.indices],
                           minlength=a.nrows)
    nrhs = x.shape[1]
    if a.nnz == 0 or nrhs == 0:
        return np.zeros((a.nrows, nrhs), dtype=np.float64)
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    prods = a.data[:, None] * x[a.indices, :]
    bins = rows[:, None] * nrhs + np.arange(nrhs, dtype=np.int64)[None, :]
    return np.bincount(bins.ravel(), weights=prods.ravel(),
                       minlength=a.nrows * nrhs).reshape(a.nrows, nrhs)


def spgemm(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Sparse general matrix–matrix product ``C = A @ B`` (ESC algorithm).

    For every nonzero ``A[i,k]`` the entire row ``k`` of ``B`` contributes
    to row ``i`` of ``C``.  The product stream is materialised with a
    gather (sizes → cumsum → ragged repeat) and reduced through COO
    canonicalisation.  Memory is proportional to the number of partial
    products, which is fine at the block sizes used throughout this repo.
    """
    if a.ncols != b.nrows:
        raise ValueError("dimension mismatch in spgemm")
    if a.nnz == 0 or b.nnz == 0:
        return CSRMatrix.empty((a.nrows, b.ncols))
    b_rowlen = b.row_lengths()
    # For each nonzero (i, k) of A: how many partial products it spawns.
    sizes = b_rowlen[a.indices]
    total = int(sizes.sum())
    if total == 0:
        return CSRMatrix.empty((a.nrows, b.ncols))
    a_rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    # out_row[p] = row of A-nonzero that spawned product p
    out_row = np.repeat(a_rows, sizes)
    a_val = np.repeat(a.data, sizes)
    # Ragged gather of B row slices: position within each group ...
    group_starts = np.zeros(a.nnz, dtype=np.int64)
    np.cumsum(sizes[:-1], out=group_starts[1:])
    offset_in_group = np.arange(total, dtype=np.int64) - np.repeat(
        group_starts, sizes
    )
    b_start = b.indptr[a.indices]
    src = np.repeat(b_start, sizes) + offset_in_group
    out_col = b.indices[src]
    out_val = a_val * b.data[src]
    coo = COOMatrix((a.nrows, b.ncols), out_row, out_col, out_val)
    return coo.to_csr()


def sparse_add(a: CSRMatrix, b: CSRMatrix, alpha: float = 1.0, beta: float = 1.0) -> CSRMatrix:
    """Sparse sum ``alpha*A + beta*B`` through COO concatenation."""
    if a.shape != b.shape:
        raise ValueError("dimension mismatch in sparse_add")
    a_rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    b_rows = np.repeat(np.arange(b.nrows, dtype=np.int64), b.row_lengths())
    coo = COOMatrix(
        a.shape,
        np.concatenate([a_rows, b_rows]),
        np.concatenate([a.indices, b.indices]),
        np.concatenate([alpha * a.data, beta * b.data]),
    )
    return coo.to_csr()


def sparse_scale(a: CSRMatrix, alpha: float) -> CSRMatrix:
    """Return ``alpha * A`` (new matrix, structure shared by copy)."""
    out = a.copy()
    out.data *= alpha
    return out


def triangular_solve(
    a: CSRMatrix,
    b: np.ndarray,
    lower: bool = True,
    unit_diagonal: bool = False,
) -> np.ndarray:
    """Solve ``A x = b`` for triangular sparse ``A``.

    Row-sequential substitution; each row's dot product is vectorised.
    ``A`` must actually be (lower/upper) triangular — entries on the wrong
    side of the diagonal raise ``ValueError`` so schedule bugs fail loudly
    instead of silently corrupting the solve.

    Parameters
    ----------
    a:
        Square triangular CSR matrix.
    b:
        Right-hand side vector (1-D) or multiple right-hand sides (2-D,
        one system per column).
    lower:
        ``True`` for forward substitution, ``False`` for backward.
    unit_diagonal:
        If ``True`` the diagonal is taken to be implicitly 1 and any stored
        diagonal entries are ignored.
    """
    n = a.nrows
    if a.ncols != n:
        raise ValueError("triangular_solve requires a square matrix")
    b = np.asarray(b)
    if b.ndim not in (1, 2):
        raise ValueError(
            f"right-hand side must be 1-D or 2-D, got {b.ndim}-D"
        )
    if b.shape[0] != n:
        raise ValueError(
            f"right-hand side has {b.shape[0]} rows, matrix has {n}"
        )
    if not np.issubdtype(b.dtype, np.floating) \
            and not np.issubdtype(b.dtype, np.integer):
        raise TypeError(
            f"right-hand side dtype {b.dtype} is not real-numeric"
        )
    b = b.astype(np.float64, copy=False)
    squeeze = b.ndim == 1
    x = b.reshape(n, -1).copy()
    order = range(n) if lower else range(n - 1, -1, -1)
    for i in order:
        cols, vals = a.row_slice(i)
        if cols.size:
            if lower:
                pos = np.searchsorted(cols, i)
                off_cols, off_vals = cols[:pos], vals[:pos]
                has_diag = pos < cols.size and cols[pos] == i
                diag_val = vals[pos] if has_diag else 0.0
                if pos < cols.size and not has_diag:
                    raise ValueError("matrix is not lower triangular")
                if cols.size > pos + (1 if has_diag else 0):
                    raise ValueError("matrix is not lower triangular")
            else:
                pos = np.searchsorted(cols, i)
                has_diag = pos < cols.size and cols[pos] == i
                diag_val = vals[pos] if has_diag else 0.0
                start = pos + (1 if has_diag else 0)
                off_cols, off_vals = cols[start:], vals[start:]
                if pos > 0:
                    raise ValueError("matrix is not upper triangular")
            if off_cols.size:
                x[i] -= off_vals @ x[off_cols]
        else:
            has_diag = False
            diag_val = 0.0
        if not unit_diagonal:
            if not has_diag or diag_val == 0.0:
                raise ZeroDivisionError(f"zero diagonal at row {i}")
            x[i] /= diag_val
    return x[:, 0] if squeeze else x

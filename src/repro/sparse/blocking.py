"""Matrix partitioning into 2-D tiles (blocks).

Both solver substrates view the matrix as a grid of tiles: PanguLU with a
uniform partition (paper: block size 512; scaled here), SuperLU with a
variable partition derived from supernodes.  A :class:`Partition` is just
the list of split boundaries shared by the row and column dimension (tiles
are aligned because sparse LU works on a square, symmetrically permuted
matrix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class Partition:
    """A 1-D partition of ``0..n`` into contiguous ranges.

    Attributes
    ----------
    boundaries:
        ``int64`` array ``[0, b1, ..., n]`` of length ``nblocks + 1``.
    """

    boundaries: np.ndarray

    def __post_init__(self):
        b = np.asarray(self.boundaries, dtype=np.int64)
        if b.ndim != 1 or b.size < 2:
            raise ValueError("partition needs at least [0, n]")
        if b[0] != 0 or np.any(np.diff(b) <= 0):
            raise ValueError("boundaries must start at 0 and strictly increase")
        object.__setattr__(self, "boundaries", b)

    @property
    def n(self) -> int:
        """Total dimension covered."""
        return int(self.boundaries[-1])

    @property
    def nblocks(self) -> int:
        """Number of ranges."""
        return int(self.boundaries.size - 1)

    def block_of(self, index) -> np.ndarray:
        """Map scalar/array element indices to their block index."""
        return np.searchsorted(self.boundaries, index, side="right") - 1

    def block_range(self, b: int) -> tuple[int, int]:
        """Half-open element range ``[lo, hi)`` of block ``b``."""
        return int(self.boundaries[b]), int(self.boundaries[b + 1])

    def block_size(self, b: int) -> int:
        """Number of elements in block ``b``."""
        lo, hi = self.block_range(b)
        return hi - lo

    def sizes(self) -> np.ndarray:
        """All block sizes as an array."""
        return np.diff(self.boundaries)


def uniform_partition(n: int, block_size: int) -> Partition:
    """Partition ``0..n`` into blocks of ``block_size`` (last may be short)."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    cuts = list(range(0, n, block_size)) + [n]
    if cuts[-2] == n:  # n divisible by block_size duplicates the endpoint
        cuts.pop(-2)
    return Partition(np.asarray(cuts, dtype=np.int64))


def partition_from_boundaries(boundaries) -> Partition:
    """Build a :class:`Partition` from an explicit boundary list."""
    return Partition(np.asarray(boundaries, dtype=np.int64))


def extract_block(a: CSRMatrix, r0: int, r1: int, c0: int, c1: int) -> CSRMatrix:
    """Extract the dense-index submatrix ``A[r0:r1, c0:c1]`` as CSR."""
    nr = r1 - r0
    rows_out = []
    cols_out = []
    data_out = []
    for i in range(r0, r1):
        cols, vals = a.row_slice(i)
        lo = np.searchsorted(cols, c0)
        hi = np.searchsorted(cols, c1)
        if hi > lo:
            rows_out.append(np.full(hi - lo, i - r0, dtype=np.int64))
            cols_out.append(cols[lo:hi] - c0)
            data_out.append(vals[lo:hi])
    if not rows_out:
        return CSRMatrix.empty((nr, c1 - c0))
    coo = COOMatrix(
        (nr, c1 - c0),
        np.concatenate(rows_out),
        np.concatenate(cols_out),
        np.concatenate(data_out),
    )
    return coo.to_csr()


def split_tiles(a: CSRMatrix, part: Partition) -> dict[tuple[int, int], CSRMatrix]:
    """Split a square matrix into all its nonempty tiles in one pass.

    Returns a dict ``{(bi, bj): tile_csr}`` where each tile uses local
    (within-block) coordinates.  A single sort of the nonzero stream by
    tile id replaces ``nblocks²`` calls to :func:`extract_block`.
    """
    if a.nrows != part.n or a.ncols != part.n:
        raise ValueError("partition does not cover the matrix")
    if a.nnz == 0:
        return {}
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    cols = a.indices
    brow = part.block_of(rows)
    bcol = part.block_of(cols)
    nb = part.nblocks
    tile_id = brow * nb + bcol
    order = np.argsort(tile_id, kind="stable")
    tile_sorted = tile_id[order]
    rows_s = rows[order]
    cols_s = cols[order]
    data_s = a.data[order]
    # Group boundaries of equal tile ids.
    change = np.flatnonzero(np.diff(tile_sorted)) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [tile_sorted.size]])
    tiles: dict[tuple[int, int], CSRMatrix] = {}
    lo_bound = part.boundaries
    for s, e in zip(starts, ends):
        t = int(tile_sorted[s])
        bi, bj = divmod(t, nb)
        r_lo = lo_bound[bi]
        c_lo = lo_bound[bj]
        shape = (part.block_size(bi), part.block_size(bj))
        coo = COOMatrix(
            shape, rows_s[s:e] - r_lo, cols_s[s:e] - c_lo, data_s[s:e]
        )
        tiles[(bi, bj)] = coo.to_csr()
    return tiles


def block_pattern(a: CSRMatrix, part: Partition) -> np.ndarray:
    """Boolean ``nblocks × nblocks`` map of which tiles hold any nonzero."""
    nb = part.nblocks
    out = np.zeros((nb, nb), dtype=bool)
    if a.nnz == 0:
        return out
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    out[part.block_of(rows), part.block_of(a.indices)] = True
    return out


def assemble_from_blocks(
    tiles: dict[tuple[int, int], CSRMatrix], part: Partition
) -> CSRMatrix:
    """Reassemble a global CSR matrix from local-coordinate tiles."""
    rows_out = []
    cols_out = []
    data_out = []
    for (bi, bj), tile in tiles.items():
        if tile.nnz == 0:
            continue
        r_lo, _ = part.block_range(bi)
        c_lo, _ = part.block_range(bj)
        t_rows = np.repeat(
            np.arange(tile.nrows, dtype=np.int64), tile.row_lengths()
        )
        rows_out.append(t_rows + r_lo)
        cols_out.append(tile.indices + c_lo)
        data_out.append(tile.data)
    n = part.n
    if not rows_out:
        return CSRMatrix.empty((n, n))
    coo = COOMatrix(
        (n, n),
        np.concatenate(rows_out),
        np.concatenate(cols_out),
        np.concatenate(data_out),
    )
    return coo.to_csr()

"""CSC (compressed sparse column) matrix.

The left-looking parts of the symbolic phase (elimination trees, column
counts) are naturally column-oriented; CSC is a thin wrapper sharing the
CSR machinery through transposition.
"""

from __future__ import annotations

import numpy as np


class CSCMatrix:
    """Compressed sparse column matrix with float64 values.

    Column ``j`` occupies ``indices[indptr[j]:indptr[j+1]]`` with row
    indices strictly increasing within each column.
    """

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(self, shape, indptr, indices, data):
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    def col_slice(self, j: int):
        """Return ``(row_indices, data)`` views for column ``j``."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def col_lengths(self) -> np.ndarray:
        """Per-column nonzero counts."""
        return np.diff(self.indptr)

    def to_csr(self):
        """Convert to :class:`~repro.sparse.csr.CSRMatrix`."""
        from repro.sparse.csr import CSRMatrix

        # A CSC matrix is the CSR of its transpose; transposing that CSR
        # back gives the CSR of the original matrix.
        as_csr_of_t = CSRMatrix(
            (self.shape[1], self.shape[0]), self.indptr, self.indices, self.data
        )
        return as_csr_of_t.transpose()

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense ``float64`` array."""
        out = np.zeros(self.shape, dtype=np.float64)
        cols = np.repeat(
            np.arange(self.shape[1], dtype=np.int64), self.col_lengths()
        )
        out[self.indices, cols] = self.data
        return out

    @classmethod
    def from_csr(cls, csr) -> "CSCMatrix":
        """Build from a CSR matrix."""
        return csr.to_csc()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"

"""COO (coordinate / triplet) sparse matrix format.

COO is the assembly format: generators and file readers produce unordered,
possibly duplicated triplets, and :meth:`COOMatrix.to_csr` canonicalises
them (sort by row then column, sum duplicates) into CSR.
"""

from __future__ import annotations

import numpy as np


class COOMatrix:
    """A sparse matrix stored as ``(row, col, data)`` triplets.

    Triplets may be unordered and may contain duplicates; duplicates are
    summed on conversion to a compressed format, matching the usual finite
    element / circuit "stamping" assembly convention.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)`` of the matrix.
    row, col:
        Integer arrays of equal length with the coordinates of each entry.
    data:
        Float array of entry values, same length as ``row``/``col``.
    """

    __slots__ = ("shape", "row", "col", "data")

    def __init__(self, shape, row, col, data):
        self.shape = (int(shape[0]), int(shape[1]))
        self.row = np.asarray(row, dtype=np.int64)
        self.col = np.asarray(col, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if not (self.row.shape == self.col.shape == self.data.shape):
            raise ValueError("row, col and data must have identical shapes")
        if self.row.ndim != 1:
            raise ValueError("COO triplets must be one-dimensional arrays")
        if self.row.size:
            if self.row.min(initial=0) < 0 or self.col.min(initial=0) < 0:
                raise ValueError("negative indices in COO triplets")
            if self.row.max(initial=-1) >= self.shape[0]:
                raise ValueError("row index out of range")
            if self.col.max(initial=-1) >= self.shape[1]:
                raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        """Number of stored triplets (duplicates counted individually)."""
        return int(self.data.size)

    def to_csr(self):
        """Canonicalise into :class:`~repro.sparse.csr.CSRMatrix`.

        Entries are sorted by ``(row, col)`` and duplicate coordinates are
        summed.  Explicit zeros produced by cancellation are kept (their
        structural position is meaningful for symbolic analysis).
        """
        from repro.sparse.csr import CSRMatrix

        m, n = self.shape
        if self.nnz == 0:
            return CSRMatrix(
                self.shape,
                np.zeros(m + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        order = np.lexsort((self.col, self.row))
        r = self.row[order]
        c = self.col[order]
        d = self.data[order]
        # Collapse duplicates: "new group" wherever (r, c) changes.
        new_group = np.empty(r.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        starts = np.flatnonzero(new_group)
        data = np.add.reduceat(d, starts)
        rows = r[starts]
        cols = c[starts]
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(self.shape, indptr, cols, data)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense ``float64`` array (duplicates summed)."""
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.row, self.col), self.data)
        return out

    @classmethod
    def from_dense(cls, dense) -> "COOMatrix":
        """Build a COO matrix from the nonzeros of a dense array."""
        dense = np.asarray(dense, dtype=np.float64)
        row, col = np.nonzero(dense)
        return cls(dense.shape, row, col, dense[row, col])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"

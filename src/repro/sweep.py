"""Multiprocess sweep runner for collection-scale experiments.

The Figure-10 reproduction factorises a 200-matrix collection once per
solver substrate — embarrassingly parallel at the (matrix, solver,
scheduler) cell level.  This module shards a sweep over a
``concurrent.futures.ProcessPoolExecutor``:

* **Work items are picklable recipes.**  A :class:`SweepItem` carries a
  :class:`~repro.matrices.suite.SuiteEntrySpec` (a few ints, rebuilt in
  the worker) or a full :class:`~repro.matrices.suite.SuiteEntry`, plus
  the solver key, GPU preset key and scheduler names — never class or
  device objects, so the pipe traffic stays tiny.
* **Deterministic kind-affinity sharding.**  Items are grouped into one
  chunk per worker by their matrix kind (first-appearance order, round
  robin), so repeated patterns of one generator family land in the same
  worker and hit its private pattern-keyed
  :class:`~repro.core.analysis_cache.AnalysisCache`.
* **Bit-identical merging.**  Every cell is computed by deterministic
  code, workers return :class:`SweepRow` summaries, and the merge sorts
  rows by the original item index — the parallel sweep emits exactly the
  rows the sequential path does (``tests/test_sweep.py`` proves it
  differentially).  Per-worker cache accounting is aggregated separately
  and never feeds the result table.

Worker count comes from the ``REPRO_SWEEP_WORKERS`` environment knob
(default 1 = sequential, same code path minus the pool) or the
``--workers`` flag of ``python -m repro sweep``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.speedup import speedup_summary
from repro.core.analysis_cache import AnalysisCache, merge_stats
from repro.gpusim import GPU_PRESETS
from repro.matrices.suite import SuiteEntry, SuiteEntrySpec, suite_specs
from repro.solvers import SOLVER_REGISTRY, resimulate

WORKERS_ENV = "REPRO_SWEEP_WORKERS"
"""Environment variable naming the default worker count."""


def default_workers() -> int:
    """Worker count from :data:`WORKERS_ENV` (default 1, validated)."""
    raw = os.environ.get(WORKERS_ENV, "1")
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ValueError(f"{WORKERS_ENV} must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class SweepItem:
    """One (matrix, solver, scheduler) cell of a sweep.

    Attributes
    ----------
    index:
        Position in the sweep; the merge sorts result rows by it, so it
        must be unique per item.
    entry:
        A :class:`SuiteEntrySpec` (preferred — workers regenerate the
        matrix locally) or a materialized :class:`SuiteEntry`.
    solver:
        Key into :data:`repro.solvers.SOLVER_REGISTRY`.
    gpu:
        Key into :data:`repro.gpusim.GPU_PRESETS`.
    scheduler:
        Baseline scheduling policy for the factorisation.
    resim:
        Scheduler names to replay the recorded schedule under
        (:func:`repro.solvers.resimulate`).
    merge_schur:
        Apply the §3.5.1 Schur-fusion rewrite when resimulating with the
        Trojan Horse (the SuperLU integration).
    solver_kwargs:
        Extra solver-constructor kwargs as a tuple of ``(name, value)``
        pairs — tuples keep the dataclass hashable and picklable.
    """

    index: int
    entry: "SuiteEntry | SuiteEntrySpec"
    solver: str
    gpu: str = "a100"
    scheduler: str = "serial"
    resim: tuple = ("trojan",)
    merge_schur: bool = False
    solver_kwargs: tuple = ()

    def materialized(self) -> SuiteEntry:
        """The entry with its matrix built (rebuilds a spec)."""
        if isinstance(self.entry, SuiteEntrySpec):
            return self.entry.materialize()
        return self.entry


@dataclass(frozen=True)
class SweepRow:
    """Picklable summary of one executed sweep cell."""

    index: int
    name: str
    kind: str
    solver: str
    scheduler: str
    base_time: float
    resim_times: tuple
    tasks: int
    kernels: int
    fill_nnz: int

    def time_for(self, scheduler: str) -> float:
        """Resimulated total time under ``scheduler``."""
        return dict(self.resim_times)[scheduler]


@dataclass
class SweepOutcome:
    """Merged result of :func:`run_sweep`.

    ``rows`` are sorted by item index — identical for any worker count.
    ``cache_stats`` aggregates the per-worker analysis caches (this is
    the only part of the outcome that legitimately varies with the shard
    layout, so it is reported separately from the rows).
    """

    rows: list
    workers: int
    cache_stats: dict
    per_worker_cache_stats: list


def run_cell(item: SweepItem, cache: AnalysisCache | None = None) -> SweepRow:
    """Execute one sweep cell (factorise + resimulate) and summarise it."""
    entry = item.materialized()
    cls = SOLVER_REGISTRY[item.solver]
    gpu = GPU_PRESETS[item.gpu]
    run = cls(entry.matrix, scheduler=item.scheduler, gpu=gpu,
              analysis_cache=cache, **dict(item.solver_kwargs)).factorize()
    resim_times = tuple(
        (sched,
         resimulate(run, sched, gpu,
                    merge_schur=item.merge_schur
                    and sched == "trojan").total_time)
        for sched in item.resim
    )
    return SweepRow(
        index=item.index, name=entry.name, kind=entry.kind,
        solver=item.solver, scheduler=item.scheduler,
        base_time=run.schedule.total_time, resim_times=resim_times,
        tasks=run.schedule.task_count, kernels=run.schedule.kernel_count,
        fill_nnz=run.fill_nnz,
    )


def _kind_of(item: SweepItem):
    return item.entry.kind


def shard_items(items, workers: int, shard_key=None) -> list:
    """Split ``items`` into at most ``workers`` deterministic shards.

    ``shard_key`` maps an item to its affinity group (default: the matrix
    kind).  Groups are assigned to shards round-robin in first-appearance
    order, so the layout depends only on the item sequence and the worker
    count — never on hashing or timing.  Within a shard, items keep their
    original order.  Empty shards are dropped.
    """
    items = list(items)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if shard_key is None:
        shard_key = _kind_of
    if workers == 1:
        return [items] if items else []
    assignment: dict = {}
    shards: list = [[] for _ in range(workers)]
    for item in items:
        key = shard_key(item)
        if key not in assignment:
            assignment[key] = len(assignment) % workers
        shards[assignment[key]].append(item)
    return [shard for shard in shards if shard]


def _run_shard(shard, cache_capacity: int):
    """Worker entry point: run one shard with a private analysis cache."""
    cache = AnalysisCache(capacity=cache_capacity)
    rows = [run_cell(item, cache) for item in shard]
    return rows, cache.stats()


def run_sweep(items, workers: int | None = None, cache_capacity: int = 32,
              shard_key=None, start_method: str = "spawn") -> SweepOutcome:
    """Run every sweep cell, fanning out over a process pool.

    Parameters
    ----------
    items:
        The :class:`SweepItem` cells; indices must be unique.
    workers:
        Process count; ``None`` reads :data:`WORKERS_ENV` (default 1).
        One worker runs the shards in-process — the sequential reference
        path, same code minus the pool.
    cache_capacity:
        Capacity of each worker's private
        :class:`~repro.core.analysis_cache.AnalysisCache`.
    shard_key:
        Affinity grouping override (see :func:`shard_items`).
    start_method:
        ``multiprocessing`` start method for the pool, ``"spawn"`` by
        default.  The platform default (``fork`` on Linux) inherits the
        parent's whole heap — BLAS thread pools, open shared-memory
        maps, module state — which is both unsafe under threads and a
        behavioural fork (pun intended) from macOS/Windows; explicit
        spawn makes every worker a fresh import, identical everywhere.
        ``tests/test_sweep.py`` pins that both methods produce identical
        merged tables.
    """
    items = list(items)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    indices = [item.index for item in items]
    if len(set(indices)) != len(indices):
        raise ValueError("sweep item indices must be unique")
    shards = shard_items(items, workers, shard_key)
    if workers == 1 or len(shards) <= 1:
        shard_results = [_run_shard(shard, cache_capacity)
                         for shard in shards]
    else:
        mp_context = multiprocessing.get_context(start_method)
        with ProcessPoolExecutor(max_workers=len(shards),
                                 mp_context=mp_context) as pool:
            futures = [pool.submit(_run_shard, shard, cache_capacity)
                       for shard in shards]
            shard_results = [f.result() for f in futures]
    rows = sorted((row for shard_rows, _ in shard_results
                   for row in shard_rows), key=lambda r: r.index)
    per_worker = [stats for _, stats in shard_results]
    return SweepOutcome(rows=rows, workers=workers,
                        cache_stats=merge_stats(per_worker)
                        if per_worker else merge_stats([]),
                        per_worker_cache_stats=per_worker)


# ----------------------------------------------------------------------
# the Figure-10 sweep expressed as sweep cells
# ----------------------------------------------------------------------

#: (solver key, constructor kwargs, Schur fusion on trojan resim) — the
#: per-entry substrate cells of the Figure-10 sweep.
FIG10_CELLS = (
    ("superlu", (("max_supernode", 32),), True),
    ("pangulu", (("block_size", 64),), False),
)


def fig10_items(count: int, base_size: int, gpu: str = "a100") -> list:
    """The Figure-10 sweep as work items (two solver cells per matrix)."""
    items: list = []
    for spec in suite_specs(count=count, base_size=base_size):
        for solver, kwargs, merge in FIG10_CELLS:
            items.append(SweepItem(
                index=len(items), entry=spec, solver=solver, gpu=gpu,
                merge_schur=merge, solver_kwargs=kwargs,
            ))
    return items


def fig10_summaries(rows) -> dict:
    """Per-solver :func:`speedup_summary` dicts over merged sweep rows."""
    summaries = {}
    for solver, _, _ in FIG10_CELLS:
        data = [row for row in rows if row.solver == solver]
        summaries[solver] = speedup_summary(
            [row.base_time for row in data],
            [row.time_for("trojan") for row in data],
        )
        summaries[solver]["matrices"] = len(data)
    return summaries


def fig10_table(rows, count: int) -> str:
    """Render the Figure-10 summary table from merged sweep rows.

    Pure function of the rows, so sequential and parallel sweeps emit
    byte-identical tables.
    """
    table_rows = []
    for solver, summary in fig10_summaries(rows).items():
        deciles = np.percentile(summary["speedups"], [10, 50, 90])
        table_rows.append([
            solver, summary["matrices"],
            round(summary["geomean"], 2), round(summary["max"], 1),
            round(summary["min"], 2), summary["regressions"],
            round(float(deciles[0]), 2), round(float(deciles[1]), 2),
            round(float(deciles[2]), 2),
        ])
    return format_table(
        ["solver", "matrices", "geomean speedup", "max", "min",
         "regressions", "p10", "median", "p90"],
        table_rows,
        title=f"Figure 10 — {count}-matrix sweep on the A100 "
              "(paper: SuperLU 5.47x geomean / 418.79x max, "
              "PanguLU 2.84x / 5.59x)",
    )


def cache_stats_table(outcome: SweepOutcome) -> str:
    """Render the aggregated per-worker analysis-cache accounting."""
    rows = [
        [f"worker {w}", s["entries"], s["hits"], s["misses"],
         s["evictions"], round(s["hit_rate"], 3)]
        for w, s in enumerate(outcome.per_worker_cache_stats)
    ]
    agg = outcome.cache_stats
    rows.append(["total", agg["entries"], agg["hits"], agg["misses"],
                 agg["evictions"], round(agg["hit_rate"], 3)])
    return format_table(
        ["cache", "entries", "hits", "misses", "evictions", "hit rate"],
        rows,
        title=f"Analysis-cache accounting ({outcome.workers} workers)",
    )

"""Batched SpTRSV: DAG-scheduled blocked triangular solves.

This is the solve-phase counterpart of :class:`NumericEngine`: the
triangular factor's tiles live in a :class:`~repro.solvers.tilepool.TileArena`,
the right-hand-side blocks live in a column-folded :class:`RhsPool`, and
the tasks of :func:`repro.core.solve_dag.build_solve_dag` run through any
scheduler in :func:`repro.core.solve_dag.make_solve_scheduler` — the full
Prioritizer → Collector → Executor pipeline for ``trojan``, or the
level-set / level-batch / serial baselines.

Bit-identity is the testable contract: the canonical accumulation chains
of the solve DAG fix each RHS block's update order, and every execution
path — per-column oracle (:meth:`SpTRSVContext.solve_per_column`),
per-task kernels, and the stacked batched kernels — performs the same
``(m, k) @ (k, 1)`` per-column cores in that same order, so any
scheduler and any batch composition produce the same bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dag import TaskDAG
from repro.core.scheduler import ScheduleResult
from repro.core.solve_dag import (
    build_solve_dag,
    make_solve_scheduler,
    solve_sources,
)
from repro.core.task import Task, TaskType
from repro.gpusim.costmodel import GPUCostModel
from repro.gpusim.specs import GPUSpec, RTX5090
from repro.kernels.batched import (
    batch_kernels_enabled,
    batched_sptrsv_diag,
    batched_sptrsv_update,
)
from repro.kernels.dense import trsm_left_col
from repro.kernels.tilekernels import (
    KernelStats,
    sptrsv_diag_kernel,
    sptrsv_update_kernel,
)
from repro.solvers.tilepool import TileArena
from repro.sparse import CSRMatrix
from repro.sparse.blocking import Partition, block_pattern, uniform_partition


class RhsPool:
    """Column-folded pooled storage for one solve's RHS blocks.

    RHS block ``i`` is stored as an ``(nrhs, m_i, 1)`` slice of a
    per-size-class pool, so a kernel group's blocks gather into one
    ``(B, nrhs, m, 1)`` stack with a single fancy index, and each
    column stays an ``(m, 1)`` C-contiguous operand — the layout the
    bit-identity contract of :mod:`repro.kernels.batched` relies on.
    """

    def __init__(self, part: Partition, b2: np.ndarray | None = None,
                 *, nrhs: int | None = None):
        if b2 is None:
            if nrhs is None:
                raise ValueError("RhsPool needs a right-hand side or nrhs")
            nrhs = int(nrhs)
        else:
            n, nrhs = b2.shape
            if n != part.n:
                raise ValueError(
                    "right-hand side does not cover the partition")
        self.part = part
        self.nrhs = nrhs
        sizes = part.sizes()
        usize, class_of = np.unique(sizes, return_inverse=True)
        self._class = class_of.astype(np.int64)
        self._slot = np.empty(part.nblocks, dtype=np.int64)
        self.pools: list[np.ndarray] = []
        self._members: list[np.ndarray] = []
        for c, m in enumerate(usize.tolist()):
            members = np.flatnonzero(class_of == c)
            self._slot[members] = np.arange(members.size)
            self.pools.append(np.zeros((members.size, nrhs, int(m), 1)))
            self._members.append(members)
        if b2 is not None:
            self.stamp(b2)

    def stamp(self, b2: np.ndarray) -> None:
        """Fold an ``(n, nrhs)`` right-hand side into the pools."""
        if b2.shape != (self.part.n, self.nrhs):
            raise ValueError("right-hand side does not match the pool")
        for pool, members in zip(self.pools, self._members):
            for s, blk in enumerate(members.tolist()):
                lo, hi = self.part.block_range(blk)
                pool[s] = b2[lo:hi, :].T[:, :, None]

    def view(self, blk: int) -> np.ndarray:
        """Writable ``(nrhs, m, 1)`` view of one RHS block."""
        return self.pools[int(self._class[blk])][int(self._slot[blk])]

    def locate(self, blks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(class, slot)`` lookup for block-index arrays."""
        blks = np.asarray(blks, dtype=np.int64)
        return self._class[blks], self._slot[blks]

    def gather(self) -> np.ndarray:
        """Reassemble the ``(n, nrhs)`` solution array."""
        out = np.empty((self.part.n, self.nrhs))
        for pool, members in zip(self.pools, self._members):
            for s, blk in enumerate(members.tolist()):
                lo, hi = self.part.block_range(blk)
                out[lo:hi, :] = pool[s, :, :, 0].T
        return out


def run_solve_batch(arena, rhs, tids: np.ndarray, atomic: np.ndarray,
                    arrays, *, lower: bool, unit_diagonal: bool,
                    sparse_tiles: bool = False, batch_kernels: bool = True
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Execute one launch's solve tasks on a factor arena + RHS pool.

    The free-function form of :meth:`SpTRSVEngine.run_batch_tasks`,
    shared with the ``repro.parallel`` workers: it needs only the factor
    arena (possibly an attached shared-memory one), the RHS pool, the
    batch's task ids and the task coordinate columns — no context or
    scheduler.  Returns per-task ``(flops, bytes)`` int64 arrays aligned
    with ``tids``.

    DIAG tasks group by RHS size class (which pins the diagonal-tile
    shape too); UPDATE tasks group by (dest class, src class), which
    pins the factor-tile shape.  Co-batched tasks write distinct RHS
    blocks — the canonical chains serialise same-destination updates —
    so gather/compute/scatter per group is race-free, and any partition
    of a batch across processes produces the same bits.
    """
    tids = np.asarray(tids, dtype=np.int64)
    n = tids.size
    flops = np.zeros(n, dtype=np.int64)
    nbytes = np.zeros(n, dtype=np.int64)
    sp = sparse_tiles
    code = arrays.type_code[tids]
    kk = arrays.k[tids]
    ii = arrays.i[tids]
    if not batch_kernels or n == 1:
        for idx in range(n):
            i = int(ii[idx])
            k = int(kk[idx])
            if int(code[idx]) == int(TaskType.SPTRSV_DIAG):
                s = sptrsv_diag_kernel(
                    rhs.view(i), arena.view(i, i),
                    lower=lower, unit_diagonal=unit_diagonal,
                    sparse=sp)
            else:
                s = sptrsv_update_kernel(
                    rhs.view(i), arena.view(i, k),
                    rhs.view(k), sparse=sp)
            flops[idx] = s.flops
            nbytes[idx] = s.bytes
        return flops, nbytes
    pools = rhs.pools
    sel = np.flatnonzero(code == int(TaskType.SPTRSV_DIAG))
    if sel.size:
        rcls, rslots = rhs.locate(ii[sel])
        dcls, dslots = arena.locate(ii[sel], ii[sel])
        for c in np.unique(rcls):
            mask = rcls == c
            mem = sel[mask]
            pool = pools[int(c)]
            gslots = rslots[mask]
            bstack = pool[gslots]
            dstack = arena.pools[int(dcls[mask][0])][dslots[mask]]
            f, b = batched_sptrsv_diag(
                bstack, dstack, lower=lower,
                unit_diagonal=unit_diagonal, sparse=sp)
            pool[gslots] = bstack
            flops[mem] = f
            nbytes[mem] = b
    sel = np.flatnonzero(code == int(TaskType.SPTRSV_UPDATE))
    if sel.size:
        dcls, dslots = rhs.locate(ii[sel])
        scls, sslots = rhs.locate(kk[sel])
        tcls, tslots = arena.locate(ii[sel], kk[sel])
        # (dest class, src class) pins both RHS shapes and therefore
        # the factor-tile shape
        key = dcls * len(pools) + scls
        for kv in np.unique(key):
            mask = key == kv
            mem = sel[mask]
            dpool = pools[int(dcls[mask][0])]
            spool = pools[int(scls[mask][0])]
            tpool = arena.pools[int(tcls[mask][0])]
            gslots = dslots[mask]
            dest = dpool[gslots]
            f, b = batched_sptrsv_update(
                dest, tpool[tslots[mask]], spool[sslots[mask]],
                sparse=sp)
            dpool[gslots] = dest
            flops[mem] = f
            nbytes[mem] = b
    return flops, nbytes


@dataclass
class SolveResult:
    """One DAG-scheduled triangular solve's outcome."""

    x: np.ndarray
    scheduler: str
    schedule: ScheduleResult
    dag: TaskDAG
    nrhs: int


class SpTRSVContext:
    """Reusable solve-phase state for one triangular factor.

    Validates element-level triangularity up front, stamps the factor
    tiles into a :class:`TileArena` once, and caches one solve DAG per
    RHS width — repeated solves against the same factor (iterative
    refinement, multiple right-hand sides over time) pay only the RHS
    pooling and task execution.

    Parameters
    ----------
    tri:
        The triangular factor (CSR).  For a unit-diagonal solve the
        stored diagonal is ignored by the kernels but tiles on the
        diagonal must still exist (the engine's L factors store an
        explicit unit diagonal).
    part:
        Tile partition.
    lower:
        Forward (lower) vs backward (upper) substitution.
    unit_diagonal:
        Take the diagonal as 1 instead of reading it.
    sparse_tiles:
        Sparse kernel accounting (matches the factorisation's flag).
    arena_factory:
        Optional callable ``(part, pattern) -> TileArena`` for the
        factor-tile storage; ``repro.parallel`` passes
        :class:`~repro.parallel.shmem.SharedTileArena`.
    """

    def __init__(self, tri: CSRMatrix, part: Partition, lower: bool = True,
                 unit_diagonal: bool = False, sparse_tiles: bool = False,
                 arena_factory=None):
        if tri.nrows != tri.ncols:
            raise ValueError("triangular solve requires a square matrix")
        if part.n != tri.nrows:
            raise ValueError("partition does not cover the matrix")
        rows = np.repeat(np.arange(tri.nrows, dtype=np.int64),
                         tri.row_lengths())
        if lower:
            if not np.all(tri.indices <= rows):
                raise ValueError("matrix is not lower triangular")
        elif not np.all(tri.indices >= rows):
            raise ValueError("matrix is not upper triangular")
        self.tri = tri
        self.part = part
        self.lower = lower
        self.unit_diagonal = unit_diagonal
        self.sparse_tiles = sparse_tiles
        nb = part.nblocks
        pat = block_pattern(tri, part)
        np.fill_diagonal(pat, True)  # every diagonal tile is solved against
        self.pattern = pat
        brow = part.block_of(rows)
        bcol = part.block_of(tri.indices)
        counts = np.bincount(brow * nb + bcol, minlength=nb * nb)
        bi, bj = np.nonzero(pat)
        self.tile_nnz = {
            (int(i), int(j)): int(counts[i * nb + j])
            for i, j in zip(bi, bj)
        }
        make_arena = TileArena if arena_factory is None else arena_factory
        self.arena = make_arena(part, pat)
        self.arena.stamp(tri)
        self._dag_cache: dict[int, TaskDAG] = {}

    def dag_for(self, nrhs: int) -> TaskDAG:
        """The (cached) solve DAG for one RHS width."""
        dag = self._dag_cache.get(nrhs)
        if dag is None:
            dag = build_solve_dag(
                self.pattern, self.part, nrhs=nrhs, lower=self.lower,
                tile_nnz=self.tile_nnz, sparse_tiles=self.sparse_tiles,
            )
            self._dag_cache[nrhs] = dag
        return dag

    # ------------------------------------------------------------------
    # execution paths
    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray, scheduler: str = "trojan",
              gpu: GPUSpec = RTX5090,
              batch_kernels: bool | None = None) -> SolveResult:
        """Solve ``T x = b`` through the solve DAG under ``scheduler``.

        ``b`` may be ``(n,)`` or ``(n, nrhs)``; the solution has the
        same shape.  ``batch_kernels`` selects stacked kernel groups vs
        per-task kernels inside each launch (``None`` reads
        ``REPRO_BATCH_KERNELS``); both produce identical bits.
        """
        b = np.asarray(b, dtype=np.float64)
        b2 = b.reshape(b.shape[0], -1) if b.ndim == 2 else b[:, None]
        if b.ndim > 2 or b2.shape[0] != self.part.n:
            raise ValueError("right-hand side shape does not match matrix")
        rhs = RhsPool(self.part, b2)
        dag = self.dag_for(b2.shape[1])
        engine = SpTRSVEngine(self, rhs, batch_kernels=batch_kernels)
        sched = make_solve_scheduler(scheduler, dag, engine,
                                     GPUCostModel(gpu))
        schedule = sched.run()
        x2 = rhs.gather()
        return SolveResult(
            x=x2[:, 0] if b.ndim == 1 else x2,
            scheduler=scheduler, schedule=schedule, dag=dag,
            nrhs=b2.shape[1],
        )

    def solve_per_column(self, b: np.ndarray) -> np.ndarray:
        """Per-column tiled substitution — the differential oracle.

        Each RHS column is solved independently and serially in the
        canonical block order, performing exactly the per-column
        ``(m, k) @ (k, 1)`` cores of the DAG path's kernels: same
        operations, same order, same operand layouts — bit-identical to
        :meth:`solve` under every scheduler and batch composition.
        """
        b = np.asarray(b, dtype=np.float64)
        b2 = (b.reshape(b.shape[0], -1) if b.ndim == 2
              else b[:, None]).copy()
        if b.ndim > 2 or b2.shape[0] != self.part.n:
            raise ValueError("right-hand side shape does not match matrix")
        part = self.part
        nb = part.nblocks
        order = range(nb) if self.lower else range(nb - 1, -1, -1)
        for c in range(b2.shape[1]):
            col = b2[:, c:c + 1].copy()
            for dest in order:
                lo, hi = part.block_range(dest)
                dcol = col[lo:hi]
                for src in solve_sources(self.pattern, dest, self.lower):
                    slo, shi = part.block_range(src)
                    dcol -= self.arena.view(dest, src) @ col[slo:shi]
                trsm_left_col(self.arena.view(dest, dest), dcol,
                              lower=self.lower,
                              unit_diagonal=self.unit_diagonal)
            b2[:, c] = col[:, 0]
        return b2[:, 0] if b.ndim == 1 else b2


class SpTRSVEngine:
    """ExecutionBackend running solve tasks on arena + RHS pool storage.

    One engine serves one solve (the :class:`RhsPool` is mutated in
    place); the factor arena is shared across solves via the context.
    """

    def __init__(self, ctx: SpTRSVContext, rhs: RhsPool,
                 batch_kernels: bool | None = None):
        self.ctx = ctx
        self.rhs = rhs
        self.batch_kernels = (
            batch_kernels_enabled() if batch_kernels is None
            else bool(batch_kernels)
        )

    def run_task(self, task: Task, atomic: bool) -> KernelStats:
        """Execute one solve task's arithmetic."""
        ctx = self.ctx
        if task.type == TaskType.SPTRSV_DIAG:
            return sptrsv_diag_kernel(
                self.rhs.view(task.i), ctx.arena.view(task.i, task.i),
                lower=ctx.lower, unit_diagonal=ctx.unit_diagonal,
                sparse=ctx.sparse_tiles,
            )
        if task.type == TaskType.SPTRSV_UPDATE:
            return sptrsv_update_kernel(
                self.rhs.view(task.i), ctx.arena.view(task.i, task.k),
                self.rhs.view(task.k), sparse=ctx.sparse_tiles,
            )
        raise ValueError(f"not a solve task: {task.type.name}")

    def run_batch_tasks(self, tids: np.ndarray, atomic: np.ndarray,
                        arrays) -> tuple[int, int]:
        """Execute one launch with stacked kernel groups.

        Delegates to :func:`run_solve_batch` — the module-level form
        shared with the multiprocess workers.  Returns the launch's
        total ``(flops, bytes)``.
        """
        ctx = self.ctx
        flops, nbytes = run_solve_batch(
            ctx.arena, self.rhs, tids, atomic, arrays,
            lower=ctx.lower, unit_diagonal=ctx.unit_diagonal,
            sparse_tiles=ctx.sparse_tiles,
            batch_kernels=self.batch_kernels,
        )
        return int(flops.sum()), int(nbytes.sum())


def fold_rhs(bs: list) -> tuple[np.ndarray, list]:
    """Fold several right-hand sides into one multi-RHS column stack.

    The cross-request micro-batching primitive of the solver server:
    ``k`` same-pattern solve requests (each ``(n,)`` or ``(n, nrhs_i)``)
    become one ``(n, Σ nrhs_i)`` array, solved by a single batched
    SpTRSV launch through the :class:`RhsPool` column folding.  Returns
    the stack plus the per-request split recipe for :func:`unfold_rhs`.

    Sound because the DAG solve path is column-equivariant *bitwise*
    (every kernel runs per-column ``(m, k) @ (k, 1)`` cores — pinned by
    the solve-phase property suite), so each request's slice of the
    folded solution is the same bits a solo solve would have produced.
    """
    if not bs:
        raise ValueError("fold_rhs needs at least one right-hand side")
    cols = []
    splits = []
    n = None
    for b in bs:
        b = np.asarray(b, dtype=np.float64)
        if b.ndim not in (1, 2):
            raise ValueError(f"right-hand side must be 1-D or 2-D, "
                             f"got {b.ndim}-D")
        if n is None:
            n = b.shape[0]
        elif b.shape[0] != n:
            raise ValueError("folded right-hand sides must share length")
        b2 = b[:, None] if b.ndim == 1 else b
        cols.append(b2)
        splits.append((b2.shape[1], b.ndim == 1))
    return np.concatenate(cols, axis=1), splits


def unfold_rhs(x2: np.ndarray, splits: list) -> list:
    """Split a folded solution back into the per-request shapes."""
    out = []
    pos = 0
    for ncols, was_1d in splits:
        piece = x2[:, pos:pos + ncols]
        out.append(piece[:, 0] if was_1d else piece)
        pos += ncols
    if pos != x2.shape[1]:
        raise ValueError("split recipe does not cover the folded solution")
    return out


def sptrsv_solve(tri: CSRMatrix, b: np.ndarray, part: Partition | None = None,
                 block_size: int = 64, lower: bool = True,
                 unit_diagonal: bool = False, scheduler: str = "trojan",
                 gpu: GPUSpec = RTX5090, sparse_tiles: bool = False
                 ) -> SolveResult:
    """One-shot DAG-scheduled triangular solve (convenience wrapper)."""
    if part is None:
        part = uniform_partition(tri.nrows, block_size)
    ctx = SpTRSVContext(tri, part, lower=lower,
                        unit_diagonal=unit_diagonal,
                        sparse_tiles=sparse_tiles)
    return ctx.solve(b, scheduler=scheduler, gpu=gpu)

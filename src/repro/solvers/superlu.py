"""SuperLU_DIST-analogue substrate: supernodal, dense panels.

Mirrors the properties §3.5.1 relies on: supernodes are *small* (many
matrices have mostly width-1..4 supernodes), so the baseline launches an
enormous number of tiny kernels — the regime where Trojan Horse's
aggregation yields the paper's largest speedups (up to 418× in Figure 10).

The baseline scheduler is ``"serial"`` (one kernel per task, as the
Table-5 kernel counts of SuperLU_DIST v9.1.0 imply); ``"levelbatch"``
models the newer batched SuperLU of reference [53] and is exposed for the
ablation benches.
"""

from __future__ import annotations

from repro.core.fusion import FusedBackend, merge_schur_tasks
from repro.solvers.base import BlockSolverBase
from repro.sparse import CSRMatrix
from repro.symbolic import find_supernodes


class SuperLUSolver(BlockSolverBase):
    """Supernodal dense-panel solver (SuperLU_DIST analogue).

    Parameters
    ----------
    a:
        System matrix.
    max_supernode:
        Maximum supernode width.  The paper tunes the real solver to 256;
        the scaled default here is 32 (DESIGN.md §3).
    relax:
        Relaxed-supernode amalgamation slack (explicit zeros admitted per
        merged column).
    merge_schur:
        Apply the §3.5.1 integration when scheduling with the Trojan
        Horse: all Schur updates of one supernode row fuse into a single
        larger GEMM task, taming the CPU-side aggregation bottleneck.
        Fused tasks run through the per-task backend; pass
        ``merge_schur=False`` (or a non-trojan scheduler) to execute
        launches as batched kernel groups instead (``batch_kernels`` /
        ``REPRO_BATCH_KERNELS``, see :class:`BlockSolverBase`).
    """

    solver_name = "superlu"
    sparse_tiles = False
    default_scheduler = "serial"

    def __init__(self, a: CSRMatrix, max_supernode: int = 32, relax: int = 1,
                 merge_schur: bool = True, **kwargs):
        super().__init__(a, **kwargs)
        self.max_supernode = max_supernode
        self.relax = relax
        self.merge_schur = merge_schur

    def _build_partition(self, permuted: CSRMatrix):
        fill = self._cached_fill(permuted)
        part = find_supernodes(fill, max_size=self.max_supernode,
                               relax=self.relax)
        return part, fill

    def _prepare_schedule(self, engine, backend):
        if self.scheduler == "trojan" and self.merge_schur:
            fusion = merge_schur_tasks(engine.dag)
            return fusion.dag, FusedBackend(backend, fusion, engine.dag)
        return engine.dag, backend

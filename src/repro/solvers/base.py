"""Shared front-end machinery for the solver substrates."""

from __future__ import annotations

import time

import numpy as np

from repro.core.analysis_cache import DEFAULT_ANALYSIS_CACHE, AnalysisCache
from repro.core.baselines import make_scheduler
from repro.gpusim.costmodel import GPUCostModel
from repro.gpusim.specs import GPUSpec, RTX5090
from repro.ordering import compute_ordering
from repro.solvers.engine import (
    FactorizationResult,
    NumericBackend,
    NumericEngine,
)
from repro.sparse import CSRMatrix, permute_symmetric
from repro.sparse.blocking import Partition


class BlockSolverBase:
    """Template for the GPU solver substrates.

    Subclasses define :meth:`_build_partition` (supernodal vs uniform) and
    the defaults (`tile sparsity`, baseline scheduler name).

    Parameters
    ----------
    a:
        The system matrix.
    ordering:
        Fill-reducing ordering name (see
        :data:`repro.ordering.ORDERING_METHODS`).
    gpu:
        Simulated device (default RTX 5090, the paper's Figure-8 card).
    scheduler:
        Scheduling policy: the substrate's baseline, ``"trojan"`` for the
        paper's strategy, ``"streams"``/``"levelbatch"`` for ablations.
    analysis_cache:
        Pattern-keyed memo for the symbolic analysis.  ``"default"``
        (the default) shares the process-wide
        :data:`~repro.core.analysis_cache.DEFAULT_ANALYSIS_CACHE`;
        pass an :class:`~repro.core.analysis_cache.AnalysisCache` for an
        isolated cache, or ``None`` to disable caching entirely.
    batch_kernels:
        Batched kernel groups in the numeric launches (stacked GEMMs and
        multi-RHS triangular solves; see
        :meth:`repro.solvers.engine.NumericEngine.run_batch_tasks`).
        ``None`` (default) reads the ``REPRO_BATCH_KERNELS`` environment
        knob (on unless ``0``); the factors and recorded stats are
        bit-identical either way.
    """

    solver_name = "block-lu"
    sparse_tiles = False
    default_scheduler = "serial"

    def __init__(self, a: CSRMatrix, ordering: str = "mindeg",
                 gpu: GPUSpec = RTX5090, scheduler: str | None = None,
                 analysis_cache: "AnalysisCache | str | None" = "default",
                 batch_kernels: bool | None = None,
                 **sched_kwargs):
        self.a = a
        self.ordering = ordering
        self.gpu = gpu
        self.scheduler = scheduler or self.default_scheduler
        self.analysis_cache = (DEFAULT_ANALYSIS_CACHE
                               if analysis_cache == "default"
                               else analysis_cache)
        self.batch_kernels = batch_kernels
        self.sched_kwargs = sched_kwargs
        self.result: FactorizationResult | None = None

    # ------------------------------------------------------------------
    def _build_partition(self, permuted: CSRMatrix):
        """Return ``(partition, fill_or_None)``.

        Substrates that already ran the element-level symbolic analysis
        (the supernodal one) hand the fill to the engine so it is not
        recomputed.
        """
        raise NotImplementedError

    def _cached_fill(self, permuted: CSRMatrix):
        """Element-level fill of the permuted matrix, via the cache.

        Substrates whose partition derives from the fill (the supernodal
        one) call this before the engine exists, so repeated patterns
        skip even the pre-partition analysis.
        """
        from repro.symbolic import symbolic_fill

        if self.analysis_cache is None:
            return symbolic_fill(permuted)
        return self.analysis_cache.fill_for(
            permuted, lambda: symbolic_fill(permuted)
        )

    def _make_scheduler(self, dag, backend, model):
        """Instantiate the scheduling policy (hook for substrates with
        policies outside the generic factory, e.g. PaStiX's dmdas)."""
        return make_scheduler(self.scheduler, dag, backend, model,
                              **self.sched_kwargs)

    def _prepare_schedule(self, engine, backend):
        """Optionally rewrite the DAG before scheduling (hook for the
        SuperLU §3.5.1 Schur-fusion integration).  Returns the DAG and
        backend the scheduler should use."""
        return engine.dag, backend

    # ------------------------------------------------------------------
    def prepare_engine(self, arena_factory=None
                       ) -> tuple[np.ndarray, CSRMatrix, NumericEngine]:
        """Run the reorder + symbolic front-end and build the engine.

        Returns ``(perm, permuted, engine)`` and records them on the
        solver.  :meth:`factorize` calls this and then schedules the
        numeric phase in-process; ``repro.parallel`` calls it with
        ``arena_factory=SharedTileArena`` so the same front-end feeds a
        multiprocess numeric phase on shared tiles.
        """
        t0 = time.perf_counter()
        perm = compute_ordering(self.a, self.ordering)
        permuted = permute_symmetric(self.a, perm)
        t1 = time.perf_counter()
        part, fill = self._build_partition(permuted)
        engine = NumericEngine(permuted, part, sparse_tiles=self.sparse_tiles,
                               fill=fill, cache=self.analysis_cache,
                               batch_kernels=self.batch_kernels,
                               arena_factory=arena_factory)
        self._engine = engine
        self._perm = perm
        self._front_seconds = {"reorder": t1 - t0,
                               "symbolic": time.perf_counter() - t1}
        return perm, permuted, engine

    def factorize(self) -> FactorizationResult:
        """Run all three phases (Figure 1) and return the result.

        Reordering and symbolic run on the "CPU" (measured wall-clock);
        the numeric phase executes real tile arithmetic while the
        scheduler records the simulated GPU timeline.
        """
        perm, _, engine = self.prepare_engine()
        t2 = time.perf_counter()
        backend = NumericBackend(engine)
        model = GPUCostModel(self.gpu)
        sched_dag, sched_backend = self._prepare_schedule(engine, backend)
        schedule = self._make_scheduler(sched_dag, sched_backend, model).run()
        L, U = engine.extract_factors()
        t3 = time.perf_counter()
        self.result = FactorizationResult(
            solver=self.solver_name,
            scheduler=self.scheduler,
            L=L, U=U, perm=perm,
            schedule=schedule,
            dag=engine.dag,
            stats=backend.stats,
            fill_nnz=engine.fill.nnz_lu,
            phase_seconds={
                "reorder": self._front_seconds["reorder"],
                "symbolic": self._front_seconds["symbolic"],
                "numeric": t3 - t2,
            },
        )
        return self.result

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` (factorises on first use)."""
        if self.result is None:
            self.factorize()
        return self.result.solve(b)

    def refactorize(self, a_new: CSRMatrix) -> FactorizationResult:
        """Numeric-only refactorisation for a same-pattern matrix.

        Reuses the ordering, symbolic analysis, tile allocation and task
        DAG of the previous :meth:`factorize` call — the KLU-style fast
        path circuit simulators rely on (values change every Newton step,
        structure never does).
        """
        if self.result is None:
            raise RuntimeError("call factorize() before refactorize()")
        t0 = time.perf_counter()
        permuted = permute_symmetric(a_new, self._perm)
        engine = self._engine
        engine.reset_values(permuted)
        backend = NumericBackend(engine)
        model = GPUCostModel(self.gpu)
        sched_dag, sched_backend = self._prepare_schedule(engine, backend)
        schedule = self._make_scheduler(sched_dag, sched_backend, model).run()
        L, U = engine.extract_factors()
        t1 = time.perf_counter()
        self.a = a_new
        self.result = FactorizationResult(
            solver=self.solver_name,
            scheduler=self.scheduler,
            L=L, U=U, perm=self._perm,
            schedule=schedule,
            dag=engine.dag,
            stats=backend.stats,
            fill_nnz=engine.fill.nnz_lu,
            phase_seconds={"reorder": 0.0, "symbolic": 0.0,
                           "numeric": t1 - t0},
        )
        return self.result

"""Solver substrates: the libraries the Trojan Horse integrates into.

* :class:`~repro.solvers.superlu.SuperLUSolver` — supernodal, dense
  panels, tiny tasks (SuperLU_DIST analogue);
* :class:`~repro.solvers.pangulu.PanguLUSolver` — regular 2-D sparse
  blocks, larger tasks (PanguLU analogue);
* :class:`~repro.solvers.pastix.PaStiXSolver` — runtime-system baseline
  ('dmdas'-style dynamic list scheduling on StarPU, per-task launches);
* :mod:`~repro.solvers.cpu` — SuperLU-CPU and MUMPS-style cost models for
  the Table-7 comparison.

All share one verified numeric engine (:mod:`repro.solvers.engine`), so
every scheduler variant produces the same factors — the paper's
"total floating-point operations remain unchanged" invariant is testable
directly.
"""

from repro.solvers.engine import (
    NumericEngine,
    NumericBackend,
    FactorizationResult,
    resimulate,
    scale_stats,
)
from repro.solvers.tilepool import TileArena, TileViews
from repro.solvers.sptrsv import (
    RhsPool,
    SolveResult,
    SpTRSVContext,
    SpTRSVEngine,
    fold_rhs,
    sptrsv_solve,
    unfold_rhs,
)
from repro.solvers.cpu import cpu_makespan
from repro.solvers.superlu import SuperLUSolver
from repro.solvers.pangulu import PanguLUSolver
from repro.solvers.pastix import PaStiXSolver
from repro.solvers.cpu import CPUSolver, CPUSolverResult
from repro.solvers.cholesky import CholeskySolver, CholeskyResult

#: Name → solver-class registry; the CLI and the sweep runner address
#: substrates by these keys so work items stay picklable (a key string
#: crosses process boundaries, a class reference need not).
SOLVER_REGISTRY = {
    "pangulu": PanguLUSolver,
    "superlu": SuperLUSolver,
    "pastix": PaStiXSolver,
    "cholesky": CholeskySolver,
}

__all__ = [
    "NumericEngine",
    "NumericBackend",
    "TileArena",
    "TileViews",
    "RhsPool",
    "SolveResult",
    "SpTRSVContext",
    "SpTRSVEngine",
    "fold_rhs",
    "sptrsv_solve",
    "unfold_rhs",
    "FactorizationResult",
    "resimulate",
    "scale_stats",
    "cpu_makespan",
    "SuperLUSolver",
    "PanguLUSolver",
    "PaStiXSolver",
    "CPUSolver",
    "CPUSolverResult",
    "CholeskySolver",
    "CholeskyResult",
    "SOLVER_REGISTRY",
]

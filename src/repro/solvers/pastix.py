"""PaStiX + StarPU baseline: runtime-system dynamic list scheduling.

The paper evaluates PaStiX v6.4.0 under StarPU's ``dmdas`` policy
(deque-model data-aware, sorted by priority).  The model here: supernodal
dense panels (PaStiX block sizes 160–320, scaled), per-task kernel
launches ordered by a dmdas-style priority (critical-path depth, i.e.
expected downstream cost), and a per-task *runtime-system* overhead on
top of the launch cost — StarPU's generic task management is precisely
the cost §5 argues specialised solvers avoid.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.dag import TaskDAG
from repro.core.executor import ExecutionBackend, Executor
from repro.core.scheduler import ScheduleResult
from repro.gpusim.costmodel import GPUCostModel
from repro.solvers.base import BlockSolverBase
from repro.sparse import CSRMatrix
from repro.symbolic import find_supernodes, symbolic_fill

#: StarPU-style per-task management cost (scheduling decision, data
#: coherency bookkeeping) in microseconds of CPU time.
RUNTIME_TASK_OVERHEAD_US = 6.0


class DmdasScheduler:
    """Dynamic list scheduling ordered by downstream cost ("dmdas")."""

    name = "dmdas"

    def __init__(self, dag: TaskDAG, backend: ExecutionBackend,
                 model: GPUCostModel):
        self._dag = dag
        self._backend = backend
        self._model = model

    def run(self) -> ScheduleResult:
        """Execute per-task kernels in priority order with runtime
        overhead charged per task."""
        dag = self._dag
        pred = dag.pred_count.copy()
        cp = dag.critical_path_lengths()
        execu = Executor(self._model, self._backend)
        heap = [(-int(cp[t]), t) for t in dag.initial_ready()]
        heapq.heapify(heap)
        batches = []
        t = 0.0
        per_task_overhead = RUNTIME_TASK_OVERHEAD_US * 1e-6
        while heap:
            _, tid = heapq.heappop(heap)
            record = execu.run_batch([dag.tasks[tid]], t)
            t = record.t_end
            batches.append(record)
            for s in dag.successors[tid]:
                pred[s] -= 1
                if pred[s] == 0:
                    heapq.heappush(heap, (-int(cp[s]), s))
        if len(batches) != dag.n_tasks:
            raise AssertionError("dmdas scheduler missed tasks — DAG bug")
        return ScheduleResult(
            scheduler=self.name,
            device=self._model.gpu.name,
            batches=batches,
            kernel_count=len(batches),
            task_count=dag.n_tasks,
            kernel_time=t,
            sched_overhead=per_task_overhead * dag.n_tasks,
            total_flops=sum(b.flops for b in batches),
            counts_by_type=dag.counts_by_type(),
        )


class PaStiXSolver(BlockSolverBase):
    """PaStiX + StarPU analogue (runtime-system baseline).

    Parameters
    ----------
    a:
        System matrix.
    max_supernode:
        Panel width cap; the paper tunes PaStiX to 160–320, scaled here
        to 40.
    """

    solver_name = "pastix"
    sparse_tiles = False
    default_scheduler = "dmdas"

    def __init__(self, a: CSRMatrix, max_supernode: int = 40, **kwargs):
        super().__init__(a, **kwargs)
        self.max_supernode = max_supernode

    def _build_partition(self, permuted: CSRMatrix):
        fill = symbolic_fill(permuted)
        part = find_supernodes(fill, max_size=self.max_supernode, relax=4)
        return part, fill

    def _make_scheduler(self, dag, backend, model):
        if self.scheduler == "dmdas":
            return DmdasScheduler(dag, backend, model)
        return super()._make_scheduler(dag, backend, model)

"""Sparse Cholesky substrate — the solver-agnosticism demonstration.

The paper argues the Trojan Horse is "independent of solver libraries".
This module proves the claim inside the reproduction by wiring a third,
structurally different factorisation — symmetric LLᵀ over lower-triangle
tiles — through the *unchanged* scheduling machinery: the same Task/DAG
types (GETRF plays POTRF, TSTRF the panel solve, SSSSM the symmetric
update), the same Prioritizer/Container/Collector/Executor, and the same
baselines.

Cholesky task semantics (lower tiles only, ``i ≥ j``):

* POTRF(k): ``A(k,k) = L(k,k)·L(k,k)ᵀ``;
* TRSM(k, i): ``L(i,k) = A(i,k)·L(k,k)⁻ᵀ``;
* SYRK/GEMM(k, i, j): ``A(i,j) −= L(i,k)·L(j,k)ᵀ`` for ``k < j ≤ i``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.baselines import make_scheduler
from repro.core.dag import TaskDAG
from repro.core.scheduler import ScheduleResult
from repro.core.task import Task, TaskType
from repro.gpusim.costmodel import GPUCostModel
from repro.gpusim.specs import GPUSpec, RTX5090
from repro.kernels.dense import dense_potrf, gemm_update, trsm_upper
from repro.kernels.flops import (
    gemm_flops_dense,
    getrf_flops_dense,
    trsm_flops_dense,
)
from repro.kernels.tilekernels import KernelStats
from repro.ordering import compute_ordering
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    permute_symmetric,
    triangular_solve,
)
from repro.sparse.blocking import Partition, split_tiles, uniform_partition
from repro.symbolic import block_fill, symbolic_fill


def build_cholesky_dag(fill: np.ndarray, part: Partition) -> TaskDAG:
    """Task DAG of a tiled LLᵀ factorisation over the lower triangle.

    Same dependency rules as LU restricted to ``i ≥ j``; the update of
    tile (i, j) at step k needs both panel tiles L(i,k) and L(j,k).
    """
    nb = part.nblocks
    fill = np.asarray(fill, dtype=bool)
    sizes = part.sizes()
    tasks: list[Task] = []
    potrf_id: dict[int, int] = {}
    trsm_id: dict[tuple[int, int], int] = {}

    def add(ttype: TaskType, k: int, i: int, j: int) -> int:
        tid = len(tasks)
        rows, cols = int(sizes[i]), int(sizes[j])
        mk = int(sizes[k])
        if ttype == TaskType.GETRF:      # POTRF
            flops = getrf_flops_dense(rows) // 2
        elif ttype == TaskType.TSTRF:    # panel TRSM
            flops = trsm_flops_dense(mk, rows)
        else:                            # symmetric update
            flops = gemm_flops_dense(rows, mk, cols)
        tasks.append(Task(tid=tid, type=ttype, k=k, i=i, j=j,
                          rows=rows, cols=cols, nnz=rows * cols,
                          atomic=ttype == TaskType.SSSSM,
                          flops_est=int(flops),
                          bytes_est=8 * 2 * rows * cols))
        return tid

    lower_of: list[np.ndarray] = []
    for k in range(nb):
        potrf_id[k] = add(TaskType.GETRF, k, k, k)
        li = np.flatnonzero(fill[k + 1:, k]) + k + 1
        lower_of.append(li)
        for i in li:
            trsm_id[(int(i), k)] = add(TaskType.TSTRF, k, int(i), k)

    update_ids: list[tuple[int, int, int, int]] = []
    for k in range(nb):
        li = lower_of[k]
        for i in li:
            for j in li[li <= i]:
                tid = add(TaskType.SSSSM, k, int(i), int(j))
                update_ids.append((tid, k, int(i), int(j)))

    n = len(tasks)
    pred = np.zeros(n, dtype=np.int64)
    succ: list[list[int]] = [[] for _ in range(n)]

    def edge(a: int, b: int) -> None:
        succ[a].append(b)
        pred[b] += 1

    for k in range(nb):
        for i in lower_of[k]:
            edge(potrf_id[k], trsm_id[(int(i), k)])
    for tid, k, i, j in update_ids:
        edge(trsm_id[(i, k)], tid)
        if j != i:
            edge(trsm_id[(j, k)], tid)
        if i == j:
            edge(tid, potrf_id[i])
        else:
            edge(tid, trsm_id[(i, j)])
    return TaskDAG(tasks=tasks, pred_count=pred, successors=succ, part=part)


class CholeskyEngine:
    """Tile storage and numeric execution for LLᵀ."""

    def __init__(self, a: CSRMatrix, part: Partition):
        self.part = part
        sym_fill = block_fill(a, part)
        self.bfill = np.tril(sym_fill)
        self.dag = build_cholesky_dag(self.bfill, part)
        sizes = part.sizes()
        self.tiles: dict[tuple[int, int], np.ndarray] = {}
        for bi, bj in zip(*np.nonzero(self.bfill)):
            self.tiles[(int(bi), int(bj))] = np.zeros(
                (int(sizes[bi]), int(sizes[bj])))
        for (bi, bj), tile in split_tiles(a, part).items():
            if bi >= bj:
                self.tiles[(bi, bj)][:] = tile.to_dense()

    def run_task(self, task: Task, atomic: bool) -> KernelStats:
        """Execute one Cholesky task on the tile storage."""
        if task.type == TaskType.GETRF:
            dense_potrf(self.tiles[(task.k, task.k)])
        elif task.type == TaskType.TSTRF:
            diag = self.tiles[(task.k, task.k)]
            # X·L(k,k)ᵀ = A(i,k): Lᵀ is upper triangular
            trsm_upper(np.tril(diag).T, self.tiles[(task.i, task.k)])
        else:
            li = self.tiles[(task.i, task.k)]
            lj = self.tiles[(task.j, task.k)]
            gemm_update(self.tiles[(task.i, task.j)], li, lj.T)
            if task.i == task.j:
                # symmetric diagonal update computed fully; keep symmetry
                pass
        return KernelStats(flops=task.flops_est, bytes=task.bytes_est)

    def extract_l(self) -> CSRMatrix:
        """Assemble the global lower factor L (diagonal stored)."""
        n = self.part.n
        bounds = self.part.boundaries
        ri, ci, vi = [], [], []
        for (bi, bj), tile in self.tiles.items():
            use = np.tril(tile) if bi == bj else tile
            rr, cc = np.nonzero(use)
            ri.append(rr + int(bounds[bi]))
            ci.append(cc + int(bounds[bj]))
            vi.append(use[rr, cc])
        return COOMatrix(
            (n, n), np.concatenate(ri), np.concatenate(ci),
            np.concatenate(vi),
        ).to_csr()


@dataclass
class CholeskyResult:
    """Outcome of a Cholesky factorisation run."""

    L: CSRMatrix
    perm: np.ndarray
    schedule: ScheduleResult
    dag: TaskDAG
    phase_seconds: dict[str, float]

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` via ``L Lᵀ``."""
        b = np.asarray(b, dtype=np.float64)
        pb = b[self.perm]
        y = triangular_solve(self.L, pb, lower=True)
        lt = self.L.transpose()
        z = triangular_solve(lt, y, lower=False)
        x = np.empty_like(z)
        x[self.perm] = z
        return x


class CholeskySolver:
    """Tiled sparse Cholesky under any Trojan Horse scheduler.

    Parameters
    ----------
    a:
        Symmetric positive-definite matrix (symmetry is checked).
    block_size:
        Uniform tile size.
    ordering, gpu, scheduler:
        As for the LU substrates.
    """

    def __init__(self, a: CSRMatrix, block_size: int = 32,
                 ordering: str = "mindeg", gpu: GPUSpec = RTX5090,
                 scheduler: str = "serial"):
        d = a.to_dense()
        if not np.allclose(d, d.T):
            raise ValueError("Cholesky requires a symmetric matrix")
        self.a = a
        self.block_size = block_size
        self.ordering = ordering
        self.gpu = gpu
        self.scheduler = scheduler
        self.result: CholeskyResult | None = None

    def factorize(self) -> CholeskyResult:
        """Run reorder → symbolic → scheduled numeric LLᵀ."""
        t0 = time.perf_counter()
        perm = compute_ordering(self.a, self.ordering)
        permuted = permute_symmetric(self.a, perm)
        t1 = time.perf_counter()
        part = uniform_partition(permuted.nrows, self.block_size)
        engine = CholeskyEngine(permuted, part)
        t2 = time.perf_counter()
        model = GPUCostModel(self.gpu)
        schedule = make_scheduler(self.scheduler, engine.dag, engine,
                                  model).run()
        L = engine.extract_l()
        t3 = time.perf_counter()
        self.result = CholeskyResult(
            L=L, perm=perm, schedule=schedule, dag=engine.dag,
            phase_seconds={"reorder": t1 - t0, "symbolic": t2 - t1,
                           "numeric": t3 - t2},
        )
        return self.result

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` (factorises on first use)."""
        if self.result is None:
            self.factorize()
        return self.result.solve(b)

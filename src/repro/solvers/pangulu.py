"""PanguLU-analogue substrate: regular 2-D sparse blocks.

PanguLU keeps sparsity inside uniform tiles and executes relatively large
sparse-block tasks one by one from a priority queue (paper §1, §3).  The
baseline scheduler is therefore ``"serial"``; ``"streams"`` reproduces the
four-CUDA-stream Executor-replacement ablation of §4, and ``"trojan"`` the
integrated strategy of §3.5.2.
"""

from __future__ import annotations

from repro.solvers.base import BlockSolverBase
from repro.sparse import CSRMatrix
from repro.sparse.blocking import uniform_partition


class PanguLUSolver(BlockSolverBase):
    """Uniform-block sparse-tile solver (PanguLU analogue).

    Parameters
    ----------
    a:
        System matrix.
    block_size:
        Tile size.  The paper tunes the real solver to 512; the scaled
        default here is 64 (DESIGN.md §3).

    Numeric launches execute as batched kernel groups by default
    (stacked sparse-block GEMMs, the analogue of PanguLU's batched-BLAS
    mode); disable with ``batch_kernels=False`` or
    ``REPRO_BATCH_KERNELS=0`` (see :class:`BlockSolverBase`).
    """

    solver_name = "pangulu"
    sparse_tiles = True
    default_scheduler = "serial"

    def __init__(self, a: CSRMatrix, block_size: int = 64, **kwargs):
        super().__init__(a, **kwargs)
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size

    def _build_partition(self, permuted: CSRMatrix):
        # The partition is pattern-independent, so no fill is computed
        # here; the engine memoizes the whole block analysis (fill, tile
        # nnz, task DAG) through the solver's ``analysis_cache``.
        return uniform_partition(permuted.nrows, self.block_size), None

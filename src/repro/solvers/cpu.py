"""CPU reference solvers for the Table-7 comparison.

Two cost profiles over the same verified numeric engine:

* ``"superlu_cpu"`` — supernodal right-looking CPU factorisation
  (SuperLU_DIST v9.1.0 run CPU-only);
* ``"mumps"`` — multifrontal CPU factorisation (MUMPS v5.6.0), modelled
  with wider panels and higher per-core efficiency, which is why it often
  leads the CPU columns of Table 7.

CPU execution pays only a sub-µs dispatch per task and keeps decent
per-core efficiency on tiny kernels, so it is never launch-bound — the
reason the paper's CPU baselines beat the pre-Trojan-Horse GPU paths.
The makespan is Brent's bound over the task DAG:
``max(total_core_seconds / (cores · 0.9), weighted critical path)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.dag import TaskDAG
from repro.gpusim.specs import CPUSpec, XEON_6462C
from repro.kernels.tilekernels import KernelStats
from repro.ordering import compute_ordering
from repro.solvers.engine import NumericBackend, NumericEngine
from repro.sparse import CSRMatrix, permute_symmetric, triangular_solve
from repro.symbolic import find_supernodes, symbolic_fill

CPU_PROFILES = {
    # (panel width, per-core efficiency on solver kernels)
    "superlu_cpu": (32, 0.25),
    "mumps": (48, 0.40),
}
"""Supported CPU solver profiles."""


def cpu_makespan(dag: TaskDAG, stats: dict[int, KernelStats],
                 cpu: CPUSpec, efficiency: float) -> float:
    """Simulated CPU numeric-phase seconds from recorded per-task stats.

    Per-core rates: ``fp64_gflops / cores × efficiency`` for compute,
    ``mem_bw / cores`` for traffic; each task additionally costs
    ``task_overhead_us`` of dispatch.  Brent's bound combines the work and
    span terms.
    """
    core_rate = cpu.fp64_gflops / cpu.cores * efficiency * 1e9
    core_bw = cpu.mem_bw_gbs / cpu.cores * 1e9
    task_times = np.zeros(dag.n_tasks)
    for tid, s in stats.items():
        task_times[tid] = (cpu.task_overhead_us * 1e-6
                           + max(s.flops / core_rate, s.bytes / core_bw))
    work = float(task_times.sum()) / (cpu.cores * 0.9)
    # span: longest weighted path through the DAG (reverse topo DP)
    span = np.zeros(dag.n_tasks)
    order = []
    pred = dag.pred_count.copy()
    stack = dag.initial_ready()
    while stack:
        t = stack.pop()
        order.append(t)
        for s in dag.successors[t]:
            pred[s] -= 1
            if pred[s] == 0:
                stack.append(s)
    for t in reversed(order):
        best = 0.0
        for s in dag.successors[t]:
            if span[s] > best:
                best = span[s]
        span[t] = task_times[t] + best
    return max(work, float(span.max()) if span.size else 0.0)


@dataclass
class CPUSolverResult:
    """Outcome of a CPU factorisation (Table-7 row ingredients)."""

    solver: str
    cpu: str
    L: CSRMatrix
    U: CSRMatrix
    perm: np.ndarray
    numeric_seconds: float
    total_flops: int
    phase_seconds: dict[str, float]
    dag: TaskDAG
    stats: dict[int, KernelStats]

    @property
    def gflops(self) -> float:
        """Achieved numeric-phase throughput."""
        return (self.total_flops / self.numeric_seconds / 1e9
                if self.numeric_seconds else 0.0)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` with the computed factors."""
        b = np.asarray(b, dtype=np.float64)
        pb = b[self.perm]
        y = triangular_solve(self.L, pb, lower=True)
        z = triangular_solve(self.U, y, lower=False)
        x = np.empty_like(z)
        x[self.perm] = z
        return x


class CPUSolver:
    """CPU sparse direct solver under a :class:`CPUSpec` cost model.

    Parameters
    ----------
    a:
        System matrix.
    profile:
        ``"superlu_cpu"`` or ``"mumps"`` (see :data:`CPU_PROFILES`).
    cpu:
        Hardware description (default: the paper's Xeon 6462C).
    ordering:
        Fill-reducing ordering name.
    """

    def __init__(self, a: CSRMatrix, profile: str = "superlu_cpu",
                 cpu: CPUSpec = XEON_6462C, ordering: str = "mindeg"):
        if profile not in CPU_PROFILES:
            raise ValueError(
                f"unknown CPU profile {profile!r}; choose from {sorted(CPU_PROFILES)}"
            )
        self.a = a
        self.profile = profile
        self.cpu = cpu
        self.ordering = ordering
        self.result: CPUSolverResult | None = None

    def factorize(self) -> CPUSolverResult:
        """Factorise and attach the simulated CPU numeric time."""
        panel, eff = CPU_PROFILES[self.profile]
        t0 = time.perf_counter()
        perm = compute_ordering(self.a, self.ordering)
        permuted = permute_symmetric(self.a, perm)
        t1 = time.perf_counter()
        fill = symbolic_fill(permuted)
        part = find_supernodes(fill, max_size=panel, relax=2)
        engine = NumericEngine(permuted, part, sparse_tiles=False, fill=fill)
        t2 = time.perf_counter()
        backend = NumericBackend(engine)
        dag = engine.dag
        pred = dag.pred_count.copy()
        stack = dag.initial_ready()
        total_flops = 0
        while stack:
            tid = stack.pop()
            stats = backend.run_task(dag.tasks[tid], False)
            total_flops += stats.flops
            for s in dag.successors[tid]:
                pred[s] -= 1
                if pred[s] == 0:
                    stack.append(s)
        numeric_seconds = cpu_makespan(dag, backend.stats, self.cpu, eff)
        L, U = engine.extract_factors()
        t3 = time.perf_counter()
        self.result = CPUSolverResult(
            solver=self.profile,
            cpu=self.cpu.name,
            L=L, U=U, perm=perm,
            numeric_seconds=numeric_seconds,
            total_flops=total_flops,
            phase_seconds={
                "reorder": t1 - t0,
                "symbolic": t2 - t1,
                "numeric": t3 - t2,
            },
            dag=dag,
            stats=backend.stats,
        )
        return self.result

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` (factorises on first use)."""
        if self.result is None:
            self.factorize()
        return self.result.solve(b)

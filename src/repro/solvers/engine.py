"""The shared block-LU numeric engine.

Both solver substrates are expressed as block LU over a partition: tiles
live in dense scratch (the paper's kernels also stage sparse tiles
densely), the task DAG comes from the block-level symbolic fill, and the
four tile kernels perform the arithmetic.  The engine exposes an
:class:`~repro.core.executor.ExecutionBackend`, so any scheduler from
:mod:`repro.core` can drive it — and because the arithmetic per task is
fixed, every schedule produces the same factors up to floating-point
reassociation of commuting Schur updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dag import TaskDAG, build_block_dag
from repro.core.executor import ReplayBackend
from repro.core.scheduler import ScheduleResult
from repro.core.baselines import make_scheduler
from repro.core.task import Task, TaskType
from repro.gpusim.costmodel import GPUCostModel
from repro.gpusim.specs import GPUSpec
from repro.kernels.batched import (
    batch_kernels_enabled,
    batch_solve_enabled,
    batched_geesm,
    batched_ssssm,
    batched_ssssm_products,
    batched_tstrf,
)
from repro.kernels.tilekernels import (
    KernelStats,
    geesm_kernel,
    getrf_kernel,
    ssssm_kernel,
    tstrf_kernel,
)
from repro.solvers.tilepool import TileArena, TileViews
from repro.sparse import COOMatrix, CSRMatrix, triangular_solve
from repro.sparse.blocking import Partition, split_tiles
from repro.symbolic import block_fill, symbolic_fill


# verify: effects(arena)
def run_batch_on_arena(arena, tids: np.ndarray, atomic: np.ndarray, arrays,
                       *, sparse_tiles: bool = False,
                       batch_kernels: bool = True
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Execute one launch's factorisation tasks on a tile arena.

    The free-function form of :meth:`NumericEngine.run_batch_tasks`: it
    needs only the arena (any :class:`~repro.solvers.tilepool.TileArena`,
    including a shared-memory one attached in a worker process), the
    batch's task ids, their atomic flags, and the task coordinate
    columns (``type_code``/``k``/``i``/``j``) — no engine, DAG or
    backend.  ``repro.parallel`` workers call this directly so the
    multiprocess path executes the *identical* kernel-group code the
    single-process engine runs.

    Partitions the batch by (task type, tile shape class): TSTRF and
    GEESM groups become one stacked multi-RHS triangular solve (each
    slice against its own diagonal tile); conflict-free SSSSM groups
    become one stacked ``np.matmul``; atomic (same-target) SSSSMs get
    their products from a stacked matmul too, applied serially in batch
    order because their byte accounting depends on the intermediate
    target state; only GETRF tasks run through the per-task kernel.
    Returns per-task ``(flops, bytes)`` int64 arrays aligned with
    ``tids``.

    Safe because co-batched tasks are mutually independent (no DAG
    edges within a ready set), so they touch pairwise-disjoint tiles
    except for same-target SSSSMs — whose ordered serial apply replays
    exactly the per-task execution.  Stack slices run the identical 2-D
    kernel cores, so factors and stats are bit-identical to the
    per-task path — and, for the same reason, identical for *any*
    partition of a batch across processes that keeps same-target
    SSSSMs together and in batch order.
    """
    tids = np.asarray(tids, dtype=np.int64)
    n = tids.size
    flops = np.zeros(n, dtype=np.int64)
    nbytes = np.zeros(n, dtype=np.int64)
    sp = sparse_tiles
    code = arrays.type_code[tids]
    kk = arrays.k[tids]
    ii = arrays.i[tids]
    jj = arrays.j[tids]
    if not batch_kernels or n == 1:
        straggler = np.ones(n, dtype=bool)
    else:
        straggler = code == int(TaskType.GETRF)
    for idx in np.flatnonzero(straggler):
        c = int(code[idx])
        k = int(kk[idx])
        if c == int(TaskType.GETRF):
            s = getrf_kernel(arena.view(k, k), sparse=sp)
        elif c == int(TaskType.TSTRF):
            s = tstrf_kernel(arena.view(int(ii[idx]), k),
                             arena.view(k, k), sparse=sp)
        elif c == int(TaskType.GEESM):
            s = geesm_kernel(arena.view(k, int(jj[idx])),
                             arena.view(k, k), sparse=sp)
        else:
            i, j = int(ii[idx]), int(jj[idx])
            s = ssssm_kernel(arena.view(i, j), arena.view(i, k),
                             arena.view(k, j), sparse=sp,
                             atomic=bool(atomic[idx]))
        flops[idx] = s.flops
        nbytes[idx] = s.bytes
    if straggler.all():
        return flops, nbytes
    pools = arena.pools

    def _solve_groups(sel, row_idx, col_idx, solver):
        """Group panel tiles by shape class; one stacked triangular
        solve per group, each slice against its own diagonal tile."""
        cls, slots = arena.locate(row_idx[sel], col_idx[sel])
        dcls, dslots = arena.locate(kk[sel], kk[sel])
        for c in np.unique(cls):
            mask = cls == c
            mem = sel[mask]
            pool = pools[int(c)]
            gslots = slots[mask]
            stack = pool[gslots]
            dstack = pools[int(dcls[mask][0])][dslots[mask]]
            f, b = solver(stack, dstack, sp)
            pool[gslots] = stack
            flops[mem] = f
            nbytes[mem] = b

    sel = np.flatnonzero(code == int(TaskType.TSTRF))
    if sel.size:
        _solve_groups(sel, ii, kk, batched_tstrf)
    sel = np.flatnonzero(code == int(TaskType.GEESM))
    if sel.size:
        _solve_groups(sel, kk, jj, batched_geesm)
    sel = np.flatnonzero(code == int(TaskType.SSSSM))
    if sel.size:
        tcls, tslots = arena.locate(ii[sel], jj[sel])
        lcls, lslots = arena.locate(ii[sel], kk[sel])
        ucls, uslots = arena.locate(kk[sel], jj[sel])
        # (target class, L class) pins all three tile shapes
        key = tcls * len(pools) + lcls
        atom = atomic[sel]
        for kv in np.unique(key):
            mask = (key == kv) & ~atom
            if not mask.any():
                continue
            mem = sel[mask]
            tpool = pools[int(tcls[mask][0])]
            lpool = pools[int(lcls[mask][0])]
            upool = pools[int(ucls[mask][0])]
            gslots = tslots[mask]
            tstack = tpool[gslots]
            f, b = batched_ssssm(tstack, lpool[lslots[mask]],
                                 upool[uslots[mask]], sp)
            tpool[gslots] = tstack
            flops[mem] = f
            nbytes[mem] = b
        apos = np.flatnonzero(atom)
        if apos.size:
            # atomic (same-target) updates: products in stacked
            # matmuls per group, then a serial ordered apply that
            # replays the per-task batch order — bit-identical,
            # including the intermediate-state byte accounting
            prods: list = [None] * apos.size
            base = np.zeros(apos.size, dtype=np.int64)
            akey = key[apos]
            for kv in np.unique(akey):
                mask = akey == kv
                gpos = apos[mask]
                lpool = pools[int(lcls[gpos[0]])]
                upool = pools[int(ucls[gpos[0]])]
                p, f, b0 = batched_ssssm_products(
                    lpool[lslots[gpos]], upool[uslots[gpos]], sp)
                flops[sel[gpos]] = f
                base[mask] = b0
                for row, pos in enumerate(np.flatnonzero(mask)):
                    prods[pos] = p[row]
            tviews = [pools[c][s] for c, s
                      in zip(tcls[apos].tolist(), tslots[apos].tolist())]
            after = np.empty(apos.size, dtype=np.int64)
            for pos, view in enumerate(tviews):
                view -= prods[pos]
                after[pos] = np.count_nonzero(view)
            nbytes[sel[apos]] = 8 * (base + (2 * after if sp else after))
    return flops, nbytes


class NumericEngine:
    """Tile storage plus numeric task execution for one factorisation.

    Parameters
    ----------
    a:
        The (already permuted) matrix to factorise.
    part:
        Tile partition (uniform for PanguLU, supernodal for SuperLU).
    sparse_tiles:
        Sparse kernel accounting (PanguLU) vs dense (SuperLU).
    owner_of:
        Optional tile-ownership function for distributed runs.
    cache:
        Optional :class:`~repro.core.analysis_cache.AnalysisCache`.
        When given (and the run is single-process), the element fill,
        block fill, tile-nnz split and task DAG are looked up by the
        sparsity-pattern digest — repeated-pattern factorisations skip
        the whole symbolic analysis.  Distributed runs (``owner_of``)
        bypass the cache because tile ownership is baked into the DAG.
    batch_kernels:
        Execute conflict-free same-type task groups as stacked batched
        kernels (:mod:`repro.kernels.batched`) instead of one Python
        call per task.  ``None`` (default) reads the
        ``REPRO_BATCH_KERNELS`` environment knob (on unless ``0``).
        The per-task path stays available as the differential-testing
        oracle; both paths produce bit-identical factors and stats.
    arena_factory:
        Optional callable ``(part, bfill) -> TileArena`` used to build
        the tile storage; ``repro.parallel`` passes
        :class:`~repro.parallel.shmem.SharedTileArena` so tiles land in
        shared memory visible to worker processes.
    """

    def __init__(self, a: CSRMatrix, part: Partition,
                 sparse_tiles: bool = False, owner_of=None, fill=None,
                 cache=None, batch_kernels: bool | None = None,
                 arena_factory=None):
        if a.nrows != a.ncols:
            raise ValueError("LU factorisation requires a square matrix")
        if part.n != a.nrows:
            raise ValueError("partition does not cover the matrix")
        self.a = a
        self.part = part
        self.sparse_tiles = sparse_tiles
        use_cache = cache if owner_of is None else None
        if fill is not None:
            self.fill = fill
        elif use_cache is not None:
            self.fill = use_cache.fill_for(a, lambda: symbolic_fill(a))
        else:
            self.fill = symbolic_fill(a)

        def _block_analysis():
            bfill = block_fill(a, part)
            fill_tiles = split_tiles(self.fill.filled, part)
            tile_nnz = {key: t.nnz for key, t in fill_tiles.items()}
            dag = build_block_dag(
                bfill, part, tile_nnz,
                sparse_tiles=sparse_tiles, owner_of=owner_of,
            )
            return bfill, tile_nnz, dag

        if use_cache is not None:
            self.bfill, self.tile_nnz, self.dag = use_cache.block_analysis_for(
                a, part, sparse_tiles, _block_analysis
            )
        else:
            self.bfill, self.tile_nnz, self.dag = _block_analysis()
        self.batch_kernels = (
            batch_kernels_enabled() if batch_kernels is None
            else bool(batch_kernels)
        )
        make_arena = TileArena if arena_factory is None else arena_factory
        self.arena = make_arena(part, self.bfill)
        self.tiles = TileViews(self.arena)
        self.arena.stamp(a)

    def reset_values(self, a: CSRMatrix) -> None:
        """Re-stamp tile values for a matrix with the *same* pattern.

        The circuit-simulation workflow: device models change every
        Newton iteration but the structure (and therefore ordering,
        symbolic fill, task DAG and schedule) is fixed — re-stamping and
        re-running the numeric tasks is all that is needed.
        """
        if a.shape != self.a.shape:
            raise ValueError("refactorisation requires the same dimensions")
        if not (np.array_equal(a.indptr, self.a.indptr)
                and np.array_equal(a.indices, self.a.indices)):
            raise ValueError(
                "refactorisation requires an identical sparsity pattern"
            )
        self.a = a
        self.arena.stamp(a)

    # ------------------------------------------------------------------
    # ExecutionBackend protocol
    # ------------------------------------------------------------------
    def run_task(self, task: Task, atomic: bool) -> KernelStats:
        """Execute one task's arithmetic on the tile storage."""
        sp = self.sparse_tiles
        if task.type == TaskType.GETRF:
            return getrf_kernel(self.tiles[(task.k, task.k)], sparse=sp)
        if task.type == TaskType.TSTRF:
            return tstrf_kernel(self.tiles[(task.i, task.k)],
                                self.tiles[(task.k, task.k)], sparse=sp)
        if task.type == TaskType.GEESM:
            return geesm_kernel(self.tiles[(task.k, task.j)],
                                self.tiles[(task.k, task.k)], sparse=sp)
        return ssssm_kernel(self.tiles[(task.i, task.j)],
                            self.tiles[(task.i, task.k)],
                            self.tiles[(task.k, task.j)],
                            sparse=sp, atomic=atomic)

    def run_batch_tasks(self, tids: np.ndarray, atomic: np.ndarray,
                        arrays) -> tuple[np.ndarray, np.ndarray]:
        """Execute one launch's tasks with batched kernel groups.

        Delegates to :func:`run_batch_on_arena` — the module-level form
        shared with the multiprocess workers — so both paths are one
        code path by construction.
        """
        return run_batch_on_arena(
            self.arena, tids, atomic, arrays,
            sparse_tiles=self.sparse_tiles,
            batch_kernels=self.batch_kernels,
        )

    # ------------------------------------------------------------------
    # factor extraction
    # ------------------------------------------------------------------
    def extract_factors(self, tol: float = 0.0) -> tuple[CSRMatrix, CSRMatrix]:
        """Assemble global ``L`` (unit diagonal stored) and ``U`` from the
        factored tiles, dropping numerically-zero scratch entries."""
        n = self.part.n
        bounds = self.part.boundaries
        l_rows, l_cols, l_vals = [], [], []
        u_rows, u_cols, u_vals = [], [], []
        for (bi, bj), tile in self.tiles.items():
            r0, c0 = int(bounds[bi]), int(bounds[bj])
            if bi > bj:
                rr, cc = np.nonzero(np.abs(tile) > tol)
                l_rows.append(rr + r0); l_cols.append(cc + c0)
                l_vals.append(tile[rr, cc])
            elif bi < bj:
                rr, cc = np.nonzero(np.abs(tile) > tol)
                u_rows.append(rr + r0); u_cols.append(cc + c0)
                u_vals.append(tile[rr, cc])
            else:
                low = np.tril(tile, -1)
                rr, cc = np.nonzero(np.abs(low) > tol)
                l_rows.append(rr + r0); l_cols.append(cc + c0)
                l_vals.append(low[rr, cc])
                up = np.triu(tile)
                rr, cc = np.nonzero(np.abs(up) > tol)
                u_rows.append(rr + r0); u_cols.append(cc + c0)
                u_vals.append(up[rr, cc])
        diag = np.arange(n, dtype=np.int64)
        l_rows.append(diag); l_cols.append(diag)
        l_vals.append(np.ones(n))
        L = COOMatrix((n, n), np.concatenate(l_rows), np.concatenate(l_cols),
                      np.concatenate(l_vals)).to_csr()
        U = COOMatrix(
            (n, n),
            np.concatenate(u_rows) if u_rows else np.empty(0, np.int64),
            np.concatenate(u_cols) if u_cols else np.empty(0, np.int64),
            np.concatenate(u_vals) if u_vals else np.empty(0),
        ).to_csr()
        return L, U

    # ------------------------------------------------------------------
    # solve phase
    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray, scheduler: str = "trojan",
              batch_kernels: bool | None = None) -> np.ndarray:
        """Solve the *permuted* system ``L U x = b`` from the factored
        tiles through the batched SpTRSV task DAGs.

        The numeric tasks must have run (the tiles hold ``L\\U``).  This
        is the engine-level entry of the Trojan-batched solve phase;
        callers holding a :class:`FactorizationResult` should use its
        :meth:`~FactorizationResult.solve`, which also applies the
        fill-reducing permutation and honours ``REPRO_BATCH_SOLVE``.
        """
        from repro.solvers.sptrsv import SpTRSVContext

        L, U = self.extract_factors()
        lctx = SpTRSVContext(L, self.part, lower=True, unit_diagonal=True,
                             sparse_tiles=self.sparse_tiles)
        uctx = SpTRSVContext(U, self.part, lower=False,
                             sparse_tiles=self.sparse_tiles)
        y = lctx.solve(b, scheduler=scheduler,
                       batch_kernels=batch_kernels).x
        return uctx.solve(y, scheduler=scheduler,
                          batch_kernels=batch_kernels).x


class NumericBackend:
    """Backend wrapper that records exact per-task stats while executing.

    The recorded stats power :class:`~repro.core.executor.ReplayBackend`
    so scheduler/GPU sweeps never repeat the arithmetic.
    """

    def __init__(self, engine: NumericEngine):
        self._engine = engine
        self._stats: dict[int, KernelStats] = {}
        self._pending: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    @property
    def stats(self) -> dict[int, KernelStats]:
        """Per-task stats dict, materialised lazily from batch buffers.

        Batched launches record raw per-task arrays; turning 20k+ of
        those rows into :class:`KernelStats` objects happens here, in
        bulk, on first access — off the numeric execution hot path."""
        if self._pending:
            stats = self._stats
            for tids, flops, nbytes in self._pending:
                for tid, f, b in zip(tids.tolist(), flops.tolist(),
                                     nbytes.tolist()):
                    stats[tid] = KernelStats(flops=f, bytes=b)
            self._pending.clear()
        return self._stats

    def run_task(self, task: Task, atomic: bool) -> KernelStats:
        """Execute numerically and memoise the exact stats."""
        stats = self._engine.run_task(task, atomic)
        self._stats[task.tid] = stats
        return stats

    def run_batch_tasks(self, tids: np.ndarray, atomic: np.ndarray,
                        arrays) -> tuple[int, int]:
        """Execute one launch via the engine's batched kernel groups,
        buffering per-task stats, and return the launch totals."""
        flops, nbytes = self._engine.run_batch_tasks(tids, atomic, arrays)
        self._pending.append((np.asarray(tids, dtype=np.int64).copy(),
                              flops, nbytes))
        return int(flops.sum()), int(nbytes.sum())


@dataclass
class FactorizationResult:
    """Everything a factorisation run produces.

    Attributes
    ----------
    solver, scheduler:
        Human-readable provenance.
    L, U:
        Global factors (L has an explicit unit diagonal).
    perm:
        Fill-reducing permutation applied before factorisation
        (new ← old), needed by :meth:`solve`.
    schedule:
        The simulated schedule (kernel counts, timeline, GFLOPS).
    dag:
        The task DAG (replayable against other schedulers/GPUs).
    stats:
        Exact per-task work recorded during numeric execution.
    fill_nnz:
        Predicted nnz(L+U) from the symbolic phase.
    phase_seconds:
        Wall-clock time of the reorder/symbolic/numeric phases of *this
        process* (Figure-2 style measurement; the numeric entry is real
        compute time, not the simulated GPU time).
    """

    solver: str
    scheduler: str
    L: CSRMatrix
    U: CSRMatrix
    perm: np.ndarray
    schedule: ScheduleResult
    dag: TaskDAG
    stats: dict[int, KernelStats]
    fill_nnz: int
    phase_seconds: dict[str, float]
    #: cached (L, U) SpTRSV contexts for the batched solve path
    _solve_ctx: "tuple | None" = field(default=None, repr=False,
                                       compare=False)

    def solve(self, b: np.ndarray, refine: int = 0,
              a: "CSRMatrix | None" = None,
              batch_solve: bool | None = None,
              solve_scheduler: str = "trojan") -> np.ndarray:
        """Solve ``A x = b`` with the computed factors.

        Applies the symmetric permutation: ``PAPᵀ = LU`` means
        ``x = Pᵀ (U⁻¹ L⁻¹ P b)``.

        Parameters
        ----------
        refine:
            Number of iterative-refinement sweeps (``x += A⁻¹(b − Ax)``),
            the standard accuracy recovery step for statically-pivoted
            factorisations.  Requires ``a``.
        a:
            The original (unpermuted) matrix, needed only for refinement
            residuals.
        batch_solve:
            Run the substitutions through the batched SpTRSV task DAGs
            (:mod:`repro.solvers.sptrsv`) instead of the per-column CSR
            recurrence.  ``None`` (default) reads the
            ``REPRO_BATCH_SOLVE`` environment knob (off unless set).
        solve_scheduler:
            DAG-path scheduling policy (``trojan``, ``levelset``,
            ``levelbatch``, ``serial``); ignored on the CSR path.
        """
        refine = int(refine)
        if refine < 0:
            raise ValueError(f"refine must be >= 0, got {refine}")
        if refine and a is None:
            raise ValueError("iterative refinement needs the original matrix")
        use_dag = (batch_solve_enabled() if batch_solve is None
                   else bool(batch_solve))
        if use_dag:
            def sub(rhs):
                return self._substitute_dag(rhs, solve_scheduler)
        else:
            sub = self._substitute
        b = np.asarray(b, dtype=np.float64)
        x = sub(b)
        for _ in range(refine):
            from repro.sparse import matvec

            r = b - matvec(a, x)
            x = x + sub(r)
        return x

    def solve_per_column_oracle(self, b: np.ndarray, refine: int = 0,
                                a: "CSRMatrix | None" = None) -> np.ndarray:
        """Differential oracle for :meth:`solve` with ``batch_solve=True``.

        Runs the identical permutation handling and refinement loop, but
        substitutes through the tiled per-column serial path
        (:meth:`~repro.solvers.sptrsv.SpTRSVContext.solve_per_column`).
        The DAG path is bit-identical to this under every scheduler and
        batch composition — the solve-phase battery pins it.
        """
        refine = int(refine)
        if refine < 0:
            raise ValueError(f"refine must be >= 0, got {refine}")
        if refine and a is None:
            raise ValueError("iterative refinement needs the original matrix")
        b = np.asarray(b, dtype=np.float64)
        x = self._substitute_oracle(b)
        for _ in range(refine):
            from repro.sparse import matvec

            r = b - matvec(a, x)
            x = x + self._substitute_oracle(r)
        return x

    def solve_contexts(self):
        """The lazily-built ``(L, U)`` SpTRSV contexts (tile stamping and
        triangularity validation happen once per factorisation)."""
        if self._solve_ctx is None:
            from repro.solvers.sptrsv import SpTRSVContext

            part = self.dag.part
            self._solve_ctx = (
                SpTRSVContext(self.L, part, lower=True, unit_diagonal=True),
                SpTRSVContext(self.U, part, lower=False),
            )
        return self._solve_ctx

    def _substitute(self, b: np.ndarray) -> np.ndarray:
        pb = b[self.perm] if b.ndim == 1 else b[self.perm, :]
        y = triangular_solve(self.L, pb, lower=True)
        z = triangular_solve(self.U, y, lower=False)
        x = np.empty_like(z)
        x[self.perm] = z
        return x

    def _substitute_dag(self, b: np.ndarray, scheduler: str) -> np.ndarray:
        lctx, uctx = self.solve_contexts()
        pb = b[self.perm] if b.ndim == 1 else b[self.perm, :]
        y = lctx.solve(pb, scheduler=scheduler).x
        z = uctx.solve(y, scheduler=scheduler).x
        x = np.empty_like(z)
        x[self.perm] = z
        return x

    def _substitute_oracle(self, b: np.ndarray) -> np.ndarray:
        lctx, uctx = self.solve_contexts()
        pb = b[self.perm] if b.ndim == 1 else b[self.perm, :]
        y = lctx.solve_per_column(pb)
        z = uctx.solve_per_column(y)
        x = np.empty_like(z)
        x[self.perm] = z
        return x

    def residuals(self, a: CSRMatrix, b: np.ndarray,
                  x: np.ndarray) -> np.ndarray:
        """Per-column relative residuals ‖Ax − b‖₂ / ‖b‖₂ (original A).

        Returns one value per right-hand-side column (a 0-D array for
        1-D ``b``).  Convention for a zero column: when ``‖b‖₂ == 0``
        the relative residual is undefined, so the *absolute* norm
        ‖Ax‖₂ is reported for that column instead — 0.0 iff the solve
        returned the exact null solution, never a spurious ``inf``.
        """
        from repro.sparse import matvec

        b = np.asarray(b, dtype=np.float64)
        r = matvec(a, x) - b
        norm_r = np.linalg.norm(r, axis=0)
        norm_b = np.linalg.norm(b, axis=0)
        return np.where(norm_b > 0, norm_r / np.where(norm_b > 0, norm_b, 1.0),
                        norm_r)

    def residual(self, a: CSRMatrix, b: np.ndarray, x: np.ndarray) -> float:
        """Scalar residual summary against the *original* A.

        For 1-D ``b`` this is the relative residual ‖Ax − b‖₂ / ‖b‖₂;
        for 2-D ``b`` it is the **maximum** of the per-column relative
        residuals (:meth:`residuals`) — a Frobenius-collapsed scalar
        would let one bad column hide behind many good ones.  The
        zero-``b`` convention of :meth:`residuals` applies (absolute
        norm for zero columns).
        """
        return float(np.max(self.residuals(a, b, x)))


def scale_stats(stats: dict[int, KernelStats],
                flop_factor: float,
                byte_factor: float | None = None) -> dict[int, KernelStats]:
    """Extrapolate recorded per-task work to a larger problem scale.

    The analogues factorised here use tiles ~8× smaller per dimension than
    the paper's (block 64 vs 512, supernode 32 vs 256), so per-task work
    is ~512× smaller.  Benches that study the *compute-dominated* regime
    (Table 7) replay schedules against stats scaled by that documented
    factor: the DAG, batch composition and task counts stay real; only the
    per-task flop/byte magnitudes are extrapolated (DESIGN.md §3).

    Parameters
    ----------
    stats:
        Recorded per-task stats.
    flop_factor:
        Multiplier on flops (cubic in the linear tile-scale deficit).
    byte_factor:
        Multiplier on bytes; defaults to ``flop_factor ** (2/3)``
        (quadratic in the linear scale).
    """
    if flop_factor <= 0:
        raise ValueError("flop_factor must be positive")
    bf = flop_factor ** (2.0 / 3.0) if byte_factor is None else byte_factor
    return {
        tid: KernelStats(flops=int(s.flops * flop_factor),
                         bytes=int(s.bytes * bf))
        for tid, s in stats.items()
    }


def resimulate(result: FactorizationResult, scheduler: str,
               gpu: GPUSpec, stats: dict[int, KernelStats] | None = None,
               merge_schur: bool = False, **kwargs) -> ScheduleResult:
    """Re-run only the *schedule* of a finished factorisation.

    Uses the recorded exact per-task stats, so sweeping schedulers and
    GPU models costs microseconds per task instead of repeating the
    numerics — the benches for Figures 9–12 are built on this.

    Parameters
    ----------
    stats:
        Optional replacement per-task stats (e.g. from
        :func:`scale_stats`); defaults to the run's recorded stats.
    merge_schur:
        Apply the §3.5.1 Schur-fusion rewrite before scheduling (the
        SuperLU + Trojan Horse integration).
    """
    from repro.core.fusion import merge_schur_tasks

    model = GPUCostModel(gpu)
    use_stats = stats if stats is not None else result.stats
    dag = result.dag
    if merge_schur:
        fusion = merge_schur_tasks(dag)
        dag = fusion.dag
        use_stats = fusion.fuse_stats(use_stats)
    backend = ReplayBackend(use_stats)
    sched = make_scheduler(scheduler, dag, backend, model, **kwargs)
    return sched.run()

"""Pooled tile arena: per-shape-class 3-D tile storage for the engine.

The numeric engine used to keep every factor tile as a separate
dict-keyed ndarray, so each kernel paid a dict lookup per operand and
the batched execution path would have had to gather tiles with Python
loops.  The arena instead groups the structurally-nonzero factor tiles
by shape class and stores each class as one ``(count, m, n)`` pool:

* gathering a kernel group's operands is one fancy-index read of the
  pool (``pool[slots]``), scattering results back one fancy-index write;
* zeroing and re-stamping input values (``reset_values`` — the
  circuit-simulation Newton loop) is a handful of vectorized scatters
  instead of a per-tile Python loop;
* a slice ``pool[slot]`` is an ordinary C-contiguous ``(m, n)`` view
  with exactly the layout a standalone tile would have, so the per-task
  kernels (the differential-testing oracle) run on pool storage
  unchanged and bit-identically.

:class:`TileViews` wraps the arena in a read-only mapping with the old
``{(bi, bj): ndarray}`` interface so factor extraction and the per-task
kernels need no change.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.sparse import CSRMatrix
from repro.sparse.blocking import Partition


class TileArena:
    """Per-shape-class pooled storage for one factorisation's tiles.

    Parameters
    ----------
    part:
        The tile partition.
    bfill:
        Boolean ``nb × nb`` block-fill map; one pool slot is allocated
        per true entry.

    Attributes
    ----------
    pools:
        ``pools[c]`` is the ``(count_c, m_c, n_c)`` float64 stack of
        every tile with shape class ``c``.
    shapes:
        ``shapes[c] == (m_c, n_c)``.
    pool_bi, pool_bj:
        Per-class arrays of the tile coordinates occupying each slot.
    """

    def __init__(self, part: Partition, bfill: np.ndarray):
        self.part = part
        nb = part.nblocks
        self.nb = nb
        sizes = part.sizes()
        bfill = np.asarray(bfill, dtype=bool)
        bi, bj = np.nonzero(bfill)
        bi = bi.astype(np.int64)
        bj = bj.astype(np.int64)
        self.tile_bi = bi
        self.tile_bj = bj
        self.n_tiles = int(bi.size)
        if self.n_tiles:
            dims = np.stack([sizes[bi], sizes[bj]], axis=1)
            shape_rows, class_of = np.unique(dims, axis=0,
                                             return_inverse=True)
        else:
            shape_rows = np.empty((0, 2), dtype=np.int64)
            class_of = np.empty(0, dtype=np.int64)
        self.shapes = [(int(m), int(n)) for m, n in shape_rows]
        self.pools: list[np.ndarray] = []
        self.pool_bi: list[np.ndarray] = []
        self.pool_bj: list[np.ndarray] = []
        slot = np.empty(self.n_tiles, dtype=np.int64)
        for c, (m, n) in enumerate(self.shapes):
            members = np.flatnonzero(class_of == c)
            slot[members] = np.arange(members.size)
            self.pools.append(np.zeros((members.size, m, n)))
            self.pool_bi.append(bi[members])
            self.pool_bj.append(bj[members])
        # flat (bi, bj) → (class, slot) index map; -1 marks structural zero
        self._class = np.full(nb * nb, -1, dtype=np.int32)
        self._slot = np.full(nb * nb, -1, dtype=np.int64)
        flat = bi * nb + bj
        self._class[flat] = class_of.astype(np.int32)
        self._slot[flat] = slot
        self._stamp_idx: list[tuple] | None = None

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def has_tile(self, bi: int, bj: int) -> bool:
        """Whether tile ``(bi, bj)`` is structurally nonzero."""
        if not (0 <= bi < self.nb and 0 <= bj < self.nb):
            return False
        return self._class[bi * self.nb + bj] >= 0

    def view(self, bi: int, bj: int) -> np.ndarray:
        """Writable ``(m, n)`` view of one tile's pool slot."""
        c = int(self._class[bi * self.nb + bj])
        if c < 0:
            raise KeyError((bi, bj))
        return self.pools[c][int(self._slot[bi * self.nb + bj])]

    def locate(self, bi: np.ndarray, bj: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(class, slot)`` lookup for tile coordinate arrays."""
        flat = np.asarray(bi, dtype=np.int64) * self.nb \
            + np.asarray(bj, dtype=np.int64)
        cls = self._class[flat]
        if cls.size and int(cls.min()) < 0:
            bad = int(np.flatnonzero(cls < 0)[0])
            raise KeyError((int(np.asarray(bi).ravel()[bad]),
                            int(np.asarray(bj).ravel()[bad])))
        return cls.astype(np.int64), self._slot[flat]

    # ------------------------------------------------------------------
    # bulk value operations
    # ------------------------------------------------------------------
    def zero_all(self) -> None:
        """Clear every pool (one memset-style store per shape class)."""
        for pool in self.pools:
            pool[...] = 0.0

    def stamp(self, a: CSRMatrix) -> None:
        """Zero all tiles and scatter ``a``'s values into their slots.

        The nonzero→(class, slot, row, col) index arrays are computed on
        the first call and reused afterwards, so re-stamping a
        same-pattern matrix (``NumericEngine.reset_values``) is one
        fancy-index write per shape class.  The caller is responsible
        for only re-stamping matrices with the pattern of the first one
        (the engine validates this).
        """
        if self._stamp_idx is None:
            self._stamp_idx = self._build_stamp_index(a)
        self.zero_all()
        data = a.data
        for c, slots, rr, cc, sel in self._stamp_idx:
            self.pools[c][slots, rr, cc] = data[sel]

    def _build_stamp_index(self, a: CSRMatrix) -> list[tuple]:
        part = self.part
        rows = np.repeat(np.arange(a.nrows, dtype=np.int64),
                         a.row_lengths())
        cols = a.indices
        brow = part.block_of(rows)
        bcol = part.block_of(cols)
        flat = brow * self.nb + bcol
        cls = self._class[flat]
        if cls.size and int(cls.min()) < 0:
            bad = int(np.flatnonzero(cls < 0)[0])
            raise AssertionError(
                f"input tile {(int(brow[bad]), int(bcol[bad]))} outside "
                "predicted block fill"
            )
        slots = self._slot[flat]
        local_r = rows - part.boundaries[brow]
        local_c = cols - part.boundaries[bcol]
        index = []
        for c in range(len(self.pools)):
            sel = np.flatnonzero(cls == c)
            if sel.size:
                index.append((c, slots[sel], local_r[sel], local_c[sel], sel))
        return index


class TileViews(Mapping):
    """Read-only ``{(bi, bj): ndarray}`` mapping over a :class:`TileArena`.

    Values are writable pool views, so in-place kernel arithmetic through
    this mapping mutates the arena directly — the per-task oracle path
    and the batched path share one storage.
    """

    def __init__(self, arena: TileArena):
        self._arena = arena

    def __getitem__(self, key: tuple[int, int]) -> np.ndarray:
        bi, bj = key
        return self._arena.view(int(bi), int(bj))

    def __iter__(self):
        for bi, bj in zip(self._arena.tile_bi, self._arena.tile_bj):
            yield (int(bi), int(bj))

    def __len__(self) -> int:
        return self._arena.n_tiles

    def __contains__(self, key) -> bool:
        try:
            bi, bj = key
        except (TypeError, ValueError):
            return False
        return self._arena.has_tile(int(bi), int(bj))

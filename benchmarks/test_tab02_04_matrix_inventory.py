"""Tables 2 and 4 — the evaluation matrix inventory.

For each of the ten paper matrices the bench prints the paper-reported
properties (n, nnz, nnz(L+U) under both solvers) next to the synthetic
analogue's measured values, verifying the analogues preserve the
inventory's qualitative structure: fill ratios above 1, SuperLU's
(symmetrised supernodal) fill at least PanguLU's, and the scale-out set
larger than the scale-up set.
"""

from repro.analysis import format_table
from repro.matrices import (
    SCALE_OUT_NAMES,
    SCALE_UP_NAMES,
    paper_matrix_info,
)


def test_tab02_04_matrix_inventory(runs, emit, benchmark):
    rows = []
    measured = {}
    for name in SCALE_UP_NAMES + SCALE_OUT_NAMES:
        info = paper_matrix_info(name)
        a, slu = runs(name, "superlu")
        _, plu = runs(name, "pangulu")
        measured[name] = (a, slu, plu)
        rows.append([
            info.group, name,
            f"{info.paper_n:.3g}", f"{info.paper_nnz:.3g}",
            f"{info.paper_lu_superlu:.3g}", f"{info.paper_lu_pangulu:.3g}",
            a.nrows, a.nnz, slu.fill_nnz, plu.fill_nnz,
        ])
    emit("tab02_04_matrix_inventory", format_table(
        ["group", "matrix", "paper n", "paper nnz", "paper LU (SLU)",
         "paper LU (PLU)", "ours n", "ours nnz", "ours LU (SLU)",
         "ours LU (PLU)"],
        rows,
        title="Tables 2 & 4 — matrix inventory: paper vs synthetic "
              "analogues",
    ))

    for name, (a, slu, plu) in measured.items():
        assert slu.fill_nnz >= a.nnz          # factorisation fills in
        assert slu.fill_nnz >= plu.fill_nnz * 0.99  # same symbolic bound
    up = sum(measured[n][0].nrows for n in SCALE_UP_NAMES) / 4
    out = sum(measured[n][0].nrows for n in SCALE_OUT_NAMES) / 6
    assert out > up  # Table 4's matrices dwarf Table 2's

    benchmark.pedantic(lambda: paper_matrix_info("Serena"), rounds=5,
                       iterations=10)

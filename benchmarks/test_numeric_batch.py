"""Batched-numeric microbench: pooled arena + stacked kernel groups.

Measures the claim of the batched execution path directly: running each
launch as stacked kernel groups (``REPRO_BATCH_KERNELS=1``, the default)
factorises at least 2x faster than the per-task oracle path on a
many-small-tiles matrix — the regime the paper's Batch stage targets —
while producing bit-identical factors.

Writes a machine-readable summary to ``benchmarks/results/``
(``BENCH_numeric.json``) so the CI smoke job can upload it as an
artifact.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time

import numpy as np

from repro.analysis import format_table
from repro.matrices import poisson2d
from repro.solvers import PanguLUSolver, SuperLUSolver

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def _numeric_seconds(solver_cls, a, batch_kernels, reps=2, **kwargs):
    """Best-of-``reps`` wall time of the numeric phase (scheduler loop +
    factor extraction), plus the last result for equality checks."""
    best = math.inf
    result = None
    for _ in range(reps):
        solver = solver_cls(a, scheduler="trojan",
                            batch_kernels=batch_kernels,
                            analysis_cache=None, **kwargs)
        result = solver.factorize()
        best = min(best, result.phase_seconds["numeric"])
    return best, result


def _same_factors(x, y):
    return (np.array_equal(x.L.indptr, y.L.indptr)
            and np.array_equal(x.L.indices, y.L.indices)
            and np.array_equal(x.L.data, y.L.data)
            and np.array_equal(x.U.indptr, y.U.indptr)
            and np.array_equal(x.U.indices, y.U.indices)
            and np.array_equal(x.U.data, y.U.data))


def test_numeric_batch(emit, benchmark):
    nx = max(12, int(round(24 * math.sqrt(BENCH_SCALE))))
    a = poisson2d(nx)

    configs = [
        # (label, solver class, kwargs) — the first row is the
        # acceptance config: sparse tiles, tiny blocks, huge task count
        (f"pangulu sparse b8 poisson2d({nx})", PanguLUSolver,
         dict(block_size=8)),
        (f"superlu dense poisson2d({nx})", SuperLUSolver,
         dict(max_supernode=8, merge_schur=False)),
    ]

    rows = []
    entries = []
    for label, cls, kwargs in configs:
        batch_s, res_on = _numeric_seconds(cls, a, True, **kwargs)
        pertask_s, res_off = _numeric_seconds(cls, a, False, **kwargs)
        assert _same_factors(res_on, res_off), \
            f"batched factors diverge from per-task on {label}"
        n_tasks = res_on.dag.n_tasks
        speedup = pertask_s / batch_s
        rows.append([label, n_tasks, pertask_s * 1e3, batch_s * 1e3,
                     round(speedup, 2)])
        entries.append({
            "config": label,
            "n_tasks": n_tasks,
            "launches": res_on.schedule.kernel_count,
            "pertask_seconds": pertask_s,
            "batch_seconds": batch_s,
            "speedup": speedup,
        })

    emit("numeric_batch", format_table(
        ["config", "tasks", "per-task (ms)", "batched (ms)", "speedup"],
        rows,
        title="Numeric factorisation wall time: per-task oracle vs "
              "batched kernel groups (trojan)",
    ))

    summary = {
        "configs": entries,
        "speedup": entries[0]["speedup"],
        "bench_scale": BENCH_SCALE,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_numeric.json").write_text(
        json.dumps(summary, indent=1), encoding="utf-8")

    # the acceptance bar only binds at full scale: tiny matrices have
    # too few tasks per launch to amortise the batching bookkeeping
    if entries[0]["n_tasks"] >= 5000:
        assert entries[0]["speedup"] >= 2.0, \
            f"batched numeric only {entries[0]['speedup']:.2f}x faster " \
            f"on {entries[0]['n_tasks']} tasks"

    benchmark.pedantic(
        lambda: PanguLUSolver(a, block_size=8, scheduler="trojan",
                              batch_kernels=True,
                              analysis_cache=None).factorize(),
        rounds=1, iterations=1)

"""Shared fixtures for the benchmark harness.

Each experiment regenerates one table or figure of the paper.  Numeric
factorisations are expensive in pure Python, so they run once per
(matrix, substrate) in session-scoped fixtures; every bench then replays
schedules against the recorded exact per-task stats (see
``repro.solvers.resimulate``).

Benches both print their tables (visible with ``pytest -s``) and write
them under ``benchmarks/results/`` so ``--benchmark-only`` runs keep a
record regardless of capture settings.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.matrices import (
    SCALE_OUT_NAMES,
    SCALE_UP_NAMES,
    paper_matrix,
)
from repro.solvers import PanguLUSolver, PaStiXSolver, SuperLUSolver

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Size multiplier for the analogue matrices; lower it (e.g. 0.5) via the
#: REPRO_BENCH_SCALE environment variable for a quick smoke run.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Number of matrices in the Figure-10 sweep (paper: 200).
SWEEP_COUNT = int(os.environ.get("REPRO_SWEEP_COUNT", "200"))

#: Worker processes for the collection sweeps (repro.sweep); 1 runs the
#: cells sequentially in-process.  The merged tables are identical for
#: any worker count.
SWEEP_WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))


@pytest.fixture(scope="session")
def emit():
    """Print a report block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(experiment: str, text: str) -> None:
        path = RESULTS_DIR / f"{experiment}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to {path}]")

    return _emit


def _factorize_cached(cache: dict, name: str, solver: str):
    key = (name, solver)
    if key not in cache:
        a = paper_matrix(name, scale=BENCH_SCALE)
        if solver == "pangulu":
            run = PanguLUSolver(a, scheduler="serial").factorize()
        elif solver == "superlu":
            run = SuperLUSolver(a, scheduler="serial").factorize()
        elif solver == "pastix":
            run = PaStiXSolver(a).factorize()
        else:  # pragma: no cover - guarded by callers
            raise ValueError(solver)
        cache[key] = (a, run)
    return cache[key]


@pytest.fixture(scope="session")
def runs():
    """Lazy session cache: ``runs(name, solver) -> (matrix, result)``.

    Covers the Table-2 scale-up and Table-4 scale-out analogue sets for
    the pangulu / superlu / pastix substrates.
    """
    cache: dict = {}

    def _get(name: str, solver: str):
        if name not in SCALE_UP_NAMES + SCALE_OUT_NAMES:
            raise KeyError(name)
        return _factorize_cached(cache, name, solver)

    return _get

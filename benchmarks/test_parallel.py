"""Multiprocess numeric-phase scaling bench (the CI parallel gate).

Measures the tentpole claim directly: executing the Trojan-Horse batch
schedule on N worker processes over the shared-memory arena speeds up
the numeric phase vs the same engine on one worker — ≥1.8x at 4 workers
on a 4-core host.  Factors are bit-checked against the single-process
engine at every worker count, so the speedup is of the *identical*
computation.

Workload notes: a 3-D Poisson problem (wide elimination frontier, so
ready batches spread across all owner ranks) under a Collector budget
inflated to multiprocess scale — per-batch coordination is a queue
round-trip per worker, so the schedule must amortise it over hundreds
of tasks per batch, exactly as the paper's Batch stage amortises kernel
launches.  The per-batch owner-balance bound of this config is ~3x at 4
workers; the 1.8x gate leaves headroom for dispatch overhead.

Writes ``benchmarks/results/BENCH_parallel.json``.  The gate asserts
only where it can physically hold (``os.cpu_count() >= 4``); elsewhere
the JSON records the honest numbers with ``"enforced": false`` so the
weekly trend job still gets a data point.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import pathlib
import time

import numpy as np

from repro.analysis import format_table
from repro.gpusim.specs import RTX5090
from repro.matrices.generators import poisson3d
from repro.parallel import ParallelExecutor
from repro.solvers import PanguLUSolver

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

WORKER_COUNTS = (1, 2, 4)
GATE_THRESHOLD = 1.8

#: Collector budget scaled to the multiprocess regime: batches of
#: hundreds of tasks, so the per-batch worker round-trip amortises.
BATCH_GPU = dataclasses.replace(RTX5090, max_blocks_per_sm=64,
                                shared_mem_per_sm_kb=800.0)


def _parallel_numeric_seconds(a, workers, reps=2, **kwargs):
    """Best-of-``reps`` numeric-phase seconds across the worker pool."""
    best = math.inf
    result = None
    for _ in range(reps):
        with ParallelExecutor(a, workers=workers, pin_blas=1,
                              gpu=BATCH_GPU, **kwargs) as ex:
            result = ex.factorize()
        best = min(best, result.phase_seconds["numeric"])
    return best, result


def test_parallel_scaling(emit, benchmark):
    nx = max(8, int(round(12 * BENCH_SCALE ** (1.0 / 3.0))))
    kwargs = dict(block_size=24)
    a = poisson3d(nx)

    ref = PanguLUSolver(a, scheduler="trojan", gpu=BATCH_GPU,
                        **kwargs).factorize()

    rows = []
    per_worker = {}
    for w in WORKER_COUNTS:
        seconds, res = _parallel_numeric_seconds(a, w, **kwargs)
        assert np.array_equal(res.L.data, ref.L.data), w
        assert np.array_equal(res.U.data, ref.U.data), w
        per_worker[w] = {
            "numeric_seconds": seconds,
            "messages": res.messages,
            "comm_bytes": res.comm_bytes,
            "batches": len(res.batch_plan.batches),
            "tasks": res.batch_plan.n_tasks,
        }
        rows.append([w, f"{res.grid.pr}x{res.grid.pc}",
                     res.batch_plan.n_tasks,
                     len(res.batch_plan.batches), res.messages,
                     seconds * 1e3,
                     round(per_worker[1]["numeric_seconds"] / seconds, 2)])

    speedup_at_4 = (per_worker[1]["numeric_seconds"]
                    / per_worker[4]["numeric_seconds"])
    cpus = os.cpu_count() or 1
    enforced = cpus >= 4

    emit("parallel_scaling", format_table(
        ["workers", "grid", "tasks", "batches", "msgs", "numeric (ms)",
         "speedup"],
        rows,
        title=f"Multiprocess numeric phase, poisson3d({nx}) b24 "
              f"(bit-identical factors; {cpus} cpus)",
    ))

    summary = {
        "matrix": f"poisson3d({nx})",
        "n": a.nrows,
        "block_size": kwargs["block_size"],
        "collector_budget": {
            "max_resident_blocks": BATCH_GPU.max_resident_blocks,
            "shared_mem_total_bytes": BATCH_GPU.shared_mem_total_bytes,
        },
        "workers": per_worker,
        "speedup_at_4": speedup_at_4,
        "gate": {
            "threshold": GATE_THRESHOLD,
            "enforced": enforced,
            "cpu_count": cpus,
        },
        "bench_scale": BENCH_SCALE,
        "unix_time": time.time(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(
        json.dumps(summary, indent=1), encoding="utf-8")

    if enforced:
        assert speedup_at_4 >= GATE_THRESHOLD, \
            f"4-worker numeric phase only {speedup_at_4:.2f}x over " \
            f"1 worker (gate {GATE_THRESHOLD}x on {cpus} cpus)"

    benchmark.pedantic(
        lambda: _parallel_numeric_seconds(a, 4, reps=1, **kwargs),
        rounds=1, iterations=1)

"""Ablation — Collector capacity (§3.4 design choice).

The Collector's budget is tied to the GPU's resident-CUDA-block and
shared-memory limits.  This ablation sweeps the blocks-per-SM budget:
too small a Collector degenerates toward per-task launches; past the
occupancy point extra capacity cannot help (the GPU is already full).
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.core.executor import ReplayBackend
from repro.core.baselines import make_scheduler
from repro.gpusim import GPUCostModel, RTX5090


def test_ablation_collector_capacity(runs, emit, benchmark):
    _, run = runs("cage12", "pangulu")
    backend = ReplayBackend(run.stats)
    rows = []
    times = {}
    budgets = (1, 2, 4, 8, 16, 32)
    for bpm in budgets:
        gpu = replace(RTX5090, max_blocks_per_sm=bpm)
        r = make_scheduler("trojan", run.dag, backend,
                           GPUCostModel(gpu)).run()
        times[bpm] = r.total_time
        rows.append([bpm, gpu.max_resident_blocks, r.kernel_count,
                     round(r.mean_batch_size, 1), r.total_time * 1e3])
    emit("ablation_collector_capacity", format_table(
        ["blocks/SM budget", "total blocks", "kernels", "tasks/kernel",
         "time (ms)"],
        rows,
        title="Ablation — Collector capacity sweep (PanguLU substrate, "
              "cage12, RTX 5090)",
    ))
    # starving the Collector must hurt; ample capacity must recover
    assert times[1] > times[8]
    # diminishing returns: growing past the occupancy point changes
    # little (< 20%)
    assert abs(times[32] - times[16]) <= 0.2 * times[16]

    benchmark.pedantic(
        lambda: make_scheduler("trojan", run.dag, backend,
                               GPUCostModel(RTX5090)).run(),
        rounds=3, iterations=1)

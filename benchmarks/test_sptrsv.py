"""Solve-phase microbench: trojan-batched SpTRSV vs level-set per-task.

Measures the solve-phase Trojan-Horse claim directly: running both
triangular solves through the solve DAG with the trojan scheduler and
stacked kernel groups beats the classic level-set schedule executed one
task at a time — the regime SpTRSV work on GPUs usually lands in —
while producing bit-identical solutions.  Single- and multi-RHS, wall
time plus the ``gpusim`` makespans of the scheduler comparison.

Writes a machine-readable summary to ``benchmarks/results/``
(``BENCH_sptrsv.json``) so the CI smoke job can upload it as an
artifact.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time

import numpy as np

from repro.analysis import format_table
from repro.core.solve_dag import compare_solve_schedulers
from repro.gpusim import RTX5090
from repro.matrices import poisson2d
from repro.solvers import PanguLUSolver
from repro.sparse import matvec

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def _solve_seconds(res, b, scheduler, batch_kernels, reps=3):
    """Best-of-``reps`` wall time of both triangular solves, plus x."""
    lctx, uctx = res.solve_contexts()
    pb = b[res.perm, :]
    best = math.inf
    x = None
    for _ in range(reps):
        t0 = time.perf_counter()
        y = lctx.solve(pb, scheduler=scheduler,
                       batch_kernels=batch_kernels).x
        z = uctx.solve(y, scheduler=scheduler,
                       batch_kernels=batch_kernels).x
        best = min(best, time.perf_counter() - t0)
        x = np.empty_like(z)
        x[res.perm, :] = z
    return best, x


def test_sptrsv_batch(emit, benchmark):
    nx = max(12, int(round(24 * math.sqrt(BENCH_SCALE))))
    a = poisson2d(nx)
    res = PanguLUSolver(a, block_size=8, scheduler="trojan").factorize()
    lctx, uctx = res.solve_contexts()
    rng = np.random.default_rng(0)

    rows = []
    entries = []
    for nrhs in (1, 32):
        b = rng.standard_normal((a.nrows, nrhs))
        n_tasks = (lctx.dag_for(nrhs).n_tasks
                   + uctx.dag_for(nrhs).n_tasks)
        # warm-up: builds both DAGs and the schedule caches
        _solve_seconds(res, b, "trojan", True, reps=1)
        batch_s, x_batch = _solve_seconds(res, b, "trojan", True)
        level_s, x_level = _solve_seconds(res, b, "levelset", False)
        assert np.array_equal(x_batch, x_level), \
            f"trojan-batched x diverges from level-set at nrhs={nrhs}"
        sim = compare_solve_schedulers(lctx.dag_for(nrhs), RTX5090)
        speedup = level_s / batch_s
        rows.append([f"poisson2d({nx}) nrhs={nrhs}", n_tasks,
                     level_s * 1e3, batch_s * 1e3, round(speedup, 2)])
        entries.append({
            "config": f"poisson2d({nx}) b8 nrhs={nrhs}",
            "nrhs": nrhs,
            "n_tasks": n_tasks,
            "levelset_pertask_seconds": level_s,
            "trojan_batch_seconds": batch_s,
            "speedup": speedup,
            "sim_depth": sim["depth"],
            "sim_makespan_ms": {name: s["makespan_ms"]
                                for name, s in sim["schedulers"].items()},
        })

    emit("sptrsv_batch", format_table(
        ["config", "tasks", "level-set (ms)", "trojan-batch (ms)",
         "speedup"],
        rows,
        title="SpTRSV wall time: level-set per-task vs trojan-batched "
              "solve DAG (L + U solves)",
    ))

    summary = {
        "configs": entries,
        "speedup": entries[-1]["speedup"],  # the multi-RHS config
        "bench_scale": BENCH_SCALE,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sptrsv.json").write_text(
        json.dumps(summary, indent=1), encoding="utf-8")

    # acceptance bar binds at full scale: shrunken matrices leave too
    # few tasks per level to amortise the stacked-kernel bookkeeping
    if BENCH_SCALE >= 1.0:
        assert entries[-1]["speedup"] >= 1.5, \
            f"trojan-batched SpTRSV only {entries[-1]['speedup']:.2f}x " \
            f"over level-set per-task at nrhs={entries[-1]['nrhs']}"

    benchmark.pedantic(
        lambda: _solve_seconds(
            res, rng.standard_normal((a.nrows, 32)), "trojan", True,
            reps=1),
        rounds=1, iterations=1)

"""Figure 12 — strong scaling on the H100 and MI50 16-GPU clusters.

Six large matrices, 1–16 GPUs, six solver variants: PaStiX+StarPU
(dmdas), SuperLU_DIST without/with Trojan Horse, PanguLU without Trojan
Horse / with 4 CUDA streams / with Trojan Horse.  Paper headlines at 16
H100s: SuperLU+TH up to 24.6× (3.5× avg) over its baseline, PanguLU+TH
up to 2.3× (1.9× avg); TH variants consistently beat PaStiX and the
stream-based PanguLU.
"""

import numpy as np

from repro.analysis import format_table, geomean
from repro.cluster import (
    DistributedSimulator,
    H100_CLUSTER,
    MI50_CLUSTER,
    fits_in_memory,
)
from repro.core import merge_schur_tasks
from repro.core.executor import ReplayBackend
from repro.matrices import SCALE_OUT_NAMES, paper_matrix_info
from repro.solvers import scale_stats

GPU_COUNTS = (1, 2, 4, 8, 16)

#: Per-task work extrapolated to paper tile sizes (block 512 vs 64 →
#: ×512 flops, ×64 bytes; DESIGN.md §3) so the strong-scaling study runs
#: in the compute-dominated regime the paper measured.
WORK_SCALE = 512.0
MSG_SCALE = WORK_SCALE ** (2.0 / 3.0)

VARIANTS = [
    # (label, substrate, per-process policy)
    ("pastix(dmdas)", "pastix", "dmdas"),
    ("superlu", "superlu", "serial"),
    ("superlu+TH", "superlu", "trojan"),
    ("pangulu", "pangulu", "serial"),
    ("pangulu+streams", "pangulu", "streams"),
    ("pangulu+TH", "pangulu", "trojan"),
]


def test_fig12_scaleout(runs, emit, benchmark):
    lines = ["Figure 12 — strong scaling, six large matrices"]
    speedups_16 = {("superlu", "H100"): [], ("pangulu", "H100"): [],
                   ("superlu", "MI50"): [], ("pangulu", "MI50"): []}
    times = {}
    oom_cells = []
    for cluster, tag in ((H100_CLUSTER, "H100"), (MI50_CLUSTER, "MI50")):
        rows = []
        for name in SCALE_OUT_NAMES:
            for label, substrate, policy in VARIANTS:
                _, run = runs(name, substrate)
                dag, stats = run.dag, scale_stats(run.stats, WORK_SCALE)
                if label == "superlu+TH":
                    # the §3.5.1 integration: fuse Schur rows per supernode
                    fusion = merge_schur_tasks(dag)
                    dag, stats = fusion.dag, fusion.fuse_stats(stats)
                backend = ReplayBackend(stats)
                # paper-scale factor footprint decides feasibility (the
                # Figure-12 caption's MI50 OOM cases)
                info = paper_matrix_info(name)
                lu_nnz = (info.paper_lu_superlu if substrate != "pangulu"
                          else info.paper_lu_pangulu)
                cells = []
                for g in GPU_COUNTS:
                    res = DistributedSimulator(dag, backend, cluster,
                                               g, policy,
                                               msg_scale=MSG_SCALE).run()
                    times[(tag, name, label, g)] = res.makespan
                    if fits_in_memory(lu_nnz, g, cluster.gpu):
                        cells.append(round(res.makespan * 1e3, 3))
                    else:
                        cells.append("OOM")
                        oom_cells.append((tag, name, label, g))
                rows.append([name, label] + cells)
        lines.append(format_table(
            ["matrix", "variant"] + [f"{g} GPU (ms)" for g in GPU_COUNTS],
            rows, title=f"\n{cluster.name}"))
        for name in SCALE_OUT_NAMES:
            speedups_16[("superlu", tag)].append(
                times[(tag, name, "superlu", 16)]
                / times[(tag, name, "superlu+TH", 16)])
            speedups_16[("pangulu", tag)].append(
                times[(tag, name, "pangulu", 16)]
                / times[(tag, name, "pangulu+TH", 16)])

    summary_rows = []
    for (solver, tag), sp in speedups_16.items():
        summary_rows.append([solver, tag, round(geomean(sp), 2),
                             round(max(sp), 2)])
    lines.append(format_table(
        ["solver", "cluster", "TH speedup @16 GPUs (geomean)", "max"],
        summary_rows,
        title="\npaper: H100 superlu 3.5x avg / 24.6x max, pangulu 1.9x "
              "avg / 2.3x max; MI50 superlu 4.7x / 12.8x, pangulu 1.3x "
              "/ 1.4x"))
    emit("fig12_scaleout", "\n".join(lines))

    # shape assertions at 16 GPUs on both clusters
    for tag in ("H100", "MI50"):
        slu = geomean(speedups_16[("superlu", tag)])
        plu = geomean(speedups_16[("pangulu", tag)])
        assert slu > plu > 1.0, (tag, slu, plu)
        for name in SCALE_OUT_NAMES:
            # TH beats the stream variant (§4.4); per-matrix near-ties
            # (<10%) can appear at high GPU counts where a batch's
            # all-at-once completion delays cross-process dependents
            # (EXPERIMENTS.md)
            for g in GPU_COUNTS:
                assert (times[(tag, name, "pangulu+TH", g)]
                        < 1.10 * times[(tag, name, "pangulu+streams", g)]), (
                    tag, name, g)
            assert (times[(tag, name, "superlu+TH", 16)]
                    < times[(tag, name, "pastix(dmdas)", 16)])
        for g in GPU_COUNTS:
            stream_ratio = geomean([
                times[(tag, n, "pangulu+streams", g)]
                / times[(tag, n, "pangulu+TH", g)]
                for n in SCALE_OUT_NAMES
            ])
            assert stream_ratio > 1.0, (tag, g, stream_ratio)
    # strong scaling: every TH variant improves from 1 to 16 GPUs
    for tag in ("H100", "MI50"):
        for name in SCALE_OUT_NAMES:
            assert (times[(tag, name, "superlu+TH", 16)]
                    < times[(tag, name, "superlu+TH", 1)])
    # the Figure-12 caption's OOM pattern: small MI50 counts infeasible,
    # every 16-GPU configuration feasible on both clusters
    assert any(tag == "MI50" and g <= 4 for tag, _, _, g in oom_cells)
    assert all(g < 16 for _, _, _, g in oom_cells)

    _, run = runs("RM07R", "pangulu")
    backend = ReplayBackend(run.stats)
    benchmark.pedantic(
        lambda: DistributedSimulator(run.dag, backend, H100_CLUSTER, 16,
                                     "trojan").run(),
        rounds=1, iterations=1)

"""Table 6 — kernel-count reduction for PanguLU.

Paper: counts drop to 0.37–2.91% (geomean 1.48%) on the four scale-up
matrices; PanguLU's absolute counts are orders of magnitude below
SuperLU's because its sparse-block tasks are much larger (Table 5 vs 6).
"""

from repro.analysis import format_table, geomean
from repro.gpusim import A100_40GB
from repro.matrices import SCALE_UP_NAMES
from repro.solvers import resimulate


def test_tab06_kernel_count_pangulu(runs, emit, benchmark):
    rows = []
    rates = []
    slu_counts = {}
    for name in SCALE_UP_NAMES:
        _, slu_run = runs(name, "superlu")
        slu_counts[name] = slu_run.schedule.task_count
        _, run = runs(name, "pangulu")
        base = resimulate(run, "serial", A100_40GB)
        trojan = resimulate(run, "trojan", A100_40GB)
        assert base.total_flops == trojan.total_flops
        rate = trojan.kernel_count / base.kernel_count
        rates.append(rate)
        rows.append([name, base.kernel_count, trojan.kernel_count,
                     f"{rate:.2%}"])
        # cross-table shape: PanguLU baseline counts ≪ SuperLU's
        assert base.kernel_count * 5 < slu_counts[name]
    g = geomean(rates)
    rows.append(["GEOMEAN", "", "", f"{g:.2%}"])
    emit("tab06_kernel_count_pangulu", format_table(
        ["matrix", "w/o Trojan Horse", "w/ Trojan Horse", "rate"],
        rows,
        title="Table 6 — PanguLU kernel counts (paper geomean: 1.48%, "
              "min 0.37%)",
    ))
    assert g < 0.15

    _, run = runs("c-71", "pangulu")
    benchmark.pedantic(lambda: resimulate(run, "trojan", A100_40GB),
                       rounds=3, iterations=1)

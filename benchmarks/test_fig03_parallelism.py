"""Figure 3 — static analysis of parallelisable task counts.

The paper peels each solver's task DAG level by level over ten matrices
and plots the distribution of per-level parallel widths as violins,
motivating aggregation ("e.g. Si41Ge41H72 reaches 975 parallel tasks on
SuperLU and 153 on PanguLU").  This bench prints the distribution summary
for every (matrix, substrate) pair: the numbers a violin plot would
encode.
"""

from repro.analysis import format_table
from repro.core import dag_statistics
from repro.matrices import SCALE_OUT_NAMES, SCALE_UP_NAMES

ALL_TEN = SCALE_UP_NAMES + SCALE_OUT_NAMES


def test_fig03_parallelism(runs, emit, benchmark):
    rows = []
    stats_by_solver = {"superlu": [], "pangulu": []}
    for solver in ("superlu", "pangulu"):
        for name in ALL_TEN:
            _, run = runs(name, solver)
            stats = dag_statistics(run.dag)
            stats_by_solver[solver].append(stats)
            rows.append([
                solver, name, stats["tasks"], stats["time_steps"],
                stats["max_parallel"], round(stats["mean_parallel"], 1),
                stats["p25"], stats["median"], stats["p75"],
            ])
    emit("fig03_parallelism", format_table(
        ["solver", "matrix", "tasks", "time steps", "max ∥", "mean ∥",
         "p25", "median", "p75"],
        rows,
        title="Figure 3 — parallelisable tasks per DAG level "
              "(violin summary)",
    ))

    # paper's observations: (1) both solvers expose substantial
    # parallelism; (2) SuperLU's supernodal tasks are much smaller and
    # more numerous than PanguLU's block tasks
    for solver, stats in stats_by_solver.items():
        assert all(s["max_parallel"] > 10 for s in stats), solver
    slu_tasks = sum(s["tasks"] for s in stats_by_solver["superlu"])
    plu_tasks = sum(s["tasks"] for s in stats_by_solver["pangulu"])
    assert slu_tasks > 5 * plu_tasks

    # benchmark payload: one full static analysis
    _, run = runs("cage12", "pangulu")
    benchmark.pedantic(lambda: dag_statistics(run.dag), rounds=3,
                       iterations=1)

"""Figure 8 — GFLOPS timelines without and with the Trojan Horse.

The paper plots kernel throughput over time on the RTX 5090 for both
solvers: the Trojan Horse curve is substantially higher and terminates
much earlier (kernel execution 15.02× faster for SuperLU, 2.92× for
PanguLU).  This bench prints the binned series and checks both
properties.
"""

import numpy as np

from repro.analysis import binned_gflops_timeline, format_table
from repro.gpusim import RTX5090
from repro.solvers import resimulate


def _series(result, bins=12):
    t, g = binned_gflops_timeline(result, n_bins=bins)
    return t, g


def test_fig08_timeline(runs, emit, benchmark):
    lines = ["Figure 8 — numeric-phase GFLOPS timelines on the RTX 5090"]
    speedups = {}
    for solver in ("superlu", "pangulu"):
        _, run = runs("cage12", solver)
        base = resimulate(run, "serial", RTX5090)
        trojan = resimulate(run, "trojan", RTX5090,
                            merge_schur=solver == "superlu")
        speedups[solver] = base.kernel_time / trojan.kernel_time
        rows = []
        for label, res in (("w/o Trojan Horse", base),
                           ("w/ Trojan Horse", trojan)):
            t, g = _series(res)
            rows.append([label, res.kernel_time * 1e3,
                         round(float(g.max()), 2),
                         " ".join(f"{v:.1f}" for v in g)])
        lines.append(format_table(
            ["variant", "kernel time (ms)", "peak GFLOPS",
             "GFLOPS per time bin (12 bins)"],
            rows, title=f"\n{solver} on cage12 analogue"))
        # shape: the enhanced curve is higher and finishes earlier
        tb, gb = _series(base)
        tt, gt = _series(trojan)
        assert tt[-1] < tb[-1]
        assert gt.max() > gb.max()
    lines.append(
        f"\nkernel-time speedups: superlu {speedups['superlu']:.1f}x "
        f"(paper: 15.02x), pangulu {speedups['pangulu']:.1f}x "
        f"(paper: 2.92x)")
    emit("fig08_timeline", "\n".join(lines))
    assert speedups["superlu"] > speedups["pangulu"] > 1.0

    _, run = runs("cage12", "pangulu")
    benchmark.pedantic(lambda: resimulate(run, "trojan", RTX5090),
                       rounds=3, iterations=1)

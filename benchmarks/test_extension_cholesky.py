"""Extension — solver-agnosticism: the Trojan Horse on a Cholesky solver.

§5 positions the strategy as "a lightweight plug-in" independent of the
host solver, and related work lists sparse Cholesky among GPU solvers the
idea applies to.  This bench runs a third substrate — tiled LLᵀ — through
the unchanged scheduling machinery and shows the same aggregate-and-batch
gains as the two LU integrations.
"""

from repro.analysis import format_table
from repro.gpusim import RTX5090
from repro.matrices import poisson2d, spd_random
from repro.solvers import CholeskySolver


def test_extension_cholesky(emit, benchmark):
    cases = [
        ("poisson2d-24", poisson2d(24)),
        ("spd-random-500", spd_random(500, density=0.02, seed=7)),
        ("poisson2d-32", poisson2d(32)),
    ]
    rows = []
    speedups = []
    for name, a in cases:
        per_sched = {}
        for sched in ("serial", "streams", "trojan"):
            r = CholeskySolver(a, block_size=48, scheduler=sched,
                               gpu=RTX5090).factorize()
            per_sched[sched] = r.schedule
        sp = (per_sched["serial"].total_time
              / per_sched["trojan"].total_time)
        speedups.append(sp)
        rows.append([
            name, per_sched["serial"].task_count,
            per_sched["serial"].total_time * 1e3,
            per_sched["streams"].total_time * 1e3,
            per_sched["trojan"].total_time * 1e3,
            round(sp, 2),
        ])
    emit("extension_cholesky", format_table(
        ["matrix", "tasks", "serial (ms)", "streams (ms)", "trojan (ms)",
         "TH speedup"],
        rows,
        title="Extension — Trojan Horse on the Cholesky substrate "
              "(RTX 5090)",
    ))
    assert all(s > 1.5 for s in speedups)

    a = cases[0][1]
    benchmark.pedantic(
        lambda: CholeskySolver(a, block_size=48,
                               scheduler="trojan").factorize(),
        rounds=1, iterations=1)

"""Ablation — tile granularity (§4.1 tuning choice).

The paper tunes PanguLU's block size to 512 and SuperLU's maximum
supernode to 256 "as these yield generally the best performance".  At
reproduction scale the analogous knobs are swept here: small tiles expose
more parallelism but multiply task counts (launch/scheduling overhead);
large tiles starve the DAG.  Trojan Horse flattens this trade-off —
aggregation recovers most of the small-tile overhead.

The parameter grid dispatches through :mod:`repro.sweep` (index-sharded,
REPRO_SWEEP_WORKERS processes), the same runner as the Figure-10 sweep.
"""

from repro.analysis import format_table
from repro.matrices import SuiteEntry, paper_matrix
from repro.solvers import PanguLUSolver
from repro.sweep import SweepItem, default_workers, run_sweep


def test_ablation_block_size(emit, benchmark):
    a = paper_matrix("cage12")
    entry = SuiteEntry(name="cage12", kind="cage12", matrix=a)
    items = []
    for bs in (16, 32, 64, 128):
        items.append(SweepItem(
            index=len(items), entry=entry, solver="pangulu", gpu="rtx5090",
            solver_kwargs=(("block_size", bs),)))
    for sn in (8, 16, 32):
        items.append(SweepItem(
            index=len(items), entry=entry, solver="superlu", gpu="rtx5090",
            merge_schur=True, solver_kwargs=(("max_supernode", sn),)))
    outcome = run_sweep(items, workers=default_workers(),
                        shard_key=lambda it: it.index)

    rows = []
    ratios = {}
    for item, row in zip(items, outcome.rows):
        size = dict(item.solver_kwargs).popitem()[1]
        base, trojan = row.base_time, row.time_for("trojan")
        if row.solver == "pangulu":
            ratios[size] = base / trojan
        rows.append([row.solver, size, row.tasks, base * 1e3,
                     trojan * 1e3, round(base / trojan, 2)])
    emit("ablation_block_size", format_table(
        ["substrate", "tile/supernode size", "tasks", "baseline (ms)",
         "trojan (ms)", "TH speedup"],
        rows,
        title="Ablation — tile granularity on cage12 (RTX 5090)",
    ))
    # smaller tiles → more tasks → larger Trojan Horse gains
    assert ratios[16] > ratios[128]

    benchmark.pedantic(
        lambda: PanguLUSolver(a, block_size=64,
                              scheduler="trojan").factorize(),
        rounds=1, iterations=1)

"""Ablation — tile granularity (§4.1 tuning choice).

The paper tunes PanguLU's block size to 512 and SuperLU's maximum
supernode to 256 "as these yield generally the best performance".  At
reproduction scale the analogous knobs are swept here: small tiles expose
more parallelism but multiply task counts (launch/scheduling overhead);
large tiles starve the DAG.  Trojan Horse flattens this trade-off —
aggregation recovers most of the small-tile overhead.
"""

from repro.analysis import format_table
from repro.gpusim import RTX5090
from repro.matrices import paper_matrix
from repro.solvers import PanguLUSolver, SuperLUSolver, resimulate


def test_ablation_block_size(emit, benchmark):
    a = paper_matrix("cage12")
    rows = []
    ratios = {}
    for bs in (16, 32, 64, 128):
        run = PanguLUSolver(a, block_size=bs, scheduler="serial",
                            gpu=RTX5090).factorize()
        base = run.schedule.total_time
        trojan = resimulate(run, "trojan", RTX5090).total_time
        ratios[bs] = base / trojan
        rows.append(["pangulu", bs, run.schedule.task_count, base * 1e3,
                     trojan * 1e3, round(base / trojan, 2)])
    for sn in (8, 16, 32):
        run = SuperLUSolver(a, max_supernode=sn, scheduler="serial",
                            gpu=RTX5090).factorize()
        base = run.schedule.total_time
        trojan = resimulate(run, "trojan", RTX5090,
                            merge_schur=True).total_time
        rows.append(["superlu", sn, run.schedule.task_count, base * 1e3,
                     trojan * 1e3, round(base / trojan, 2)])
    emit("ablation_block_size", format_table(
        ["substrate", "tile/supernode size", "tasks", "baseline (ms)",
         "trojan (ms)", "TH speedup"],
        rows,
        title="Ablation — tile granularity on cage12 (RTX 5090)",
    ))
    # smaller tiles → more tasks → larger Trojan Horse gains
    assert ratios[16] > ratios[128]

    benchmark.pedantic(
        lambda: PanguLUSolver(a, block_size=64,
                              scheduler="trojan").factorize(),
        rounds=1, iterations=1)

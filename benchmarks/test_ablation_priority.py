"""Ablation — Prioritizer urgency policy (§3.3 design choice).

The Prioritizer sends critical-path tasks straight to the Collector and
defers the rest by diagonal distance.  This ablation compares the strict
policy (slack 0, the paper's rule) against an "everything is urgent"
variant (infinite slack), which disables the Container's reordering: the
Collector then fills in plain readiness order.

Deferral matters most when capacity is scarce, so the sweep also runs on
a deliberately small Collector.
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.core.baselines import make_scheduler
from repro.core.executor import ReplayBackend
from repro.gpusim import GPUCostModel, RTX5090


def test_ablation_priority(runs, emit, benchmark):
    _, run = runs("c-71", "superlu")
    backend = ReplayBackend(run.stats)
    rows = []
    results = {}
    for label, gpu in (("full GPU", RTX5090),
                       ("capacity-starved",
                        replace(RTX5090, max_blocks_per_sm=1))):
        for slack_label, slack in (("strict critical path", 0),
                                   ("all tasks urgent", 10 ** 9)):
            r = make_scheduler("trojan", run.dag, backend,
                               GPUCostModel(gpu),
                               critical_slack=slack).run()
            results[(label, slack_label)] = r
            rows.append([label, slack_label, r.kernel_count,
                         round(r.mean_batch_size, 1), r.total_time * 1e3])
    emit("ablation_priority", format_table(
        ["collector", "prioritizer policy", "kernels", "tasks/kernel",
         "time (ms)"],
        rows,
        title="Ablation — Prioritizer urgency policy (SuperLU substrate, "
              "c-71)",
    ))
    # both policies complete the same work
    flops = {r.total_flops for r in results.values()}
    assert len(flops) == 1
    # the strict policy should never be dramatically worse; on the
    # starved Collector its deferral ordering must stay competitive
    strict = results[("capacity-starved", "strict critical path")]
    loose = results[("capacity-starved", "all tasks urgent")]
    assert strict.total_time <= 1.25 * loose.total_time

    benchmark.pedantic(
        lambda: make_scheduler("trojan", run.dag, backend,
                               GPUCostModel(RTX5090),
                               critical_slack=0).run(),
        rounds=1, iterations=1)

"""Figure 11 — numeric-phase time breakdown (kernel vs scheduling).

The paper splits the numeric time of both solvers, without and with the
Trojan Horse, into kernel execution and everything else: kernel time
shrinks 15.02× (SuperLU) / 2.92× (PanguLU) while the *kernel share* of
total time stays roughly unchanged — i.e. the strategy does not trade
kernel time for scheduling overhead.
"""

from repro.analysis import format_table, geomean, kernel_share
from repro.gpusim import RTX5090
from repro.matrices import SCALE_UP_NAMES
from repro.solvers import resimulate, scale_stats

WORK_SCALE = 512.0  # per-task work extrapolated to paper tile sizes


def test_fig11_time_breakdown(runs, emit, benchmark):
    rows = []
    kernel_speedups = {"superlu": [], "pangulu": []}
    share_gaps_at_scale = []
    for solver in ("superlu", "pangulu"):
        for name in SCALE_UP_NAMES:
            _, run = runs(name, solver)
            base = kernel_share(resimulate(run, "serial", RTX5090))
            trojan = kernel_share(resimulate(
                run, "trojan", RTX5090, merge_schur=solver == "superlu"))
            kernel_speedups[solver].append(
                base["kernel_s"] / trojan["kernel_s"])
            # paper-scale work: the regime where the "share unchanged"
            # observation applies (tasks 512x heavier, DESIGN.md §3)
            scaled = scale_stats(run.stats, WORK_SCALE)
            base_ps = kernel_share(
                resimulate(run, "serial", RTX5090, stats=scaled))
            trojan_ps = kernel_share(
                resimulate(run, "trojan", RTX5090, stats=scaled,
                           merge_schur=solver == "superlu"))
            share_gaps_at_scale.append(
                abs(base_ps["kernel_share"] - trojan_ps["kernel_share"]))
            for label, s, s_ps in (("w/o TH", base, base_ps),
                                   ("w/ TH", trojan, trojan_ps)):
                rows.append([
                    solver, name, label, s["kernel_s"] * 1e3,
                    s["sched_s"] * 1e3, f"{s['kernel_share']:.0%}",
                    f"{s_ps['kernel_share']:.0%}",
                ])
    emit("fig11_time_breakdown", format_table(
        ["solver", "matrix", "variant", "kernel (ms)", "scheduling (ms)",
         "kernel share", "share @ paper-scale work"],
        rows,
        title="Figure 11 — numeric time breakdown (paper: kernel time "
              "-15.02x/-2.92x, kernel share roughly unchanged)",
    ))

    g_slu = geomean(kernel_speedups["superlu"])
    g_plu = geomean(kernel_speedups["pangulu"])
    assert g_slu > g_plu > 1.0
    # the paper's share-invariance claim, checked in the regime it was
    # measured in (compute-dominated tasks): shares stay close on
    # average; the small banded analogue (para-8) remains partly
    # launch-bound even at extrapolated work (EXPERIMENTS.md)
    import numpy as np

    assert float(np.mean(share_gaps_at_scale)) < 0.15
    assert all(gap < 0.35 for gap in share_gaps_at_scale)

    _, run = runs("Lin", "superlu")
    benchmark.pedantic(lambda: resimulate(run, "trojan", RTX5090),
                       rounds=1, iterations=1)

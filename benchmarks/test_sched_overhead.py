"""Scheduling-overhead microbench: vectorized loop + analysis cache.

Two claims of the ScheduleArena rewrite, measured directly:

1. the vectorized Algorithm-1 loop spends at least 3× less wall time per
   task than the per-task reference implementation on a large
   (≥5k-task) DAG — the CPU-side Figure-11 component;
2. a repeated-pattern factorisation loop (the circuit-simulation Newton
   regime) serves ≥90 % of its symbolic-analysis lookups from the
   pattern-keyed cache.

Writes a machine-readable JSON summary under ``benchmarks/results/`` so
the CI smoke job can upload it as an artifact.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time

from repro.analysis import format_table
from repro.core import ReferenceTrojanScheduler, TrojanHorseScheduler
from repro.core.analysis_cache import AnalysisCache
from repro.core.executor import EstimateBackend
from repro.gpusim import GPUCostModel, RTX5090
from repro.matrices import circuit_like, poisson2d
from repro.ordering import compute_ordering
from repro.solvers import PanguLUSolver
from repro.sparse import permute_symmetric, uniform_partition
from repro.symbolic import block_fill
from repro.core.dag import build_block_dag

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def _large_dag():
    nx = max(12, int(round(24 * math.sqrt(BENCH_SCALE))))
    a = poisson2d(nx)
    b = permute_symmetric(a, compute_ordering(a, "mindeg"))
    part = uniform_partition(a.nrows, 8)
    dag = build_block_dag(block_fill(b, part), part, sparse_tiles=False)
    # warm the static analysis so both loops time pure scheduling
    dag.successor_csr()
    dag.task_arrays()
    dag.critical_path_lengths()
    return dag


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def test_sched_overhead(emit, benchmark):
    dag = _large_dag()
    model = GPUCostModel(RTX5090)

    vec_s, vec = _time(
        lambda: TrojanHorseScheduler(dag, EstimateBackend(), model).run())
    ref_s, ref = _time(
        lambda: ReferenceTrojanScheduler(dag, EstimateBackend(), model).run())

    # identical decomposition before comparing speed
    assert vec.kernel_count == ref.kernel_count
    assert vec.total_flops == ref.total_flops
    assert [sorted(b.task_ids) for b in vec.batches] \
        == [sorted(b.task_ids) for b in ref.batches]

    speedup = ref_s / vec_s
    vec_us = vec_s / dag.n_tasks * 1e6
    ref_us = ref_s / dag.n_tasks * 1e6

    # cache hit rate over a repeated-pattern factorisation loop
    cache = AnalysisCache(capacity=8)
    rounds = 10
    for _ in range(rounds):
        PanguLUSolver(circuit_like(120, seed=3), block_size=16,
                      scheduler="trojan", analysis_cache=cache).factorize()
    cache_stats = cache.stats()

    emit("sched_overhead", format_table(
        ["implementation", "tasks", "loop (ms)", "us/task", "speedup"],
        [
            ["per-task reference", dag.n_tasks, ref_s * 1e3,
             round(ref_us, 2), 1.0],
            ["vectorized arena", dag.n_tasks, vec_s * 1e3,
             round(vec_us, 2), round(speedup, 2)],
        ],
        title="Scheduling-loop wall time (trojan, estimate backend, "
              "RTX 5090)",
    ) + f"\ncache: {cache_stats['hits']}/{rounds * 2} lookups hit "
        f"({cache_stats['hit_rate']:.0%}) over {rounds} same-pattern "
        f"factorisations")

    summary = {
        "n_tasks": dag.n_tasks,
        "reference_seconds": ref_s,
        "vectorized_seconds": vec_s,
        "reference_us_per_task": ref_us,
        "vectorized_us_per_task": vec_us,
        "speedup": speedup,
        "kernel_count": vec.kernel_count,
        "cache": cache_stats,
        "bench_scale": BENCH_SCALE,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "sched_overhead.json").write_text(
        json.dumps(summary, indent=1), encoding="utf-8")

    # the Newton-loop regime: everything after round one is a hit
    assert cache_stats["hit_rate"] >= 0.9

    # the acceptance bar only binds at full scale (small DAGs have too
    # little work to amortise either loop's fixed costs)
    if dag.n_tasks >= 5000:
        assert speedup >= 3.0, \
            f"vectorized loop only {speedup:.2f}x faster on " \
            f"{dag.n_tasks} tasks"

    benchmark.pedantic(
        lambda: TrojanHorseScheduler(dag, EstimateBackend(), model).run(),
        rounds=1, iterations=1)

"""Scale-out event-engine throughput: 256–4096 ranks (Fig-12 regime).

Sweeps banded synthetic workloads whose task counts grow with the rank
count over both event engines.  Cells where the legacy per-message heap
loop is affordable run both engines and assert (a) identical makespans,
kernel counts and message counts — the arena's determinism contract —
and (b) the arena is at least 10x faster in simulated events/sec at
1024 ranks under the Trojan policy.  At 4096 ranks only the arena runs;
the cell must simply complete (the CI scale-out gate).

Writes ``benchmarks/results/BENCH_distsim_scale.json``.
"""

import json
import os
import pathlib

from repro.analysis import format_table
from repro.cluster import DistributedSimulator, H100_CLUSTER, banded_block_dag
from repro.core.executor import EstimateBackend

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: (ranks, nb, bandwidth): DAG size grows with the grid so every cell
#: keeps meaningful per-rank work (roughly Fig. 12's weak-ish scaling).
CELLS = ((256, 64, 8), (1024, 128, 8), (4096, 192, 10))
#: ranks at which the legacy loop still finishes in CI time
LEGACY_MAX_RANKS = 1024
POLICIES = ("trojan", "serial")
#: best-of-N walls — the speedup assertion must not ride on one noisy
#: scheduler quantum
REPEATS = int(os.environ.get("REPRO_SCALE_REPEATS", "3"))
SPEEDUP_FLOOR = 10.0


def _run_best(dag, ranks, policy, engine):
    best = None
    for _ in range(REPEATS):
        res = DistributedSimulator(dag, EstimateBackend(), H100_CLUSTER,
                                   ranks, policy, engine=engine).run()
        if best is None or res.events.wall_s < best.events.wall_s:
            best = res
    return best


def test_distsim_scaleout_engines(emit, benchmark):
    rows, cells = [], []
    speedups = {}
    for ranks, nb, bw in CELLS:
        dag = banded_block_dag(nb, bw)
        for policy in POLICIES:
            arena = _run_best(dag, ranks, policy, "arena")
            legacy = None
            if ranks <= LEGACY_MAX_RANKS:
                legacy = _run_best(dag, ranks, policy, "legacy")
                assert arena.makespan == legacy.makespan
                assert arena.total_kernels == legacy.total_kernels
                assert arena.messages == legacy.messages
                assert arena.events.events == legacy.events.events
            for res in filter(None, (arena, legacy)):
                ev = res.events
                cell = {
                    "ranks": ranks, "nb": nb, "bandwidth": bw,
                    "policy": policy, "engine": ev.engine,
                    "tasks": dag.n_tasks, "events": ev.events,
                    "cohorts": ev.cohorts, "max_cohort": ev.max_cohort,
                    "peak_depth": ev.peak_depth,
                    "wall_s": round(ev.wall_s, 4),
                    "events_per_sec": round(ev.events_per_sec, 1),
                    "makespan_ms": res.makespan * 1e3,
                    "messages": res.messages,
                }
                cells.append(cell)
                rows.append([ranks, policy, ev.engine, dag.n_tasks,
                             ev.events, round(ev.wall_s, 3),
                             f"{ev.events_per_sec:,.0f}"])
            if legacy is not None:
                speedups[(ranks, policy)] = (
                    arena.events.events_per_sec
                    / legacy.events.events_per_sec)

    # the acceptance bar: >= 10x simulated events/sec at 1024 ranks on
    # the batched (trojan) policy
    assert speedups[(1024, "trojan")] >= SPEEDUP_FLOOR, speedups
    # the 4096-rank arena cells completed if we got here; pin that the
    # sweep actually contained them
    assert any(c["ranks"] == 4096 and c["engine"] == "arena"
               for c in cells)

    table = format_table(
        ["ranks", "policy", "engine", "tasks", "events", "wall (s)",
         "events/s"],
        rows, title="distsim scale-out: arena vs legacy event engine")
    lines = [table, ""]
    lines += [f"speedup {r}r/{p}: {s:.1f}x"
              for (r, p), s in sorted(speedups.items())]
    emit("distsim_scale", "\n".join(lines))
    summary = {"cells": cells,
               "speedups": {f"{r}:{p}": round(s, 2)
                            for (r, p), s in speedups.items()},
               "speedup_floor": SPEEDUP_FLOOR}
    (RESULTS_DIR / "BENCH_distsim_scale.json").write_text(
        json.dumps(summary, indent=1), encoding="utf-8")

    dag256 = banded_block_dag(64, 8)
    benchmark(lambda: DistributedSimulator(
        dag256, EstimateBackend(), H100_CLUSTER, 256, "trojan",
        engine="arena").run())

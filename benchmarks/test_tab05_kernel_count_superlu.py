"""Table 5 — kernel-count reduction for SuperLU_DIST.

The paper counts CUDA kernel launches during numeric factorisation of the
four scale-up matrices without and with the Trojan Horse: counts drop to
0.28–3.37% (geomean 1.10%), while total flops stay identical.
"""

from repro.analysis import format_table, geomean
from repro.gpusim import A100_40GB
from repro.matrices import SCALE_UP_NAMES
from repro.solvers import resimulate


def test_tab05_kernel_count_superlu(runs, emit, benchmark):
    rows = []
    rates = []
    for name in SCALE_UP_NAMES:
        _, run = runs(name, "superlu")
        base = resimulate(run, "serial", A100_40GB)
        trojan = resimulate(run, "trojan", A100_40GB, merge_schur=True)
        assert base.total_flops == trojan.total_flops  # flops unchanged
        rate = trojan.kernel_count / base.kernel_count
        rates.append(rate)
        rows.append([name, base.kernel_count, trojan.kernel_count,
                     f"{rate:.2%}"])
    g = geomean(rates)
    rows.append(["GEOMEAN", "", "", f"{g:.2%}"])
    emit("tab05_kernel_count_superlu", format_table(
        ["matrix", "w/o Trojan Horse", "w/ Trojan Horse", "rate"],
        rows,
        title="Table 5 — SuperLU kernel counts (paper geomean: 1.10%, "
              "min 0.28%)",
    ))
    # shape: one-to-two orders of magnitude fewer launches
    assert g < 0.10
    assert min(rates) < 0.05

    _, run = runs("c-71", "superlu")
    benchmark.pedantic(lambda: resimulate(run, "trojan", A100_40GB),
                       rounds=1, iterations=1)

"""Serving-path bench: the resident solver server's amortisation claims.

Boots an in-process :class:`~repro.serve.BackgroundServer` and drives
the Newton-loop traffic shape (same pattern, new values every step):

* **refactorise fast path** — warm value-only refactorisations against
  the cold first factorisation (ordering + symbolic paid once), with the
  shared analysis-cache hit rate the fast path sustains;
* **micro-batched throughput** — a pipelined burst of same-session
  solves folding into multi-RHS SpTRSV launches, with requests/sec and
  the server's own p50/p99 latency percentiles.

Writes ``benchmarks/results/BENCH_serve.json`` for the CI serve job.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time

import numpy as np

from repro.analysis import format_table
from repro.matrices import circuit_like
from repro.serve import BackgroundServer, SolverClient
from repro.sparse import matvec

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Newton steps in the refactorise loop.  Each warm step re-pins the
#: pattern's two analysis products as cache hits, so the loop must be
#: long enough for the hit rate to clear 0.9 over the cold misses.
NEWTON_STEPS = 14

#: Pipelined same-session solves in the throughput burst.
BURST = 32


def _newton_values(a, rng):
    """Same pattern, new values, diagonally dominant."""
    out = a.copy()
    rows = np.repeat(np.arange(a.nrows), a.row_lengths())
    off = rows != a.indices
    out.data[off] = rng.standard_normal(int(off.sum())) * 0.5
    offsum = np.bincount(rows[off], weights=np.abs(out.data[off]),
                         minlength=a.nrows)
    out.data[~off] = 2.0 * offsum[rows[~off]] + 1.0
    return out


def test_serve_throughput(emit, benchmark):
    n = max(150, int(round(300 * math.sqrt(BENCH_SCALE))))
    a = circuit_like(n, seed=7)
    rng = np.random.default_rng(0)

    with BackgroundServer(batch_window=0.01, max_inflight=4) as bg:
        with SolverClient(bg.host, bg.port) as client:
            # -- cold factorize: ordering + symbolic + numeric ---------
            info = client.factorize(a, solver="pangulu", block_size=16,
                                    scheduler="trojan")
            session = info["session"]
            cold_s = info["seconds"]

            # -- Newton loop: value-only refactorise + one solve -------
            refac_s = []
            for _ in range(NEWTON_STEPS):
                a2 = _newton_values(a, rng)
                step = client.refactorize(session, data=a2.data)
                assert step["fast_path"] is True
                refac_s.append(step["seconds"])
                b = matvec(a2, rng.standard_normal(n))
                x = client.solve(session, b, refine=1)
                assert np.all(np.isfinite(x))
            mean_refac_s = float(np.mean(refac_s))

            # -- pipelined micro-batched solve burst -------------------
            bs = [rng.standard_normal(n) for _ in range(BURST)]
            t0 = time.perf_counter()
            xs = client.solve_many(session, bs, batch_solve=True)
            burst_wall_s = time.perf_counter() - t0
            assert len(xs) == BURST

            stats = client.stats()

    cache = stats["analysis_cache"]
    solve_lat = stats["metrics"]["latency"]["solve"]["total"]
    batching = stats["metrics"]["batching"]
    fastpath_speedup = cold_s / mean_refac_s
    requests_per_s = BURST / burst_wall_s

    emit("serve_throughput", format_table(
        ["metric", "value"],
        [
            ["matrix", f"circuit_like({n})"],
            ["cold factorize (ms)", cold_s * 1e3],
            ["refactorise mean (ms)", mean_refac_s * 1e3],
            ["fast-path speedup", round(fastpath_speedup, 2)],
            ["analysis-cache hit rate", round(cache["hit_rate"], 3)],
            ["burst requests/sec", round(requests_per_s, 1)],
            ["solve p50 (ms)", round(solve_lat["p50_ms"], 2)],
            ["solve p99 (ms)", round(solve_lat["p99_ms"], 2)],
            ["batch launches", batching["launches"]],
            ["batch mean occupancy", round(batching["mean_requests"], 2)],
        ],
        title="Solver server: refactorise fast path and micro-batched "
              "solve throughput",
    ))

    summary = {
        "matrix": f"circuit_like({n})",
        "newton_steps": NEWTON_STEPS,
        "burst": BURST,
        "cold_factorize_ms": cold_s * 1e3,
        "refactorize_mean_ms": mean_refac_s * 1e3,
        "fastpath_speedup": fastpath_speedup,
        "analysis_cache": cache,
        "requests_per_sec": requests_per_s,
        "solve_p50_ms": solve_lat["p50_ms"],
        "solve_p99_ms": solve_lat["p99_ms"],
        "batching": batching,
        "bench_scale": BENCH_SCALE,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(summary, indent=1), encoding="utf-8")

    # the amortisation claims: warm refactorise skips ordering+symbolic
    # entirely, and warm traffic keeps the shared analysis cache hot
    assert fastpath_speedup >= 2.0, \
        f"refactorise fast path only {fastpath_speedup:.2f}x over cold " \
        f"factorize"
    assert cache["hit_rate"] >= 0.9, \
        f"analysis-cache hit rate {cache['hit_rate']:.3f} < 0.9 on the " \
        f"Newton loop"
    assert batching["launches"] >= 1
    assert batching["max_requests"] >= 2, "burst never folded"
    # generous latency ceiling — catches pathological serialisation, not
    # machine noise
    assert solve_lat["p99_ms"] < 5000.0

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

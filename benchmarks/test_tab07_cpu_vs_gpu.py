"""Table 7 — GPU solvers (without / with Trojan Horse) vs modern CPUs.

Six large matrices on an H100 vs a 32-core Xeon 6462C: the paper's
narrative result is that CPU packages (SuperLU_DIST CPU, MUMPS) beat the
pre-Trojan-Horse GPU paths, and only with Trojan Horse do the GPU solvers
match or surpass their CPU counterparts.

This comparison lives in the compute-dominated regime (multi-Tflop
factorisations).  The analogues' per-task work is extrapolated to paper
scale with the documented ×512 factor (tile 512 vs 64; DESIGN.md §3)
before replaying schedules — DAGs, task counts and batch composition stay
real.
"""

from repro.analysis import format_table
from repro.cluster import H100_CLUSTER
from repro.gpusim import XEON_6462C
from repro.matrices import SCALE_OUT_NAMES
from repro.solvers import cpu_makespan, resimulate, scale_stats
from repro.solvers.cpu import CPU_PROFILES

WORK_SCALE = 512.0  # (512/64)^3 per-task flop extrapolation


def test_tab07_cpu_vs_gpu(runs, emit, benchmark):
    gpu = H100_CLUSTER.gpu
    rows = []
    per_matrix = {}
    for name in SCALE_OUT_NAMES:
        entry = {}
        for substrate in ("superlu", "pangulu"):
            _, run = runs(name, substrate)
            scaled = scale_stats(run.stats, WORK_SCALE)
            base = resimulate(run, "serial", gpu, stats=scaled)
            trojan = resimulate(run, "trojan", gpu, stats=scaled,
                                merge_schur=substrate == "superlu")
            entry[f"{substrate}_gpu"] = base.total_time
            entry[f"{substrate}_th"] = trojan.total_time
            if substrate == "superlu":
                flops = base.total_flops
                entry["superlu_cpu"] = cpu_makespan(
                    run.dag, scaled, XEON_6462C,
                    CPU_PROFILES["superlu_cpu"][1])
                entry["mumps_cpu"] = cpu_makespan(
                    run.dag, scaled, XEON_6462C, CPU_PROFILES["mumps"][1])
        per_matrix[name] = entry
        rows.append([
            name,
            entry["superlu_gpu"] * 1e3, entry["pangulu_gpu"] * 1e3,
            entry["superlu_cpu"] * 1e3, entry["mumps_cpu"] * 1e3,
            entry["superlu_th"] * 1e3, entry["pangulu_th"] * 1e3,
        ])
    emit("tab07_cpu_vs_gpu", format_table(
        ["matrix", "SuperLU GPU w/o TH (ms)", "PanguLU GPU w/o TH (ms)",
         "SuperLU CPU (ms)", "MUMPS CPU (ms)", "SuperLU GPU w/ TH (ms)",
         "PanguLU GPU w/ TH (ms)"],
        rows,
        title="Table 7 — H100 vs Xeon 6462C, per-task work extrapolated "
              "x512 (paper: CPUs beat baseline GPU paths; Trojan Horse "
              "GPU matches or surpasses CPUs)",
    ))

    for name, e in per_matrix.items():
        # CPUs beat the launch-bound SuperLU GPU baseline everywhere
        assert e["superlu_cpu"] < e["superlu_gpu"], name
        assert e["mumps_cpu"] < e["superlu_gpu"], name
        # with Trojan Horse the best GPU path beats the best CPU path
        best_cpu = min(e["superlu_cpu"], e["mumps_cpu"])
        best_th = min(e["superlu_th"], e["pangulu_th"])
        assert best_th < best_cpu, name
        # and each solver improves with Trojan Horse
        assert e["superlu_th"] < e["superlu_gpu"], name
        assert e["pangulu_th"] < e["pangulu_gpu"], name

    _, run = runs("cage13", "pangulu")
    scaled = scale_stats(run.stats, WORK_SCALE)
    benchmark.pedantic(
        lambda: resimulate(run, "trojan", gpu, stats=scaled),
        rounds=3, iterations=1)

"""Makespan inflation under injected faults (cluster chaos study).

Sweeps the lossy-link drop probability (0 → 10%) over the distributed
simulator for the Trojan Horse and stream-based per-process schedulers,
plus one straggler and one rank-death cell each, on the c-71 analogue
with 4 GPUs.  Every cell must pass the TraceVerifier and reproduce its
trace digest on a re-run with the same seed — the same gate CI's
``chaos`` job enforces on the CLI path.

Writes ``benchmarks/results/BENCH_distsim.json`` for the CI artifact.
"""

import json
import os
import pathlib

from repro.analysis import format_table
from repro.cluster import (
    DistributedSimulator,
    FaultSpec,
    H100_CLUSTER,
    LinkFaults,
    RankDeath,
    Straggler,
)
from repro.core.executor import ReplayBackend
from repro.verify.trace import verify_trace

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

DROP_RATES = (0.0, 0.02, 0.05, 0.10)
POLICIES = ("trojan", "streams")
SEED = 42
NPROCS = 4


def _simulate(dag, backend, policy, spec):
    res = DistributedSimulator(dag, backend, H100_CLUSTER, NPROCS, policy,
                               record_trace=True, faults=spec).run()
    report = verify_trace(res.trace)
    assert not report.violations, report.violations[:3]
    return res


def test_distsim_fault_inflation(runs, emit, benchmark):
    _, run = runs("c-71", "pangulu")
    dag, backend = run.dag, ReplayBackend(run.stats)

    legacy = {p: DistributedSimulator(dag, backend, H100_CLUSTER, NPROCS,
                                      p).run() for p in POLICIES}
    # inflation baseline is the fault path's own lossless cell: the
    # legacy loop breaks simultaneous-ready ties differently (DESIGN.md
    # §2 "Fault injection"), which is noise we don't want in the ratios
    base = {p: _simulate(dag, backend, p, FaultSpec(seed=SEED)).makespan
            for p in POLICIES}

    rows, cells = [], []
    for policy in POLICIES:
        mk0 = base[policy]
        for drop in DROP_RATES:
            spec = FaultSpec(seed=SEED, link=LinkFaults(drop_prob=drop))
            res = _simulate(dag, backend, policy, spec)
            res2 = _simulate(dag, backend, policy, spec)
            digest = res.trace.digest()
            assert digest == res2.trace.digest()
            cells.append({
                "policy": policy, "fault": f"drop={drop:g}",
                "makespan_s": res.makespan,
                "inflation": res.makespan / mk0,
                "digest": digest[:16],
                **res.faults.as_dict()})

        mk = mk0
        scenarios = {
            "straggler x4": FaultSpec(
                seed=SEED, stragglers=(Straggler(rank=1, factor=4.0),)),
            "rank death": FaultSpec(
                seed=SEED, deaths=(RankDeath(rank=2, time=mk * 0.35),),
                checkpoint_interval=mk * 0.2, recovery_delay=mk * 0.05),
        }
        for label, spec in scenarios.items():
            res = _simulate(dag, backend, policy, spec)
            cells.append({
                "policy": policy, "fault": label,
                "makespan_s": res.makespan,
                "inflation": res.makespan / mk0,
                "digest": res.trace.digest()[:16],
                **res.faults.as_dict()})

    for c in cells:
        rows.append([c["policy"], c["fault"], f"{c['makespan_s']:.3e}",
                     f"{c['inflation']:.3f}", c["drops"], c["retransmits"],
                     c["reexecuted"]])
    text = format_table(
        ["policy", "fault", "makespan", "inflation", "drops",
         "retransmits", "reexec"],
        rows, title="distsim makespan inflation under faults "
                    "(c-71, 4 GPUs, seed 42)")
    emit("distsim_faults", text)

    summary = {
        "matrix": "c-71", "nprocs": NPROCS, "seed": SEED,
        "bench_scale": BENCH_SCALE,
        "baseline_makespan_s": {p: base[p] for p in POLICIES},
        "legacy_makespan_s": {p: legacy[p].makespan for p in POLICIES},
        "cells": cells,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_distsim.json").write_text(
        json.dumps(summary, indent=1), encoding="utf-8")

    # inflation is monotone-ish in drop rate: the worst lossy cell costs
    # at least as much as lossless for each policy
    for policy in POLICIES:
        drops = [c for c in cells
                 if c["policy"] == policy and c["fault"].startswith("drop")]
        assert drops[-1]["makespan_s"] >= drops[0]["makespan_s"] * 0.999

    benchmark(lambda: DistributedSimulator(
        dag, backend, H100_CLUSTER, NPROCS, "trojan",
        faults=FaultSpec(seed=SEED, link=LinkFaults(drop_prob=0.02))).run())

"""Figure 2 — time breakdown of the reorder / symbolic / numeric phases.

The paper measures SuperLU on one CPU core over ten matrices and finds
the numeric phase takes ~97% of the time on average.  Two views are
reported here:

* *operation counts* — graph edge operations (reorder), predicted
  structure entries (symbolic) and flops (numeric).  This is the
  machine-independent quantity behind the paper's 97% and the one the
  bench asserts on.
* *measured wall seconds* of this Python pipeline — recorded for
  completeness; interpreter constant factors inflate the symbolic share
  relative to compiled SuperLU (EXPERIMENTS.md notes the deviation).
"""

import numpy as np

from repro.analysis import format_table
from repro.matrices import SCALE_OUT_NAMES, SCALE_UP_NAMES

ALL_TEN = SCALE_UP_NAMES + SCALE_OUT_NAMES


def test_fig02_phase_breakdown(runs, emit, benchmark):
    rows = []
    numeric_shares = []
    for name in ALL_TEN:
        a, run = runs(name, "superlu")
        reorder_ops = a.nnz                       # graph edges visited
        symbolic_ops = run.fill_nnz               # structure entries built
        numeric_ops = run.schedule.total_flops    # flops executed
        total = reorder_ops + symbolic_ops + numeric_ops
        share = numeric_ops / total
        numeric_shares.append(share)
        wall = run.phase_seconds
        rows.append([
            name, reorder_ops, symbolic_ops, numeric_ops,
            f"{share:.1%}",
            round(wall["reorder"], 3), round(wall["symbolic"], 3),
            round(wall["numeric"], 3),
        ])
    mean_share = float(np.mean(numeric_shares))
    rows.append(["MEAN", "", "", "", f"{mean_share:.1%}", "", "", ""])
    emit("fig02_phase_breakdown", format_table(
        ["matrix", "reorder ops", "symbolic ops", "numeric flops",
         "numeric share", "wall reorder (s)", "wall symbolic (s)",
         "wall numeric (s)"],
        rows,
        title="Figure 2 — phase breakdown (paper: numeric ≈ 97%)",
    ))
    # the paper's claim: the numeric phase dominates, ≈97% on average
    assert all(s > 0.9 for s in numeric_shares)
    assert mean_share > 0.95

    # time one full numeric phase as the benchmark payload
    from repro.matrices import paper_matrix
    from repro.solvers import SuperLUSolver

    a = paper_matrix("para-8", scale=0.5)
    benchmark.pedantic(
        lambda: SuperLUSolver(a, scheduler="serial").factorize(),
        rounds=1, iterations=1)

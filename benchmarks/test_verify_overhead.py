"""Static-verification overhead microbench.

The ``repro verify`` gate is only viable if proving a schedule safe is
much cheaper than producing it — the acceptance bar is that the full
:class:`~repro.verify.schedule.ScheduleVerifier` battery (cycles,
completeness, dependencies, hazards, capacity) over the trojan schedule
of a poisson2d(24) block-8 DAG adds less than 10% on top of the
scheduling time itself.  The whole-plan certifier
(:mod:`repro.verify.plan` — vector-clock races, wait cycles, liveness,
memory high-water marks over an 8-rank owner-compute plan) is held to
the same ≤10%-of-scheduling-time bar.

Writes ``benchmarks/results/BENCH_verify.json`` for the CI artifact.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time

from repro.analysis import format_table
from repro.core import build_block_dag, make_scheduler
from repro.core.executor import EstimateBackend
from repro.gpusim import GPUCostModel, RTX5090
from repro.matrices import poisson2d
from repro.sparse import uniform_partition
from repro.symbolic import block_fill
from repro.cluster import ProcessGrid
from repro.verify.plan import PlanSpec, verify_plan
from repro.verify.schedule import ScheduleVerifier

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def _best_of(fn, reps=3):
    best = math.inf
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_verify_overhead(emit, benchmark):
    nx = max(12, int(round(24 * math.sqrt(BENCH_SCALE))))
    a = poisson2d(nx)
    part = uniform_partition(a.nrows, 8)
    dag = build_block_dag(block_fill(a, part), part)
    gpu = RTX5090
    model = GPUCostModel(gpu)

    sched_s, result = _best_of(
        lambda: make_scheduler("trojan", dag, EstimateBackend(),
                               model).run())

    def run_verify():
        report = ScheduleVerifier(dag, gpu=gpu).verify_batches(
            result.batches)
        assert report.ok, report.describe()
        return report

    verify_s, report = _best_of(run_verify)
    overhead = verify_s / sched_s

    def run_plan_verify():
        plan_report = verify_plan(
            PlanSpec.from_dag(dag, ProcessGrid(8), gpu=gpu))
        assert plan_report.ok, plan_report.describe()
        return plan_report

    plan_s, plan_report = _best_of(run_plan_verify)
    plan_overhead = plan_s / sched_s

    emit("verify_overhead", format_table(
        ["config", "tasks", "batches", "schedule (ms)", "verify (ms)",
         "overhead", "plan (ms)", "plan overhead"],
        [[f"poisson2d({nx}) b8 trojan", dag.n_tasks,
          len(result.batches), sched_s * 1e3, verify_s * 1e3,
          f"{overhead:.1%}", plan_s * 1e3, f"{plan_overhead:.1%}"]],
        title="Static schedule verification cost vs scheduling alone",
    ))

    summary = {
        "matrix": f"poisson2d({nx})",
        "block_size": 8,
        "n_tasks": dag.n_tasks,
        "n_batches": len(result.batches),
        "checks": list(report.checks),
        "schedule_seconds": sched_s,
        "verify_seconds": verify_s,
        "overhead": overhead,
        "plan_checks": list(plan_report.checks),
        "plan_seconds": plan_s,
        "plan_overhead": plan_overhead,
        "bench_scale": BENCH_SCALE,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_verify.json").write_text(
        json.dumps(summary, indent=1), encoding="utf-8")

    # the bar binds only at full scale: tiny DAGs have too little
    # scheduling work for the ratio to be meaningful
    if BENCH_SCALE >= 1.0 and dag.n_tasks >= 1000:
        assert overhead < 0.10, \
            f"verification costs {overhead:.1%} of scheduling time " \
            f"({verify_s * 1e3:.1f} ms vs {sched_s * 1e3:.1f} ms)"
        assert plan_overhead < 0.10, \
            f"plan certification costs {plan_overhead:.1%} of " \
            f"scheduling time ({plan_s * 1e3:.1f} ms vs " \
            f"{sched_s * 1e3:.1f} ms)"

    benchmark.pedantic(run_verify, rounds=3, iterations=1)

"""Figure 10 — the 200-matrix scale-up sweep on the A100.

The paper factorises 200 SuiteSparse matrices from 31 kinds and reports
the per-matrix speedup of each solver with Trojan Horse over its
baseline: geometric means 5.47× for SuperLU_DIST (max 418.79×) and 2.84×
for PanguLU (max 5.59×).  This bench runs the synthetic 200-matrix
collection (DESIGN.md §3) through :mod:`repro.sweep`: each (matrix,
solver) cell factorises once per substrate and replays both schedules on
the A100 model, sharded over a process pool when workers are available.

Environment knobs: REPRO_SWEEP_COUNT (default 200) and REPRO_SWEEP_BASE
(default 220) shrink the sweep for smoke runs; REPRO_SWEEP_WORKERS
(default 1) fans the cells out over that many worker processes — the
merged table is bit-identical for any worker count (tests/test_sweep.py
proves it differentially).
"""

import os

from repro.gpusim import A100_40GB
from repro.solvers import PanguLUSolver
from repro.sweep import (
    cache_stats_table,
    default_workers,
    fig10_items,
    fig10_summaries,
    fig10_table,
    run_sweep,
)

SWEEP_COUNT = int(os.environ.get("REPRO_SWEEP_COUNT", "200"))
SWEEP_BASE = int(os.environ.get("REPRO_SWEEP_BASE", "220"))


def test_fig10_sweep200(emit, benchmark):
    items = fig10_items(count=SWEEP_COUNT, base_size=SWEEP_BASE)
    outcome = run_sweep(items, workers=default_workers())
    emit("fig10_sweep200", fig10_table(outcome.rows, SWEEP_COUNT))
    emit("fig10_sweep200_cache", cache_stats_table(outcome))

    summaries = fig10_summaries(outcome.rows)

    # headline shapes: both solvers gain; SuperLU gains far more
    assert summaries["superlu"]["geomean"] > summaries["pangulu"]["geomean"]
    # the absolute-magnitude claims hold at collection scale only — the
    # size ladder needs several rounds before PanguLU's large sparse
    # tasks benefit from batching; smoke runs validate the runner and
    # the table, not the paper numbers
    if SWEEP_COUNT >= 100:
        assert summaries["pangulu"]["geomean"] > 1.5
        assert summaries["superlu"]["max"] > summaries["pangulu"]["max"]
        # Trojan Horse should essentially never lose
        total = (summaries["superlu"]["matrices"]
                 + summaries["pangulu"]["matrices"])
        regressions = (summaries["superlu"]["regressions"]
                       + summaries["pangulu"]["regressions"])
        assert regressions <= 0.02 * total

    # benchmark payload: one sweep element end to end
    entry = items[0].materialized()
    benchmark.pedantic(
        lambda: PanguLUSolver(entry.matrix, scheduler="trojan",
                              gpu=A100_40GB).factorize(),
        rounds=1, iterations=1)

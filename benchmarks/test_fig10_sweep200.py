"""Figure 10 — the 200-matrix scale-up sweep on the A100.

The paper factorises 200 SuiteSparse matrices from 31 kinds and reports
the per-matrix speedup of each solver with Trojan Horse over its
baseline: geometric means 5.47× for SuperLU_DIST (max 418.79×) and 2.84×
for PanguLU (max 5.59×).  This bench runs the synthetic 200-matrix
collection (DESIGN.md §3), factorises each matrix once per substrate, and
replays both schedules on the A100 model.

Environment knobs: REPRO_SWEEP_COUNT (default 200) and REPRO_SWEEP_BASE
(default 220) shrink the sweep for smoke runs.
"""

import os

import numpy as np

from repro.analysis import format_table, speedup_summary
from repro.gpusim import A100_40GB
from repro.matrices import suite_collection
from repro.solvers import PanguLUSolver, SuperLUSolver, resimulate

SWEEP_COUNT = int(os.environ.get("REPRO_SWEEP_COUNT", "200"))
SWEEP_BASE = int(os.environ.get("REPRO_SWEEP_BASE", "220"))


def test_fig10_sweep200(emit, benchmark):
    collection = suite_collection(count=SWEEP_COUNT, base_size=SWEEP_BASE)
    results = {"superlu": [], "pangulu": []}
    for entry in collection:
        a = entry.matrix
        for solver_name, cls, kwargs in (
            ("superlu", SuperLUSolver, {"max_supernode": 32}),
            ("pangulu", PanguLUSolver, {"block_size": 64}),
        ):
            run = cls(a, scheduler="serial", gpu=A100_40GB,
                      **kwargs).factorize()
            base = run.schedule.total_time
            trojan = resimulate(
                run, "trojan", A100_40GB,
                merge_schur=solver_name == "superlu").total_time
            results[solver_name].append((entry.name, base, trojan))

    rows = []
    summaries = {}
    for solver_name, data in results.items():
        summary = speedup_summary([d[1] for d in data],
                                  [d[2] for d in data])
        summaries[solver_name] = summary
        sp = summary["speedups"]
        deciles = np.percentile(sp, [10, 50, 90])
        rows.append([
            solver_name, len(data),
            round(summary["geomean"], 2), round(summary["max"], 1),
            round(summary["min"], 2), summary["regressions"],
            round(float(deciles[0]), 2), round(float(deciles[1]), 2),
            round(float(deciles[2]), 2),
        ])
    emit("fig10_sweep200", format_table(
        ["solver", "matrices", "geomean speedup", "max", "min",
         "regressions", "p10", "median", "p90"],
        rows,
        title=f"Figure 10 — {SWEEP_COUNT}-matrix sweep on the A100 "
              "(paper: SuperLU 5.47x geomean / 418.79x max, "
              "PanguLU 2.84x / 5.59x)",
    ))

    # headline shapes: both solvers gain; SuperLU gains far more
    assert summaries["superlu"]["geomean"] > summaries["pangulu"]["geomean"]
    assert summaries["pangulu"]["geomean"] > 1.5
    assert summaries["superlu"]["max"] > summaries["pangulu"]["max"]
    # Trojan Horse should essentially never lose
    total = len(results["superlu"]) + len(results["pangulu"])
    regressions = (summaries["superlu"]["regressions"]
                   + summaries["pangulu"]["regressions"])
    assert regressions <= 0.02 * total

    # benchmark payload: one sweep element end to end
    entry = collection[0]
    benchmark.pedantic(
        lambda: PanguLUSolver(entry.matrix, scheduler="trojan",
                              gpu=A100_40GB).factorize(),
        rounds=1, iterations=1)

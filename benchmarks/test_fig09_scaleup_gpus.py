"""Figure 9 — per-matrix performance on the RTX 5060 Ti vs RTX 5090.

Each bar in the paper's figure is one solver variant; the full bar is
RTX 5090 performance and the lower segment RTX 5060 Ti.  Headline shape:
without Trojan Horse the stronger GPU barely helps (SuperLU 1.09×,
PanguLU 1.56× average); with it, the gap widens (1.26× / 3.22×) toward
the hardware's peak ratio — aggregation is what lets a bigger GPU matter.
"""

import numpy as np

from repro.analysis import format_table, geomean
from repro.gpusim import RTX5060TI, RTX5090
from repro.matrices import SCALE_UP_NAMES
from repro.solvers import resimulate


def test_fig09_scaleup_gpus(runs, emit, benchmark):
    rows = []
    ratios = {("superlu", "serial"): [], ("superlu", "trojan"): [],
              ("pangulu", "serial"): [], ("pangulu", "trojan"): []}
    for solver in ("superlu", "pangulu"):
        for name in SCALE_UP_NAMES:
            _, run = runs(name, solver)
            for sched in ("serial", "trojan"):
                t_small = resimulate(run, sched, RTX5060TI).total_time
                t_big = resimulate(run, sched, RTX5090).total_time
                ratio = t_small / t_big
                ratios[(solver, sched)].append(ratio)
                label = solver + ("" if sched == "serial"
                                  else " + Trojan Horse")
                rows.append([label, name, t_small * 1e3, t_big * 1e3,
                             round(ratio, 2)])
    summary = {k: geomean(v) for k, v in ratios.items()}
    rows.append(["GEOMEAN superlu", "", "", "",
                 round(summary[("superlu", "serial")], 2)])
    rows.append(["GEOMEAN superlu+TH", "", "", "",
                 round(summary[("superlu", "trojan")], 2)])
    rows.append(["GEOMEAN pangulu", "", "", "",
                 round(summary[("pangulu", "serial")], 2)])
    rows.append(["GEOMEAN pangulu+TH", "", "", "",
                 round(summary[("pangulu", "trojan")], 2)])
    emit("fig09_scaleup_gpus", format_table(
        ["variant", "matrix", "5060Ti (ms)", "5090 (ms)", "5090 gain"],
        rows,
        title="Figure 9 — scale-up across GPUs (paper: TH amplifies the "
              "5090's advantage; PanguLU+TH approaches the peak ratio)",
    ))

    # shape assertions: Trojan Horse amplifies the stronger GPU's gain
    assert summary[("superlu", "trojan")] > summary[("superlu", "serial")]
    assert summary[("pangulu", "trojan")] > summary[("pangulu", "serial")]
    # and PanguLU+TH approaches the hardware ratio (peak 4.4x, BW 4.0x)
    assert summary[("pangulu", "trojan")] > 1.5

    _, run = runs("cage12", "pangulu")
    benchmark.pedantic(lambda: resimulate(run, "trojan", RTX5060TI),
                       rounds=3, iterations=1)

"""Ablation — fill-reducing ordering (the Figure-1 reordering phase).

Sparse direct solvers live or die by the ordering: it sets the fill, the
task count, and the DAG's parallel width.  This ablation factorises one
matrix under every ordering the library ships and reports fill, tasks and
the Trojan Horse gain — demonstrating that the scheduling layer composes
with (and is orthogonal to) the ordering choice.
"""

from repro.analysis import format_table
from repro.gpusim import RTX5090
from repro.matrices import paper_matrix
from repro.ordering import ORDERING_METHODS
from repro.solvers import PanguLUSolver, resimulate


def test_ablation_ordering(emit, benchmark):
    a = paper_matrix("c-71")
    rows = []
    fills = {}
    speedups = {}
    for method in ORDERING_METHODS:
        run = PanguLUSolver(a, ordering=method, scheduler="serial",
                            gpu=RTX5090).factorize()
        base = run.schedule.total_time
        trojan = resimulate(run, "trojan", RTX5090).total_time
        fills[method] = run.fill_nnz
        speedups[method] = base / trojan
        rows.append([method, run.fill_nnz, run.schedule.task_count,
                     base * 1e3, trojan * 1e3,
                     round(speedups[method], 2)])
    emit("ablation_ordering", format_table(
        ["ordering", "nnz(L+U)", "tasks", "baseline (ms)", "trojan (ms)",
         "TH speedup"],
        rows,
        title="Ablation — ordering choice on c-71 (PanguLU substrate)",
    ))
    # a fill-reducing ordering must beat natural order on fill
    assert min(fills["mindeg"], fills["nd"]) < fills["natural"]
    # the Trojan Horse helps under every ordering
    assert all(s > 1.0 for s in speedups.values())

    benchmark.pedantic(
        lambda: PanguLUSolver(a, ordering="mindeg",
                              scheduler="trojan").factorize(),
        rounds=1, iterations=1)

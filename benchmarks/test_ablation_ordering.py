"""Ablation — fill-reducing ordering (the Figure-1 reordering phase).

Sparse direct solvers live or die by the ordering: it sets the fill, the
task count, and the DAG's parallel width.  This ablation factorises one
matrix under every ordering the library ships and reports fill, tasks and
the Trojan Horse gain — demonstrating that the scheduling layer composes
with (and is orthogonal to) the ordering choice.

The ordering grid dispatches through :mod:`repro.sweep` (index-sharded,
REPRO_SWEEP_WORKERS processes), the same runner as the Figure-10 sweep.
"""

from repro.analysis import format_table
from repro.matrices import SuiteEntry, paper_matrix
from repro.ordering import ORDERING_METHODS
from repro.solvers import PanguLUSolver
from repro.sweep import SweepItem, default_workers, run_sweep


def test_ablation_ordering(emit, benchmark):
    a = paper_matrix("c-71")
    entry = SuiteEntry(name="c-71", kind="c-71", matrix=a)
    items = [
        SweepItem(index=i, entry=entry, solver="pangulu", gpu="rtx5090",
                  solver_kwargs=(("ordering", method),))
        for i, method in enumerate(ORDERING_METHODS)
    ]
    outcome = run_sweep(items, workers=default_workers(),
                        shard_key=lambda it: it.index)

    rows = []
    fills = {}
    speedups = {}
    for item, row in zip(items, outcome.rows):
        method = dict(item.solver_kwargs)["ordering"]
        base, trojan = row.base_time, row.time_for("trojan")
        fills[method] = row.fill_nnz
        speedups[method] = base / trojan
        rows.append([method, row.fill_nnz, row.tasks,
                     base * 1e3, trojan * 1e3,
                     round(speedups[method], 2)])
    emit("ablation_ordering", format_table(
        ["ordering", "nnz(L+U)", "tasks", "baseline (ms)", "trojan (ms)",
         "TH speedup"],
        rows,
        title="Ablation — ordering choice on c-71 (PanguLU substrate)",
    ))
    # a fill-reducing ordering must beat natural order on fill
    assert min(fills["mindeg"], fills["nd"]) < fills["natural"]
    # the Trojan Horse helps under every ordering
    assert all(s > 1.0 for s in speedups.values())

    benchmark.pedantic(
        lambda: PanguLUSolver(a, ordering="mindeg",
                              scheduler="trojan").factorize(),
        rounds=1, iterations=1)

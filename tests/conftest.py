"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices import circuit_like, poisson2d
from repro.sparse import CSRMatrix


@pytest.fixture
def rng():
    """Deterministic random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def random_sparse(rng):
    """A 40×40 unsymmetric random sparse CSR matrix with known dense twin."""
    dense = (rng.random((40, 40)) < 0.2) * rng.standard_normal((40, 40))
    return CSRMatrix.from_dense(dense), dense


@pytest.fixture
def small_spd():
    """A small diagonally-dominant Poisson matrix (n=64)."""
    return poisson2d(8)


@pytest.fixture
def medium_poisson():
    """A 256-unknown Poisson system for solver-level tests."""
    return poisson2d(16)


@pytest.fixture
def circuit_matrix():
    """An irregular circuit-like matrix (n=200) for scheduler stress."""
    return circuit_like(200, seed=42)

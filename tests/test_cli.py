"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io import write_matrix_market
from repro.matrices import poisson2d


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_factor_defaults(self):
        args = build_parser().parse_args(["factor", "--matrix", "c-71"])
        assert args.solver == "pangulu"
        assert args.scheduler == "trojan"
        assert args.gpu == "rtx5090"

    def test_rejects_unknown_matrix(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["factor", "--matrix", "nope"])

    def test_rejects_unknown_gpu(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["factor", "--matrix", "c-71", "--gpu", "v100"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "cage12" in out
        assert "RTX 5090" in out

    def test_factor_with_solve(self, capsys):
        rc = main(["factor", "--matrix", "c-71", "--scale", "0.5",
                   "--solver", "pangulu", "--scheduler", "trojan",
                   "--solve"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "solve check" in out

    def test_factor_from_mtx_file(self, tmp_path, capsys):
        path = tmp_path / "sys.mtx"
        write_matrix_market(path, poisson2d(10))
        rc = main(["factor", "--mtx", str(path), "--scheduler", "serial"])
        assert rc == 0
        assert "serial" in capsys.readouterr().out

    def test_factor_requires_matrix_source(self):
        with pytest.raises(SystemExit):
            main(["factor"])

    def test_sptrsv(self, capsys):
        rc = main(["sptrsv", "--matrix", "c-71", "--scale", "0.5",
                   "--nrhs", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "oracle bitwise" in out
        assert "yes" in out
        assert "L-solve" in out and "U-solve" in out
        assert "levelset" in out and "trojan" in out

    def test_sptrsv_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sptrsv", "--matrix", "c-71",
                 "--solve-scheduler", "fifo"])

    def test_compare(self, capsys):
        rc = main(["compare", "--matrix", "c-71", "--scale", "0.5",
                   "--solver", "pangulu"])
        assert rc == 0
        out = capsys.readouterr().out
        for sched in ("serial", "levelbatch", "streams", "trojan"):
            assert sched in out

    def test_compare_rejects_cholesky(self):
        with pytest.raises(SystemExit):
            main(["compare", "--matrix", "c-71", "--solver", "cholesky"])

    def test_scaleout(self, capsys):
        rc = main(["scaleout", "--matrix", "c-71", "--scale", "0.5",
                   "--cluster", "mi50", "--policy", "trojan",
                   "--gpus", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MI50" in out

    def test_cholesky_via_cli(self, tmp_path, capsys):
        path = tmp_path / "spd.mtx"
        write_matrix_market(path, poisson2d(8))
        rc = main(["factor", "--mtx", str(path), "--solver", "cholesky",
                   "--scheduler", "trojan"])
        assert rc == 0
        assert "cholesky" in capsys.readouterr().out

"""Integration tests for the solver substrates: numeric correctness and
scheduler equivalence."""

import numpy as np
import pytest

from repro.gpusim import RTX5060TI, RTX5090
from repro.matrices import circuit_like, paper_matrix, poisson2d
from repro.solvers import (
    CPUSolver,
    PanguLUSolver,
    PaStiXSolver,
    SuperLUSolver,
    resimulate,
)
from repro.solvers.cpu import CPU_PROFILES
from repro.sparse import matvec, spgemm, permute_symmetric


def _check_factors(result, a):
    """L @ U must equal the permuted input matrix."""
    b = permute_symmetric(a, result.perm)
    lu = spgemm(result.L, result.U)
    diff = np.abs(lu.to_dense() - b.to_dense()).max()
    scale = np.abs(b.to_dense()).max()
    assert diff <= 1e-10 * scale, f"‖LU − PAPᵀ‖∞ = {diff}"


SOLVERS = [
    ("pangulu", lambda a, **kw: PanguLUSolver(a, block_size=16, **kw)),
    ("superlu", lambda a, **kw: SuperLUSolver(a, max_supernode=8, **kw)),
    ("pastix", lambda a, **kw: PaStiXSolver(a, max_supernode=8, **kw)),
]


@pytest.mark.parametrize("name,make", SOLVERS)
class TestFactorisationCorrectness:
    def test_factors_reconstruct_matrix(self, name, make, medium_poisson):
        result = make(medium_poisson).factorize()
        _check_factors(result, medium_poisson)

    def test_solve_residual(self, name, make, medium_poisson, rng):
        a = medium_poisson
        x_true = rng.standard_normal(a.nrows)
        b = matvec(a, x_true)
        result = make(a).factorize()
        x = result.solve(b)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-10
        assert result.residual(a, b, x) < 1e-10

    def test_irregular_matrix(self, name, make, circuit_matrix, rng):
        b = rng.standard_normal(circuit_matrix.nrows)
        result = make(circuit_matrix).factorize()
        x = result.solve(b)
        assert result.residual(circuit_matrix, b, x) < 1e-10

    def test_phase_times_recorded(self, name, make, medium_poisson):
        result = make(medium_poisson).factorize()
        assert set(result.phase_seconds) == {"reorder", "symbolic", "numeric"}
        assert all(v >= 0 for v in result.phase_seconds.values())

    def test_fill_nnz_at_least_input(self, name, make, medium_poisson):
        result = make(medium_poisson).factorize()
        assert result.fill_nnz >= medium_poisson.nnz


class TestSchedulerEquivalence:
    """Every scheduler must produce the same factors (§4.3 invariant)."""

    @pytest.mark.parametrize("scheduler", ["serial", "trojan", "streams",
                                           "levelbatch"])
    def test_pangulu_factors_identical(self, scheduler, medium_poisson):
        base = PanguLUSolver(medium_poisson, block_size=16,
                             scheduler="serial").factorize()
        other = PanguLUSolver(medium_poisson, block_size=16,
                              scheduler=scheduler).factorize()
        assert np.allclose(base.L.to_dense(), other.L.to_dense())
        assert np.allclose(base.U.to_dense(), other.U.to_dense())

    def test_superlu_trojan_equals_serial(self, medium_poisson):
        base = SuperLUSolver(medium_poisson, max_supernode=8,
                             scheduler="serial").factorize()
        th = SuperLUSolver(medium_poisson, max_supernode=8,
                           scheduler="trojan").factorize()
        assert np.allclose(base.L.to_dense(), th.L.to_dense())
        assert np.allclose(base.U.to_dense(), th.U.to_dense())

    def test_flop_totals_identical_across_schedulers(self, medium_poisson):
        runs = [
            PanguLUSolver(medium_poisson, block_size=16,
                          scheduler=s).factorize().schedule.total_flops
            for s in ("serial", "trojan", "streams")
        ]
        assert len(set(runs)) == 1


class TestResimulate:
    def test_replay_matches_fresh_run(self, medium_poisson):
        base = PanguLUSolver(medium_poisson, block_size=16,
                             scheduler="serial", gpu=RTX5090).factorize()
        replayed = resimulate(base, "serial", RTX5090)
        assert replayed.kernel_count == base.schedule.kernel_count
        assert replayed.total_time == pytest.approx(base.schedule.total_time)

    def test_replay_other_gpu_differs(self, medium_poisson):
        base = PanguLUSolver(medium_poisson, block_size=16,
                             scheduler="trojan", gpu=RTX5090).factorize()
        slow = resimulate(base, "trojan", RTX5060TI)
        assert slow.device == "RTX 5060 Ti"

    def test_replay_trojan_faster_than_serial(self, circuit_matrix):
        base = PanguLUSolver(circuit_matrix, block_size=16,
                             scheduler="serial").factorize()
        th = resimulate(base, "trojan", RTX5090)
        assert th.total_time < base.schedule.total_time


class TestSolverBehaviour:
    def test_superlu_many_more_tasks_than_pangulu(self):
        # Table 5 vs Table 6: supernodal task counts dwarf block counts
        a = paper_matrix("c-71", scale=0.5)
        slu = SuperLUSolver(a, scheduler="serial").factorize()
        plu = PanguLUSolver(a, scheduler="serial").factorize()
        assert slu.schedule.task_count > 5 * plu.schedule.task_count

    def test_pangulu_invalid_block_size(self, medium_poisson):
        with pytest.raises(ValueError):
            PanguLUSolver(medium_poisson, block_size=0)

    def test_solver_solve_autofactorizes(self, medium_poisson, rng):
        s = PanguLUSolver(medium_poisson, block_size=16)
        b = rng.standard_normal(medium_poisson.nrows)
        x = s.solve(b)
        assert s.result is not None
        assert s.result.residual(medium_poisson, b, x) < 1e-10

    def test_pastix_dmdas_charges_runtime_overhead(self, medium_poisson):
        r = PaStiXSolver(medium_poisson, max_supernode=8).factorize()
        serial = SuperLUSolver(medium_poisson, max_supernode=8,
                               scheduler="serial").factorize()
        # same per-task launches, but dmdas pays StarPU management on top
        assert (r.schedule.sched_overhead / r.schedule.task_count
                > serial.schedule.sched_overhead / serial.schedule.task_count)


class TestCPUSolvers:
    @pytest.mark.parametrize("profile", sorted(CPU_PROFILES))
    def test_cpu_factors_correct(self, profile, medium_poisson, rng):
        b = rng.standard_normal(medium_poisson.nrows)
        solver = CPUSolver(medium_poisson, profile)
        result = solver.factorize()
        x = solver.solve(b)
        r = matvec(medium_poisson, x) - b
        assert np.linalg.norm(r) / np.linalg.norm(b) < 1e-10
        assert result.numeric_seconds > 0
        assert result.gflops > 0

    def test_unknown_profile_rejected(self, medium_poisson):
        with pytest.raises(ValueError):
            CPUSolver(medium_poisson, "pardiso")

    def test_mumps_faster_than_superlu_cpu(self, circuit_matrix):
        # higher per-core efficiency → lower time in the compute-dominated
        # regime (identical DAG + work, only the profile differs)
        from repro.gpusim import XEON_6462C
        from repro.solvers import cpu_makespan, scale_stats

        run = CPUSolver(circuit_matrix, "superlu_cpu").factorize()
        scaled = scale_stats(run.stats, flop_factor=512.0)
        t_slu = cpu_makespan(run.dag, scaled, XEON_6462C,
                             CPU_PROFILES["superlu_cpu"][1])
        t_mumps = cpu_makespan(run.dag, scaled, XEON_6462C,
                               CPU_PROFILES["mumps"][1])
        assert t_mumps < t_slu

    def test_cpu_beats_baseline_gpu_loses_to_trojan(self):
        # the Table-7 regime: per-task work extrapolated to paper scale
        # (block 512 vs our 64 → 512× flops per task, DESIGN.md §3)
        from repro.gpusim import H100_SXM
        from repro.solvers import cpu_makespan, scale_stats
        from repro.solvers.cpu import CPU_PROFILES

        a = paper_matrix("c-71", scale=0.7)
        gpu_base = SuperLUSolver(a, scheduler="serial", gpu=H100_SXM).factorize()
        scaled = scale_stats(gpu_base.stats, flop_factor=512.0)
        t_base = resimulate(gpu_base, "serial", H100_SXM, stats=scaled)
        t_th = resimulate(gpu_base, "trojan", H100_SXM, stats=scaled)
        _, eff = CPU_PROFILES["superlu_cpu"]
        from repro.gpusim import XEON_6462C

        t_cpu = cpu_makespan(gpu_base.dag, scaled, XEON_6462C, eff)
        assert t_cpu < t_base.total_time      # CPU beats launch-bound GPU
        assert t_th.total_time < t_cpu        # Trojan Horse GPU wins overall

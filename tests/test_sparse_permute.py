"""Unit tests for permutation utilities."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    inverse_permutation,
    permute_cols,
    permute_rows,
    permute_symmetric,
)


class TestInverse:
    def test_roundtrip(self, rng):
        p = rng.permutation(20)
        inv = inverse_permutation(p)
        assert np.array_equal(p[inv], np.arange(20))
        assert np.array_equal(inv[p], np.arange(20))

    def test_identity(self):
        p = np.arange(5)
        assert np.array_equal(inverse_permutation(p), p)


class TestPermutations:
    def test_rows_matches_numpy(self, random_sparse, rng):
        a, dense = random_sparse
        p = rng.permutation(40)
        assert np.allclose(permute_rows(a, p).to_dense(), dense[p])

    def test_cols_matches_numpy(self, random_sparse, rng):
        a, dense = random_sparse
        p = rng.permutation(40)
        assert np.allclose(permute_cols(a, p).to_dense(), dense[:, p])

    def test_symmetric_matches_numpy(self, random_sparse, rng):
        a, dense = random_sparse
        p = rng.permutation(40)
        assert np.allclose(permute_symmetric(a, p).to_dense(),
                           dense[np.ix_(p, p)])

    def test_identity_permutation_is_noop(self, random_sparse):
        a, dense = random_sparse
        p = np.arange(40)
        assert np.allclose(permute_symmetric(a, p).to_dense(), dense)

    def test_result_is_canonical(self, random_sparse, rng):
        a, _ = random_sparse
        p = rng.permutation(40)
        permute_symmetric(a, p).check()
        permute_rows(a, p).check()
        permute_cols(a, p).check()

    def test_preserves_diagonal_dominance(self, rng):
        from repro.matrices import circuit_like

        a = circuit_like(50, seed=1)
        p = rng.permutation(50)
        b = permute_symmetric(a, p)
        d = b.to_dense()
        off = np.abs(d).sum(axis=1) - np.abs(np.diag(d))
        assert np.all(np.abs(np.diag(d)) > off)

    def test_invalid_length_rejected(self, random_sparse):
        a, _ = random_sparse
        with pytest.raises(ValueError):
            permute_rows(a, np.arange(39))

    def test_non_permutation_rejected(self, random_sparse):
        a, _ = random_sparse
        bad = np.zeros(40, dtype=int)
        with pytest.raises(ValueError):
            permute_rows(a, bad)

    def test_symmetric_requires_square(self):
        a = CSRMatrix.empty((3, 4))
        with pytest.raises(ValueError):
            permute_symmetric(a, np.arange(3))

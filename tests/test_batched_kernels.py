"""Differential suite: batched kernel groups vs the per-task oracle.

The batched execution path (``REPRO_BATCH_KERNELS``, stacked GEMMs and
multi-RHS triangular solves over the pooled tile arena) must be
indistinguishable from the per-task path in everything except speed:
bit-identical L/U factors, identical per-task ``KernelStats``, and
identical per-launch batch records — across dense and sparse tiles,
ragged shape classes, single-task groups and atomic write conflicts.
"""

import types

import numpy as np
import pytest

from repro.core.arena import ScheduleArena
from repro.core.executor import Executor, ReplayBackend
from repro.core.task import TaskType
from repro.gpusim import GPUCostModel, RTX5090
from repro.kernels.batched import batch_kernels_enabled
from repro.kernels.tilekernels import KernelStats
from repro.matrices import circuit_like, poisson2d, tridiagonal
from repro.ordering import compute_ordering
from repro.solvers import (
    NumericBackend,
    NumericEngine,
    PanguLUSolver,
    SuperLUSolver,
    TileArena,
    TileViews,
)
from repro.sparse import permute_symmetric, uniform_partition


def _assert_same_csr(x, y):
    assert np.array_equal(x.indptr, y.indptr)
    assert np.array_equal(x.indices, y.indices)
    assert np.array_equal(x.data, y.data)


def _assert_same_run(on, off):
    """Factors, per-task stats and per-launch records must match bitwise."""
    _assert_same_csr(on.L, off.L)
    _assert_same_csr(on.U, off.U)
    assert on.stats == off.stats
    batches_on = [(b.flops, b.bytes, b.n_tasks, b.task_ids)
                  for b in on.schedule.batches]
    batches_off = [(b.flops, b.bytes, b.n_tasks, b.task_ids)
                   for b in off.schedule.batches]
    assert batches_on == batches_off


def _pair(solver_cls, a, **kwargs):
    on = solver_cls(a, batch_kernels=True, analysis_cache=None,
                    **kwargs).factorize()
    off = solver_cls(a, batch_kernels=False, analysis_cache=None,
                     **kwargs).factorize()
    return on, off


class TestDifferentialFactorisation:
    @pytest.mark.parametrize("scheduler", ["trojan", "levelbatch", "serial"])
    @pytest.mark.parametrize("block", [8, 16])
    def test_pangulu_sparse_tiles(self, scheduler, block):
        a = poisson2d(12)
        on, off = _pair(PanguLUSolver, a, block_size=block,
                        scheduler=scheduler)
        _assert_same_run(on, off)

    @pytest.mark.parametrize("scheduler", ["trojan", "levelbatch"])
    def test_pangulu_circuit_matrix(self, scheduler):
        a = circuit_like(180, seed=3)
        on, off = _pair(PanguLUSolver, a, block_size=16, scheduler=scheduler)
        _assert_same_run(on, off)

    @pytest.mark.parametrize("merge_schur", [False, True])
    def test_superlu_dense_tiles(self, merge_schur):
        a = poisson2d(12)
        on, off = _pair(SuperLUSolver, a, merge_schur=merge_schur,
                        scheduler="trojan", max_supernode=8)
        _assert_same_run(on, off)

    def test_ragged_shape_classes(self):
        # n = 81 with block 8: the trailing 1-wide block forces ragged
        # TSTRF/GEESM/SSSSM groups alongside the full 8x8 classes
        a = poisson2d(9)
        on, off = _pair(PanguLUSolver, a, block_size=8, scheduler="trojan")
        _assert_same_run(on, off)

    def test_single_task_groups(self):
        # tridiagonal with tiny blocks: most launches hold one task, the
        # short-circuit path
        a = tridiagonal(6)
        on, off = _pair(PanguLUSolver, a, block_size=2, scheduler="trojan")
        _assert_same_run(on, off)

    def test_solutions_match(self, rng):
        a = poisson2d(12)
        b = rng.standard_normal(a.nrows)
        on, off = _pair(PanguLUSolver, a, block_size=16, scheduler="trojan")
        assert np.array_equal(on.solve(b), off.solve(b))


def _factor_with_conflict_batch(batch_kernels: bool):
    """Drive an engine so every Schur update of the last diagonal tile
    lands in ONE launch — a genuine in-batch write conflict (atomic)."""
    a = poisson2d(8)
    perm = compute_ordering(a, "mindeg")
    permuted = permute_symmetric(a, perm)
    part = uniform_partition(a.nrows, 8)
    engine = NumericEngine(permuted, part, sparse_tiles=True,
                           batch_kernels=batch_kernels)
    backend = NumericBackend(engine)
    execu = Executor(GPUCostModel(RTX5090), backend)
    arena = ScheduleArena(engine.dag)
    arrays = arena.arrays
    last = part.nblocks - 1
    conflict = np.flatnonzero(
        (arrays.type_code == int(TaskType.SSSSM))
        & (arrays.i == last) & (arrays.j == last)
    )
    assert conflict.size >= 2, "test matrix must produce a real conflict"
    deferred = set(conflict.tolist())
    deferred.update(np.flatnonzero(
        (arrays.type_code == int(TaskType.GETRF)) & (arrays.k == last)
    ).tolist())
    ready = set(arena.initial_ready().tolist())
    records = []
    while True:
        torun = sorted(ready - deferred)
        if not torun:
            break
        for tid in torun:
            batch = np.array([tid], dtype=np.int64)
            records.append(execu.run_batch_ids(batch, 0.0, arena))
            ready.discard(tid)
            ready.update(arena.complete(batch).tolist())
    assert set(conflict.tolist()) <= ready, "conflict SSSSMs must be co-ready"
    batch = np.sort(conflict)
    records.append(execu.run_batch_ids(batch, 0.0, arena))
    ready.difference_update(batch.tolist())
    ready.update(arena.complete(batch).tolist())
    for tid in sorted(ready):
        one = np.array([tid], dtype=np.int64)
        records.append(execu.run_batch_ids(one, 0.0, arena))
        arena.complete(one)
    return engine, backend, records


class TestAtomicConflicts:
    def test_conflict_batch_is_bit_identical(self):
        eng_on, back_on, rec_on = _factor_with_conflict_batch(True)
        eng_off, back_off, rec_off = _factor_with_conflict_batch(False)
        l_on, u_on = eng_on.extract_factors()
        l_off, u_off = eng_off.extract_factors()
        _assert_same_csr(l_on, l_off)
        _assert_same_csr(u_on, u_off)
        assert back_on.stats == back_off.stats
        assert [(r.flops, r.bytes, r.task_ids) for r in rec_on] \
            == [(r.flops, r.bytes, r.task_ids) for r in rec_off]

    def test_atomic_accounting_charges_extra_bytes(self):
        # the conflict launch must cost more bytes than the same tasks
        # would serially (atomic reads the target once more per task)
        engine, backend, _ = _factor_with_conflict_batch(True)
        serial = PanguLUSolver(poisson2d(8), block_size=8,
                               scheduler="serial",
                               analysis_cache=None).factorize()
        assert sum(s.bytes for s in backend.stats.values()) \
            > sum(s.bytes for s in serial.stats.values())


class TestKnob:
    def test_env_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_KERNELS", "0")
        assert not batch_kernels_enabled()
        engine = NumericEngine(tridiagonal(6), uniform_partition(6, 2))
        assert engine.batch_kernels is False

    def test_env_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_KERNELS", raising=False)
        assert batch_kernels_enabled()
        engine = NumericEngine(tridiagonal(6), uniform_partition(6, 2))
        assert engine.batch_kernels is True

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_KERNELS", "1")
        engine = NumericEngine(tridiagonal(6), uniform_partition(6, 2),
                               batch_kernels=False)
        assert engine.batch_kernels is False


class TestTileArena:
    def test_views_match_block_fill(self):
        engine = NumericEngine(poisson2d(8), uniform_partition(64, 8))
        bi, bj = np.nonzero(engine.bfill)
        assert set(zip(bi.tolist(), bj.tolist())) == set(engine.tiles)
        assert len(engine.tiles) == int(engine.bfill.sum())
        assert isinstance(engine.tiles, TileViews)

    def test_missing_tile_raises(self):
        engine = NumericEngine(poisson2d(8), uniform_partition(64, 8))
        missing = next(
            (int(i), int(j)) for i, j in np.ndindex(*engine.bfill.shape)
            if not engine.bfill[i, j]
        )
        with pytest.raises(KeyError):
            engine.tiles[missing]
        assert missing not in engine.tiles
        assert "nope" not in engine.tiles

    def test_stamp_outside_fill_raises(self):
        a = tridiagonal(6)
        part = uniform_partition(6, 2)
        diag_only = np.eye(part.nblocks, dtype=bool)
        arena = TileArena(part, diag_only)
        with pytest.raises(AssertionError, match="outside predicted"):
            arena.stamp(a)

    def test_restamp_matches_fresh_engine(self):
        a = poisson2d(8)
        engine = NumericEngine(a, uniform_partition(64, 8))
        scaled = type(a)(a.shape, a.indptr.copy(), a.indices.copy(),
                         a.data * 2.0)
        engine.reset_values(scaled)
        fresh = NumericEngine(scaled, uniform_partition(64, 8))
        for key in fresh.tiles:
            assert np.array_equal(engine.tiles[key], fresh.tiles[key])

    def test_views_are_writable_pool_storage(self):
        engine = NumericEngine(poisson2d(8), uniform_partition(64, 8))
        key = next(iter(engine.tiles))
        engine.tiles[key][0, 0] = 123.0
        cls, slot = engine.arena.locate(np.array([key[0]]),
                                        np.array([key[1]]))
        assert engine.arena.pools[int(cls[0])][int(slot[0])][0, 0] == 123.0


class TestReplayRebuild:
    @staticmethod
    def _backend(n_tasks=100):
        stats = {tid: KernelStats(flops=tid + 1, bytes=10 * tid + 1)
                 for tid in range(n_tasks)}
        return ReplayBackend(stats), stats

    def test_shared_backend_does_not_thrash(self):
        # two engines of different DAG sizes alternating on one backend:
        # the gather arrays grow once per size increase, never shrink or
        # rebuild on the way back down
        backend, stats = self._backend(100)
        small = types.SimpleNamespace(nnz=np.zeros(40))
        large = types.SimpleNamespace(nnz=np.zeros(100))
        tids_small = np.arange(10, dtype=np.int64)
        tids_large = np.arange(90, 100, dtype=np.int64)
        atomic = np.zeros(10, dtype=bool)
        for _ in range(5):
            backend.batch_stats(tids_small, atomic, small)
            backend.batch_stats(tids_large, atomic, large)
        assert backend.rebuilds == 2  # one per distinct growth, not 10

    def test_incremental_growth_is_correct(self):
        backend, stats = self._backend(100)
        atomic = np.zeros(5, dtype=bool)
        for size in (20, 60, 100):
            arrays = types.SimpleNamespace(nnz=np.zeros(size))
            tids = np.arange(size - 5, size, dtype=np.int64)
            flops, nbytes = backend.batch_stats(tids, atomic, arrays)
            assert flops == sum(stats[int(t)].flops for t in tids)
            assert nbytes == sum(stats[int(t)].bytes for t in tids)
        assert backend.rebuilds == 3

    def test_missing_tid_still_raises(self):
        backend, _ = self._backend(10)
        arrays = types.SimpleNamespace(nnz=np.zeros(20))
        with pytest.raises(KeyError):
            backend.batch_stats(np.array([15]), np.zeros(1, dtype=bool),
                                arrays)

"""ScheduleVerifier: adversarial schedules caught with the right codes.

A real block DAG (poisson 16², block 8) scheduled by the trojan policy
is the clean baseline; every test then breaks it in one specific way and
asserts the verifier reports exactly that violation class.  Small
synthetic DAGs cover the hazard matrix precisely (atomic SSSSM pair
legal, GETRF+SSSSM pair illegal, read-vs-write illegal).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import build_block_dag, make_scheduler
from repro.core.dag import TaskDAG
from repro.core.executor import EstimateBackend
from repro.core.staticanalysis import validate_schedule
from repro.core.task import Task, TaskType
from repro.gpusim import GPUCostModel, RTX5090
from repro.matrices import poisson2d
from repro.sparse import uniform_partition
from repro.symbolic import block_fill
from repro.verify import report as rep
from repro.verify.hazards import batch_atomic_flags
from repro.verify.schedule import ScheduleVerifier, verify_schedule


@pytest.fixture(scope="module")
def dag():
    a = poisson2d(16)
    part = uniform_partition(a.nrows, 8)
    return build_block_dag(block_fill(a, part), part)


@pytest.fixture(scope="module")
def batches(dag):
    result = make_scheduler("trojan", dag, EstimateBackend(),
                            GPUCostModel(RTX5090)).run()
    return [sorted(int(t) for t in b.task_ids) for b in result.batches]


def _synthetic_dag(tasks, edges=()):
    """A hand-built DAG over an 8×8 tile grid."""
    successors = [[] for _ in tasks]
    pred_count = np.zeros(len(tasks), dtype=np.int64)
    for u, v in edges:
        successors[u].append(v)
        pred_count[v] += 1
    return TaskDAG(tasks=tasks, pred_count=pred_count,
                   successors=successors,
                   part=uniform_partition(8 * 16, 16))


def _task(tid, ttype, k, i, j):
    return Task(tid=tid, type=ttype, k=k, i=i, j=j,
                rows=16, cols=16, nnz=256, flops_est=10, bytes_est=80)


class TestCleanSchedules:
    def test_trojan_schedule_verifies(self, dag, batches):
        report = verify_schedule(dag, batches, gpu=RTX5090)
        assert report.ok, report.describe()
        assert set(report.checks) == {"cycles", "completeness",
                                      "dependencies", "hazards", "capacity"}

    def test_timed_records_verify(self, dag):
        result = make_scheduler("trojan", dag, EstimateBackend(),
                                GPUCostModel(RTX5090)).run()
        assert verify_schedule(dag, result.batches, gpu=RTX5090).ok


class TestAdversarialSchedules:
    def test_reversed_dependency(self, dag, batches):
        report = verify_schedule(dag, batches[::-1])
        assert rep.DEP_ORDER in report.codes()
        v = report.by_code(rep.DEP_ORDER)[0]
        assert len(v.task_ids) == 2 and len(v.batch_ids) == 2

    def test_dropped_task(self, dag, batches):
        report = verify_schedule(dag, batches[:-1])
        assert rep.TASK_MISSING in report.codes()
        missing = report.by_code(rep.TASK_MISSING)[0]
        assert set(missing.task_ids) == set(batches[-1])

    def test_duplicate_task(self, dag, batches):
        report = verify_schedule(dag, batches + [batches[0]])
        assert rep.TASK_DUPLICATE in report.codes()

    def test_unknown_task(self, dag, batches):
        report = verify_schedule(dag, batches + [[dag.n_tasks + 7]])
        assert rep.TASK_UNKNOWN in report.codes()

    def test_write_conflict_pair(self, dag, batches):
        from repro.verify.cases import MUTATIONS
        mutated = MUTATIONS["co_schedule_write_conflict"](batches, dag)
        report = verify_schedule(dag, mutated)
        assert rep.HAZARD_WW in report.codes()

    def test_over_budget_batch(self, dag, batches):
        merged = [[t for b in batches for t in b]]
        report = verify_schedule(dag, merged, gpu=RTX5090)
        assert rep.CAPACITY_BLOCKS in report.codes()

    def test_all_violations_reported_at_once(self, dag, batches):
        # drop a batch AND reverse: both violation classes in one report
        report = validate_schedule(dag, batches[:-1][::-1], strict=False)
        assert rep.TASK_MISSING in report.codes()
        assert rep.DEP_ORDER in report.codes()
        assert len(report.violations) > 1

    def test_strict_raises_with_legacy_messages(self, dag, batches):
        with pytest.raises(AssertionError, match="never executed"):
            validate_schedule(dag, batches[:-1])
        with pytest.raises(AssertionError, match="twice"):
            validate_schedule(dag, batches + [batches[0]])
        with pytest.raises(AssertionError, match="before"):
            validate_schedule(dag, batches[::-1])


class TestHazardMatrix:
    def test_atomic_ssssm_pair_is_legal(self):
        # two Schur updates accumulating into one tile: the batched
        # kernels flag them atomic and apply serially — not a race
        tasks = [_task(0, TaskType.SSSSM, 0, 3, 4),
                 _task(1, TaskType.SSSSM, 1, 3, 4)]
        report = verify_schedule(_synthetic_dag(tasks), [[0, 1]])
        assert report.ok, report.describe()

    def test_getrf_ssssm_same_tile_is_ww(self):
        tasks = [_task(0, TaskType.GETRF, 2, 2, 2),
                 _task(1, TaskType.SSSSM, 0, 2, 2)]
        report = verify_schedule(_synthetic_dag(tasks), [[0, 1]])
        assert rep.HAZARD_WW in report.codes()
        assert set(report.by_code(rep.HAZARD_WW)[0].task_ids) == {0, 1}

    def test_read_of_batchmate_write_is_rw(self):
        # TSTRF rewrites tile (1,0) while an SSSSM in the same batch
        # reads it as its L panel
        tasks = [_task(0, TaskType.TSTRF, 0, 1, 0),
                 _task(1, TaskType.SSSSM, 0, 1, 2)]
        report = verify_schedule(_synthetic_dag(tasks), [[0, 1]])
        assert rep.HAZARD_RW in report.codes()
        v = report.by_code(rep.HAZARD_RW)[0]
        assert set(v.task_ids) == {0, 1}

    def test_separate_batches_are_legal(self):
        tasks = [_task(0, TaskType.TSTRF, 0, 1, 0),
                 _task(1, TaskType.SSSSM, 0, 1, 2)]
        dag = _synthetic_dag(tasks, edges=[(0, 1)])
        assert verify_schedule(dag, [[0], [1]]).ok

    def test_hazards_flag_disables_tile_checks(self):
        tasks = [_task(0, TaskType.GETRF, 2, 2, 2),
                 _task(1, TaskType.SSSSM, 0, 2, 2)]
        dag = _synthetic_dag(tasks)
        report = ScheduleVerifier(dag).verify_batches([[0, 1]],
                                                      hazards=False)
        assert report.ok
        assert "hazards" not in report.checks


class TestStructuralChecks:
    def test_cycle_detected(self):
        tasks = [_task(0, TaskType.GETRF, 0, 0, 0),
                 _task(1, TaskType.TSTRF, 0, 1, 0)]
        dag = _synthetic_dag(tasks, edges=[(0, 1), (1, 0)])
        report = verify_schedule(dag, [[0], [1]])
        assert rep.DAG_CYCLE in report.codes()

    def test_empty_dag_empty_schedule(self):
        dag = _synthetic_dag([])
        assert verify_schedule(dag, []).ok

    def test_empty_dag_nonempty_schedule(self):
        dag = _synthetic_dag([])
        report = verify_schedule(dag, [[0]])
        assert rep.TASK_UNKNOWN in report.codes()

    def test_capacity_singleton_exempt(self):
        # one oversized task alone is the Collector's own escape hatch
        tiny = SimpleNamespace(max_resident_blocks=4,
                               shared_mem_total_bytes=10**9)
        tasks = [_task(0, TaskType.GETRF, 0, 0, 0),
                 _task(1, TaskType.TSTRF, 0, 1, 0)]
        dag = _synthetic_dag(tasks, edges=[(0, 1)])
        assert verify_schedule(dag, [[0], [1]], gpu=tiny).ok
        merged = verify_schedule(dag, [[0, 1]], gpu=tiny)
        assert rep.CAPACITY_BLOCKS in merged.codes()


class TestHazardKernel:
    def test_flags_duplicates_only(self):
        target = np.asarray([5, -1, 5, 7, -1, 3])
        flags = batch_atomic_flags(target)
        assert flags.tolist() == [True, False, True, False, False, False]

    def test_out_buffer_reused(self):
        scratch = np.ones(16, dtype=bool)
        target = np.asarray([2, 2, -1])
        flags = batch_atomic_flags(target, out=scratch)
        assert flags.shape == (3,)
        assert flags.tolist() == [True, True, False]
        assert flags.base is scratch

"""Unit tests for the GPU/CPU cost model."""

import numpy as np
import pytest

from repro.gpusim import (
    A100_40GB,
    CPUCostModel,
    GPU_PRESETS,
    GPUCostModel,
    GPUSpec,
    H100_SXM,
    KernelLaunch,
    MI50,
    RTX5060TI,
    RTX5090,
    StreamSimulator,
    XEON_6462C,
)


class TestSpecs:
    def test_table1_values(self):
        # Table 1 — scale-up platforms
        assert RTX5060TI.fp64_gflops == 370.0
        assert RTX5060TI.mem_bw_gbs == 450.0
        assert RTX5060TI.memory_gb == 16.0
        assert RTX5090.fp64_gflops == 1640.0
        assert RTX5090.mem_bw_gbs == 1790.0
        assert A100_40GB.fp64_gflops == 9750.0
        assert A100_40GB.memory_gb == 40.0

    def test_table3_values(self):
        # Table 3 — scale-out platforms
        assert H100_SXM.fp64_gflops == 25610.0
        assert H100_SXM.memory_gb == 80.0
        assert MI50.fp64_gflops == 6710.0
        assert MI50.mem_bw_gbs == 1020.0

    def test_core_counts_match_paper(self):
        assert RTX5060TI.sm_count * 128 == 4608
        assert RTX5090.sm_count * 128 == 21760
        assert H100_SXM.sm_count * 128 == 14592
        assert MI50.sm_count * 64 == 3840

    def test_presets_lookup(self):
        assert set(GPU_PRESETS) == {"rtx5060ti", "rtx5090", "a100", "h100", "mi50"}

    def test_budget_properties(self):
        g = GPUSpec("toy", sm_count=10, fp64_gflops=100, mem_bw_gbs=100,
                    memory_gb=1, shared_mem_per_sm_kb=64, max_blocks_per_sm=4)
        assert g.max_resident_blocks == 40
        assert g.shared_mem_total_bytes == 10 * 64 * 1024

    def test_cpu_spec(self):
        assert XEON_6462C.cores == 32


class TestCostModel:
    def setup_method(self):
        self.model = GPUCostModel(RTX5090)

    def test_empty_launch_costs_overhead_only(self):
        t = self.model.launch_time(KernelLaunch())
        assert t == pytest.approx(RTX5090.launch_overhead_us * 1e-6)

    def test_occupancy_saturates_at_one(self):
        assert self.model.occupancy(10 ** 6) == 1.0
        assert self.model.occupancy(RTX5090.sm_count) == 1.0

    def test_occupancy_fractional(self):
        assert self.model.occupancy(17) == pytest.approx(17 / 170)

    def test_small_kernels_launch_bound(self):
        # a tiny task's time is dominated by the launch overhead
        small = KernelLaunch()
        small.add_task(cuda_blocks=2, flops=100, nbytes=800, shared_mem_bytes=0)
        t = self.model.launch_time(small)
        assert t < 2 * RTX5090.launch_overhead_us * 1e-6

    def test_batching_amortises_overhead(self):
        # 100 tiny tasks: batched must be far cheaper than separate
        single = KernelLaunch()
        single.add_task(2, 1000, 8000, 0)
        separate = 100 * self.model.launch_time(single)
        batch = KernelLaunch()
        for _ in range(100):
            batch.add_task(2, 1000, 8000, 0)
        assert self.model.launch_time(batch) < separate / 10

    def test_big_gpu_helps_only_at_occupancy(self):
        small_gpu = GPUCostModel(RTX5060TI)
        big_gpu = GPUCostModel(RTX5090)
        # single small kernel: launch-bound, no benefit from the big GPU
        tiny = KernelLaunch()
        tiny.add_task(2, 1000, 4000, 0)
        assert big_gpu.launch_time(tiny) == pytest.approx(
            small_gpu.launch_time(tiny), rel=0.2)
        # a saturating batch: big GPU wins roughly by the peak ratio
        big = KernelLaunch()
        for _ in range(400):
            big.add_task(4, 10 ** 6, 100, 0)
        ratio = small_gpu.launch_time(big) / big_gpu.launch_time(big)
        assert ratio > 2.0

    def test_memory_bound_branch(self):
        launch = KernelLaunch()
        launch.add_task(1000, 10, 10 ** 9, 0)  # tiny flops, huge bytes
        t = self.model.launch_time(launch)
        expect = 10 ** 9 / (RTX5090.mem_bw_gbs * 1e9)
        assert t >= expect

    def test_compute_time_excludes_overhead(self):
        launch = KernelLaunch()
        launch.add_task(400, 10 ** 8, 100, 0)
        assert self.model.compute_time(launch) == pytest.approx(
            self.model.launch_time(launch) - RTX5090.launch_overhead_us * 1e-6)

    def test_block_efficiency_bounds(self):
        assert 0.05 <= self.model.block_efficiency(1, 1) <= 1.0
        assert self.model.block_efficiency(10 ** 9, 1) == 1.0


class TestCPUModel:
    def test_no_launch_overhead_regime(self):
        cpu = CPUCostModel(XEON_6462C)
        gpu = GPUCostModel(RTX5090)
        # tiny task: CPU much cheaper than a GPU launch
        t_cpu = cpu.task_time(flops=1000, nbytes=4000)
        tiny = KernelLaunch(); tiny.add_task(2, 1000, 4000, 0)
        assert t_cpu < gpu.launch_time(tiny) / 5

    def test_monotone_in_flops(self):
        cpu = CPUCostModel(XEON_6462C)
        assert cpu.task_time(10 ** 9, 0) > cpu.task_time(10 ** 6, 0)


class TestStreams:
    def test_round_robin_overlap(self):
        model = GPUCostModel(RTX5090)
        sim = StreamSimulator(model, n_streams=4)
        launch = KernelLaunch()
        launch.add_task(2, 1000, 4000, 0)
        for _ in range(4):
            sim.launch(launch)
        # 4 overlapping kernels end at ~1 kernel duration, not 4
        assert sim.makespan == pytest.approx(model.launch_time(launch))

    def test_serialises_within_stream(self):
        model = GPUCostModel(RTX5090)
        sim = StreamSimulator(model, n_streams=1)
        launch = KernelLaunch()
        launch.add_task(2, 1000, 4000, 0)
        sim.launch(launch)
        sim.launch(launch)
        assert sim.makespan == pytest.approx(2 * model.launch_time(launch))

    def test_ready_time_respected(self):
        model = GPUCostModel(RTX5090)
        sim = StreamSimulator(model, n_streams=2)
        launch = KernelLaunch()
        launch.add_task(2, 1000, 4000, 0)
        end = sim.launch(launch, ready_time=1.0)
        assert end >= 1.0

    def test_reset(self):
        model = GPUCostModel(RTX5090)
        sim = StreamSimulator(model, n_streams=2)
        launch = KernelLaunch(); launch.add_task(2, 1000, 4000, 0)
        sim.launch(launch)
        sim.reset()
        assert sim.makespan == 0.0

    def test_rejects_zero_streams(self):
        with pytest.raises(ValueError):
            StreamSimulator(GPUCostModel(RTX5090), n_streams=0)

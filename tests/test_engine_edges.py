"""Edge cases and failure injection for the numeric engine and solvers."""

import numpy as np
import pytest

from repro.core.executor import EstimateBackend
from repro.core.baselines import make_scheduler
from repro.gpusim import GPUCostModel, RTX5090
from repro.matrices import poisson2d, tridiagonal
from repro.solvers import (
    NumericEngine,
    PanguLUSolver,
    SuperLUSolver,
    resimulate,
    scale_stats,
)
from repro.sparse import CSRMatrix, uniform_partition
from repro.sparse.blocking import partition_from_boundaries
from repro.kernels.tilekernels import KernelStats


class TestEngineConstruction:
    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            NumericEngine(CSRMatrix.empty((3, 4)), uniform_partition(3, 2))

    def test_rejects_partition_mismatch(self, small_spd):
        with pytest.raises(ValueError):
            NumericEngine(small_spd, uniform_partition(63, 8))

    def test_single_block_partition(self, small_spd):
        # the whole matrix as one tile: exactly one GETRF task
        engine = NumericEngine(small_spd, uniform_partition(64, 64))
        assert engine.dag.n_tasks == 1
        r = make_scheduler("trojan", engine.dag, EstimateBackend(),
                           GPUCostModel(RTX5090)).run()
        assert r.kernel_count == 1

    def test_one_by_one_blocks(self):
        # scalar tiles: the DAG degenerates to element-level elimination
        a = tridiagonal(6)
        engine = NumericEngine(a, uniform_partition(6, 1))
        engine.dag.validate()
        counts = engine.dag.counts_by_type()
        assert counts["GETRF"] == 6

    def test_irregular_partition(self, small_spd):
        part = partition_from_boundaries([0, 5, 20, 40, 64])
        engine = NumericEngine(small_spd, part, sparse_tiles=True)
        engine.dag.validate()

    def test_tiles_cover_block_fill(self, small_spd):
        engine = NumericEngine(small_spd, uniform_partition(64, 8))
        bi, bj = np.nonzero(engine.bfill)
        assert set(zip(bi.tolist(), bj.tolist())) == set(engine.tiles)


class TestFactorExtraction:
    def test_l_unit_diagonal(self, medium_poisson):
        run = PanguLUSolver(medium_poisson, block_size=16).factorize()
        assert np.allclose(run.L.diagonal(), 1.0)

    def test_u_upper_triangular(self, medium_poisson):
        run = PanguLUSolver(medium_poisson, block_size=16).factorize()
        rows = np.repeat(np.arange(run.U.nrows), run.U.row_lengths())
        assert np.all(rows <= run.U.indices)

    def test_l_lower_triangular(self, medium_poisson):
        run = PanguLUSolver(medium_poisson, block_size=16).factorize()
        rows = np.repeat(np.arange(run.L.nrows), run.L.row_lengths())
        assert np.all(rows >= run.L.indices)

    def test_factor_nnz_bounded_by_prediction(self, medium_poisson):
        run = PanguLUSolver(medium_poisson, block_size=16).factorize()
        assert run.L.nnz + run.U.nnz - run.L.nrows <= run.fill_nnz * 1.01


class TestFailureInjection:
    def test_zero_pivot_surfaces(self):
        # a structurally factorisable but numerically singular matrix must
        # fail loudly in the GETRF kernel, not corrupt silently
        dense = np.eye(8)
        dense[3, 3] = 0.0
        dense[3, 4] = dense[4, 3] = 1.0
        a = CSRMatrix.from_dense(dense)
        solver = PanguLUSolver(a, block_size=4, ordering="natural")
        with pytest.raises(ZeroDivisionError):
            solver.factorize()

    def test_replay_missing_stats_fails(self, medium_poisson):
        run = PanguLUSolver(medium_poisson, block_size=16).factorize()
        with pytest.raises(KeyError):
            resimulate(run, "trojan", RTX5090, stats={})

    def test_scale_stats_rejects_nonpositive(self, medium_poisson):
        run = PanguLUSolver(medium_poisson, block_size=16).factorize()
        with pytest.raises(ValueError):
            scale_stats(run.stats, 0.0)


class TestScaleStats:
    def test_flops_scaled_exactly(self):
        stats = {0: KernelStats(flops=100, bytes=1000)}
        out = scale_stats(stats, 8.0)
        assert out[0].flops == 800
        assert out[0].bytes == int(1000 * 8 ** (2 / 3))

    def test_custom_byte_factor(self):
        stats = {0: KernelStats(flops=100, bytes=1000)}
        out = scale_stats(stats, 8.0, byte_factor=2.0)
        assert out[0].bytes == 2000

    def test_original_untouched(self, medium_poisson):
        run = PanguLUSolver(medium_poisson, block_size=16).factorize()
        before = run.stats[0].flops
        scale_stats(run.stats, 512.0)
        assert run.stats[0].flops == before


class TestOrderingIntegration:
    @pytest.mark.parametrize("ordering", ["natural", "rcm", "mindeg", "nd"])
    def test_every_ordering_solves(self, ordering, rng):
        a = poisson2d(10)
        b = rng.standard_normal(a.nrows)
        solver = PanguLUSolver(a, block_size=16, ordering=ordering)
        run = solver.factorize()
        x = run.solve(b)
        assert run.residual(a, b, x) < 1e-10

    def test_superlu_supernodes_follow_ordering(self):
        a = poisson2d(10)
        r_nat = SuperLUSolver(a, ordering="natural",
                              max_supernode=8).factorize()
        r_md = SuperLUSolver(a, ordering="mindeg",
                             max_supernode=8).factorize()
        # different orderings → different fill → different task DAGs
        assert r_nat.fill_nnz != r_md.fill_nnz

"""Unit tests for the four scheduling policies on shared DAGs."""

import numpy as np
import pytest

from repro.core import (
    SCHEDULER_NAMES,
    build_block_dag,
    make_scheduler,
    parallelism_profile,
    dag_statistics,
)
from repro.core.executor import EstimateBackend
from repro.core.task import TaskType
from repro.gpusim import GPUCostModel, RTX5060TI, RTX5090
from repro.matrices import circuit_like, poisson2d
from repro.sparse import uniform_partition
from repro.symbolic import block_fill


@pytest.fixture(scope="module")
def dag():
    from repro.ordering import compute_ordering
    from repro.sparse import permute_symmetric

    a = circuit_like(180, seed=2)
    b = permute_symmetric(a, compute_ordering(a, "mindeg"))
    part = uniform_partition(180, 12)
    return build_block_dag(block_fill(b, part), part, sparse_tiles=True)


@pytest.fixture(scope="module")
def model():
    return GPUCostModel(RTX5090)


def _completion_order(result):
    order = {}
    for rank, batch in enumerate(sorted(result.batches,
                                        key=lambda b: b.t_end)):
        for tid in batch.task_ids:
            order[tid] = rank
    return order


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
class TestAllSchedulers:
    def test_every_task_executed_once(self, name, dag, model):
        r = make_scheduler(name, dag, EstimateBackend(), model).run()
        executed = [tid for b in r.batches for tid in b.task_ids]
        assert sorted(executed) == list(range(dag.n_tasks))

    def test_dependencies_respected(self, name, dag, model):
        r = make_scheduler(name, dag, EstimateBackend(), model).run()
        # map each task to its batch completion time
        end_of = {}
        start_of = {}
        for b in r.batches:
            for tid in b.task_ids:
                end_of[tid] = b.t_end
                start_of[tid] = b.t_start
        for t in range(dag.n_tasks):
            for s in dag.successors[t]:
                assert start_of[s] >= end_of[t] - 1e-12, (
                    f"{name}: task {s} started before dependency {t} finished"
                )

    def test_total_flops_invariant(self, name, dag, model):
        # "the total floating-point operations remain unchanged" (§4.3)
        r = make_scheduler(name, dag, EstimateBackend(), model).run()
        assert r.total_flops == sum(t.flops_est for t in dag.tasks)

    def test_positive_time(self, name, dag, model):
        r = make_scheduler(name, dag, EstimateBackend(), model).run()
        assert r.total_time > 0
        assert r.kernel_time > 0

    def test_deterministic(self, name, dag, model):
        r1 = make_scheduler(name, dag, EstimateBackend(), model).run()
        r2 = make_scheduler(name, dag, EstimateBackend(), model).run()
        assert r1.kernel_count == r2.kernel_count
        assert r1.total_time == pytest.approx(r2.total_time)


class TestShapes:
    """The performance relationships the paper's evaluation reports."""

    def test_trojan_beats_serial(self, dag, model):
        serial = make_scheduler("serial", dag, EstimateBackend(), model).run()
        trojan = make_scheduler("trojan", dag, EstimateBackend(), model).run()
        assert trojan.total_time < serial.total_time

    def test_trojan_beats_streams(self, dag, model):
        streams = make_scheduler("streams", dag, EstimateBackend(), model).run()
        trojan = make_scheduler("trojan", dag, EstimateBackend(), model).run()
        assert trojan.total_time < streams.total_time

    def test_streams_beat_serial(self, dag, model):
        serial = make_scheduler("serial", dag, EstimateBackend(), model).run()
        streams = make_scheduler("streams", dag, EstimateBackend(), model).run()
        assert streams.kernel_time < serial.kernel_time

    def test_trojan_no_worse_than_levelbatch(self, dag, model):
        lb = make_scheduler("levelbatch", dag, EstimateBackend(), model).run()
        trojan = make_scheduler("trojan", dag, EstimateBackend(), model).run()
        # cross-level aggregation can only produce fewer-or-equal launches
        assert trojan.kernel_count <= lb.kernel_count

    def test_kernel_count_reduction_order_of_magnitude(self, dag, model):
        # Tables 5/6: counts drop to a few percent
        serial = make_scheduler("serial", dag, EstimateBackend(), model).run()
        trojan = make_scheduler("trojan", dag, EstimateBackend(), model).run()
        assert trojan.kernel_count / serial.kernel_count < 0.25

    def test_bigger_gpu_amplified_by_trojan(self, dag):
        small, big = GPUCostModel(RTX5060TI), GPUCostModel(RTX5090)
        ratios = {}
        for name in ("serial", "trojan"):
            t_small = make_scheduler(name, dag, EstimateBackend(), small).run()
            t_big = make_scheduler(name, dag, EstimateBackend(), big).run()
            ratios[name] = t_small.kernel_time / t_big.kernel_time
        # Figure 9: the 5090's advantage grows once batching fills it
        assert ratios["trojan"] > ratios["serial"]

    def test_serial_kernel_count_equals_tasks(self, dag, model):
        r = make_scheduler("serial", dag, EstimateBackend(), model).run()
        assert r.kernel_count == dag.n_tasks

    def test_levelbatch_only_homogeneous_batches(self, dag, model):
        r = make_scheduler("levelbatch", dag, EstimateBackend(), model).run()
        for b in r.batches:
            assert sum(1 for v in b.types.values() if v > 0) == 1

    def test_trojan_mixes_types_in_batches(self, dag, model):
        r = make_scheduler("trojan", dag, EstimateBackend(), model).run()
        mixed = sum(1 for b in r.batches
                    if sum(1 for v in b.types.values() if v > 0) > 1)
        assert mixed > 0  # heterogeneous batching is the point (Figure 4)

    def test_trojan_batches_respect_collector_budget(self, dag, model):
        r = make_scheduler("trojan", dag, EstimateBackend(), model).run()
        budget = model.gpu.max_resident_blocks
        for b in r.batches:
            # a single oversized task may exceed the budget; batches with
            # several tasks must respect it
            if b.n_tasks > 1:
                assert b.cuda_blocks <= budget


class TestScheduleResult:
    def test_summary_keys(self, dag, model):
        r = make_scheduler("trojan", dag, EstimateBackend(), model).run()
        s = r.summary()
        assert {"scheduler", "kernels", "total_time_s", "gflops"} <= set(s)

    def test_gflops_timeline_monotone_time(self, dag, model):
        r = make_scheduler("trojan", dag, EstimateBackend(), model).run()
        t, g = r.gflops_timeline()
        assert np.all(np.diff(t) >= 0)
        assert np.all(g >= 0)

    def test_mean_batch_size(self, dag, model):
        r = make_scheduler("serial", dag, EstimateBackend(), model).run()
        assert r.mean_batch_size == 1.0


class TestStaticAnalysis:
    def test_profile_sums_to_tasks(self, dag):
        prof = parallelism_profile(dag)
        assert prof.sum() == dag.n_tasks

    def test_statistics_consistent(self, dag):
        stats = dag_statistics(dag)
        assert stats["tasks"] == dag.n_tasks
        assert stats["max_parallel"] >= stats["median"]
        assert stats["time_steps"] == stats["critical_path"]

    def test_wide_dag_has_parallelism(self):
        a = circuit_like(120, seed=6)
        part = uniform_partition(120, 12)
        dag = build_block_dag(block_fill(a, part), part)
        stats = dag_statistics(dag)
        assert stats["max_parallel"] > 1


class TestValidateSchedule:
    def test_accepts_valid_schedules(self, dag, model):
        from repro.core import validate_schedule

        for name in SCHEDULER_NAMES:
            r = make_scheduler(name, dag, EstimateBackend(), model).run()
            validate_schedule(dag, r.batches)

    def test_rejects_missing_task(self, dag, model):
        from repro.core import validate_schedule

        r = make_scheduler("serial", dag, EstimateBackend(), model).run()
        with pytest.raises(AssertionError, match="never executed"):
            validate_schedule(dag, r.batches[:-1])

    def test_rejects_duplicate_task(self, dag, model):
        from repro.core import validate_schedule

        r = make_scheduler("serial", dag, EstimateBackend(), model).run()
        with pytest.raises(AssertionError, match="twice"):
            validate_schedule(dag, r.batches + [r.batches[0]])

    def test_rejects_dependency_violation(self, dag, model):
        import copy

        from repro.core import validate_schedule

        r = make_scheduler("serial", dag, EstimateBackend(), model).run()
        batches = [copy.copy(b) for b in r.batches]
        batches[-1].t_start = -1.0  # pretend the last task ran first
        if any(dag.pred_count[t] > 0 for t in batches[-1].task_ids):
            with pytest.raises(AssertionError, match="before"):
                validate_schedule(dag, batches)

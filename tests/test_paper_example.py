"""The paper's worked example (§2.3, Figure 4).

A 6×6 matrix organised as 3×3 blocks yields exactly 14 tasks — three
diagonal LU factorisations, six triangular solves, five Schur updates —
and the famous batching opportunities: heterogeneous-type batches, and
the 9S0/9S1 pair updating the same block from different steps with atomic
accumulation.
"""

import numpy as np
import pytest

from repro.core import (
    Executor,
    TaskType,
    build_block_dag,
    make_scheduler,
)
from repro.core.executor import EstimateBackend
from repro.gpusim import GPUCostModel, RTX5090
from repro.matrices import make_diagonally_dominant
from repro.sparse import CSRMatrix, uniform_partition
from repro.symbolic import block_fill


@pytest.fixture(scope="module")
def example():
    """6×6 matrix, 3×3 blocks, every tile structurally nonzero."""
    rng = np.random.default_rng(7)
    dense = rng.standard_normal((6, 6))
    a = make_diagonally_dominant(CSRMatrix.from_dense(dense), 2.0)
    part = uniform_partition(6, 2)
    dag = build_block_dag(block_fill(a, part), part, sparse_tiles=True)
    return dag


class TestFourteenTasks:
    def test_total_count(self, example):
        # "There are in total 14 tasks" (§2.3)
        assert example.n_tasks == 14

    def test_type_split(self, example):
        # "three diagonal LU factorisation, six triangular solve, and five
        # Schur complement operations"
        counts = example.counts_by_type()
        assert counts["GETRF"] == 3
        assert counts["TSTRF"] + counts["GEESM"] == 6
        assert counts["SSSSM"] == 5

    def test_only_first_factorisation_initially_ready(self, example):
        ready = example.initial_ready()
        assert len(ready) == 1
        t = example.tasks[ready[0]]
        assert t.type == TaskType.GETRF and t.k == 0

    def test_first_batch_candidates_after_1f(self, example):
        # completing '1F' readies the step-0 solves ('2T', '4T', ...)
        dag = example
        pred = dag.pred_count.copy()
        root = dag.initial_ready()[0]
        newly = []
        for s in dag.successors[root]:
            pred[s] -= 1
            if pred[s] == 0:
                newly.append(dag.tasks[s])
        assert len(newly) == 4  # two TSTRF + two GEESM at k=0
        assert all(t.type in (TaskType.TSTRF, TaskType.GEESM) for t in newly)
        assert all(t.k == 0 for t in newly)


class TestNineS0NineS1:
    """'9S0' and '9S1' both update block (2,2) and may batch with atomics."""

    def _schur_on_22(self, dag):
        return [t for t in dag.tasks
                if t.type == TaskType.SSSSM and (t.i, t.j) == (2, 2)]

    def test_two_updates_on_trailing_block(self, example):
        pair = self._schur_on_22(example)
        assert len(pair) == 2
        assert sorted(t.k for t in pair) == [0, 1]

    def test_mutually_order_independent(self, example):
        # neither update reaches the other through DAG edges
        dag = example
        pair = self._schur_on_22(dag)
        reach = set()
        stack = [pair[0].tid]
        while stack:
            t = stack.pop()
            for s in dag.successors[t]:
                if s not in reach:
                    reach.add(s)
                    stack.append(s)
        assert pair[1].tid not in reach

    def test_both_gate_final_factorisation(self, example):
        dag = example
        final = next(t for t in dag.tasks
                     if t.type == TaskType.GETRF and t.k == 2)
        for upd in self._schur_on_22(dag):
            assert final.tid in dag.successors[upd.tid]

    def test_executor_flags_atomic_when_batched(self, example):
        dag = example
        pair = self._schur_on_22(dag)
        ex = Executor(GPUCostModel(RTX5090), EstimateBackend())
        together = ex.run_batch(pair, 0.0)
        separate = (ex.run_batch([pair[0]], 0.0).bytes
                    + ex.run_batch([pair[1]], 0.0).bytes)
        # atomic accounting adds write-conflict traffic over the two
        # conflict-free separate launches
        assert together.bytes > separate


class TestExampleSchedules:
    def test_trojan_runs_in_critical_path_batches(self, example):
        # with ample capacity every level fits one batch: the schedule
        # length equals the dependency depth (7 for the fully-filled
        # example), far below the 14 per-task launches of the baseline
        model = GPUCostModel(RTX5090)
        r = make_scheduler("trojan", example, EstimateBackend(), model).run()
        cp = int(example.critical_path_lengths().max())
        assert r.kernel_count == cp
        assert r.kernel_count < 14

    def test_baseline_takes_fourteen_launches(self, example):
        model = GPUCostModel(RTX5090)
        r = make_scheduler("serial", example, EstimateBackend(), model).run()
        assert r.kernel_count == 14

    def test_heterogeneous_batching_occurs(self, example):
        # Figure 4: tasks of different kernel types run in one batch
        model = GPUCostModel(RTX5090)
        r = make_scheduler("trojan", example, EstimateBackend(), model).run()
        assert any(sum(1 for v in b.types.values() if v) > 1
                   for b in r.batches)

"""Tests for the multiprocess sweep runner (repro.sweep).

The load-bearing property is *determinism*: the parallel sweep must emit
row-for-row identical results to the sequential path, because the
Figure-10 tables are part of the reproduction's evidence.  The pickle
round-trip tests pin down the worker-transfer contract (work items,
result rows, suite entries and the cached symbolic-analysis triple all
survive the pipe unchanged).
"""

import os
import pickle

import numpy as np
import pytest

from repro.core.analysis_cache import AnalysisCache, merge_stats
from repro.gpusim import A100_40GB
from repro.matrices import (
    SuiteEntry,
    suite_collection,
    suite_specs,
)
from repro.solvers import PanguLUSolver
from repro.sweep import (
    SweepItem,
    SweepRow,
    WORKERS_ENV,
    cache_stats_table,
    default_workers,
    fig10_items,
    fig10_summaries,
    fig10_table,
    run_cell,
    run_sweep,
    shard_items,
)

COUNT, BASE = 6, 100


@pytest.fixture(scope="module")
def items():
    return fig10_items(count=COUNT, base_size=BASE)


@pytest.fixture(scope="module")
def sequential(items):
    return run_sweep(items, workers=1)


class TestDifferential:
    """Parallel and sequential sweeps must be bit-identical."""

    def test_two_workers_identical_rows(self, items, sequential):
        parallel = run_sweep(items, workers=2)
        assert parallel.rows == sequential.rows

    def test_three_workers_identical_rows(self, items, sequential):
        parallel = run_sweep(items, workers=3)
        assert parallel.rows == sequential.rows

    def test_emitted_table_identical(self, items, sequential):
        parallel = run_sweep(items, workers=2)
        assert (fig10_table(parallel.rows, COUNT)
                == fig10_table(sequential.rows, COUNT))

    def test_rows_sorted_by_index(self, sequential):
        assert [r.index for r in sequential.rows] == list(range(len(
            sequential.rows)))

    def test_matches_direct_cell_execution(self, items, sequential):
        # one worker, no pool, no cache: the plain sequential reference
        direct = [run_cell(item) for item in items]
        assert direct == sequential.rows


class TestStartMethod:
    """run_sweep pins an explicit spawn context; fork must agree."""

    def test_default_is_spawn(self):
        import inspect

        sig = inspect.signature(run_sweep)
        assert sig.parameters["start_method"].default == "spawn"

    def test_fork_and_spawn_identical_tables(self, items, sequential):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable here")
        forked = run_sweep(items, workers=2, start_method="fork")
        spawned = run_sweep(items, workers=2, start_method="spawn")
        assert forked.rows == spawned.rows == sequential.rows
        assert (fig10_table(forked.rows, COUNT)
                == fig10_table(spawned.rows, COUNT))

    def test_unknown_start_method_rejected(self, items):
        with pytest.raises(ValueError):
            run_sweep(items, workers=2, start_method="teleport")


class TestPickleRoundTrip:
    """Everything crossing the worker pipe must survive pickle unchanged."""

    def test_suite_entry(self):
        entry = suite_collection(count=1, base_size=80)[0]
        back = pickle.loads(pickle.dumps(entry))
        assert back.name == entry.name and back.kind == entry.kind
        assert np.array_equal(back.matrix.indptr, entry.matrix.indptr)
        assert np.array_equal(back.matrix.indices, entry.matrix.indices)
        assert np.array_equal(back.matrix.data, entry.matrix.data)

    def test_csr_matrix(self):
        a = suite_collection(count=1, base_size=80)[0].matrix
        back = pickle.loads(pickle.dumps(a))
        assert back.shape == a.shape
        assert np.array_equal(back.to_dense(), a.to_dense())

    def test_cached_block_analysis_triple(self):
        a = suite_collection(count=1, base_size=80)[0].matrix
        cache = AnalysisCache()
        run = PanguLUSolver(a, scheduler="serial", gpu=A100_40GB,
                            analysis_cache=cache).factorize()
        key = next(k for k in cache._store if k.startswith("dag:"))
        bfill, tile_nnz, dag = pickle.loads(
            pickle.dumps(cache._store[key]))
        assert np.array_equal(bfill, cache._store[key][0])
        assert tile_nnz == cache._store[key][1]
        assert dag.n_tasks == run.dag.n_tasks
        assert np.array_equal(dag.pred_count, run.dag.pred_count)
        assert dag.successors == run.dag.successors
        # the rebuilt DAG is fully usable: lazy indices still build
        dag.validate()

    def test_work_item_and_row(self, items, sequential):
        item = pickle.loads(pickle.dumps(items[0]))
        assert item == items[0]
        row = pickle.loads(pickle.dumps(sequential.rows[0]))
        assert row == sequential.rows[0]

    def test_spec_materializes_to_collection_entry(self):
        specs = suite_specs(count=COUNT, base_size=BASE)
        col = suite_collection(count=COUNT, base_size=BASE)
        for spec, entry in zip(specs, col):
            built = spec.materialize()
            assert built.name == entry.name and built.kind == entry.kind
            assert np.array_equal(built.matrix.to_dense(),
                                  entry.matrix.to_dense())


class TestSharding:
    def test_single_worker_single_shard(self, items):
        shards = shard_items(items, 1)
        assert len(shards) == 1 and shards[0] == list(items)

    def test_kind_affinity(self, items):
        shards = shard_items(items, 3)
        for shard in shards:
            kinds_here = {it.entry.kind for it in shard}
            for other in shards:
                if other is not shard:
                    assert kinds_here.isdisjoint(
                        {it.entry.kind for it in other})

    def test_partition_is_complete(self, items):
        shards = shard_items(items, 4)
        flat = [it for shard in shards for it in shard]
        assert sorted(it.index for it in flat) == [it.index for it in items]

    def test_deterministic(self, items):
        assert shard_items(items, 3) == shard_items(items, 3)

    def test_custom_shard_key(self, items):
        shards = shard_items(items, 2, shard_key=lambda it: it.index)
        assert [it.index % 2 for shard in shards
                for it in shard] == sorted(it.index % 2 for it in items)

    def test_rejects_nonpositive_workers(self, items):
        with pytest.raises(ValueError):
            shard_items(items, 0)

    def test_empty_items(self):
        assert shard_items([], 4) == []


class TestKnobs:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert default_workers() == 1

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert default_workers() == 4

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            default_workers()

    def test_nonpositive_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            default_workers()

    def test_run_sweep_reads_env(self, items, sequential, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        outcome = run_sweep(items[:2])
        assert outcome.workers == 2
        assert outcome.rows == sequential.rows[:2]

    def test_run_sweep_rejects_bad_workers(self, items):
        with pytest.raises(ValueError):
            run_sweep(items, workers=0)

    def test_duplicate_indices_rejected(self, items):
        with pytest.raises(ValueError, match="unique"):
            run_sweep([items[0], items[0]], workers=1)


class TestOutcome:
    def test_cache_stats_aggregated(self, items):
        outcome = run_sweep(items, workers=2)
        agg = outcome.cache_stats
        per = outcome.per_worker_cache_stats
        assert 1 <= len(per) <= 2
        for key in ("hits", "misses", "evictions", "entries"):
            assert agg[key] == sum(s[key] for s in per)
        # same-pattern matrices within a worker actually hit the cache
        assert agg["hits"] > 0

    def test_merge_stats_empty(self):
        agg = merge_stats([])
        assert agg["hits"] == 0 and agg["hit_rate"] == 0.0

    def test_cache_stats_table_renders(self, items):
        outcome = run_sweep(items, workers=2)
        text = cache_stats_table(outcome)
        assert "worker 0" in text and "total" in text

    def test_row_time_lookup(self, sequential):
        row = sequential.rows[0]
        assert row.time_for("trojan") == dict(row.resim_times)["trojan"]
        with pytest.raises(KeyError):
            row.time_for("nonexistent")

    def test_summaries_per_solver(self, sequential):
        summaries = fig10_summaries(sequential.rows)
        assert set(summaries) == {"superlu", "pangulu"}
        for s in summaries.values():
            assert s["matrices"] == COUNT
            assert np.all(s["speedups"] > 0)

    def test_sweep_row_is_plain_data(self, sequential):
        row = sequential.rows[0]
        assert isinstance(row, SweepRow)
        assert isinstance(row.resim_times, tuple)


class TestWorkItems:
    def test_fig10_items_ship_specs_not_matrices(self, items):
        # pickled work items must stay tiny — matrices rebuild in-worker
        assert all(not hasattr(it.entry, "matrix") for it in items)
        assert len(pickle.dumps(items)) < 20_000

    def test_materialized_entry_has_matrix(self, items):
        entry = items[0].materialized()
        assert isinstance(entry, SuiteEntry)
        assert entry.matrix.nnz > 0

    def test_solver_kwargs_applied(self):
        entry = suite_collection(count=1, base_size=80)[0]
        small = run_cell(SweepItem(
            index=0, entry=entry, solver="pangulu",
            solver_kwargs=(("block_size", 8),)))
        large = run_cell(SweepItem(
            index=0, entry=entry, solver="pangulu",
            solver_kwargs=(("block_size", 64),)))
        assert small.tasks > large.tasks

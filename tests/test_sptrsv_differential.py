"""Differential battery for the batched SpTRSV solve phase.

The solve DAG decides *when* RHS blocks are solved and accumulated,
never *what* arithmetic runs: the canonical accumulation chains fix the
update order per destination block, and the stacked kernels fold the
RHS into per-column cores identical to the serial recurrence.  The
batched path must therefore be **bit-identical** to the tiled
per-column oracle — not merely close — for every solver scenario, RHS
width, scheduler and kernel-batching mode.  The CSR substitution path
(the knob-off default) executes different (row-major scalar) arithmetic
and is compared with ``allclose`` only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solve_dag import SOLVE_SCHEDULER_NAMES
from repro.matrices.generators import circuit_like, poisson2d
from repro.solvers import SOLVER_REGISTRY
from repro.sparse import matvec

SCENARIOS = [
    ("pangulu", "poisson"),
    ("pangulu", "circuit"),
    ("superlu", "poisson"),
    ("superlu", "circuit"),
    ("pastix", "poisson"),
]

_MATRICES = {
    "poisson": lambda: poisson2d(16),
    "circuit": lambda: circuit_like(180, seed=2),
}

_CACHE: dict = {}


def _factored(solver: str, matrix: str):
    """One factorisation per (solver, matrix), shared across tests."""
    key = (solver, matrix)
    if key not in _CACHE:
        a = _MATRICES[matrix]()
        _CACHE[key] = (a, SOLVER_REGISTRY[solver](a).factorize())
    return _CACHE[key]


def _rhs(a, nrhs: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x_true = rng.standard_normal((a.nrows, nrhs))
    b = np.column_stack([matvec(a, x_true[:, c]) for c in range(nrhs)])
    return b if nrhs > 1 else b[:, 0]


@pytest.mark.parametrize("solver,matrix", SCENARIOS,
                         ids=[f"{s}-{m}" for s, m in SCENARIOS])
@pytest.mark.parametrize("nrhs", [1, 4, 32])
def test_batched_solve_bitwise_vs_oracle(solver, matrix, nrhs):
    a, res = _factored(solver, matrix)
    b = _rhs(a, nrhs)
    x = res.solve(b, batch_solve=True)
    oracle = res.solve_per_column_oracle(b)
    assert x.shape == b.shape
    assert np.array_equal(x, oracle), \
        f"{solver}/{matrix} nrhs={nrhs}: batched x differs from oracle"


@pytest.mark.parametrize("solver,matrix", SCENARIOS,
                         ids=[f"{s}-{m}" for s, m in SCENARIOS])
def test_batched_solve_close_to_csr_path(solver, matrix):
    """The DAG path and the CSR path solve the same system; their bits
    legitimately differ (different arithmetic), their values must not."""
    a, res = _factored(solver, matrix)
    b = _rhs(a, 4)
    x_dag = res.solve(b, batch_solve=True)
    x_csr = res.solve(b, batch_solve=False)
    np.testing.assert_allclose(x_dag, x_csr, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("scheduler", SOLVE_SCHEDULER_NAMES)
def test_every_solve_scheduler_bitwise_identical(scheduler):
    """Batch decomposition is arithmetic-invariant: any legal schedule
    of the solve DAG produces the same bits as the oracle."""
    a, res = _factored("pangulu", "poisson")
    b = _rhs(a, 8)
    x = res.solve(b, batch_solve=True, solve_scheduler=scheduler)
    assert np.array_equal(x, res.solve_per_column_oracle(b))


@pytest.mark.parametrize("flag,expect_dag", [("1", True), ("0", False)])
def test_batch_solve_env_knob(monkeypatch, flag, expect_dag):
    """``REPRO_BATCH_SOLVE`` selects the substitution path when the
    ``batch_solve`` argument is left unset."""
    a, res = _factored("superlu", "poisson")
    b = _rhs(a, 4)
    monkeypatch.setenv("REPRO_BATCH_SOLVE", flag)
    x_env = res.solve(b)
    reference = res.solve(b, batch_solve=expect_dag)
    assert np.array_equal(x_env, reference)
    # and the knob never changes the default-off behaviour silently
    monkeypatch.delenv("REPRO_BATCH_SOLVE")
    assert np.array_equal(res.solve(b), res.solve(b, batch_solve=False))


@pytest.mark.parametrize("refine", [0, 2])
def test_refinement_bitwise_vs_oracle(refine):
    """Iterative refinement composes substitutions; with the batched
    path each sweep stays bit-identical to the oracle's sweep."""
    a, res = _factored("pangulu", "circuit")
    b = _rhs(a, 1)
    x = res.solve(b, refine=refine, a=a, batch_solve=True)
    oracle = res.solve_per_column_oracle(b, refine=refine, a=a)
    assert np.array_equal(x, oracle)
    x_true = np.linalg.solve(a.to_dense(), b)
    assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-8


@pytest.mark.parametrize("batch_kernels", [True, False])
def test_stacked_vs_per_task_kernels_bitwise(batch_kernels):
    """Stacked kernel groups and per-task kernels share the folded
    per-column arithmetic cores — identical bits either way."""
    a, res = _factored("superlu", "circuit")
    b = _rhs(a, 16)
    lctx, uctx = res.solve_contexts()
    pb = b[res.perm, :]
    y = lctx.solve(pb, batch_kernels=batch_kernels).x
    z = uctx.solve(y, batch_kernels=batch_kernels).x
    y0 = lctx.solve_per_column(pb)
    z0 = uctx.solve_per_column(y0)
    assert np.array_equal(y, y0)
    assert np.array_equal(z, z0)

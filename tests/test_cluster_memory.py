"""Unit tests for the per-GPU factor-memory model."""

import numpy as np
import pytest

from repro.cluster import ProcessGrid, factor_bytes_per_rank, fits_in_memory
from repro.cluster.memory import BYTES_PER_NNZ, USABLE_FRACTION
from repro.core import build_block_dag
from repro.core.task import TaskType
from repro.gpusim import H100_SXM, MI50
from repro.matrices import paper_matrix_info, poisson2d
from repro.sparse import uniform_partition
from repro.symbolic import block_fill


class TestFactorBytes:
    def _dag(self):
        a = poisson2d(8)
        part = uniform_partition(64, 8)
        return build_block_dag(block_fill(a, part), part)

    def test_total_matches_factor_tiles(self):
        dag = self._dag()
        grid = ProcessGrid(4)
        per_rank = factor_bytes_per_rank(dag, grid)
        expect = sum(BYTES_PER_NNZ * t.nnz for t in dag.tasks
                     if t.type != TaskType.SSSSM)
        assert per_rank.sum() == pytest.approx(expect)

    def test_single_rank_holds_everything(self):
        dag = self._dag()
        one = factor_bytes_per_rank(dag, ProcessGrid(1))
        four = factor_bytes_per_rank(dag, ProcessGrid(4))
        assert one.shape == (1,)
        assert one[0] == pytest.approx(four.sum())

    def test_block_cyclic_roughly_balanced(self):
        dag = self._dag()
        per_rank = factor_bytes_per_rank(dag, ProcessGrid(4))
        assert per_rank.min() > 0
        assert per_rank.max() < 4 * per_rank.min()


class TestFitsInMemory:
    def test_more_gpus_always_helps(self):
        nnz = 5e9
        feasible = [fits_in_memory(nnz, g, MI50) for g in (1, 2, 4, 8, 16)]
        # once feasible, stays feasible
        first = feasible.index(True)
        assert all(feasible[first:])

    def test_paper_oom_pattern(self):
        # Figure 12: small MI50 counts run out of memory, 16 GPUs fit;
        # the single H100 runs of Table 7 are feasible
        for name in ("cage13", "Serena", "Ga41As41H72"):
            info = paper_matrix_info(name)
            assert not fits_in_memory(info.paper_lu_pangulu, 1, MI50), name
            assert fits_in_memory(info.paper_lu_pangulu, 16, MI50), name
            assert fits_in_memory(info.paper_lu_pangulu, 1, H100_SXM), name

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            fits_in_memory(1e9, 0, MI50)

    def test_usable_fraction_applied(self):
        # exactly at the raw capacity boundary: must NOT fit because only
        # USABLE_FRACTION of memory is available for factors
        nnz = MI50.memory_gb * 1e9 / BYTES_PER_NNZ
        assert not fits_in_memory(nnz, 1, MI50, imbalance=1.0)
        assert fits_in_memory(nnz * USABLE_FRACTION * 0.99, 1, MI50,
                              imbalance=1.0)

"""Property tests for the SpTRSV solve DAG over random triangular systems.

Three families of invariants, each over randomly generated blocked
triangular matrices:

* every batch the Collector emits for a solve DAG is statically
  hazard-free (dependency order, no same-tile write pairs, no
  read-before-solve of an RHS block);
* the solve DAG itself is acyclic, covers the block pattern exactly
  (one diagonal solve per block row, one accumulate per off-diagonal
  tile) and every accumulate chain is anchored on its source's
  diagonal solve;
* the solve operator is column-equivariant: permuting RHS columns
  permutes solution columns bit-for-bit (columns never mix).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solve_dag import build_solve_dag, solve_sources
from repro.core.task import TaskType
from repro.gpusim import RTX5090
from repro.solvers import sptrsv_solve
from repro.sparse import CSRMatrix, uniform_partition
from repro.verify.schedule import ScheduleVerifier


def random_triangular(n: int, density: float, seed: int,
                      lower: bool = True) -> CSRMatrix:
    """A random sparse triangular matrix with a safely nonzero diagonal."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.standard_normal((n, n))
    dense = np.tril(dense, -1) if lower else np.triu(dense, 1)
    signs = np.where(rng.random(n) < 0.5, -1.0, 1.0)
    np.fill_diagonal(dense, signs * rng.uniform(1.0, 2.0, n))
    return CSRMatrix.from_dense(dense)


def _batch_ids(result) -> list[list[int]]:
    return [sorted(int(t) for t in br.task_ids)
            for br in result.schedule.batches]


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("lower", [True, False], ids=["lower", "upper"])
@pytest.mark.parametrize("scheduler", ["trojan", "levelbatch", "levelset"])
def test_every_collector_batch_is_hazard_free(seed, lower, scheduler):
    tri = random_triangular(96, 0.15, seed, lower=lower)
    rng = np.random.default_rng(100 + seed)
    b = rng.standard_normal((96, 4))
    result = sptrsv_solve(tri, b, block_size=16, lower=lower,
                          scheduler=scheduler)
    batches = _batch_ids(result)
    # full coverage: each task launched exactly once
    flat = sorted(t for batch in batches for t in batch)
    assert flat == list(range(result.dag.n_tasks))
    report = ScheduleVerifier(result.dag, gpu=RTX5090).verify_batches(
        batches, subject=f"sptrsv-{scheduler}-{seed}")
    assert not report.violations, report.describe()
    # and the schedule actually solved the system
    expect = np.linalg.solve(tri.to_dense(), b)
    np.testing.assert_allclose(result.x, expect, rtol=1e-9, atol=1e-11)


@pytest.mark.parametrize("seed", [3, 4, 5])
@pytest.mark.parametrize("lower", [True, False], ids=["lower", "upper"])
def test_solve_dag_acyclic_and_covers_pattern(seed, lower):
    rng = np.random.default_rng(seed)
    nb, bs = 6, 12
    part = uniform_partition(nb * bs, bs)
    pat = rng.random((nb, nb)) < 0.4
    pat = np.tril(pat) if lower else np.triu(pat)
    np.fill_diagonal(pat, True)
    dag = build_solve_dag(pat, part, nrhs=3, lower=lower)
    dag.validate()
    dag.critical_path_lengths()  # full Kahn peel; raises on a cycle
    assert dag.is_verified_acyclic()
    counts = dag.counts_by_type()
    offdiag = int(pat.sum()) - nb
    assert counts.get("SPTRSV_DIAG", 0) == nb
    assert counts.get("SPTRSV_UPDATE", 0) == offdiag
    assert dag.n_tasks == nb + offdiag
    # level schedule covers every task exactly once
    levels = dag.level_schedule()
    flat = sorted(int(t) for lvl in levels for t in lvl)
    assert flat == list(range(dag.n_tasks))
    # every accumulate maps onto an off-diagonal pattern tile, in the
    # canonical source order the chains serialise
    updates = [t for t in dag.tasks if t.type == TaskType.SPTRSV_UPDATE]
    by_dest: dict[int, list[int]] = {}
    for t in updates:
        assert t.i == t.j and t.k != t.i
        assert pat[t.i, t.k]
        by_dest.setdefault(t.i, []).append(t.k)
    for dest, srcs in by_dest.items():
        assert srcs == list(solve_sources(pat, dest, lower))


@pytest.mark.parametrize("lower", [True, False], ids=["lower", "upper"])
def test_rhs_column_permutation_equivariance(lower):
    """Permuting RHS columns permutes solution columns exactly: the
    stacked kernels never mix columns, by construction of the folded
    per-column cores."""
    tri = random_triangular(80, 0.2, 7, lower=lower)
    rng = np.random.default_rng(8)
    b = rng.standard_normal((80, 6))
    perm = rng.permutation(6)
    x = sptrsv_solve(tri, b, block_size=16, lower=lower).x
    xp = sptrsv_solve(tri, b[:, perm], block_size=16, lower=lower).x
    assert np.array_equal(xp, x[:, perm])

"""Unit tests for the 200-matrix / 31-kind collection generator."""

import numpy as np

from repro.matrices import suite_collection, suite_kinds


class TestKinds:
    def test_thirty_one_kinds(self):
        # the paper draws its 200 matrices from 31 SuiteSparse kinds
        assert len(suite_kinds()) == 31

    def test_kind_labels_unique(self):
        kinds = suite_kinds()
        assert len(set(kinds)) == len(kinds)


class TestCollection:
    def test_requested_count(self):
        col = suite_collection(count=40, base_size=120)
        assert len(col) == 40

    def test_entries_are_square_canonical(self):
        for e in suite_collection(count=35, base_size=120):
            assert e.matrix.nrows == e.matrix.ncols
            e.matrix.check()

    def test_names_unique(self):
        col = suite_collection(count=70, base_size=120)
        names = [e.name for e in col]
        assert len(set(names)) == len(names)

    def test_round_robin_covers_all_kinds(self):
        col = suite_collection(count=62, base_size=120)
        assert set(e.kind for e in col) == set(suite_kinds())

    def test_deterministic(self):
        a = suite_collection(count=10, base_size=100)
        b = suite_collection(count=10, base_size=100)
        for ea, eb in zip(a, b):
            assert ea.name == eb.name
            assert ea.matrix.nnz == eb.matrix.nnz

    def test_sizes_vary_across_rounds(self):
        col = suite_collection(count=62, base_size=200)
        first_round = col[0].matrix.nrows
        second_round = col[31].matrix.nrows
        assert second_round != first_round

    def test_all_diagonally_dominant(self):
        for e in suite_collection(count=31, base_size=100):
            d = e.matrix.to_dense()
            off = np.abs(d).sum(axis=1) - np.abs(np.diag(d))
            assert np.all(np.abs(np.diag(d)) > off), e.name

"""The arena event engine vs the legacy heap loop (``repro.cluster.engine``).

The EventArena engine must be *indistinguishable* from the legacy
per-message heap loop on everything except wall-clock: summaries,
traces, and event counts are compared bitwise across every policy, both
fault-free and on every fault fixture in ``tests/faults/``.  Also covers
the EventArena data structure itself (ordering contract, width
adaptation), the vectorized launch-time kernel, and the
``REPRO_DISTSIM_LEGACY`` escape hatch.
"""

import hashlib
import heapq
import pathlib

import numpy as np
import pytest

from repro.cluster import (
    DistributedSimulator,
    EventArena,
    H100_CLUSTER,
    banded_block_dag,
    default_engine,
)
from repro.cluster.engine import SimStatics, single_launch_times
from repro.cluster.faults import FaultSpec
from repro.core.executor import EstimateBackend, ReplayBackend
from repro.gpusim.costmodel import GPUCostModel, KernelLaunch
from repro.matrices import paper_matrix
from repro.solvers import PanguLUSolver

POLICIES = ["serial", "dmdas", "streams", "trojan"]
FAULT_DIR = pathlib.Path(__file__).parent / "faults"
FIXTURES = sorted(FAULT_DIR.glob("*.json"))


@pytest.fixture(scope="module")
def dist_setup():
    """Factorised c-71 whose recorded stats feed a ReplayBackend."""
    a = paper_matrix("c-71", scale=0.6)
    run = PanguLUSolver(a, block_size=32, scheduler="serial").factorize()
    return run.dag, ReplayBackend(run.stats)


def trace_digest(res) -> str:
    """Canonical digest of a trace: arrays bitwise, sends as canonical
    Python numbers (the engines may differ in np-scalar vs float boxing,
    never in value)."""
    h = hashlib.sha256()
    tr = res.trace
    for arr in (tr.rank, tr.t_start, tr.t_done, tr.edges):
        h.update(np.ascontiguousarray(arr).tobytes())
    for s in tr.sends:
        h.update(repr((
            int(s.tid), int(s.succ), int(s.src), int(s.dst),
            float(s.t_send),
            None if s.t_recv is None else float(s.t_recv),
            int(s.nbytes))).encode())
    return h.hexdigest()


def assert_engines_identical(dag, backend, policy, spec=None, nprocs=8):
    # differential consistency: a plan the static analyzer certifies
    # clean must also simulate to a trace the TraceVerifier accepts —
    # the two views of the same plan can never disagree
    from repro.cluster import ProcessGrid
    from repro.verify.plan import PlanSpec, verify_plan
    from repro.verify.trace import verify_trace

    plan_report = verify_plan(PlanSpec.from_dag(
        dag, ProcessGrid(nprocs), faults=spec, gpu=H100_CLUSTER.gpu))
    assert plan_report.ok, plan_report.describe()
    results = {}
    for engine in ("arena", "legacy"):
        results[engine] = DistributedSimulator(
            dag, backend, H100_CLUSTER, nprocs, policy,
            record_trace=True, faults=spec, engine=engine).run()
    ra, rl = results["arena"], results["legacy"]
    sa, sl = ra.summary(), rl.summary()
    ea, el = sa.pop("events"), sl.pop("events")
    assert sa == sl
    assert trace_digest(ra) == trace_digest(rl)
    # both engines must process the same number of simulated events —
    # cohort batching changes *when* accounting happens, not how much
    assert ea["events"] == el["events"]
    assert ea["engine"] == "arena" and el["engine"] == "legacy"
    trace_report = verify_trace(ra.trace)
    assert trace_report.ok, trace_report.describe()
    return ra


@pytest.mark.parametrize("policy", POLICIES)
def test_fault_free_identical(dist_setup, policy):
    dag, backend = dist_setup
    assert_engines_identical(dag, backend, policy)


@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
@pytest.mark.parametrize("policy", POLICIES)
def test_fault_matrix_identical(dist_setup, policy, fixture):
    dag, backend = dist_setup
    assert_engines_identical(dag, backend, policy,
                             spec=FaultSpec.from_json(fixture))


@pytest.mark.parametrize("policy", POLICIES)
def test_synthetic_estimate_identical(policy):
    """EstimateBackend + banded DAG: the scale-out sweep configuration."""
    dag = banded_block_dag(24, 4)
    assert_engines_identical(dag, EstimateBackend(), policy, nprocs=16)


def test_engine_validation(dist_setup):
    dag, backend = dist_setup
    with pytest.raises(ValueError, match="unknown engine"):
        DistributedSimulator(dag, backend, H100_CLUSTER, 4, "serial",
                             engine="bogus")


def test_legacy_env_knob(dist_setup, monkeypatch):
    """``REPRO_DISTSIM_LEGACY=1`` routes runs through the legacy loop."""
    dag, backend = dist_setup
    monkeypatch.delenv("REPRO_DISTSIM_LEGACY", raising=False)
    assert default_engine() == "arena"
    monkeypatch.setenv("REPRO_DISTSIM_LEGACY", "1")
    assert default_engine() == "legacy"
    res = DistributedSimulator(dag, backend, H100_CLUSTER, 4,
                               "trojan").run()
    assert res.events.engine == "legacy"
    monkeypatch.setenv("REPRO_DISTSIM_LEGACY", "0")
    assert default_engine() == "arena"


# -- EventArena data structure -------------------------------------------


def _drain(arena):
    out = []
    while True:
        ev = arena.pop()
        if ev is None:
            return out
        out.append(ev)


def test_arena_orders_by_time_then_seq():
    arena = EventArena(width=1.0)
    arena.push(5.0, 0, 0, 10)
    arena.push(1.0, 1, 1, 11)
    arena.push(5.0, 2, 2, 12)  # same t as the first push: seq breaks tie
    arena.push(0.5, 3, 3, 13)
    assert _drain(arena) == [
        (0.5, 3, 3, 13), (1.0, 1, 1, 11), (5.0, 0, 0, 10), (5.0, 2, 2, 12)]
    assert len(arena) == 0


def test_arena_rejects_bad_width():
    with pytest.raises(ValueError, match="width"):
        EventArena(width=0.0)
    with pytest.raises(ValueError, match="width"):
        EventArena(width=-1.0)


@pytest.mark.parametrize("width", [1e-6, 1e-3, 0.1, 10.0])
def test_arena_matches_heapq_reference(width):
    """Fuzzed interleaved push/pop vs a (t, seq) heap — any width."""
    rng = np.random.default_rng(7)
    arena = EventArena(width=width)
    ref = []
    seq = 0
    t_now = 0.0
    popped = []
    for _ in range(300):
        # simulated time never runs backwards: new pushes land at or
        # after the last popped timestamp, like the real event loop
        for _ in range(int(rng.integers(0, 5))):
            t = t_now + float(rng.random()) * 3.0
            payload = seq
            arena.push(t, seq % 4, seq % 8, payload)
            heapq.heappush(ref, (t, seq))
            seq += 1
        for _ in range(int(rng.integers(0, 4))):
            ev = arena.pop()
            if ev is None:
                assert not ref
                break
            t, _, _, payload = ev
            rt, rseq = heapq.heappop(ref)
            assert t == rt and payload == rseq
            t_now = t
            popped.append(payload)
    while ref:
        ev = arena.pop()
        rt, rseq = heapq.heappop(ref)
        assert ev[0] == rt and ev[3] == rseq
    assert arena.pop() is None
    assert arena.stats.events == seq


def test_arena_width_adaptation_is_deterministic():
    """The same event stream shrinks the width identically every time."""

    def run_stream():
        arena = EventArena(width=100.0)  # absurdly wide: forces spills
        t = 0.0
        for k in range(3 * EventArena.ADAPT_WINDOW):
            arena.push(t + 0.001 * (k % 7), k % 4, 0, k)
            if k % 2 == 0:
                arena.pop()
        _drain(arena)
        return arena.width, arena.stats.width_shrinks, arena.stats.events

    first = run_stream()
    assert first == run_stream()
    assert first[1] >= 1  # the stream above must actually trigger shrinks


def test_arena_take_cohort_accounting():
    arena = EventArena(width=1.0)
    for k in range(10):
        arena.push(0.25, 0, 0, k)
    m = arena.take_cohort()
    assert m == 10
    assert arena._cp == list(range(10))  # seq order within the tie
    assert arena.stats.events == 10
    assert len(arena) == 0
    assert arena.take_cohort() == 0


# -- vectorized launch-time kernel ----------------------------------------


def test_single_launch_times_bitwise():
    """The vectorized kernel equals per-task ``launch_time`` bit-for-bit."""
    model = GPUCostModel(H100_CLUSTER.gpu)
    rng = np.random.default_rng(3)
    m = 200
    blocks = rng.integers(1, 2000, m)
    flops = rng.integers(0, 10**10, m)
    nbytes = rng.integers(0, 10**8, m)
    # exercise the degenerate rows the scalar code special-cases
    blocks[:3] = 0
    flops[3:6] = 0
    nbytes[6:9] = 0
    flops[9] = 0
    nbytes[9] = 0
    vec = single_launch_times(model, blocks, flops, nbytes)
    for idx in range(m):
        launch = KernelLaunch()
        launch.add_task(int(blocks[idx]), int(flops[idx]),
                        int(nbytes[idx]), 0)
        assert vec[idx] == model.launch_time(launch), idx


def test_simstatics_message_costs_bitwise():
    """Edge delays priced in one vector pass == scalar message_time."""
    dag = banded_block_dag(12, 3)
    sim = DistributedSimulator(dag, EstimateBackend(), H100_CLUSTER, 8,
                               "serial")
    st = SimStatics(sim, GPUCostModel(H100_CLUSTER.gpu),
                    dag.critical_path_lengths())
    for e in range(len(st.e_src)):
        assert st.e_delay[e] == sim.cluster.message_time(
            int(st.e_src[e]), int(st.e_dst[e]), int(st.e_bytes[e]))
